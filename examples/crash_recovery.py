#!/usr/bin/env python3
"""Crash recovery: write-ahead logging, checkpoints, winners and losers.

ACID's D: the database keeps a logical write-ahead log; a checkpoint plus
the log reconstructs exactly the committed state -- committed work
survives the crash, in-flight work vanishes.

The scenario:

1. load a small library and take a checkpoint;
2. transaction A lends a book and COMMITS;
3. transaction B deletes a book and ABORTS;
4. transaction C renames a topic and is still running when the
   system "crashes" (we keep only the checkpoint + serialized log bytes);
5. recovery rebuilds the document: A's lend is there, B's book is back,
   C's rename never happened.

Run:  python examples/crash_recovery.py
"""

from repro import Database
from repro.txn.wal import WriteAheadLog, recover, take_checkpoint

LIBRARY = (
    "topics",
    [("topic", {"id": "t0"}, [
        ("book", {"id": "b0"}, [
            ("title", ["Transaction Processing"]),
            ("history", []),
        ]),
        ("book", {"id": "b1"}, [("title", ["The Benchmark Handbook"])]),
    ])],
)


def main() -> None:
    db = Database(protocol="taDOM3+", lock_depth=4, root_element="bib",
                  enable_wal=True)
    db.load(LIBRARY)
    checkpoint = take_checkpoint(db.document, db.wal)
    print(f"checkpoint taken: {len(checkpoint.entries)} node entries")

    # A: commits a lend (clean session exit -> commit).
    with db.session("A-lender") as a:
        history = db.document.elements_by_name("history")[0]
        a.run(a.nodes.insert_tree(
            history, ("lend", {"person": "p1", "return": "2006-12-01"}, [])
        ))
    print("A committed: lend inserted")

    # B: deletes a book, then thinks better of it (explicit abort).
    with db.session("B-deleter") as b:
        book_b1 = db.document.element_by_id("b1")
        b.run(b.nodes.delete_subtree(book_b1))
        b.abort()
    print("B aborted: delete rolled back")

    # C: renames a topic and never commits (in flight at the crash) --
    # deliberately *not* a session: nothing may close this transaction.
    c = db.begin("C-renamer")
    topic = db.document.element_by_id("t0")
    db.run(db.nodes.rename_element(c, topic, "subject"))
    print(f"C in flight: topic currently named "
          f"<{db.document.name_of(topic)}>")

    # CRASH.  All that survives: the checkpoint and the log bytes.
    log_bytes = db.wal.to_bytes()
    print(f"\n*** crash ***  (surviving log: {len(log_bytes)} bytes, "
          f"{len(db.wal)} records)")

    recovered = recover(checkpoint, WriteAheadLog.from_bytes(log_bytes))
    print("\nrecovered state:")
    lends = recovered.elements_by_name("lend")
    print(f"  A's lend present        : {len(lends) == 1}")
    print(f"  B's book b1 present     : {recovered.element_by_id('b1') is not None}")
    topic_name = recovered.name_of(recovered.element_by_id("t0"))
    print(f"  C's rename discarded    : topic is <{topic_name}>")


if __name__ == "__main__":
    main()
