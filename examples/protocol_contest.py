#!/usr/bin/env python3
"""The contest in miniature: all 11 protocols on a TaMix workload.

Runs a scaled-down CLUSTER1 (the paper's 72-transaction library mix) under
every lock protocol and prints the resulting throughput table, grouped as
in the paper's Figure 9 -- plus the CLUSTER2 single-delete times of
Figure 11.

Run:  python examples/protocol_contest.py [--scale 0.05] [--seconds 30]
"""

import argparse

from repro.core import ALL_PROTOCOLS, group_of
from repro.tamix import run_cluster1, run_cluster2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05,
                        help="bib document scale (1.0 = the paper's 2000 books)")
    parser.add_argument("--seconds", type=float, default=30.0,
                        help="simulated run duration per protocol")
    parser.add_argument("--lock-depth", type=int, default=6)
    args = parser.parse_args()

    print(f"CLUSTER1: {args.seconds:.0f} simulated seconds, "
          f"bib scale {args.scale}, lock depth {args.lock_depth}, "
          "isolation repeatable\n")
    print(f"{'protocol':<10} {'group':<8} {'committed':>9} {'aborted':>8} "
          f"{'deadlocks':>9}   per-type (committed)")
    for name in ALL_PROTOCOLS:
        result = run_cluster1(
            name,
            lock_depth=args.lock_depth,
            scale=args.scale,
            run_duration_ms=args.seconds * 1000.0,
        )
        per_type = " ".join(
            f"{t.split('TA')[1]}={m.committed}"
            for t, m in sorted(result.by_type.items())
        )
        print(f"{name:<10} {group_of(name):<8} {result.committed:>9} "
              f"{result.aborted:>8} {result.deadlocks:>9}   {per_type}")

    print("\nCLUSTER2: single TAdelBook execution time (locking overhead)")
    for name in ALL_PROTOCOLS:
        elapsed = run_cluster2(name, scale=args.scale)
        bar = "#" * int(elapsed * 4)
        print(f"{name:<10} {elapsed:7.2f} ms  {bar}")


if __name__ == "__main__":
    main()
