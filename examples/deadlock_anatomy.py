#!/usr/bin/env python3
"""Anatomy of a conversion deadlock -- the paper's dominant abort cause.

Reconstructs the situation Section 5.1 blames for the low throughput at
small lock depths: two transactions read the same subtree (shared locks),
then both try to upgrade for an update.  Neither conversion can be granted
while the other transaction's read lock remains -- a cycle the deadlock
detector resolves by aborting one victim.

The script then shows the contrast at a deeper lock depth, where the two
transactions operate in diverse subtrees and never conflict.

Run:  python examples/deadlock_anatomy.py
"""

from repro import Database, DeadlockAbort
from repro.sched import Delay, Simulator

LIBRARY = (
    "topics",
    [
        ("topic", {"id": "t0"}, [
            ("book", {"id": "b0"}, [
                ("title", ["Concurrency Control Theory"]),
                ("history", [("lend", {"person": "p1"}, [])]),
            ]),
            ("book", {"id": "b1"}, [
                ("title", ["The Benchmark Handbook"]),
                ("history", [("lend", {"person": "p2"}, [])]),
            ]),
        ]),
    ],
)


def updater(db, sim, book_id, log):
    """Read a book subtree, pause, then delete its first lend entry."""
    txn = db.begin(f"updater-{book_id}")
    book = db.document.element_by_id(book_id)
    try:
        yield from db.nodes.read_subtree(txn, book)
        log.append(f"{txn.name}: read the subtree at t={sim.now:.0f} ms")
        yield Delay(50.0)
        history = [
            splid for splid in db.document.store.children(book)
            if db.document.name_of(splid) == "history"
        ][0]
        lend = next(db.document.store.children(history))
        yield from db.nodes.delete_subtree(txn, lend)
        db.commit(txn)
        log.append(f"{txn.name}: COMMITTED at t={sim.now:.0f} ms")
    except DeadlockAbort as exc:
        db.abort(txn)
        cycle = " -> ".join(str(t) for t in exc.cycle)
        log.append(f"{txn.name}: DEADLOCK VICTIM (cycle: {cycle})")


def run(lock_depth, book_ids):
    db = Database(protocol="taDOM2", lock_depth=lock_depth, root_element="bib")
    db.load(LIBRARY)
    sim = Simulator()
    db.set_clock(lambda: sim.now)
    log = []
    for book_id in book_ids:
        sim.spawn(updater(db, sim, book_id, log))
    sim.run()
    detector = db.locks.detector
    log.append(
        f"deadlocks detected: {detector.count()} "
        f"({detector.counts_by_kind()})"
    )
    return log


def main() -> None:
    print("=== lock depth 0 (document locks): same-document collision ===")
    for line in run(lock_depth=0, book_ids=("b0", "b1")):
        print(" ", line)

    print("\n=== lock depth 0: even the SAME book, conversions collide ===")
    for line in run(lock_depth=0, book_ids=("b0", "b0")):
        print(" ", line)

    print("\n=== lock depth 7: diverse subtrees, no conflict at all ===")
    for line in run(lock_depth=7, book_ids=("b0", "b1")):
        print(" ", line)


if __name__ == "__main__":
    main()
