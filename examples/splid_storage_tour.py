#!/usr/bin/env python3
"""Tour of the storage substrate: SPLIDs, B*-trees, and the taDOM model.

Demonstrates the Section 3 machinery that makes fine-grained XML locking
cheap:

* SPLID labels answer ancestor/order/level questions without touching the
  stored document (the basis of intention locking);
* insertions between siblings never relabel existing nodes (the overflow
  mechanism);
* the whole document lives in one B*-tree in document order, where prefix
  compression shrinks stored SPLIDs to a few bytes;
* the buffer manager exposes the hit/miss behaviour the cost model uses.

Run:  python examples/splid_storage_tour.py
"""

from repro.splid import Splid, SplidAllocator, encode, average_stored_bytes
from repro.tamix import generate_bib


def splid_basics() -> None:
    print("=== SPLID labels (Section 3.2) ===")
    book = Splid.parse("1.5.3.3")
    print(f"node {book}: level {book.level}")
    print(f"  ancestors (no document access!): "
          f"{[str(a) for a in book.ancestors()]}")

    alloc = SplidAllocator(dist=2)
    d1, d2 = Splid.parse("1.3.3"), Splid.parse("1.3.5")
    d3 = alloc.between(Splid.parse("1.3"), d1, d2)
    print(f"insert between {d1} and {d2} -> {d3} (paper's overflow example)")
    print(f"  document order: {d1} < {d3} < {d2} = "
          f"{d1 < d3 < d2}; level unchanged = {d3.level == d1.level}")

    print(f"byte key of {book}: {encode(book).hex()} "
          f"({len(encode(book))} bytes, order-preserving)")


def storage_statistics() -> None:
    print("\n=== document store statistics (scaled bib document) ===")
    info = generate_bib(scale=0.05)
    doc = info.document
    stats = doc.statistics()
    for key, value in sorted(stats.items()):
        print(f"  {key:<22} {value:,.2f}")

    keys = [encode(splid) for splid, _rec in doc.walk()]
    print(f"  raw SPLID bytes/node     {sum(map(len, keys)) / len(keys):.2f}")
    print(f"  front-coded bytes/node   {average_stored_bytes(keys):.2f} "
          f"(paper reports 2-3 bytes)")

    io = doc.buffer.stats
    print(f"  buffer: {io.logical_reads:,} logical / "
          f"{io.physical_reads:,} physical reads "
          f"(hit ratio {io.hit_ratio:.3f})")


def navigation_from_order() -> None:
    print("\n=== DOM navigation computed from key order alone ===")
    info = generate_bib(scale=0.02)
    doc = info.document
    book = doc.element_by_id("b3")
    store = doc.store
    print(f"book b3 is {book}")
    print(f"  first child   : {store.first_child(book)} "
          f"(<{doc.name_of(store.first_child(book))}>)")
    print(f"  last child    : {store.last_child(book)} "
          f"(<{doc.name_of(store.last_child(book))}>)")
    print(f"  next sibling  : {store.next_sibling(book)}")
    print(f"  prev sibling  : {store.previous_sibling(book)}")
    print(f"  attributes    : {doc.attributes_of(book)}")
    print(f"  subtree size  : {store.subtree_size(book)} nodes")


if __name__ == "__main__":
    splid_basics()
    storage_statistics()
    navigation_from_order()
