#!/usr/bin/env python3
"""Quickstart: store an XML document, run locked transactions, roll back.

Walks through the public API end to end:

1. create a database with a chosen lock protocol and lock depth,
2. load an XML document (taDOM storage model, SPLID labels),
3. run read and update transactions through the lock-guarded node manager,
4. abort a transaction and watch the undo log restore the document,
5. inspect lock-manager and storage statistics.

Run:  python examples/quickstart.py
"""

from repro import Database
from repro.dom import parse_spec, serialize_subtree

LIBRARY_XML = """
<bib>
  <topics>
    <topic id="databases">
      <book id="tp-book" year="1993">
        <title>Transaction Processing: Concepts and Techniques</title>
        <author>Gray &amp; Reuter</author>
        <history>
          <lend person="p1" return="2006-07-01"/>
        </history>
      </book>
    </topic>
  </topics>
</bib>
"""


def main() -> None:
    # 1. One database = one document + one lock protocol.  All 11 paper
    #    protocols are available by name; taDOM3+ is the contest winner.
    db = Database(protocol="taDOM3+", lock_depth=4, root_element="bib")
    spec = parse_spec(LIBRARY_XML)
    for child_spec in spec[2]:
        db.load(child_spec)
    print(f"loaded document with {len(db.document)} taDOM nodes")

    # 2. A reader: direct jump via the ID index, then a subtree read.
    reader = db.begin("reader")
    book, _ = db.run(db.nodes.get_element_by_id(reader, "tp-book"))
    entries, _ = db.run(db.nodes.read_subtree(reader, book))
    print(f"reader saw {len(entries)} nodes in the book subtree")
    print(f"reader lock requests: {reader.stats.lock_requests} "
          f"(covered by subtree locks: {reader.stats.covered_skips})")
    db.commit(reader)

    # 3. A writer: lend the book (insert a lend element under history).
    writer = db.begin("writer")
    history = db.document.elements_by_name("history")[0]
    lend, _ = db.run(db.nodes.insert_tree(
        writer, history, ("lend", {"person": "p2", "return": "2006-09-15"}, [])
    ))
    print(f"writer inserted lend element {lend}")
    db.commit(writer)

    # 4. Rollback: a rename that is aborted leaves no trace.
    doomed = db.begin("doomed")
    topic = db.document.element_by_id("databases")
    db.run(db.nodes.rename_element(doomed, topic, "subject"))
    print(f"inside txn: topic is now <{db.document.name_of(topic)}>")
    db.abort(doomed)
    print(f"after abort: topic is back to <{db.document.name_of(topic)}>")

    # 5. The stored document serializes back to XML.
    print("\nfinal book subtree:")
    print(serialize_subtree(db.document, book, indent=2))

    print("database statistics:")
    for key, value in sorted(db.statistics().items()):
        print(f"  {key:<22} {value}")


if __name__ == "__main__":
    main()
