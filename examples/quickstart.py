#!/usr/bin/env python3
"""Quickstart: store an XML document, run locked transactions, roll back.

Walks through the session-oriented public API end to end:

1. create a database with a chosen lock protocol and lock depth,
2. load an XML document (taDOM storage model, SPLID labels),
3. run read and update sessions through the lock-guarded node manager
   (``with db.session(...)`` commits on clean exit),
4. watch an aborted session's undo log restore the document,
5. inspect per-session, lock-manager, and storage statistics.

Run:  python examples/quickstart.py
"""

from repro import Database
from repro.dom import parse_spec, serialize_subtree

LIBRARY_XML = """
<bib>
  <topics>
    <topic id="databases">
      <book id="tp-book" year="1993">
        <title>Transaction Processing: Concepts and Techniques</title>
        <author>Gray &amp; Reuter</author>
        <history>
          <lend person="p1" return="2006-07-01"/>
        </history>
      </book>
    </topic>
  </topics>
</bib>
"""


def main() -> None:
    # 1. One database = one document + one lock protocol.  All 11 paper
    #    protocols are available by name; taDOM3+ is the contest winner.
    db = Database(protocol="taDOM3+", lock_depth=4, root_element="bib")
    spec = parse_spec(LIBRARY_XML)
    for child_spec in spec[2]:
        db.load(child_spec)
    print(f"loaded document with {len(db.document)} taDOM nodes")

    # 2. A reader session: direct jump via the ID index, then a subtree
    #    read.  Leaving the ``with`` block commits automatically.
    with db.session("reader") as session:
        book = session.run(session.nodes.get_element_by_id("tp-book"))
        entries = session.run(session.nodes.read_subtree(book))
        print(f"reader saw {len(entries)} nodes in the book subtree")
        stats = session.metrics
        print(f"reader lock requests: {stats['lock_requests']} "
              f"(covered by subtree locks: {stats['covered_skips']})")

    # 3. A writer session: lend the book (insert under history).
    with db.session("writer") as session:
        history = db.document.elements_by_name("history")[0]
        lend = session.run(session.nodes.insert_tree(
            history, ("lend", {"person": "p2", "return": "2006-09-15"}, [])
        ))
        print(f"writer inserted lend element {lend}")

    # 4. Rollback: an exception aborts the session and the undo log
    #    restores the document -- the rename leaves no trace.
    topic = db.document.element_by_id("databases")
    try:
        with db.session("doomed") as session:
            session.run(session.nodes.rename_element(topic, "subject"))
            print(f"inside txn: topic is now <{db.document.name_of(topic)}>")
            raise RuntimeError("changed my mind")
    except RuntimeError:
        pass
    print(f"after abort: topic is back to <{db.document.name_of(topic)}>")

    # 5. The stored document serializes back to XML.
    print("\nfinal book subtree:")
    print(serialize_subtree(db.document, book, indent=2))

    print("database statistics:")
    for key, value in sorted(db.statistics().items()):
        print(f"  {key:<22} {value}")


if __name__ == "__main__":
    main()
