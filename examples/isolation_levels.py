#!/usr/bin/env python3
"""Isolation levels in action: what each level does and what it costs.

Reproduces footnote 5 of the paper in executable form:

* ``none``         -- no locks at all (anomalies possible),
* ``uncommitted``  -- long write locks, no read locks (dirty reads),
* ``committed``    -- short read locks, long write locks,
* ``repeatable``   -- long read and write locks (the contest's level).

Two scenes per level:

* *dirty read*: a writer changes a book title, holds it for a while, and
  finally **aborts** -- does the reader ever see the doomed value?
* *repeatable read*: a writer changes the title and **commits** between
  two reads of the same transaction -- do the two reads agree?

Run:  python examples/isolation_levels.py
"""

from repro import Database
from repro.sched import Delay, Simulator

LIBRARY = (
    "topics",
    [("topic", {"id": "t0"}, [
        ("book", {"id": "b0"}, [("title", ["Original Title"])]),
    ])],
)


def observe_committing_writer(isolation: str):
    """Scene 2: the writer commits between the reader's two reads."""
    db = Database(protocol="taDOM3+", lock_depth=7, root_element="bib",
                  isolation=isolation)
    db.load(LIBRARY)
    sim = Simulator()
    db.set_clock(lambda: sim.now)
    title_text = db.document.store.first_child(
        db.document.elements_by_name("title")[0]
    )
    observations = []

    def reader():
        txn = db.begin("reader", isolation)
        first = yield from db.nodes.read_content(txn, title_text)
        observations.append(("first read", first))
        yield Delay(100.0)
        second = yield from db.nodes.read_content(txn, title_text)
        observations.append(("second read", second))
        db.commit(txn)

    def writer():
        txn = db.begin("writer", isolation)
        yield Delay(20.0)
        yield from db.nodes.update_content(txn, title_text, "Second Edition")
        db.commit(txn)

    sim.spawn(reader())
    sim.spawn(writer())
    sim.run()
    return observations


def observe(isolation: str):
    db = Database(protocol="taDOM3+", lock_depth=7, root_element="bib",
                  isolation=isolation)
    db.load(LIBRARY)
    sim = Simulator()
    db.set_clock(lambda: sim.now)
    title_text = db.document.store.first_child(
        db.document.elements_by_name("title")[0]
    )
    observations = []

    def reader():
        txn = db.begin("reader", isolation)
        first = yield from db.nodes.read_content(txn, title_text)
        observations.append(("first read", first))
        yield Delay(100.0)  # writer acts in this window
        second = yield from db.nodes.read_content(txn, title_text)
        observations.append(("second read", second))
        db.commit(txn)

    def writer():
        txn = db.begin("writer", isolation)
        yield Delay(20.0)
        yield from db.nodes.update_content(txn, title_text, "DIRTY VALUE")
        yield Delay(200.0)  # hold the dirty value, then undo it
        db.abort(txn)

    sim.spawn(reader())
    sim.spawn(writer())
    sim.run()
    waits = db.locks.table.waits
    return observations, waits


def main() -> None:
    for isolation in ("none", "uncommitted", "committed", "repeatable"):
        observations, waits = observe(isolation)
        print(f"--- isolation level: {isolation} (lock waits: {waits}) ---")
        print("  scene 1: writer holds a dirty value, then aborts")
        for label, value in observations:
            print(f"    {label:<12} -> {value!r}")
        reads = [value for _label, value in observations]
        if "DIRTY VALUE" in reads:
            print("    => dirty read: saw an uncommitted value")
        else:
            print("    => protected against dirty reads")

        print("  scene 2: writer commits between the two reads")
        observations = observe_committing_writer(isolation)
        for label, value in observations:
            print(f"    {label:<12} -> {value!r}")
        reads = [value for _label, value in observations]
        if len(set(reads)) > 1:
            print("    => non-repeatable read: value changed inside the txn")
        else:
            print("    => repeatable: both reads agree")
        print()


if __name__ == "__main__":
    main()
