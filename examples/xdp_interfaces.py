#!/usr/bin/env python3
"""All three XDP interfaces, concurrently, under one lock protocol.

Section 1 of the paper: "stream-oriented, navigational and declarative
language models are used to process XML documents ... XDBMSs should be
able to run concurrent transactions supporting all these interfaces
simultaneously and, at the same time, guarantee ACID properties for all
of them."

This example runs, against one shared library document and one lock
protocol (taDOM3+):

* a **navigational** transaction (DOM-style: jump + child navigation),
* a **declarative** transaction (an XPath query mapped to navigation),
* a **streaming** transaction (SAX events over a fragment),
* and a **writer** that renames a topic and lends a book in between.

Everything interleaves in the discrete-event simulator; the lock manager
keeps all four isolated.

Run:  python examples/xdp_interfaces.py
"""

from repro import Database
from repro.dom.streaming import StreamReader
from repro.query import QueryProcessor
from repro.sched import Delay, Simulator
from repro.tamix import generate_bib


def main() -> None:
    info = generate_bib(scale=0.02, seed=1)
    db = Database(protocol="taDOM3+", lock_depth=4, document=info.document)
    sim = Simulator()
    db.set_clock(lambda: sim.now)
    log = []

    def navigational():
        txn = db.begin("dom-navigator")
        book = yield from db.nodes.get_element_by_id(txn, "b7")
        children = yield from db.nodes.get_child_nodes(txn, book)
        names = [db.document.name_of(c) for c in children]
        yield Delay(30.0)
        db.commit(txn)
        log.append(f"[DOM]    t={sim.now:5.1f}  children of b7: {names}")

    def declarative():
        txn = db.begin("xpath-query")
        processor = QueryProcessor(db.nodes)
        titles = yield from processor.evaluate(
            txn, "id('t0')/book[@year]/title/text()"
        )
        yield Delay(30.0)
        db.commit(txn)
        log.append(f"[XPath]  t={sim.now:5.1f}  {len(titles)} titles in t0, "
                   f"first: {titles[0]!r}")

    def streaming():
        txn = db.begin("sax-stream")
        reader = StreamReader(db.nodes)
        events = []
        book = db.document.element_by_id("b3")
        yield from reader.events(txn, book, handler=events.append)
        yield Delay(30.0)
        db.commit(txn)
        log.append(f"[SAX]    t={sim.now:5.1f}  {len(events)} events from b3")

    def writer():
        txn = db.begin("writer")
        yield Delay(5.0)
        topic = db.document.element_by_id("t0")
        yield from db.nodes.rename_element(txn, topic, "subject")
        history = db.document.elements_by_name("history")[5]
        yield from db.nodes.insert_tree(
            txn, history, ("lend", {"person": "p1", "return": "2006-12-24"}, [])
        )
        db.commit(txn)
        log.append(f"[write]  t={sim.now:5.1f}  renamed t0, lent a book")

    sim.spawn(navigational())
    sim.spawn(declarative())
    sim.spawn(streaming())
    sim.spawn(writer())
    sim.run()

    for line in log:
        print(line)
    stats = db.locks.lock_statistics()
    print(f"\nlock manager: {stats['requests']} requests, "
          f"{stats['waits']} waits, {stats['conversions']} conversions, "
          f"{stats['deadlocks']} deadlocks")
    print(f"transactions: {db.transactions.committed} committed, "
          f"{db.transactions.aborted} aborted")


if __name__ == "__main__":
    main()
