"""The soundness matrix: every protocol isolates every write operation.

For all 11 protocols and every write operation W (content update, rename,
insert, subtree delete), a concurrent reader that observes the affected
region must not see W's effect before W commits: the reader either waits
for the commit or (by then) reads the post-commit state.  Readers use the
full node-manager paths (jump + navigation), so protocols that protect
via parent levels, edges, paths, or ID locks are all exercised through
their own mechanisms.

This is the executable form of the paper's premise that all protocols
"are designed to achieve isolation level repeatable read".
"""

import pytest

from repro import ALL_PROTOCOLS, Database
from repro.errors import TransactionAborted
from repro.sched import Delay, Simulator

LIBRARY = (
    "topics",
    [("topic", {"id": "t0"}, [
        ("book", {"id": "b0"}, [
            ("title", ["Original"]),
            ("history", [
                ("lend", {"id": "l0", "person": "p1"}, []),
            ]),
        ]),
    ])],
)


def make_db(protocol):
    db = Database(protocol=protocol, lock_depth=7, root_element="bib",
                  wait_timeout_ms=None)
    db.load(LIBRARY)
    return db


def run_write_then_read(protocol, write_program, read_program):
    """Writer starts first, holds its locks 100 ms, commits; the reader
    starts mid-way.  Returns (reader_observation, reader_end_time)."""
    db = make_db(protocol)
    sim = Simulator()
    db.set_clock(lambda: sim.now)
    outcome = {}

    def writer():
        txn = db.begin("writer")
        yield from write_program(db, txn)
        yield Delay(100.0)
        db.commit(txn)

    def reader():
        txn = db.begin("reader")
        yield Delay(10.0)
        try:
            outcome["observed"] = yield from read_program(db, txn)
        except TransactionAborted:
            db.abort(txn)
            outcome["observed"] = "aborted"
            outcome["ended"] = sim.now
            return
        db.commit(txn)
        outcome["ended"] = sim.now

    sim.spawn(writer())
    sim.spawn(reader())
    sim.run()
    return outcome["observed"], outcome["ended"]


# -- write programs -------------------------------------------------------------

def write_content(db, txn):
    title = db.document.elements_by_name("title")[0]
    text = db.document.store.first_child(title)
    yield from db.nodes.update_content(txn, text, "Changed")


def write_rename(db, txn):
    topic = db.document.element_by_id("t0")
    yield from db.nodes.rename_element(txn, topic, "subject")


def write_insert(db, txn):
    history = db.document.elements_by_name("history")[0]
    yield from db.nodes.insert_tree(txn, history, ("lend", {"person": "p2"}, []))


def write_delete(db, txn):
    book = db.document.element_by_id("b0")
    yield from db.nodes.delete_subtree(txn, book)


# -- read programs ---------------------------------------------------------------

def read_title_text(db, txn):
    book = yield from db.nodes.get_element_by_id(txn, "b0")
    if book is None:
        return "gone"
    title = yield from db.nodes.get_first_child(txn, book)
    if title is None:
        return "gone"
    entries = yield from db.nodes.read_subtree(txn, title)
    for _splid, record in entries:
        if record.text_content is not None:
            return record.text_content
    return "no-text"


def read_topic_name(db, txn):
    topic = yield from db.nodes.get_element_by_id(txn, "t0")
    if topic is None:
        return "gone"
    entries = yield from db.nodes.read_subtree(txn, topic)
    return db.document.vocabulary.name_of(entries[0][1].name_surrogate)


def read_lend_count(db, txn):
    book = yield from db.nodes.get_element_by_id(txn, "b0")
    if book is None:
        return "gone"
    history = yield from db.nodes.get_last_child(txn, book)
    lends = yield from db.nodes.get_child_nodes(txn, history)
    return len(lends)


def read_books_of_topic(db, txn):
    """Navigational observation of the delete (jumps to an id *inside*
    an uncommitted delete are a separate, documented case below)."""
    topic = yield from db.nodes.get_element_by_id(txn, "t0")
    if topic is None:
        return "gone"
    books = yield from db.nodes.get_child_nodes(txn, topic)
    return len(books)


#: (write program, read program, pre-commit view, post-commit view)
SCENARIOS = {
    "content": (write_content, read_title_text, "Original", "Changed"),
    "rename": (write_rename, read_topic_name, "topic", "subject"),
    "insert": (write_insert, read_lend_count, 1, 2),
    "delete": (write_delete, read_books_of_topic, 1, 0),
}


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_reader_never_sees_uncommitted_write(protocol, scenario):
    write_program, read_program, before, after = SCENARIOS[scenario]
    observed, ended = run_write_then_read(protocol, write_program, read_program)
    # The reader either waited for the commit (>= 100 ms) and saw the new
    # state, or it is a deadlock victim -- but it NEVER saw the dirty
    # in-flight state ('before' would mean the write was visible-then-
    # undone or bypassed; note the writer commits, so 'before' is wrong
    # in every interleaving).
    assert observed in (after, "aborted"), (
        f"{protocol}/{scenario}: reader observed {observed!r}"
    )
    if observed == after:
        assert ended >= 100.0, (
            f"{protocol}/{scenario}: reader finished at {ended} ms without "
            "waiting for the writer's locks"
        )


def jump_into_doomed_subtree(db, txn):
    """Direct jump to an id inside a subtree being deleted."""
    lend = yield from db.nodes.get_element_by_id(txn, "l0")
    return "present" if lend is not None else "gone"


@pytest.mark.parametrize("protocol", ["Node2PL", "NO2PL", "OO2PL"])
def test_star2pl_idx_scan_blocks_jumps_into_deleted_subtree(protocol):
    """The *-2PL mechanism the paper describes: IDX locks from the
    pre-delete scan block concurrent jumps by ID value -- even though the
    index entry is already gone."""
    observed, ended = run_write_then_read(
        protocol, write_delete, jump_into_doomed_subtree
    )
    assert observed == "gone"
    assert ended >= 100.0           # blocked behind IDX until commit


@pytest.mark.parametrize("protocol,isolation,blocks", [
    ("taDOM3+", "repeatable", False),
    ("taDOM3+", "serializable", True),
])
def test_index_jump_anomaly_and_its_serializable_fix(protocol, isolation, blocks):
    """Intention-lock protocols do not lock ID index entries under
    repeatable read: a jump towards an id inside an uncommitted delete
    observes its absence early (the footnote-1 gap).  Isolation level
    serializable closes it with key-range locks."""
    db = Database(protocol=protocol, lock_depth=7, root_element="bib",
                  wait_timeout_ms=None, isolation=isolation)
    db.load(LIBRARY)
    sim = Simulator()
    db.set_clock(lambda: sim.now)
    outcome = {}

    def writer():
        txn = db.begin("writer", isolation)
        yield from write_delete(db, txn)
        yield Delay(100.0)
        db.commit(txn)

    def reader():
        txn = db.begin("reader", isolation)
        yield Delay(10.0)
        outcome["observed"] = yield from jump_into_doomed_subtree(db, txn)
        db.commit(txn)
        outcome["ended"] = sim.now

    sim.spawn(writer())
    sim.spawn(reader())
    sim.run()
    assert outcome["observed"] == "gone"
    if blocks:
        assert outcome["ended"] >= 100.0
    else:
        assert outcome["ended"] < 100.0    # the documented anomaly
