"""Lock-table entry lifecycle: slab reuse and leak regression.

The grant path backs table entries with a bounded free list
(``_POOL_CAPACITY``): releasing the last holder of a resource returns
the entry object to the pool, and later grants pop it back instead of
allocating.  A table that has seen traffic must drain back to its empty
baseline -- entries leaking across transactions would grow the steady
state without bound.
"""

from repro.core import MetaOp, MetaRequest, get_protocol
from repro.locking import IsolationLevel, LockManager
from repro.locking.lock_table import _POOL_CAPACITY
from repro.sched.simulator import run_sync
from repro.splid import Splid
from repro.txn import Transaction


def S(text):
    return Splid.parse(text)


def acquire(manager, txn, request):
    report, _elapsed = run_sync(manager.acquire(txn, request))
    return report


class TestFreeListReuse:
    def test_release_returns_entries_to_the_pool(self):
        manager = LockManager(get_protocol("taDOM3+"), lock_depth=7)
        txn = Transaction("t", IsolationLevel.REPEATABLE)
        acquire(manager, txn, MetaRequest(MetaOp.READ_NODE, S("1.3.3.5")))
        held = manager.table.entry_count()
        assert held > 0
        manager.release_transaction(txn)
        assert manager.table.entry_count() == 0
        assert manager.table.free_entries() == held

    def test_fresh_grants_reuse_pooled_entries(self):
        manager = LockManager(get_protocol("taDOM3+"), lock_depth=7)
        t1 = Transaction("t1", IsolationLevel.REPEATABLE)
        acquire(manager, t1, MetaRequest(MetaOp.READ_NODE, S("1.3.3.5")))
        recycled = manager.table.entry_count()
        manager.release_transaction(t1)
        assert manager.table.free_entries() == recycled
        # The next transaction's fresh grants must come from the pool,
        # not the allocator.
        t2 = Transaction("t2", IsolationLevel.REPEATABLE)
        acquire(manager, t2, MetaRequest(MetaOp.READ_NODE, S("1.5.3.7")))
        assert manager.table.free_entries() == max(
            0, recycled - manager.table.entry_count()
        )
        manager.release_transaction(t2)

    def test_pool_is_bounded(self):
        manager = LockManager(get_protocol("taDOM3+"), lock_depth=8)
        txn = Transaction("big", IsolationLevel.REPEATABLE)
        # More distinct resources than the pool keeps.
        for top in range(3, 103, 2):
            for leaf in range(3, 203, 2):
                acquire(manager, txn, MetaRequest(
                    MetaOp.READ_NODE, Splid((1, top, leaf))))
        assert manager.table.entry_count() > _POOL_CAPACITY
        manager.release_transaction(txn)
        assert manager.table.entry_count() == 0
        assert manager.table.free_entries() <= _POOL_CAPACITY


class TestLeakRegression:
    def test_table_drains_to_baseline_after_seeded_tamix_run(self):
        """After a full seeded TaMix run every transaction has committed
        or aborted, so the table must be back at its empty baseline: no
        entries, no held-resource indexes, no waiters."""
        from repro.tamix.cluster import CLUSTER1_MIX, make_database
        from repro.tamix.coordinator import TaMixConfig, TaMixCoordinator

        database, info = make_database("taDOM3+", 4, "repeatable", scale=0.05)
        config = TaMixConfig(
            protocol="taDOM3+", lock_depth=4, isolation="repeatable",
            run_duration_ms=4000.0, mix=dict(CLUSTER1_MIX), seed=42,
        )
        result = TaMixCoordinator(database, info, config).run()
        assert result.committed > 0
        # Transactions still in flight at the run horizon hold locks by
        # design; roll them back so every holder has released.
        for txn in database.transactions.active_transactions():
            database.abort(txn, reason="horizon")
        table = database.locks.table
        assert table.entry_count() == 0
        assert table.lock_count() == 0
        assert table.free_entries() > 0
