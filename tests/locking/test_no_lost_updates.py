"""End-to-end serializability smoke test: no lost updates, any protocol.

All 11 protocols implement strict two-phase locking (locks held to
commit), so concurrent read-modify-write transactions must serialize: a
shared counter incremented by N committed transactions must end at exactly
N, whatever interleavings, waits, deadlock aborts, or timeouts occurred.
"""

import pytest

from repro import ALL_PROTOCOLS, Database
from repro.errors import TransactionAborted
from repro.sched import Delay, Simulator

COUNTER_DOC = (
    "topics",
    [("topic", {"id": "t0"}, [
        ("book", {"id": "b0"}, [("counter", ["0"])]),
        ("book", {"id": "b1"}, [("counter", ["0"])]),
    ])],
)


def run_incrementers(protocol, *, writers=8, rounds=3, isolation="repeatable"):
    db = Database(protocol=protocol, lock_depth=7, root_element="bib",
                  isolation=isolation, wait_timeout_ms=50_000.0)
    db.load(COUNTER_DOC)
    sim = Simulator()
    db.set_clock(lambda: sim.now)
    counters = {
        book_id: db.document.store.first_child(
            next(
                child for child in db.document.store.children(
                    db.document.element_by_id(book_id))
                if db.document.name_of(child) == "counter"
            )
        )
        for book_id in ("b0", "b1")
    }
    committed_increments = {"b0": 0, "b1": 0}

    def incrementer(slot):
        book_id = "b0" if slot % 2 == 0 else "b1"
        text = counters[book_id]  # the text node below <counter>
        for _round in range(rounds):
            txn = db.begin(f"inc-{slot}", isolation)
            try:
                value = yield from db.nodes.read_content(txn, text)
                yield Delay(5.0)  # widen the lost-update window
                yield from db.nodes.update_content(
                    txn, text, str(int(value) + 1)
                )
            except TransactionAborted:
                db.abort(txn)
                yield Delay(3.0 + slot)
                continue
            db.commit(txn)
            committed_increments[book_id] += 1
            yield Delay(1.0)

    for slot in range(writers):
        sim.spawn(incrementer(slot))
    sim.run()
    finals = {
        book_id: int(db.document.string_value(counters[book_id]))
        for book_id in counters
    }
    return finals, committed_increments, db


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_no_lost_updates_under_repeatable(protocol):
    finals, committed, db = run_incrementers(protocol)
    assert finals == committed
    # Something actually committed (the test is not vacuous).
    assert sum(committed.values()) > 0


def test_committed_isolation_can_lose_updates():
    """Short read locks permit the classic lost update; this documents it."""
    finals, committed, _db = run_incrementers(
        "taDOM3+", writers=8, rounds=3, isolation="committed"
    )
    # Never MORE increments than commits; typically fewer (lost updates).
    assert finals["b0"] <= committed["b0"]
    assert finals["b1"] <= committed["b1"]
    assert finals != committed  # deterministic loss with this seed/schedule


def test_uncommitted_isolation_loses_updates_too():
    finals, committed, _db = run_incrementers(
        "taDOM3+", writers=8, rounds=3, isolation="uncommitted"
    )
    assert finals["b0"] <= committed["b0"]
    assert finals != committed
