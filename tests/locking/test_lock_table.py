"""Unit tests for the lock table state machine."""

import pytest

from repro.core import NODE_SPACE
from repro.core.tables import TADOM2_TABLE, URIX_TABLE
from repro.errors import LockError
from repro.locking import LockTable
from repro.splid import Splid


def S(text):
    return Splid.parse(text)


@pytest.fixture
def table():
    return LockTable({NODE_SPACE: TADOM2_TABLE})


NODE = S("1.3.3")


class TestBasicGrants:
    def test_first_request_granted(self, table):
        result = table.request("t1", NODE_SPACE, NODE, "NR")
        assert result.granted
        assert result.mode == "NR"
        assert table.mode_held("t1", (NODE_SPACE, NODE)) == "NR"

    def test_compatible_modes_share(self, table):
        assert table.request("t1", NODE_SPACE, NODE, "NR").granted
        assert table.request("t2", NODE_SPACE, NODE, "NR").granted
        assert table.request("t3", NODE_SPACE, NODE, "IX").granted

    def test_incompatible_request_waits(self, table):
        table.request("t1", NODE_SPACE, NODE, "SX")
        result = table.request("t2", NODE_SPACE, NODE, "NR")
        assert not result.granted
        assert result.ticket is not None
        assert not result.ticket.granted

    def test_fifo_behind_waiter(self, table):
        table.request("t1", NODE_SPACE, NODE, "SR")
        table.request("t2", NODE_SPACE, NODE, "SX")      # waits
        result = table.request("t3", NODE_SPACE, NODE, "SR")
        assert not result.granted                        # no overtaking

    def test_unknown_mode_rejected(self, table):
        with pytest.raises(LockError):
            table.request("t1", NODE_SPACE, NODE, "ZZ")

    def test_unknown_space_rejected(self, table):
        with pytest.raises(LockError):
            table.request("t1", "bogus", NODE, "NR")

    def test_request_while_waiting_rejected(self, table):
        table.request("t1", NODE_SPACE, NODE, "SX")
        table.request("t2", NODE_SPACE, NODE, "SX")
        with pytest.raises(LockError):
            table.request("t2", NODE_SPACE, S("1.5"), "NR")


class TestConversions:
    def test_noop_conversion(self, table):
        table.request("t1", NODE_SPACE, NODE, "SR")
        result = table.request("t1", NODE_SPACE, NODE, "NR")
        assert result.granted and result.noop
        assert result.mode == "SR"

    def test_upgrade(self, table):
        table.request("t1", NODE_SPACE, NODE, "NR")
        result = table.request("t1", NODE_SPACE, NODE, "SX")
        assert result.granted
        assert result.mode == "SX"
        assert table.mode_held("t1", (NODE_SPACE, NODE)) == "SX"

    def test_fanout_conversion_reports_child_mode(self, table):
        table.request("t1", NODE_SPACE, NODE, "LR")
        result = table.request("t1", NODE_SPACE, NODE, "CX")
        assert result.granted
        assert result.mode == "CX"
        assert result.child_mode == "NR"

    def test_child_action_on_stable_mode(self, table):
        table.request("t1", NODE_SPACE, NODE, "CX")
        result = table.request("t1", NODE_SPACE, NODE, "LR")
        assert result.granted
        assert result.mode == "CX"
        assert result.child_mode == "NR"
        assert not result.noop

    def test_blocked_conversion_waits_at_front(self, table):
        table.request("t1", NODE_SPACE, NODE, "SR")
        table.request("t2", NODE_SPACE, NODE, "SR")
        blocked_new = table.request("t3", NODE_SPACE, NODE, "SX")
        assert not blocked_new.granted
        conversion = table.request("t1", NODE_SPACE, NODE, "SX")  # SR->SX
        assert not conversion.granted
        # t2 releases: the conversion (queued in front) is granted first.
        table.release_all("t2")
        assert conversion.ticket.granted
        assert table.mode_held("t1", (NODE_SPACE, NODE)) == "SX"
        assert not blocked_new.ticket.granted

    def test_conversion_deadlock_shape(self, table):
        """Two SR holders both upgrading: neither can be granted."""
        table.request("t1", NODE_SPACE, NODE, "SR")
        table.request("t2", NODE_SPACE, NODE, "SR")
        c1 = table.request("t1", NODE_SPACE, NODE, "SX")
        c2 = table.request("t2", NODE_SPACE, NODE, "SX")
        assert not c1.granted and not c2.granted
        assert "t2" in table.blockers_of(c1.ticket)
        assert "t1" in table.blockers_of(c2.ticket)


class TestReleases:
    def test_release_grants_waiter(self, table):
        table.request("t1", NODE_SPACE, NODE, "SX")
        waiting = table.request("t2", NODE_SPACE, NODE, "NR")
        fired = []
        waiting.ticket.on_grant = lambda t: fired.append(t)
        table.release_all("t1")
        assert waiting.ticket.granted
        assert fired == [waiting.ticket]
        assert table.mode_held("t2", (NODE_SPACE, NODE)) == "NR"

    def test_release_grants_compatible_prefix(self, table):
        table.request("t1", NODE_SPACE, NODE, "SX")
        r2 = table.request("t2", NODE_SPACE, NODE, "SR")
        r3 = table.request("t3", NODE_SPACE, NODE, "SR")
        r4 = table.request("t4", NODE_SPACE, NODE, "SX")
        table.release_all("t1")
        assert r2.ticket.granted and r3.ticket.granted
        assert not r4.ticket.granted
        table.release_all("t2")
        assert not r4.ticket.granted
        table.release_all("t3")
        assert r4.ticket.granted

    def test_release_single_resource(self, table):
        other = S("1.5")
        table.request("t1", NODE_SPACE, NODE, "SX")
        table.request("t1", NODE_SPACE, other, "SX")
        table.release("t1", (NODE_SPACE, NODE))
        assert table.mode_held("t1", (NODE_SPACE, NODE)) is None
        assert table.mode_held("t1", (NODE_SPACE, other)) == "SX"

    def test_cancel_wait_unblocks_queue(self, table):
        table.request("t1", NODE_SPACE, NODE, "SR")
        blocked = table.request("t2", NODE_SPACE, NODE, "SX")
        r3 = table.request("t3", NODE_SPACE, NODE, "SR")
        assert not r3.granted
        table.cancel_wait("t2")
        assert blocked.ticket.cancelled
        assert r3.ticket.granted

    def test_release_all_is_idempotent(self, table):
        table.request("t1", NODE_SPACE, NODE, "NR")
        table.release_all("t1")
        table.release_all("t1")
        assert table.lock_count() == 0

    def test_entry_garbage_collected(self, table):
        table.request("t1", NODE_SPACE, NODE, "NR")
        table.release_all("t1")
        assert table.holders((NODE_SPACE, NODE)) == {}


class TestWaitGraph:
    def test_blockers_include_queue_predecessors(self, table):
        table.request("t1", NODE_SPACE, NODE, "SR")
        table.request("t2", NODE_SPACE, NODE, "SX")
        r3 = table.request("t3", NODE_SPACE, NODE, "SX")
        blockers = table.blockers_of(r3.ticket)
        assert blockers == {"t1", "t2"}

    def test_wait_edges_snapshot(self, table):
        table.request("t1", NODE_SPACE, NODE, "SX")
        table.request("t2", NODE_SPACE, NODE, "SR")
        edges = table.wait_edges()
        assert edges == {"t2": {"t1"}}

    def test_statistics(self, table):
        table.request("t1", NODE_SPACE, NODE, "NR")
        table.request("t1", NODE_SPACE, NODE, "SX")
        table.request("t2", NODE_SPACE, NODE, "NR")
        assert table.requests == 3
        assert table.conversions == 1
        assert table.waits == 1


class TestAsymmetricUrix:
    def test_u_admits_readers_but_not_vice_versa(self):
        table = LockTable({NODE_SPACE: URIX_TABLE})
        table.request("t1", NODE_SPACE, NODE, "U")
        assert table.request("t2", NODE_SPACE, NODE, "R").granted
        table.release_all("t1")
        # Now R held; a U request must wait (Figure 2 row R, column U).
        assert not table.request("t3", NODE_SPACE, NODE, "U").granted
