"""Unit tests for the lock manager (meta-synchronization layer)."""

import pytest

from repro.core import (
    LockStep,
    MetaOp,
    MetaRequest,
    NODE_SPACE,
    get_protocol,
)
from repro.errors import DeadlockAbort
from repro.locking import IsolationLevel, LockManager
from repro.locking.lock_manager import WRITE_PRIVILEGES
from repro.sched.simulator import run_sync
from repro.splid import Splid
from repro.txn import Transaction


def S(text):
    return Splid.parse(text)


def acquire(manager, txn, request):
    """Drive the acquire generator synchronously (must not block)."""
    report, _elapsed = run_sync(manager.acquire(txn, request))
    return report


@pytest.fixture
def manager():
    return LockManager(get_protocol("taDOM3+"), lock_depth=7)


@pytest.fixture
def txn():
    return Transaction("test", IsolationLevel.REPEATABLE)


BOOK = S("1.5.3.3")


class TestIsolationFiltering:
    def test_none_acquires_nothing(self, manager):
        txn = Transaction("t", IsolationLevel.NONE)
        report = acquire(manager, txn,
                         MetaRequest(MetaOp.DELETE_SUBTREE, BOOK))
        assert report.lock_requests == 0
        assert manager.table.lock_count() == 0

    def test_uncommitted_skips_reads_only(self, manager):
        txn = Transaction("t", IsolationLevel.UNCOMMITTED)
        read = acquire(manager, txn, MetaRequest(MetaOp.READ_NODE, BOOK))
        assert read.lock_requests == 0
        write = acquire(manager, txn, MetaRequest(MetaOp.DELETE_SUBTREE, BOOK))
        assert write.lock_requests > 0

    def test_committed_releases_reads_at_end_of_operation(self, manager):
        txn = Transaction("t", IsolationLevel.COMMITTED)
        acquire(manager, txn, MetaRequest(MetaOp.READ_NODE, BOOK))
        assert manager.table.lock_count() > 0
        released = manager.end_operation(txn)
        assert released > 0
        assert manager.table.lock_count() == 0

    def test_committed_keeps_write_locks(self, manager):
        txn = Transaction("t", IsolationLevel.COMMITTED)
        acquire(manager, txn, MetaRequest(MetaOp.DELETE_SUBTREE, BOOK))
        before = manager.table.lock_count()
        manager.end_operation(txn)
        assert manager.table.lock_count() == before

    def test_committed_keeps_converted_read_locks(self, manager):
        """A read lock converted to a write mode survives end-of-op."""
        txn = Transaction("t", IsolationLevel.COMMITTED)
        acquire(manager, txn, MetaRequest(MetaOp.READ_SUBTREE, BOOK))
        acquire(manager, txn, MetaRequest(MetaOp.DELETE_SUBTREE, BOOK))
        manager.end_operation(txn)
        held = manager.table.mode_held(txn, (NODE_SPACE, BOOK))
        assert held == "SX"

    def test_urix_update_then_write_upgrades_via_u(self):
        manager = LockManager(get_protocol("URIX"), lock_depth=7)
        txn = Transaction("t")
        acquire(manager, txn, MetaRequest(MetaOp.UPDATE_NODE, BOOK))
        assert manager.table.mode_held(txn, (NODE_SPACE, BOOK)) == "U"
        acquire(manager, txn, MetaRequest(MetaOp.DELETE_SUBTREE, BOOK))
        assert manager.table.mode_held(txn, (NODE_SPACE, BOOK)) == "X"

    def test_repeatable_keeps_everything(self, manager, txn):
        acquire(manager, txn, MetaRequest(MetaOp.READ_NODE, BOOK))
        before = manager.table.lock_count()
        assert manager.end_operation(txn) == 0
        assert manager.table.lock_count() == before

    def test_write_privileges_constant(self):
        assert "node_read" not in WRITE_PRIVILEGES
        assert "subtree_write" in WRITE_PRIVILEGES
        assert "subtree_update" in WRITE_PRIVILEGES


class TestCoverageCache:
    def test_subtree_read_covers_descendants(self, manager, txn):
        acquire(manager, txn, MetaRequest(MetaOp.READ_SUBTREE, BOOK))
        inner = acquire(
            manager, txn, MetaRequest(MetaOp.READ_NODE, S("1.5.3.3.5.3"))
        )
        assert inner.lock_requests == 0
        assert inner.skipped_covered > 0

    def test_subtree_write_covers_writes_below(self, manager, txn):
        acquire(manager, txn, MetaRequest(MetaOp.DELETE_SUBTREE, BOOK))
        inner = acquire(
            manager, txn,
            MetaRequest(MetaOp.WRITE_CONTENT, S("1.5.3.3.5.3")),
        )
        assert inner.lock_requests == 0

    def test_subtree_read_does_not_cover_writes(self, manager, txn):
        acquire(manager, txn, MetaRequest(MetaOp.READ_SUBTREE, BOOK))
        write = acquire(
            manager, txn, MetaRequest(MetaOp.WRITE_CONTENT, S("1.5.3.3.5.3"))
        )
        assert write.lock_requests > 0

    def test_held_mode_fast_path(self, manager, txn):
        first = acquire(manager, txn, MetaRequest(MetaOp.READ_NODE, BOOK))
        second = acquire(manager, txn, MetaRequest(MetaOp.READ_NODE, BOOK))
        assert first.lock_requests > 0
        assert second.lock_requests == 0
        assert second.skipped_covered == first.lock_requests

    def test_sibling_not_covered(self, manager, txn):
        acquire(manager, txn, MetaRequest(MetaOp.READ_SUBTREE, BOOK))
        sibling = acquire(
            manager, txn, MetaRequest(MetaOp.READ_NODE, S("1.5.3.5"))
        )
        assert sibling.lock_requests > 0

    def test_release_clears_state(self, manager, txn):
        acquire(manager, txn, MetaRequest(MetaOp.READ_SUBTREE, BOOK))
        manager.release_transaction(txn)
        again = acquire(
            manager, txn, MetaRequest(MetaOp.READ_NODE, S("1.5.3.3.5"))
        )
        assert again.lock_requests > 0


class TestFanouts:
    def test_lr_to_cx_reports_fanout(self):
        manager = LockManager(get_protocol("taDOM2"), lock_depth=7)
        txn = Transaction("t")
        acquire(manager, txn, MetaRequest(MetaOp.READ_LEVEL, BOOK))
        # Delete a child: CX on BOOK converts the held LR -> CX[NR].
        report = acquire(
            manager, txn, MetaRequest(MetaOp.DELETE_SUBTREE, S("1.5.3.3.5"))
        )
        assert (BOOK, "NR") in report.fanouts

    def test_tadom3p_has_no_fanout(self):
        manager = LockManager(get_protocol("taDOM3+"), lock_depth=7)
        txn = Transaction("t")
        acquire(manager, txn, MetaRequest(MetaOp.READ_LEVEL, BOOK))
        report = acquire(
            manager, txn, MetaRequest(MetaOp.DELETE_SUBTREE, S("1.5.3.3.5"))
        )
        assert report.fanouts == []

    def test_acquire_children(self):
        manager = LockManager(get_protocol("taDOM2"), lock_depth=7)
        txn = Transaction("t")
        children = [S("1.5.3.3.3"), S("1.5.3.3.5")]
        report, _ = run_sync(manager.acquire_children(txn, children, "NR"))
        assert report.lock_requests == 2
        for child in children:
            assert manager.table.mode_held(txn, (NODE_SPACE, child)) == "NR"

    def test_acquire_steps(self, manager, txn):
        steps = [LockStep(NODE_SPACE, S("1.3"), "NR")]
        report, _ = run_sync(manager.acquire_steps(txn, steps))
        assert report.lock_requests == 1


class TestDeadlockIntegration:
    def test_requester_aborted_on_cycle(self):
        manager = LockManager(get_protocol("taDOM3+"), lock_depth=7)
        t1, t2 = Transaction("t1"), Transaction("t2")
        acquire(manager, t1, MetaRequest(MetaOp.READ_SUBTREE, BOOK))
        acquire(manager, t2, MetaRequest(MetaOp.READ_SUBTREE, BOOK))

        # t1 upgrades: blocks on t2's SR -> just waits (no cycle yet).
        gen = manager.acquire(t1, MetaRequest(MetaOp.DELETE_SUBTREE, BOOK))
        ticket = next(gen)
        assert not ticket.granted

        # t2 upgrades too: now a cycle exists; t2 is the victim.
        with pytest.raises(DeadlockAbort) as info:
            run_sync(manager.acquire(
                t2, MetaRequest(MetaOp.DELETE_SUBTREE, BOOK)
            ))
        assert t1 in info.value.cycle
        manager.release_transaction(t2)
        # t1's conversion gets granted by the release.
        assert ticket.granted

    def test_statistics_exposed(self, manager, txn):
        acquire(manager, txn, MetaRequest(MetaOp.READ_NODE, BOOK))
        stats = manager.lock_statistics()
        assert stats["requests"] > 0
        assert stats["deadlocks"] == 0
        assert stats["timeouts"] == 0
