"""Unit tests for the deadlock detector (wait-for graph analysis)."""

import pytest

from repro.core import NODE_SPACE
from repro.core.tables import TADOM2_TABLE
from repro.locking import DeadlockDetector, LockTable
from repro.splid import Splid


def S(text):
    return Splid.parse(text)


@pytest.fixture
def table():
    return LockTable({NODE_SPACE: TADOM2_TABLE})


@pytest.fixture
def detector(table):
    return DeadlockDetector(table)


NODE_A = S("1.3")
NODE_B = S("1.5")


class TestCycleDetection:
    def test_no_cycle_on_simple_wait(self, table, detector):
        table.request("t1", NODE_SPACE, NODE_A, "SX")
        blocked = table.request("t2", NODE_SPACE, NODE_A, "NR")
        assert detector.check(blocked.ticket) is None
        assert detector.count() == 0

    def test_two_party_cycle(self, table, detector):
        table.request("t1", NODE_SPACE, NODE_A, "SX")
        table.request("t2", NODE_SPACE, NODE_B, "SX")
        w1 = table.request("t1", NODE_SPACE, NODE_B, "NR")
        assert detector.check(w1.ticket) is None
        w2 = table.request("t2", NODE_SPACE, NODE_A, "NR")
        event = detector.check(w2.ticket, active_transactions=2)
        assert event is not None
        assert event.victim == "t2"
        assert set(event.cycle) == {"t1", "t2"}
        assert event.active_transactions == 2

    def test_three_party_cycle(self, table, detector):
        node_c = S("1.7")
        table.request("t1", NODE_SPACE, NODE_A, "SX")
        table.request("t2", NODE_SPACE, NODE_B, "SX")
        table.request("t3", NODE_SPACE, node_c, "SX")
        assert detector.check(
            table.request("t1", NODE_SPACE, NODE_B, "NR").ticket) is None
        assert detector.check(
            table.request("t2", NODE_SPACE, node_c, "NR").ticket) is None
        event = detector.check(
            table.request("t3", NODE_SPACE, NODE_A, "NR").ticket)
        assert event is not None
        assert set(event.cycle) == {"t1", "t2", "t3"}

    def test_waiting_on_non_waiting_holder_is_no_cycle(self, table, detector):
        table.request("t1", NODE_SPACE, NODE_A, "SR")
        table.request("t2", NODE_SPACE, NODE_A, "SR")
        conversion = table.request("t1", NODE_SPACE, NODE_A, "SX")
        assert detector.check(conversion.ticket) is None


class TestClassification:
    def test_conversion_deadlock(self, table, detector):
        table.request("t1", NODE_SPACE, NODE_A, "SR")
        table.request("t2", NODE_SPACE, NODE_A, "SR")
        c1 = table.request("t1", NODE_SPACE, NODE_A, "SX")
        assert detector.check(c1.ticket) is None
        c2 = table.request("t2", NODE_SPACE, NODE_A, "SX")
        event = detector.check(c2.ticket)
        assert event is not None
        assert event.conversion
        assert event.kind == "conversion"

    def test_distinct_subtree_deadlock(self, table, detector):
        table.request("t1", NODE_SPACE, NODE_A, "SX")
        table.request("t2", NODE_SPACE, NODE_B, "SX")
        detector.check(table.request("t1", NODE_SPACE, NODE_B, "NR").ticket)
        event = detector.check(
            table.request("t2", NODE_SPACE, NODE_A, "NR").ticket)
        assert event is not None
        assert not event.conversion
        assert event.kind == "distinct-subtree"

    def test_counts_by_kind(self, table, detector):
        self.test_distinct_subtree_deadlock(table, detector)
        counts = detector.counts_by_kind()
        assert counts == {"conversion": 0, "distinct-subtree": 1}
        assert detector.count() == 1
