"""Unit tests for the deadlock detector (wait-for graph analysis)."""

import pytest

from repro.core import NODE_SPACE
from repro.core.tables import TADOM2_TABLE
from repro.locking import DeadlockDetector, LockTable
from repro.splid import Splid


def S(text):
    return Splid.parse(text)


@pytest.fixture
def table():
    return LockTable({NODE_SPACE: TADOM2_TABLE})


@pytest.fixture
def detector(table):
    return DeadlockDetector(table)


NODE_A = S("1.3")
NODE_B = S("1.5")


class TestCycleDetection:
    def test_no_cycle_on_simple_wait(self, table, detector):
        table.request("t1", NODE_SPACE, NODE_A, "SX")
        blocked = table.request("t2", NODE_SPACE, NODE_A, "NR")
        assert detector.check(blocked.ticket) is None
        assert detector.count() == 0

    def test_two_party_cycle(self, table, detector):
        table.request("t1", NODE_SPACE, NODE_A, "SX")
        table.request("t2", NODE_SPACE, NODE_B, "SX")
        w1 = table.request("t1", NODE_SPACE, NODE_B, "NR")
        assert detector.check(w1.ticket) is None
        w2 = table.request("t2", NODE_SPACE, NODE_A, "NR")
        event = detector.check(w2.ticket, active_transactions=2)
        assert event is not None
        assert event.victim == "t2"
        assert set(event.cycle) == {"t1", "t2"}
        assert event.active_transactions == 2

    def test_three_party_cycle(self, table, detector):
        node_c = S("1.7")
        table.request("t1", NODE_SPACE, NODE_A, "SX")
        table.request("t2", NODE_SPACE, NODE_B, "SX")
        table.request("t3", NODE_SPACE, node_c, "SX")
        assert detector.check(
            table.request("t1", NODE_SPACE, NODE_B, "NR").ticket) is None
        assert detector.check(
            table.request("t2", NODE_SPACE, node_c, "NR").ticket) is None
        event = detector.check(
            table.request("t3", NODE_SPACE, NODE_A, "NR").ticket)
        assert event is not None
        assert set(event.cycle) == {"t1", "t2", "t3"}

    def test_waiting_on_non_waiting_holder_is_no_cycle(self, table, detector):
        table.request("t1", NODE_SPACE, NODE_A, "SR")
        table.request("t2", NODE_SPACE, NODE_A, "SR")
        conversion = table.request("t1", NODE_SPACE, NODE_A, "SX")
        assert detector.check(conversion.ticket) is None


class TestClassification:
    def test_conversion_deadlock(self, table, detector):
        table.request("t1", NODE_SPACE, NODE_A, "SR")
        table.request("t2", NODE_SPACE, NODE_A, "SR")
        c1 = table.request("t1", NODE_SPACE, NODE_A, "SX")
        assert detector.check(c1.ticket) is None
        c2 = table.request("t2", NODE_SPACE, NODE_A, "SX")
        event = detector.check(c2.ticket)
        assert event is not None
        assert event.conversion
        assert event.kind == "conversion"

    def test_distinct_subtree_deadlock(self, table, detector):
        table.request("t1", NODE_SPACE, NODE_A, "SX")
        table.request("t2", NODE_SPACE, NODE_B, "SX")
        detector.check(table.request("t1", NODE_SPACE, NODE_B, "NR").ticket)
        event = detector.check(
            table.request("t2", NODE_SPACE, NODE_A, "NR").ticket)
        assert event is not None
        assert not event.conversion
        assert event.kind == "distinct-subtree"

    def test_counts_by_kind(self, table, detector):
        self.test_distinct_subtree_deadlock(table, detector)
        counts = detector.counts_by_kind()
        assert counts == {"conversion": 0, "distinct-subtree": 1}
        assert detector.count() == 1


class TestDeterminism:
    """The detector must not depend on object addresses or insertion order."""

    def _build(self, table, t1, t2, zz, mm):
        """A 2-cycle (t1 <-> t2) plus extra waiters zz/mm on NODE_A."""
        table.request(t1, NODE_SPACE, NODE_A, "SX")
        table.request(t2, NODE_SPACE, NODE_B, "SX")
        table.request(zz, NODE_SPACE, NODE_A, "NR")
        table.request(mm, NODE_SPACE, NODE_A, "NR")
        table.request(t1, NODE_SPACE, NODE_B, "NR")
        return table.request(t2, NODE_SPACE, NODE_A, "NR")

    def test_wait_edges_sorted_by_label(self, table, detector):
        blocked = self._build(table, "t1", "t2", "zz", "mm")
        event = detector.check(blocked.ticket)
        assert event is not None
        assert event.wait_edges == (
            ("mm", "t1"), ("mm", "zz"),
            ("t1", "t2"),
            ("t2", "mm"), ("t2", "t1"), ("t2", "zz"),
            ("zz", "t1"),
        )

    def test_wait_edges_independent_of_object_creation_order(self):
        """Sorting by object address made the snapshot depend on which
        transaction happened to be allocated first; sorting by label must
        not (same requests, opposite allocation order, identical event)."""

        class Txn:
            def __init__(self, label):
                self.label = label

        events = []
        for creation_order in (("t1", "t2", "zz", "mm"),
                               ("mm", "zz", "t2", "t1")):
            txns = {label: Txn(label) for label in creation_order}
            table = LockTable({NODE_SPACE: TADOM2_TABLE})
            detector = DeadlockDetector(table)
            blocked = self._build(
                table, txns["t1"], txns["t2"], txns["zz"], txns["mm"]
            )
            events.append(detector.check(blocked.ticket))

        def labelled(event):
            return (
                event.victim.label,
                tuple(t.label for t in event.cycle),
                tuple((w.label, b.label) for w, b in event.wait_edges),
                event.waiting_modes,
            )

        assert events[0] is not None and events[1] is not None
        assert labelled(events[0]) == labelled(events[1])

    def test_deep_wait_chain_has_no_recursion_error(self, table, detector):
        """A wait chain far past the default recursion limit must still
        resolve to a deadlock victim (iterative DFS regression)."""
        count = 2000
        nodes = [S(f"1.{2 * i + 3}") for i in range(count)]
        table.request("t0000", NODE_SPACE, nodes[0], "SX")
        for i in range(1, count):
            txn = f"t{i:04d}"
            table.request(txn, NODE_SPACE, nodes[i], "SX")
            blocked = table.request(txn, NODE_SPACE, nodes[i - 1], "NR")
            assert detector.check(blocked.ticket) is None
        closing = table.request("t0000", NODE_SPACE, nodes[-1], "NR")
        event = detector.check(closing.ticket, active_transactions=count)
        assert event is not None
        assert event.victim == "t0000"
        assert len(event.cycle) == count
