"""Lock escalation: node -> subtree above a child-count threshold.

Escalation is opportunistic and strictly non-blocking: when a
transaction has collected ``escalation_threshold`` grants below one
parent, the manager tries to take the least-covering subtree lock on
that parent through the normal conversion machinery (``grant_fast``,
never waiting).  On success every later request below the parent is a
coverage-cache hit; on contention the transaction simply keeps its
node-level locks.  It is disabled by default (``threshold=None``) so
seeded runs stay byte-identical (see test_batched_determinism).

Correctness is held to the history oracle: a traced concurrent run with
escalation enabled must still be conformant, two-phase, and
conflict-serializable, and a deterministic single-user workload must
return identical results with escalation on and off.
"""

import pytest

from repro.core import MetaOp, MetaRequest, get_protocol
from repro.locking import IsolationLevel, LockManager
from repro.obs import LOCK_ESCALATE, Observability
from repro.sched.simulator import run_sync
from repro.splid import Splid
from repro.tamix import TaMixConfig, TaMixCoordinator, generate_bib, make_database
from repro.txn import Transaction
from repro.verify import RunHistory, verify_history


def S(text):
    return Splid.parse(text)


def acquire(manager, txn, request):
    report, _elapsed = run_sync(manager.acquire(txn, request))
    return report


def read_children(manager, txn, parent: str, count: int):
    for i in range(count):
        acquire(manager, txn, MetaRequest(
            MetaOp.READ_NODE, S(f"{parent}.{2 * i + 3}")))


class TestEscalationTrigger:
    def test_threshold_takes_subtree_lock(self):
        manager = LockManager(get_protocol("taDOM3+"), lock_depth=8,
                              escalation_threshold=4)
        txn = Transaction("t", IsolationLevel.REPEATABLE)
        read_children(manager, txn, "1.3", 4)
        assert manager.escalations >= 1
        # The parent now holds the least-covering subtree read mode.
        mode = manager.table.mode_held(txn, ("node", S("1.3")))
        table = dict(manager.protocol.tables())["node"]
        assert mode == table.escalation_read_mode

    def test_below_threshold_never_escalates(self):
        manager = LockManager(get_protocol("taDOM3+"), lock_depth=8,
                              escalation_threshold=4)
        txn = Transaction("t", IsolationLevel.REPEATABLE)
        read_children(manager, txn, "1.3", 3)
        assert manager.escalations == 0

    def test_disabled_by_default(self):
        manager = LockManager(get_protocol("taDOM3+"), lock_depth=8)
        txn = Transaction("t", IsolationLevel.REPEATABLE)
        read_children(manager, txn, "1.3", 32)
        assert manager.escalations == 0

    def test_covered_children_skip_the_lock_table(self):
        manager = LockManager(get_protocol("taDOM3+"), lock_depth=8,
                              escalation_threshold=4)
        txn = Transaction("t", IsolationLevel.REPEATABLE)
        read_children(manager, txn, "1.3", 4)
        assert manager.escalations >= 1
        report = acquire(manager, txn, MetaRequest(
            MetaOp.READ_NODE, S("1.3.101")))
        assert report.lock_requests == 0
        assert report.skipped_covered > 0

    def test_write_children_escalate_to_write_subtree(self):
        manager = LockManager(get_protocol("taDOM3+"), lock_depth=8,
                              escalation_threshold=4)
        txn = Transaction("t", IsolationLevel.REPEATABLE)
        for i in range(4):
            acquire(manager, txn, MetaRequest(
                MetaOp.WRITE_CONTENT, S(f"1.3.{2 * i + 3}")))
        assert manager.escalations >= 1
        mode = manager.table.mode_held(txn, ("node", S("1.3")))
        table = dict(manager.protocol.tables())["node"]
        assert mode == table.escalation_write_mode

    def test_contended_parent_stays_node_level(self):
        """Escalation is non-blocking: an incompatible holder on the
        parent's subtree just keeps the reader at node level."""
        manager = LockManager(get_protocol("taDOM3+"), lock_depth=8,
                              escalation_threshold=2)
        writer = Transaction("w", IsolationLevel.REPEATABLE)
        acquire(manager, writer, MetaRequest(
            MetaOp.WRITE_CONTENT, S("1.3.99")))
        reader = Transaction("r", IsolationLevel.REPEATABLE)
        read_children(manager, reader, "1.3", 8)
        # The writer's CX on 1.3 is incompatible with the reader's SR
        # escalation attempt; all reads still succeeded individually.
        assert manager.escalations == 0

    def test_protocol_without_subtree_modes_never_escalates(self):
        # Node2PL has no node-space subtree modes at all (it locks in
        # the struct/content/id spaces); nothing can escalate.
        protocol = get_protocol("Node2PL")
        for table in protocol.tables().values():
            assert table.escalation_read_mode is None
            assert table.escalation_write_mode is None
        manager = LockManager(protocol, lock_depth=8,
                              escalation_threshold=2)
        txn = Transaction("t", IsolationLevel.REPEATABLE)
        read_children(manager, txn, "1.3", 8)
        assert manager.escalations == 0


class TestEscalationEquivalence:
    def _single_user_reads(self, threshold):
        """A deterministic single-user workload; returns the observable
        outcome (per-acquire lock/skip counts)."""
        manager = LockManager(get_protocol("taDOM3+"), lock_depth=8,
                              escalation_threshold=threshold)
        txn = Transaction("t", IsolationLevel.REPEATABLE)
        outcomes = []
        for top in (3, 5, 7):
            for leaf in range(3, 23, 2):
                report = acquire(manager, txn, MetaRequest(
                    MetaOp.READ_NODE, S(f"1.{top}.{leaf}")))
                outcomes.append(report.blocked)
        manager.release_transaction(txn)
        return outcomes

    def test_single_user_results_identical_on_off(self):
        """Escalation may change *which* locks exist, never whether a
        single-user acquisition succeeds."""
        assert self._single_user_reads(None) == self._single_user_reads(4)

    def _traced_run(self, threshold):
        info = generate_bib(scale=0.01, seed=99)
        obs = Observability.enabled(capacity=None, access_events=True)
        db, info = make_database(
            "taDOM3+", 4, "repeatable", info=info, observability=obs,
            escalation_threshold=threshold,
        )
        config = TaMixConfig(protocol="taDOM3+", lock_depth=4,
                             isolation="repeatable",
                             run_duration_ms=20_000.0, seed=7)
        result = TaMixCoordinator(db, info, config).run()
        events = list(db.obs.tracer.events())
        return db, result, events

    def test_escalated_run_is_oracle_clean(self):
        db, result, events = self._traced_run(threshold=3)
        assert result.committed > 0
        report = verify_history(RunHistory.from_events(events))
        assert report.ok, [str(v) for v in report.violations[:5]]
        assert report.checks == {
            "conformance": "ok",
            "serializability": "ok",
            "two-phase": "ok",
        }

    def test_escalated_run_traces_escalations(self):
        db, _result, events = self._traced_run(threshold=2)
        if db.locks.escalations == 0:
            pytest.skip("seeded mix never crossed the threshold")
        assert any(e.kind == LOCK_ESCALATE for e in events)

    def test_committed_results_equivalent_on_off(self):
        """Same seeded mix with and without escalation: both runs are
        oracle-serializable, and (escalation being invisible to
        single-transaction outcomes) the committed transaction names of
        the uncontended run prefix match."""
        _, base, base_events = self._traced_run(threshold=None)
        _, esc, esc_events = self._traced_run(threshold=3)
        for events in (base_events, esc_events):
            report = verify_history(RunHistory.from_events(events))
            assert report.ok, [str(v) for v in report.violations[:5]]
        assert base.committed > 0 and esc.committed > 0
