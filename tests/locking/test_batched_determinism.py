"""Determinism regression: batched acquisition must not move a single bit.

``golden_pr6.json`` pins seeded-run journals, the chaos engine's fault
fingerprint, ``IoStatistics.fault_delay_ms``, and the lock-wait
histogram as they were produced *before* the grant-path rebuild (flat
bitmask tables, batched ancestor acquisition, slab-allocated entries,
static instrumentation dispatch).  The rebuild is a pure performance
change: every value here must reproduce exactly -- byte-identical
journals, bit-identical float accumulators -- as long as escalation
stays disabled (its default).
"""

import json
from pathlib import Path

import pytest

from repro.chaos import ChaosEngine, RetryPolicy
from repro.chaos.schedule import load_schedule
from repro.tamix.cluster import CLUSTER1_MIX, make_database, run_cluster1
from repro.tamix.coordinator import TaMixConfig, TaMixCoordinator

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_pr6.json").read_text(encoding="utf-8")
)

#: The seeded cells the golden file pins: (protocol, lock_depth, duration).
CELLS = [
    ("taDOM3+", 4, 4000.0, "cell:taDOM3+:d4"),
    ("taDOM2", 0, 4000.0, "cell:taDOM2:d0"),
    ("IRIX", 4, 4000.0, "cell:IRIX:d4"),
    ("Node2PL", 4, 4000.0, "cell:Node2PL:d4"),
    ("taDOM3+", 4, 20000.0, "cell:taDOM3+:d4:long"),
]


def _canon(journal) -> str:
    """Canonical JSON text, so the comparison is byte-level."""
    return json.dumps(journal, sort_keys=True, default=str)


@pytest.mark.parametrize("protocol,depth,duration,key",
                         CELLS, ids=[c[3] for c in CELLS])
def test_seeded_cell_journal_is_byte_identical(protocol, depth, duration, key):
    result = run_cluster1(protocol, lock_depth=depth, isolation="repeatable",
                          scale=0.05, run_duration_ms=duration, seed=42)
    assert _canon(result.as_journal()) == _canon(GOLDEN[key])


def test_chaos_fault_delay_and_wait_histogram_bit_identical():
    """Satellite bugfix check: fault delays and completed-wait histograms
    under the batched fast path match the pre-rebuild accumulators
    exactly (one wait per blocked path segment, not per batch)."""
    golden = GOLDEN["chaos"]
    schedule = load_schedule("storage-heavy")
    database, info = make_database("taDOM3+", 4, "repeatable", scale=0.05)
    engine = ChaosEngine(schedule, seed=7, retry=RetryPolicy())
    engine.install(database)
    config = TaMixConfig(protocol="taDOM3+", lock_depth=4,
                         isolation="repeatable", run_duration_ms=12000.0,
                         mix=dict(CLUSTER1_MIX), seed=7, retry=RetryPolicy())
    result = TaMixCoordinator(database, info, config).run()
    engine.uninstall()

    delay = round(database.document.buffer.stats.fault_delay_ms, 6)
    assert delay == golden["fault_delay_ms"]
    assert database.locks.wait_histogram.as_dict() == golden["wait_histogram"]
    assert result.committed == golden["committed"]
    assert result.aborted == golden["aborted"]
    assert result.restarts == golden["restarts"]
    assert engine.fingerprint() == golden["engine_fingerprint"]
    assert engine.ops["page.read"] == golden["page_read_ops"]
    assert engine.ops["page.write"] == golden["page_write_ops"]
