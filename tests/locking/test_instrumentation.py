"""Tests for lock-manager instrumentation and deadlock data collection."""

import pytest

from repro import Database
from repro.errors import DeadlockAbort
from repro.sched import Delay, Simulator

LIBRARY = (
    "topics",
    [("topic", {"id": "t0"}, [
        ("book", {"id": "b0"}, [("title", ["TP"]), ("history", [])]),
    ])],
)


def make_db(**kwargs):
    db = Database(protocol="taDOM3+", lock_depth=7, root_element="bib",
                  **kwargs)
    db.load(LIBRARY)
    return db


class TestModeProfile:
    def test_profile_reflects_protocol_vocabulary(self):
        db = make_db()
        txn = db.begin()
        book, _ = db.run(db.nodes.get_element_by_id(txn, "b0"))
        db.run(db.nodes.read_subtree(txn, book))
        db.commit(txn)
        profile = db.locks.mode_profile("node")
        assert profile.get("IR", 0) > 0
        assert profile.get("NR", 0) >= 1
        assert profile.get("SR", 0) >= 1

    def test_profile_namespaced_without_space(self):
        db = make_db()
        txn = db.begin()
        db.run(db.nodes.get_element_by_id(txn, "b0"))
        db.commit(txn)
        profile = db.locks.mode_profile()
        assert all(":" in key for key in profile)

    def test_writer_profile_contains_exclusive_modes(self):
        db = make_db()
        txn = db.begin()
        book, _ = db.run(db.nodes.get_element_by_id(txn, "b0"))
        db.run(db.nodes.delete_subtree(txn, book))
        db.commit(txn)
        profile = db.locks.mode_profile("node")
        assert profile.get("SX", 0) >= 1
        assert profile.get("CX", 0) >= 1


class TestWaitStatistics:
    def test_no_waits_single_user(self):
        db = make_db()
        txn = db.begin()
        db.run(db.nodes.get_element_by_id(txn, "b0"))
        db.commit(txn)
        stats = db.locks.wait_statistics()
        assert stats["count"] == 0
        assert stats["mean_ms"] == 0.0

    def test_wait_durations_recorded(self):
        db = make_db()
        sim = Simulator()
        db.set_clock(lambda: sim.now)
        book = db.document.element_by_id("b0")

        def holder():
            txn = db.begin("h")
            yield from db.nodes.delete_subtree(txn, book)
            yield Delay(42.0)
            db.commit(txn)

        def waiter():
            txn = db.begin("w")
            yield Delay(2.0)
            yield from db.nodes.read_subtree(txn, book)
            db.commit(txn)

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run()
        stats = db.locks.wait_statistics()
        assert stats["count"] == 1
        assert stats["max_ms"] == pytest.approx(40.0, abs=1.0)
        assert stats["total_ms"] == stats["max_ms"]


class TestDeadlockDataCollection:
    def test_event_carries_analysis_data(self):
        db = make_db()
        sim = Simulator()
        db.set_clock(lambda: sim.now)
        book = db.document.element_by_id("b0")

        def upgrader(pause):
            txn = db.begin("u")
            yield from db.nodes.read_subtree(txn, book)
            yield Delay(pause)
            try:
                yield from db.nodes.delete_subtree(txn, book)
            except DeadlockAbort:
                db.abort(txn)
                return
            db.commit(txn)

        sim.spawn(upgrader(5.0))
        sim.spawn(upgrader(6.0))
        sim.run()
        assert db.locks.detector.count() == 1
        event = db.locks.detector.events[0]
        assert event.kind == "conversion"
        assert event.active_transactions == 2
        assert event.locks_held > 0
        assert event.wait_edges  # a snapshot of the wait-for graph
        assert event.waiting_modes  # the contested conversion modes
        description = event.describe()
        assert "conversion deadlock" in description
        assert "victim=" in description
