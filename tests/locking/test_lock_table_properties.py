"""Property-based stress tests for the lock table.

A random schedule of requests/conversions/releases across many
transactions must maintain the fundamental lock-manager invariants at
every step:

* **compatibility**: the granted group of every resource is pairwise
  compatible (in both matrix directions for asymmetric tables);
* **no lost wakeups**: whenever a queue head is compatible with all
  holders, it is granted (drains eagerly);
* **single lock per transaction and resource** (the paper's rule);
* **ticket discipline**: every blocked request is eventually granted or
  cancelled once its blockers release.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NODE_SPACE
from repro.core.tables import TADOM3P_TABLE, URIX_TABLE
from repro.locking import LockTable
from repro.splid import Splid

RESOURCES = [Splid.parse(t) for t in ("1", "1.3", "1.5", "1.3.3")]
TXNS = [f"t{i}" for i in range(6)]


def check_invariants(table: LockTable, mode_table) -> None:
    for resource in RESOURCES:
        holders = table.holders((NODE_SPACE, resource))
        items = list(holders.items())
        for i, (txn_a, mode_a) in enumerate(items):
            for txn_b, mode_b in items[i + 1:]:
                assert txn_a != txn_b
                assert mode_table.compatible(mode_a, mode_b) or (
                    mode_table.compatible(mode_b, mode_a)
                ), f"incompatible grants {mode_a}/{mode_b} on {resource}"


@settings(max_examples=120, deadline=None)
@given(
    data=st.data(),
    table_choice=st.sampled_from([TADOM3P_TABLE, URIX_TABLE]),
    steps=st.integers(min_value=5, max_value=60),
)
def test_random_schedules_keep_invariants(data, table_choice, steps):
    table = LockTable({NODE_SPACE: table_choice})
    waiting = set()
    for _step in range(steps):
        action = data.draw(st.sampled_from(["request", "release", "cancel"]))
        txn = data.draw(st.sampled_from(TXNS))
        if action == "request" and txn not in waiting:
            resource = data.draw(st.sampled_from(RESOURCES))
            mode = data.draw(st.sampled_from(table_choice.modes))
            result = table.request(txn, NODE_SPACE, resource, mode)
            if not result.granted:
                waiting.add(txn)
                result.ticket.on_grant = (
                    lambda t, txn=txn: waiting.discard(txn)
                )
        elif action == "release":
            table.release_all(txn)
            waiting.discard(txn)
        elif action == "cancel" and txn in waiting:
            table.cancel_wait(txn)
            waiting.discard(txn)
        check_invariants(table, table_choice)
    # Drain: releasing everything must grant or leave-cancelled everyone.
    for txn in TXNS:
        if txn not in waiting:
            table.release_all(txn)
    for txn in TXNS:
        table.release_all(txn)
    assert table.lock_count() == 0
    for resource in RESOURCES:
        assert table.holders((NODE_SPACE, resource)) == {}


@settings(max_examples=60, deadline=None)
@given(
    modes=st.lists(st.sampled_from(TADOM3P_TABLE.modes), min_size=2,
                   max_size=8),
)
def test_single_transaction_accumulates_one_lock(modes):
    """One transaction requesting any mode sequence holds exactly one
    lock whose coverage dominates every requested mode (self-conversions
    never block).

    Coverage may be *lost* along the way when a conversion pushes the
    distributable level/subtree-read privileges down to the children
    (e.g. held LRNU + requested IX -> NUIX[NR]), so fan-outs are tracked
    along the actual conversion chain -- pairwise checks over the
    requested modes miss fan-outs involving intermediate combination
    modes."""
    table = LockTable({NODE_SPACE: TADOM3P_TABLE})
    resource = RESOURCES[1]
    requested = set()
    distributed_to_children = False
    for mode in modes:
        result = table.request("t", NODE_SPACE, resource, mode)
        assert result.granted, f"self-conversion to {mode} blocked"
        if result.child_mode is not None:
            distributed_to_children = True
        requested.add(mode)
    held = table.mode_held("t", (NODE_SPACE, resource))
    assert held is not None
    held_cov = set(TADOM3P_TABLE.coverage[held])
    if distributed_to_children:
        held_cov |= {"level_read", "subtree_read"}
    for mode in requested:
        assert TADOM3P_TABLE.coverage[mode] <= held_cov


def test_queue_drains_in_order_after_bulk_release():
    table = LockTable({NODE_SPACE: URIX_TABLE})
    node = RESOURCES[0]
    table.request("holder", NODE_SPACE, node, "X")
    tickets = []
    for i in range(5):
        result = table.request(f"w{i}", NODE_SPACE, node, "R")
        tickets.append(result.ticket)
    blocked_x = table.request("w9", NODE_SPACE, node, "X")
    table.release_all("holder")
    assert all(t.granted for t in tickets)      # all readers granted together
    assert not blocked_x.ticket.granted         # the writer stays behind
    for i in range(5):
        table.release_all(f"w{i}")
    assert blocked_x.ticket.granted
