"""Tests for the lock manager's per-transaction coverage cache.

The cache answers requests already covered by a held subtree/level lock
without touching the lock table (the SPLID-powered cheapness of subtree
locks, Section 3.3).  These tests pin its three tricky paths:

* hit/miss classification in ``_is_covered`` (subtree read/write anchors,
  level-read anchors, the transaction-local lock cache);
* anchor *discard* when a conversion loses coverage (taDOM2's
  LR + CX -> CX[NR]: the level read moves to the children, so the anchor
  must go);
* anchor rebuild (``_refresh_state``) after COMMITTED isolation releases
  its short read locks at end of operation.
"""

import pytest

from repro.core import MetaOp, MetaRequest, NODE_SPACE, get_protocol
from repro.locking import IsolationLevel, LockManager
from repro.sched.simulator import run_sync
from repro.splid import Splid
from repro.txn import Transaction


def S(text):
    return Splid.parse(text)


def acquire(manager, txn, request):
    report, _elapsed = run_sync(manager.acquire(txn, request))
    return report


@pytest.fixture
def manager():
    return LockManager(get_protocol("taDOM3+"), lock_depth=7)


BOOK = S("1.5.3.3")
INSIDE = S("1.5.3.3.5.3")
OUTSIDE = S("1.5.5.3")


class TestSubtreeAnchors:
    def test_subtree_read_anchor_covers_descendant_read(self, manager):
        txn = Transaction("t")
        acquire(manager, txn, MetaRequest(MetaOp.READ_SUBTREE, BOOK))
        requests_before = manager.table.requests
        report = acquire(manager, txn, MetaRequest(MetaOp.READ_NODE, INSIDE))
        assert report.lock_requests == 0
        assert report.skipped_covered > 0
        assert manager.table.requests == requests_before  # no table access

    def test_subtree_read_anchor_misses_outside_node(self, manager):
        txn = Transaction("t")
        acquire(manager, txn, MetaRequest(MetaOp.READ_SUBTREE, BOOK))
        report = acquire(manager, txn, MetaRequest(MetaOp.READ_NODE, OUTSIDE))
        assert report.lock_requests > 0

    def test_read_anchor_does_not_cover_writes(self, manager):
        txn = Transaction("t")
        acquire(manager, txn, MetaRequest(MetaOp.READ_SUBTREE, BOOK))
        report = acquire(manager, txn, MetaRequest(MetaOp.WRITE_CONTENT, INSIDE))
        assert report.lock_requests > 0

    def test_subtree_write_anchor_covers_descendant_write(self, manager):
        txn = Transaction("t")
        acquire(manager, txn, MetaRequest(MetaOp.DELETE_SUBTREE, BOOK))
        report = acquire(manager, txn, MetaRequest(MetaOp.WRITE_CONTENT, INSIDE))
        assert report.lock_requests == 0
        assert report.skipped_covered > 0

    def test_held_mode_covers_reissued_request(self, manager):
        """Transaction-local lock cache: an identical re-request is
        answered without a lock-table round trip."""
        txn = Transaction("t")
        acquire(manager, txn, MetaRequest(MetaOp.READ_NODE, INSIDE))
        requests_before = manager.table.requests
        report = acquire(manager, txn, MetaRequest(MetaOp.READ_NODE, INSIDE))
        assert report.lock_requests == 0
        assert manager.table.requests == requests_before

    def test_deep_descendant_probe_walks_ancestor_chain(self, manager):
        txn = Transaction("t")
        acquire(manager, txn, MetaRequest(MetaOp.READ_SUBTREE, S("1.5")))
        deep = S("1.5.3.3.5.4.3.7.1.3")
        report = acquire(manager, txn, MetaRequest(MetaOp.READ_NODE, deep))
        assert report.lock_requests == 0
        assert report.skipped_covered > 0


class TestLevelReadAnchors:
    def test_level_anchor_covers_child_node_read(self, manager):
        txn = Transaction("t")
        acquire(manager, txn, MetaRequest(MetaOp.READ_LEVEL, BOOK))
        report = acquire(manager, txn,
                         MetaRequest(MetaOp.READ_NODE, S("1.5.3.3.5")))
        assert report.lock_requests == 0
        assert report.skipped_covered > 0

    def test_level_anchor_does_not_cover_grandchildren(self, manager):
        txn = Transaction("t")
        acquire(manager, txn, MetaRequest(MetaOp.READ_LEVEL, BOOK))
        report = acquire(manager, txn, MetaRequest(MetaOp.READ_NODE, INSIDE))
        assert report.lock_requests > 0

    def test_level_anchor_does_not_cover_subtree_reads(self, manager):
        txn = Transaction("t")
        acquire(manager, txn, MetaRequest(MetaOp.READ_LEVEL, BOOK))
        report = acquire(manager, txn,
                         MetaRequest(MetaOp.READ_SUBTREE, S("1.5.3.3.5")))
        assert report.lock_requests > 0


class TestConversionCoverageLoss:
    def test_lr_to_cx_conversion_discards_level_anchor(self):
        """taDOM2: LR + CX converts to CX with an NR child fan-out -- the
        level read privilege leaves the node, so child reads must stop
        being answered from the cache (``_note_grant``'s discard path)."""
        manager = LockManager(get_protocol("taDOM2"), lock_depth=7)
        txn = Transaction("t")
        acquire(manager, txn, MetaRequest(MetaOp.READ_LEVEL, BOOK))
        child = S("1.5.3.3.5")
        covered = acquire(manager, txn, MetaRequest(MetaOp.READ_NODE, child))
        assert covered.lock_requests == 0          # LR anchor active

        report = acquire(manager, txn,
                         MetaRequest(MetaOp.INSERT_CHILD, S("1.5.3.3.7")))
        assert (BOOK, "NR") in report.fanouts       # CX[NR] fan-out
        assert manager.table.mode_held(txn, (NODE_SPACE, BOOK)) == "CX"

        after = acquire(manager, txn,
                        MetaRequest(MetaOp.READ_NODE, S("1.5.3.3.9")))
        assert after.lock_requests > 0              # anchor is gone

    def test_tadom3p_combination_mode_keeps_anchor(self, manager):
        """taDOM3+: the same sequence resolves to the LRCX combination
        mode, which keeps the level read -- child reads stay cached (the
        fan-out cost the paper's combination modes exist to avoid)."""
        txn = Transaction("t")
        acquire(manager, txn, MetaRequest(MetaOp.READ_LEVEL, BOOK))
        report = acquire(manager, txn,
                         MetaRequest(MetaOp.INSERT_CHILD, S("1.5.3.3.7")))
        assert report.fanouts == []
        assert manager.table.mode_held(txn, (NODE_SPACE, BOOK)) == "LRCX"
        after = acquire(manager, txn,
                        MetaRequest(MetaOp.READ_NODE, S("1.5.3.3.9")))
        assert after.lock_requests == 0


class TestRefreshAfterShortReadRelease:
    def test_committed_end_operation_drops_read_anchors(self, manager):
        txn = Transaction("t", IsolationLevel.COMMITTED)
        acquire(manager, txn, MetaRequest(MetaOp.READ_SUBTREE, BOOK))
        covered = acquire(manager, txn, MetaRequest(MetaOp.READ_NODE, INSIDE))
        assert covered.lock_requests == 0

        released = manager.end_operation(txn)
        assert released > 0

        report = acquire(manager, txn, MetaRequest(MetaOp.READ_NODE, INSIDE))
        assert report.lock_requests > 0             # anchors were rebuilt

    def test_committed_end_operation_keeps_write_anchors(self, manager):
        txn = Transaction("t", IsolationLevel.COMMITTED)
        acquire(manager, txn, MetaRequest(MetaOp.DELETE_SUBTREE, BOOK))
        acquire(manager, txn, MetaRequest(MetaOp.READ_SUBTREE, S("1.7")))
        manager.end_operation(txn)
        report = acquire(manager, txn, MetaRequest(MetaOp.WRITE_CONTENT, INSIDE))
        assert report.lock_requests == 0            # SX anchor survived

    def test_release_transaction_clears_all_anchors(self, manager):
        txn = Transaction("t")
        acquire(manager, txn, MetaRequest(MetaOp.READ_SUBTREE, BOOK))
        manager.release_transaction(txn)
        report = acquire(manager, txn, MetaRequest(MetaOp.READ_NODE, INSIDE))
        assert report.lock_requests > 0
