"""Edge-lock isolation: repeated traversals see identical navigation paths.

Section 2 of the paper: protocols "have to isolate the edges traversed to
guarantee identical navigation paths on repeated traversals".  These tests
pin that guarantee for the protocols with edge locks (taDOM*, URIX,
OO2PL) and for the parent-level protection of Node2PL.
"""

import pytest

from repro import Database
from repro.sched import Delay, Simulator

LIBRARY = (
    "topics",
    [("topic", {"id": "t0"}, [
        ("book", {"id": "b0"}, [
            ("history", [
                ("lend", {"id": "l1", "person": "p1"}, []),
                ("lend", {"id": "l2", "person": "p2"}, []),
            ]),
        ]),
    ])],
)


def make_db(protocol):
    db = Database(protocol=protocol, lock_depth=7, root_element="bib")
    db.load(LIBRARY)
    return db


@pytest.mark.parametrize("protocol", ["taDOM3+", "URIX", "OO2PL", "Node2PL"])
def test_sibling_navigation_is_repeatable(protocol):
    """A reader's next-sibling step yields the same node before and after
    a concurrent insert attempt into that gap."""
    db = make_db(protocol)
    sim = Simulator()
    db.set_clock(lambda: sim.now)
    history = db.document.elements_by_name("history")[0]
    l1 = db.document.element_by_id("l1")
    observations = []

    def reader():
        txn = db.begin("reader")
        first = yield from db.nodes.get_next_sibling(txn, l1)
        yield Delay(100.0)
        second = yield from db.nodes.get_next_sibling(txn, l1)
        observations.append((str(first), str(second)))
        db.commit(txn)

    def inserter():
        txn = db.begin("inserter")
        yield Delay(10.0)
        # Appending after the last lend changes the edge l2 -> next, but
        # the reader's traversed edge l1 -> l2 must stay stable; inserting
        # *between* l1 and l2 must block until the reader commits.
        l2 = db.document.element_by_id("l2")
        predicted = db.document.allocator.between(history, l1, l2)
        from repro.core import EdgeRole, MetaOp, MetaRequest

        report = yield from db.nodes.locks.acquire(
            txn,
            MetaRequest(MetaOp.INSERT_CHILD, predicted, affected=(l1, l2)),
        )
        yield from db.nodes.locks.acquire(
            txn,
            MetaRequest(MetaOp.WRITE_EDGE, l1, role=EdgeRole.NEXT_SIBLING),
        )
        observations.append("insert-locks-granted")
        db.document.add_element(history, "lend", after=l1)
        db.commit(txn)

    sim.spawn(reader())
    sim.spawn(inserter())
    sim.run()
    # The reader finished both traversals before the insert got its locks.
    assert observations[0] == (str(db.document.element_by_id("l2")),) * 2 or (
        observations[0][0] == observations[0][1]
    )
    assert observations[1] == "insert-locks-granted"


@pytest.mark.parametrize("protocol", ["taDOM3+", "URIX", "OO2PL", "Node2PL"])
def test_insert_tree_blocks_behind_level_readers(protocol):
    """getChildNodes isolates the child list against appends."""
    db = make_db(protocol)
    sim = Simulator()
    db.set_clock(lambda: sim.now)
    history = db.document.elements_by_name("history")[0]
    observations = []

    def reader():
        txn = db.begin("reader")
        first = yield from db.nodes.get_child_nodes(txn, history)
        yield Delay(100.0)
        second = yield from db.nodes.get_child_nodes(txn, history)
        observations.append(("reader", len(first), len(second)))
        db.commit(txn)

    def appender():
        txn = db.begin("appender")
        yield Delay(10.0)
        yield from db.nodes.insert_tree(
            txn, history, ("lend", {"person": "p3"}, [])
        )
        db.commit(txn)
        observations.append(("appended",))

    sim.spawn(reader())
    sim.spawn(appender())
    sim.run()
    assert observations[0] == ("reader", 2, 2)     # stable child list
    assert observations[1] == ("appended",)        # insert happened after
