"""Integration tests: concurrent transactions under the simulator."""


from repro import Database, DeadlockAbort
from repro.core.protocol import Access
from repro.sched import Delay, Simulator

BOOK_SPEC = (
    "topics",
    [
        ("topic", {"id": "t1"}, [
            ("book", {"id": "b1"}, [
                ("title", ["TP: Concepts"]),
                ("history", [("lend", {"person": "p1"}, [])]),
            ]),
            ("book", {"id": "b2"}, [
                ("title", ["The Benchmark Handbook"]),
                ("history", []),
            ]),
        ]),
    ],
)


def make_db(protocol="taDOM3+", depth=7, isolation="repeatable"):
    db = Database(protocol=protocol, lock_depth=depth, isolation=isolation,
                  root_element="bib")
    db.load(BOOK_SPEC)
    return db


def run_processes(db, *procs):
    """Spawn generators in a simulator; return the final time."""
    sim = Simulator()
    db.set_clock(lambda: sim.now)
    for i, proc in enumerate(procs):
        sim.spawn(proc, name=f"p{i}")
    return sim.run()


class TestReaderWriterBlocking:
    def test_writer_waits_for_reader(self):
        db = make_db()
        book = db.document.element_by_id("b1")
        trace = []

        def reader():
            txn = db.begin("reader")
            yield from db.nodes.read_subtree(txn, book)
            trace.append(("reader-read", True))
            yield Delay(100.0)
            db.commit(txn)
            trace.append(("reader-commit", None))

        def writer():
            txn = db.begin("writer")
            yield Delay(10.0)  # start after the reader holds its SR
            yield from db.nodes.delete_subtree(txn, book, access=Access.JUMP)
            trace.append(("writer-deleted", None))
            db.commit(txn)

        run_processes(db, reader(), writer())
        assert [t[0] for t in trace] == [
            "reader-read", "reader-commit", "writer-deleted",
        ]
        assert not db.document.exists(book)

    def test_readers_share(self):
        db = make_db()
        book = db.document.element_by_id("b1")
        done = []

        def reader(name):
            txn = db.begin(name)
            yield from db.nodes.read_subtree(txn, book)
            done.append((name, True))
            yield Delay(50.0)
            db.commit(txn)

        sim = Simulator()
        db.set_clock(lambda: sim.now)
        for i in range(3):
            sim.spawn(reader(f"r{i}"))
        sim.run()
        # All three read before any committed: truly concurrent shares.
        assert len(done) == 3

    def test_disjoint_books_do_not_conflict(self):
        db = make_db(depth=7)
        b1 = db.document.element_by_id("b1")
        b2 = db.document.element_by_id("b2")
        order = []

        def reader():
            txn = db.begin("reader")
            yield from db.nodes.read_subtree(txn, b1)
            yield Delay(200.0)
            order.append("reader-done")
            db.commit(txn)

        def writer():
            txn = db.begin("writer")
            yield Delay(10.0)
            hist = db.document.elements_by_name("history")[1]
            yield from db.nodes.insert_tree(txn, hist, ("lend", {"person": "x"}, []))
            order.append("writer-done")
            db.commit(txn)

        run_processes(db, reader(), writer())
        # Writer finished during the reader's long pause: no blocking.
        assert order == ["writer-done", "reader-done"]

    def test_depth_zero_serializes_conflicting_ops(self):
        db = make_db(depth=0)
        b1 = db.document.element_by_id("b1")
        b2 = db.document.element_by_id("b2")
        order = []

        def reader():
            txn = db.begin("reader")
            yield from db.nodes.read_subtree(txn, b1)
            yield Delay(200.0)
            order.append("reader-done")
            db.commit(txn)

        def writer():
            txn = db.begin("writer")
            yield Delay(10.0)
            hist = db.document.elements_by_name("history")[1]
            yield from db.nodes.insert_tree(txn, hist, ("lend", {"person": "x"}, []))
            order.append("writer-done")
            db.commit(txn)

        run_processes(db, reader(), writer())
        # Document locks: the disjoint writer now waits for the reader.
        assert order == ["reader-done", "writer-done"]


class TestDeadlocks:
    def test_conversion_deadlock_detected(self):
        """Two transactions read the same subtree, then both upgrade."""
        db = make_db()
        book = db.document.element_by_id("b1")
        aborted = []

        def upgrader(name, pause):
            txn = db.begin(name)
            yield from db.nodes.read_subtree(txn, book)
            yield Delay(pause)
            try:
                yield from db.nodes.delete_subtree(txn, book)
            except DeadlockAbort as exc:
                aborted.append((name, exc.cycle))
                db.abort(txn)
                return
            db.commit(txn)

        run_processes(db, upgrader("a", 10.0), upgrader("b", 12.0))
        assert len(aborted) == 1
        assert db.transactions.committed == 1
        assert db.transactions.aborted == 1
        assert db.locks.detector.count() == 1
        assert db.locks.detector.events[0].kind == "conversion"

    def test_victim_rollback_restores_document(self):
        db = make_db()
        book = db.document.element_by_id("b1")
        before = sorted(str(s) for s, _r in db.document.walk())
        hist1 = db.document.elements_by_name("history")[0]

        def txn_a():
            txn = db.begin("a")
            yield from db.nodes.read_subtree(txn, book)
            yield Delay(5.0)
            try:
                yield from db.nodes.insert_tree(txn, hist1, ("lend", {}, []))
            except DeadlockAbort:
                db.abort(txn)
                return
            db.commit(txn)

        run_processes(db, txn_a(), txn_a())
        # Whatever happened, the aborted transaction left no trace and the
        # committed one (if any) added exactly one lend element.
        after = sorted(str(s) for s, _r in db.document.walk())
        added = len(after) - len(before)
        assert added == db.transactions.committed  # one lend element per commit

    def test_wound_free_when_no_cycle(self):
        db = make_db()
        book = db.document.element_by_id("b1")

        def reader():
            txn = db.begin("r")
            yield from db.nodes.read_subtree(txn, book)
            yield Delay(20.0)
            db.commit(txn)

        def writer():
            txn = db.begin("w")
            yield Delay(5.0)
            yield from db.nodes.delete_subtree(txn, book)
            db.commit(txn)

        run_processes(db, reader(), writer())
        assert db.locks.detector.count() == 0
        assert db.transactions.aborted == 0


class TestIsolationLevels:
    def _run_reader_writer(self, isolation):
        db = make_db(isolation=isolation)
        book = db.document.element_by_id("b1")
        order = []

        def reader():
            txn = db.begin("reader", isolation)
            yield from db.nodes.read_subtree(txn, book)
            yield Delay(100.0)
            order.append("reader-done")
            db.commit(txn)

        def writer():
            txn = db.begin("writer", isolation)
            yield Delay(10.0)
            hist = db.document.elements_by_name("history")[0]
            yield from db.nodes.insert_tree(txn, hist, ("lend", {}, []))
            order.append("writer-done")
            db.commit(txn)

        run_processes(db, reader(), writer())
        return order, db

    def test_repeatable_blocks_writer(self):
        order, _db = self._run_reader_writer("repeatable")
        assert order == ["reader-done", "writer-done"]

    def test_committed_releases_read_locks_early(self):
        order, _db = self._run_reader_writer("committed")
        assert order == ["writer-done", "reader-done"]

    def test_uncommitted_takes_no_read_locks(self):
        order, db = self._run_reader_writer("uncommitted")
        assert order == ["writer-done", "reader-done"]
        assert db.locks.table.waits == 0

    def test_none_takes_no_locks_at_all(self):
        order, db = self._run_reader_writer("none")
        assert order == ["writer-done", "reader-done"]
        assert db.locks.table.requests == 0


class TestConversionFanout:
    def test_cx_nr_fanout_locks_children(self):
        """taDOM2: held LR + requested CX fans NR out to every child."""
        db = make_db(protocol="taDOM2", depth=7)
        book = db.document.element_by_id("b1")

        def txn_prog():
            txn = db.begin("t")
            yield from db.nodes.get_child_nodes(txn, book)     # LR on book
            hist = db.document.elements_by_name("history")[0]
            yield from db.nodes.delete_subtree(txn, hist)      # needs CX on book
            db.commit(txn)
            return txn

        sim = Simulator()
        db.set_clock(lambda: sim.now)
        holder = {}

        def wrapper():
            holder["txn"] = yield from txn_prog()

        sim.spawn(wrapper())
        sim.run()
        assert holder["txn"].stats.fanout_locks > 0

    def test_tadom2_plus_avoids_fanout(self):
        db = make_db(protocol="taDOM2+", depth=7)
        book = db.document.element_by_id("b1")

        def txn_prog(holder):
            txn = db.begin("t")
            yield from db.nodes.get_child_nodes(txn, book)
            hist = db.document.elements_by_name("history")[0]
            yield from db.nodes.delete_subtree(txn, hist)
            db.commit(txn)
            holder["txn"] = txn

        sim = Simulator()
        db.set_clock(lambda: sim.now)
        holder = {}
        sim.spawn(txn_prog(holder))
        sim.run()
        assert holder["txn"].stats.fanout_locks == 0


class TestStar2PLBehaviour:
    def test_id_scan_on_delete(self):
        db = make_db(protocol="Node2PL")
        topic = db.document.element_by_id("t1")
        book = db.document.element_by_id("b1")
        holder = {}

        def deleter():
            txn = db.begin("d")
            target = yield from db.nodes.get_element_by_id(txn, "b1")
            yield from db.nodes.delete_subtree(txn, target, access=Access.JUMP)
            db.commit(txn)
            holder["txn"] = txn

        run_processes(db, deleter())
        assert not db.document.exists(book)
        assert db.document.exists(topic)
        # The pre-delete scan visited the subtree.
        assert holder["txn"].stats.nodes_visited > 5

    def test_jump_becomes_root_navigation(self):
        db = make_db(protocol="Node2PL")
        holder = {}

        def jumper():
            txn = db.begin("j")
            yield from db.nodes.get_element_by_id(txn, "b1")
            db.commit(txn)
            holder["txn"] = txn

        run_processes(db, jumper())
        # bib -> topics -> topic -> book: at least 4 visits.
        assert holder["txn"].stats.nodes_visited >= 4
