"""Tests for isolation level serializable (footnote 1: taDOM* only)."""

import pytest

from repro import Database, IsolationLevel
from repro.errors import LockError, TransactionAborted
from repro.sched import Delay, Simulator

LIBRARY = (
    "topics",
    [("topic", {"id": "t0"}, [
        ("book", {"id": "b0"}, [("title", ["TP"]), ("history", [])]),
    ])],
)


def make_db(protocol="taDOM3+"):
    db = Database(protocol=protocol, lock_depth=7, root_element="bib",
                  isolation="serializable")
    db.load(LIBRARY)
    return db


class TestAvailability:
    def test_tadom_group_offers_it(self):
        for name in ("taDOM2", "taDOM2+", "taDOM3", "taDOM3+"):
            db = Database(protocol=name, isolation="serializable")
            txn = db.begin()
            assert txn.isolation is IsolationLevel.SERIALIZABLE

    @pytest.mark.parametrize("name", [
        "Node2PL", "NO2PL", "OO2PL", "Node2PLa", "IRX", "IRIX", "URIX",
    ])
    def test_other_groups_reject_it(self, name):
        db = Database(protocol=name)
        with pytest.raises(LockError):
            db.begin(isolation="serializable")

    def test_parse(self):
        assert IsolationLevel.parse("serializable") is (
            IsolationLevel.SERIALIZABLE
        )


class TestPhantomProtection:
    def test_lookup_miss_blocks_insert_of_that_id(self):
        """The classic phantom: a repeated id() lookup must stay empty."""
        db = make_db()
        sim = Simulator()
        db.set_clock(lambda: sim.now)
        history = db.document.elements_by_name("history")[0]
        observations = []

        def reader():
            txn = db.begin("reader", "serializable")
            first = yield from db.nodes.get_element_by_id(txn, "lend-42")
            yield Delay(100.0)
            second = yield from db.nodes.get_element_by_id(txn, "lend-42")
            observations.append((first, second))
            db.commit(txn)

        def inserter():
            txn = db.begin("inserter", "serializable")
            yield Delay(10.0)
            yield from db.nodes.insert_tree(
                txn, history, ("lend", {"id": "lend-42"}, [])
            )
            db.commit(txn)
            observations.append("inserted")

        sim.spawn(reader())
        sim.spawn(inserter())
        sim.run()
        # The reader saw 'absent' twice; the insert happened afterwards.
        assert observations == [(None, None), "inserted"]

    def test_repeatable_read_allows_the_phantom(self):
        db = Database(protocol="taDOM3+", lock_depth=7, root_element="bib",
                      isolation="repeatable")
        db.load(LIBRARY)
        sim = Simulator()
        db.set_clock(lambda: sim.now)
        history = db.document.elements_by_name("history")[0]
        observations = []

        def reader():
            txn = db.begin("reader", "repeatable")
            first = yield from db.nodes.get_element_by_id(txn, "lend-42")
            yield Delay(100.0)
            second = yield from db.nodes.get_element_by_id(txn, "lend-42")
            observations.append((first is None, second is None))
            db.commit(txn)

        def inserter():
            txn = db.begin("inserter", "repeatable")
            yield Delay(10.0)
            yield from db.nodes.insert_tree(
                txn, history, ("lend", {"id": "lend-42"}, [])
            )
            db.commit(txn)

        sim.spawn(reader())
        sim.spawn(inserter())
        sim.run()
        # Under repeatable read the second lookup FINDS the phantom.
        assert observations == [(True, False)]

    def test_delete_blocks_behind_id_readers(self):
        db = make_db()
        sim = Simulator()
        db.set_clock(lambda: sim.now)
        order = []

        def reader():
            txn = db.begin("reader", "serializable")
            node = yield from db.nodes.get_element_by_id(txn, "b0")
            assert node is not None
            yield Delay(100.0)
            order.append("reader-done")
            db.commit(txn)

        def deleter():
            txn = db.begin("deleter", "serializable")
            yield Delay(10.0)
            book = db.document.element_by_id("b0")
            try:
                yield from db.nodes.delete_subtree(txn, book)
            except TransactionAborted:
                db.abort(txn)
                order.append("deleter-aborted")
                return
            db.commit(txn)
            order.append("deleter-done")

        sim.spawn(reader())
        sim.spawn(deleter())
        sim.run()
        assert order[0] == "reader-done"

    def test_single_user_overhead_only(self):
        """Serializable works single-user; it just takes extra key locks."""
        db = make_db()
        txn = db.begin("t", "serializable")
        node, _ = db.run(db.nodes.get_element_by_id(txn, "b0"))
        assert node is not None
        held = db.locks.table.held_resources(txn)
        assert ("idkey", "b0") in held
        db.commit(txn)
