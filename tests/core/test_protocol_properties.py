"""Property-based invariants over all mode tables and protocol plans."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ALL_PROTOCOLS, Access, EdgeRole, MetaOp, MetaRequest, get_protocol
from repro.core.tables import (
    EDGE_TABLE,
    IRIX_TABLE,
    IRX_TABLE,
    TADOM2_TABLE,
    TADOM2P_TABLE,
    TADOM3_TABLE,
    TADOM3P_TABLE,
    URIX_TABLE,
)
from repro.splid import Splid

ALL_TABLES = (
    TADOM2_TABLE, TADOM2P_TABLE, TADOM3_TABLE, TADOM3P_TABLE,
    URIX_TABLE, IRIX_TABLE, IRX_TABLE, EDGE_TABLE,
)


def table_mode_pairs():
    for table in ALL_TABLES:
        for a in table.modes:
            for b in table.modes:
                yield table, a, b


class TestModeTableInvariants:
    @pytest.mark.parametrize("table", ALL_TABLES, ids=lambda t: t.name)
    def test_conversion_is_idempotent_on_result(self, table):
        """Converting the result with the same request is stable."""
        for a in table.modes:
            for b in table.modes:
                result = table.convert(a, b).result
                again = table.convert(result, b)
                assert again.result == result, (table.name, a, b)

    @pytest.mark.parametrize("table", ALL_TABLES, ids=lambda t: t.name)
    def test_conversion_identity(self, table):
        for a in table.modes:
            assert table.convert(a, a).result == a

    #: Conversion cells printed verbatim in the paper that deliberately
    #: swallow an update request into the held read mode: Figure 4's
    #: (SR, SU) -> SR and Figure 2's (R, U) -> R.
    PAPER_ASYMMETRIC_CELLS = {
        ("taDOM2", "SR", "SU"),
        ("taDOM2+", "SR", "SU"),
        ("URIX", "R", "U"),
        ("URIX", "RIX", "U"),
    }

    @pytest.mark.parametrize("table", ALL_TABLES, ids=lambda t: t.name)
    def test_conversion_covers_both_inputs(self, table):
        """The single replacement lock gives sufficient isolation: the
        result's coverage (plus the distributed child coverage) contains
        everything held and requested."""
        for a in table.modes:
            for b in table.modes:
                if (table.name, a, b) in self.PAPER_ASYMMETRIC_CELLS:
                    continue
                conversion = table.convert(a, b)
                union = table.coverage[a] | table.coverage[b]
                covered = set(table.coverage[conversion.result])
                if conversion.child_mode is not None:
                    # Distributed read privileges count as covered.
                    covered |= {"level_read", "subtree_read"}
                assert union <= covered, (table.name, a, b, conversion)

    @pytest.mark.parametrize("table", ALL_TABLES, ids=lambda t: t.name)
    def test_conversion_never_weakens_compatibility(self, table):
        """Anything incompatible with the held or requested mode stays
        incompatible with the conversion result -- unless the conversion
        carries a child action, in which case the lost exclusion is
        delegated to the fanned-out child locks (CX_NR-style)."""
        for a in table.modes:
            for b in table.modes:
                if (table.name, a, b) in self.PAPER_ASYMMETRIC_CELLS:
                    continue
                conversion = table.convert(a, b)
                if conversion.child_mode is not None:
                    continue
                for other in table.modes:
                    if not table.compatible(a, other) or not table.compatible(b, other):
                        assert not table.compatible(conversion.result, other), (
                            table.name, a, b, conversion.result, other,
                        )

    @pytest.mark.parametrize("table", ALL_TABLES, ids=lambda t: t.name)
    def test_exclusive_mode_exists(self, table):
        """Some mode is incompatible with everything (total exclusion)."""
        assert any(
            all(not table.compatible(mode, other) for other in table.modes)
            for mode in table.modes
        )

    @pytest.mark.parametrize("table", ALL_TABLES, ids=lambda t: t.name)
    def test_write_modes_mutually_exclusive(self, table):
        """Two transactions can never both hold node-write coverage."""
        for a in table.modes:
            for b in table.modes:
                both_write = (
                    "node_write" in table.coverage[a]
                    and "node_write" in table.coverage[b]
                )
                if both_write:
                    assert not table.compatible(a, b), (table.name, a, b)


# -- protocol plan properties --------------------------------------------------

splids = st.builds(
    lambda parts: Splid((1, *parts)),
    st.lists(st.integers(min_value=1, max_value=20).map(lambda v: 2 * v + 1),
             min_size=1, max_size=6),
)

ops = st.sampled_from([
    MetaOp.READ_NODE, MetaOp.READ_CONTENT, MetaOp.READ_LEVEL,
    MetaOp.READ_SUBTREE, MetaOp.UPDATE_NODE, MetaOp.WRITE_CONTENT,
    MetaOp.RENAME_NODE, MetaOp.INSERT_CHILD, MetaOp.DELETE_SUBTREE,
])


@settings(max_examples=150, deadline=None)
@given(
    protocol_name=st.sampled_from(ALL_PROTOCOLS),
    op=ops,
    target=splids,
    depth=st.integers(min_value=0, max_value=8),
    access=st.sampled_from([Access.NAVIGATION, Access.JUMP]),
)
def test_plans_are_well_formed(protocol_name, op, target, depth, access):
    """Every plan uses only registered spaces/modes and locks top-down."""
    protocol = get_protocol(protocol_name)
    request = MetaRequest(op, target, access, role=EdgeRole.FIRST_CHILD)
    plan = protocol.plan(request, depth)
    tables = protocol.tables()
    node_keys = []
    for step in plan.steps:
        assert step.space in tables
        assert step.mode in tables[step.space]
        if isinstance(step.key, Splid):
            if step.space == "node":
                node_keys.append(step.key)
            # No lock lands outside the target's root path or subtree,
            # except parent-anchored protocols (parent of target).
            assert (
                step.key.is_self_or_descendant_of(target)
                or step.key == target
                or step.key in target.ancestors_bottom_up()
                or (target.parent is not None
                    and step.key.is_self_or_descendant_of(target.parent))
            )
    # Node-space locks are acquired ancestors-first (top-down).
    for earlier, later in zip(node_keys, node_keys[1:]):
        assert not later.is_ancestor_of(earlier)


@settings(max_examples=100, deadline=None)
@given(
    protocol_name=st.sampled_from(
        ["Node2PLa", "IRX", "IRIX", "URIX",
         "taDOM2", "taDOM2+", "taDOM3", "taDOM3+"]
    ),
    target=splids,
    depth=st.integers(min_value=0, max_value=8),
)
def test_lock_depth_caps_lock_levels(protocol_name, target, depth):
    """No individual node lock lands below the lock-depth level."""
    protocol = get_protocol(protocol_name)
    plan = protocol.plan(MetaRequest(MetaOp.READ_NODE, target), depth)
    for step in plan.steps:
        if step.space == "node" and isinstance(step.key, Splid):
            assert step.key.level <= depth


@settings(max_examples=60, deadline=None)
@given(target=splids, depth=st.integers(min_value=0, max_value=8))
def test_depth_zero_reads_are_document_locks(target, depth):
    protocol = get_protocol("taDOM3+")
    plan = protocol.plan(MetaRequest(MetaOp.READ_NODE, target), 0)
    assert len(plan.steps) == 1
    assert str(plan.steps[0].key) == "1"
