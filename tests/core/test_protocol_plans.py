"""Tests for the per-protocol lock plans (meta request -> lock steps)."""

import pytest

from repro.core import (
    Access,
    CONTENT_SPACE,
    EDGE_SPACE,
    EdgeRole,
    ID_SPACE,
    MetaOp,
    MetaRequest,
    NODE_SPACE,
    STRUCT_SPACE,
    get_protocol,
    ALL_PROTOCOLS,
)
from repro.errors import UnknownProtocolError
from repro.splid import Splid


def S(text):
    return Splid.parse(text)


def steps_of(protocol_name, op, target, depth=7, **kwargs):
    protocol = get_protocol(protocol_name)
    plan = protocol.plan(MetaRequest(op, S(target), **kwargs), depth)
    return [(s.space, str(s.key) if not isinstance(s.key, tuple) else
             (str(s.key[0]), s.key[1].value), s.mode) for s in plan.steps]


class TestRegistry:
    def test_eleven_protocols(self):
        assert len(ALL_PROTOCOLS) == 11

    def test_unknown_protocol(self):
        with pytest.raises(UnknownProtocolError):
            get_protocol("taDOM4")

    def test_depth_support(self):
        for name in ("Node2PL", "NO2PL", "OO2PL"):
            assert not get_protocol(name).supports_lock_depth
        for name in ("Node2PLa", "IRX", "IRIX", "URIX",
                     "taDOM2", "taDOM2+", "taDOM3", "taDOM3+"):
            assert get_protocol(name).supports_lock_depth


class TestTaDomPlans:
    def test_figure3b_jump_read(self):
        # T1 jumps to the book node: NR on book, IR on all ancestors.
        steps = steps_of("taDOM3+", MetaOp.READ_NODE, "1.5.3.3",
                         access=Access.JUMP)
        assert steps == [
            (NODE_SPACE, "1", "IR"),
            (NODE_SPACE, "1.5", "IR"),
            (NODE_SPACE, "1.5.3", "IR"),
            (NODE_SPACE, "1.5.3.3", "NR"),
        ]

    def test_lock_depth_escalation_to_sr(self):
        # Figure 3b: at lock depth 4, reading below level 4 places SR on
        # the level-4 ancestor (here depth counted from root=0 -> use 3).
        steps = steps_of("taDOM3+", MetaOp.READ_NODE, "1.5.3.3.11.3", depth=3)
        assert steps[-1] == (NODE_SPACE, "1.5.3.3", "SR")

    def test_depth_zero_is_document_lock(self):
        steps = steps_of("taDOM3+", MetaOp.READ_NODE, "1.5.3.3", depth=0)
        assert steps == [(NODE_SPACE, "1", "SR")]
        steps = steps_of("taDOM3+", MetaOp.DELETE_SUBTREE, "1.5.3.3", depth=0)
        assert steps == [(NODE_SPACE, "1", "SX")]

    def test_level_read_uses_lr(self):
        steps = steps_of("taDOM2", MetaOp.READ_LEVEL, "1.5.3.3")
        assert steps[-1] == (NODE_SPACE, "1.5.3.3", "LR")

    def test_write_path_has_cx_on_parent(self):
        # T2conv in Figure 3b: SX on the subtree, CX on the parent (book),
        # IX on the remaining ancestors.
        steps = steps_of("taDOM3+", MetaOp.DELETE_SUBTREE, "1.5.3.3.11")
        assert steps == [
            (NODE_SPACE, "1", "IX"),
            (NODE_SPACE, "1.5", "IX"),
            (NODE_SPACE, "1.5.3", "IX"),
            (NODE_SPACE, "1.5.3.3", "CX"),
            (NODE_SPACE, "1.5.3.3.11", "SX"),
        ]

    def test_rename_tadom3_uses_nx(self):
        steps = steps_of("taDOM3", MetaOp.RENAME_NODE, "1.5.3")
        assert steps[-1] == (NODE_SPACE, "1.5.3", "NX")

    def test_rename_tadom2_falls_back_to_sx(self):
        steps = steps_of("taDOM2", MetaOp.RENAME_NODE, "1.5.3")
        assert steps[-1] == (NODE_SPACE, "1.5.3", "SX")

    def test_write_content_separates_structure(self):
        # CX on the text node, SX only on its string node.
        steps = steps_of("taDOM3+", MetaOp.WRITE_CONTENT, "1.5.3.3.5.3")
        assert (NODE_SPACE, "1.5.3.3.5.3", "CX") in steps
        assert steps[-1] == (NODE_SPACE, "1.5.3.3.5.3.1", "SX")

    def test_edge_locks(self):
        steps = steps_of("taDOM3+", MetaOp.READ_EDGE, "1.5.3",
                         role=EdgeRole.NEXT_SIBLING)
        assert steps == [(EDGE_SPACE, ("1.5.3", "next_sibling"), "ER")]


class TestMglPlans:
    def test_read_uses_intention_as_node_lock(self):
        steps = steps_of("URIX", MetaOp.READ_NODE, "1.5.3.3")
        assert steps[-1] == (NODE_SPACE, "1.5.3.3", "IR")

    def test_escalated_read_uses_r(self):
        steps = steps_of("URIX", MetaOp.READ_NODE, "1.5.3.3", depth=2)
        assert steps[-1] == (NODE_SPACE, "1.5.3", "R")

    def test_level_read_fans_out(self):
        children = (S("1.5.3.3.3"), S("1.5.3.3.5"))
        steps = steps_of("URIX", MetaOp.READ_LEVEL, "1.5.3.3",
                         children=children)
        assert (NODE_SPACE, "1.5.3.3.3", "IR") in steps
        assert (NODE_SPACE, "1.5.3.3.5", "IR") in steps

    def test_level_read_below_depth_uses_subtree(self):
        steps = steps_of("URIX", MetaOp.READ_LEVEL, "1.5.3.3", depth=3,
                         children=(S("1.5.3.3.3"),))
        assert steps[-1] == (NODE_SPACE, "1.5.3.3", "R")

    def test_rename_locks_whole_subtree(self):
        # MGL "cannot separate the name from the content of a topic".
        steps = steps_of("URIX", MetaOp.RENAME_NODE, "1.5.3")
        assert steps[-1] == (NODE_SPACE, "1.5.3", "X")

    def test_update_mode_differs(self):
        assert steps_of("URIX", MetaOp.UPDATE_NODE, "1.5.3")[-1][2] == "U"
        assert steps_of("IRIX", MetaOp.UPDATE_NODE, "1.5.3")[-1][2] == "R"

    def test_irx_single_intention(self):
        read = steps_of("IRX", MetaOp.READ_NODE, "1.5.3.3")
        write = steps_of("IRX", MetaOp.DELETE_SUBTREE, "1.5.3.3")
        assert all(mode == "I" for _s, _k, mode in read)
        assert write[:-1] == [(NODE_SPACE, "1", "I"), (NODE_SPACE, "1.5", "I"),
                              (NODE_SPACE, "1.5.3", "I")]
        assert write[-1] == (NODE_SPACE, "1.5.3.3", "X")

    def test_all_mgl_variants_lock_edges(self):
        # Edge isolation is part of the meta-synchronization interface;
        # all MGL variants map it to the shared ER/EU/EX edge table.
        for name in ("URIX", "IRX", "IRIX"):
            steps = steps_of(name, MetaOp.READ_EDGE, "1.5",
                             role=EdgeRole.FIRST_CHILD)
            assert steps == [(EDGE_SPACE, ("1.5", "first_child"), "ER")]
            write = steps_of(name, MetaOp.WRITE_EDGE, "1.5",
                             role=EdgeRole.FIRST_CHILD)
            assert write == [(EDGE_SPACE, ("1.5", "first_child"), "EX")]


class TestNode2PlaPlans:
    def test_reads_borrow_urix_intentions(self):
        steps = steps_of("Node2PLa", MetaOp.READ_NODE, "1.5.3.3")
        assert steps[-1] == (NODE_SPACE, "1.5.3.3", "IR")
        assert steps[0] == (NODE_SPACE, "1", "IR")

    def test_writes_anchor_at_parent(self):
        # Deleting a book X-locks the parent topic subtree (the level of
        # the context node, as in Node2PL's M lock).
        steps = steps_of("Node2PLa", MetaOp.DELETE_SUBTREE, "1.5.3.3")
        assert steps[-1] == (NODE_SPACE, "1.5.3", "X")

    def test_rename_topic_locks_topics_level(self):
        # The TArenameTopic catastrophe: X on the whole topics subtree.
        steps = steps_of("Node2PLa", MetaOp.RENAME_NODE, "1.5.3")
        assert steps[-1] == (NODE_SPACE, "1.5", "X")

    def test_depth_caps_anchor(self):
        steps = steps_of("Node2PLa", MetaOp.READ_NODE, "1.5.3.3.5", depth=2)
        assert steps[-1] == (NODE_SPACE, "1.5.3", "R")
        write = steps_of("Node2PLa", MetaOp.WRITE_CONTENT, "1.5.3.3.5", depth=2)
        assert write[-1] == (NODE_SPACE, "1.5.3", "X")

    def test_no_id_scan_needed(self):
        protocol = get_protocol("Node2PLa")
        plan = protocol.plan(
            MetaRequest(MetaOp.DELETE_SUBTREE, S("1.5.3.3"), access=Access.JUMP), 7
        )
        assert plan.scan_ids is None
        assert not protocol.requires_root_navigation


class Test2PLPlans:
    def test_node2pl_locks_parent_level(self):
        steps = steps_of("Node2PL", MetaOp.READ_NODE, "1.5.3.3")
        assert steps == [(STRUCT_SPACE, "1.5.3", "T")]

    def test_node2pl_jump_uses_idr_keyed_by_value(self):
        steps = steps_of("Node2PL", MetaOp.READ_NODE, "1.5.3.3",
                         access=Access.JUMP, id_value="b42")
        assert (ID_SPACE, "b42", "IDR") in steps
        # Without a known id value the jump lock comes from the node
        # manager's pre-lookup IDR instead.
        bare = steps_of("Node2PL", MetaOp.READ_NODE, "1.5.3.3",
                        access=Access.JUMP)
        assert all(space != ID_SPACE for space, _k, _m in bare)

    def test_node2pl_insert_converts_to_m(self):
        steps = steps_of("Node2PL", MetaOp.INSERT_CHILD, "1.5.3.3.11.13")
        assert steps == [(STRUCT_SPACE, "1.5.3.3.11", "M")]

    def test_delete_requires_id_scan(self):
        for name in ("Node2PL", "NO2PL", "OO2PL"):
            protocol = get_protocol(name)
            plan = protocol.plan(
                MetaRequest(MetaOp.DELETE_SUBTREE, S("1.5.3.3"),
                            access=Access.JUMP), 7
            )
            assert plan.scan_ids == S("1.5.3.3")
            assert protocol.requires_root_navigation
            assert protocol.traverses_subtrees

    def test_subtree_reads_traverse(self):
        for name in ("Node2PL", "NO2PL", "OO2PL"):
            plan = get_protocol(name).plan(
                MetaRequest(MetaOp.READ_SUBTREE, S("1.5.3.3")), 7
            )
            assert plan.traverse_individually

    def test_no2pl_update_locks_neighbourhood(self):
        steps = steps_of("NO2PL", MetaOp.INSERT_CHILD, "1.5.3.3.11.13",
                         affected=(S("1.5.3.3.11.9"), S("1.5.3.3.11")))
        assert (NODE_SPACE, "1.5.3.3.11.13", "W2") in steps
        assert (NODE_SPACE, "1.5.3.3.11.9", "W2") in steps
        assert (NODE_SPACE, "1.5.3.3.11", "W2") in steps

    def test_no2pl_read_locks_single_node(self):
        steps = steps_of("NO2PL", MetaOp.READ_NODE, "1.5.3.3")
        assert steps == [(NODE_SPACE, "1.5.3.3", "R2")]

    def test_oo2pl_locks_edges_and_content(self):
        steps = steps_of("OO2PL", MetaOp.READ_EDGE, "1.5.3",
                         role=EdgeRole.NEXT_SIBLING)
        assert steps == [(EDGE_SPACE, ("1.5.3", "next_sibling"), "ER")]
        # Visiting a node has no structure lock -- only the S content lock
        # protecting the record that was read.
        assert steps_of("OO2PL", MetaOp.READ_NODE, "1.5.3.3") == [
            (CONTENT_SPACE, "1.5.3.3", "S"),
        ]

    def test_oo2pl_rename_is_content_lock(self):
        steps = steps_of("OO2PL", MetaOp.RENAME_NODE, "1.5.3")
        assert steps == [(CONTENT_SPACE, "1.5.3", "X")]


class TestAllProtocolsCoverAllOps:
    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    @pytest.mark.parametrize("op", list(MetaOp))
    def test_plan_exists(self, name, op):
        protocol = get_protocol(name)
        request = MetaRequest(op, S("1.5.3.3"), role=EdgeRole.FIRST_CHILD)
        plan = protocol.plan(request, 4)
        tables = protocol.tables()
        for step in plan.steps:
            assert step.space in tables
            assert step.mode in tables[step.space]
