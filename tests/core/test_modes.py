"""Tests for the mode algebra and the paper's printed matrices."""

import pytest

from repro.core.modes import (
    Conversion,
    ModeTable,
    compat_from_rows,
    conversions_from_rows,
    derive_conversions,
)
from repro.core.tables import (
    TADOM2_COVERAGE,
    TADOM2_MODES,
    TADOM2_TABLE,
    TADOM2P_TABLE,
    TADOM3_TABLE,
    TADOM3P_TABLE,
    URIX_TABLE,
)
from repro.errors import LockError


class TestMatrixParsers:
    def test_compat_rows(self):
        table = compat_from_rows(("A", "B"), {"A": "+ -", "B": "- -"})
        assert table[("A", "A")] is True
        assert table[("A", "B")] is False

    def test_compat_rows_wrong_length(self):
        with pytest.raises(LockError):
            compat_from_rows(("A", "B"), {"A": "+", "B": "- -"})

    def test_compat_rows_bad_symbol(self):
        with pytest.raises(LockError):
            compat_from_rows(("A",), {"A": "?"})

    def test_conversion_rows_with_child(self):
        table = conversions_from_rows(("A", "B"), {"A": "A B[A]", "B": "B B"})
        assert table[("A", "B")] == Conversion("B", "A")
        assert table[("A", "A")] == Conversion("A")


class TestModeTableValidation:
    def test_missing_cells_rejected(self):
        with pytest.raises(LockError):
            ModeTable("t", ("A", "B"), {("A", "A"): True},
                      {}, {"A": frozenset(), "B": frozenset()})

    def test_unknown_conversion_result_rejected(self):
        compat = compat_from_rows(("A",), {"A": "+"})
        with pytest.raises(LockError):
            ModeTable("t", ("A",), compat, {("A", "A"): Conversion("Z")},
                      {"A": frozenset()})

    def test_unknown_privilege_rejected(self):
        compat = compat_from_rows(("A",), {"A": "+"})
        conv = {("A", "A"): Conversion("A")}
        with pytest.raises(LockError):
            ModeTable("t", ("A",), compat, conv, {"A": frozenset({"bogus"})})


class TestFigure3a:
    """The taDOM2 compatibility matrix, cell by cell (Figure 3a)."""

    @pytest.mark.parametrize("held,requested,expected", [
        ("IR", "SX", False), ("IR", "SU", False), ("IR", "CX", True),
        ("NR", "IX", True), ("NR", "SU", False),
        ("LR", "CX", False), ("LR", "IX", True),
        ("SR", "IX", False), ("SR", "SU", False), ("SR", "SR", True),
        ("IX", "SR", False), ("IX", "CX", True), ("IX", "LR", True),
        ("CX", "LR", False), ("CX", "CX", True), ("CX", "SR", False),
        ("SU", "SR", True), ("SU", "IX", False), ("SU", "SU", False),
        ("SX", "IR", False), ("SX", "NR", False),
    ])
    def test_cell(self, held, requested, expected):
        assert TADOM2_TABLE.compatible(held, requested) is expected

    def test_cx_cx_compatible(self):
        # "it does not prohibit other CX locks on c, because separate
        # direct-child nodes may be exclusively locked by concurrent
        # transactions"
        assert TADOM2_TABLE.compatible("CX", "CX")


class TestFigure4:
    """The taDOM2 conversion matrix (Figure 4), including child actions."""

    @pytest.mark.parametrize("held,requested,result,child", [
        ("IR", "NR", "NR", None),
        ("NR", "LR", "LR", None),
        ("LR", "IX", "IX", "NR"),
        ("LR", "CX", "CX", "NR"),
        ("SR", "IX", "IX", "SR"),
        ("SR", "CX", "CX", "SR"),
        ("IX", "LR", "IX", "NR"),
        ("IX", "SR", "IX", "SR"),
        ("CX", "LR", "CX", "NR"),
        ("CX", "SR", "CX", "SR"),
        ("SU", "IX", "SX", None),
        ("SU", "CX", "SX", None),
        ("CX", "SU", "SX", None),
        ("SX", "IR", "SX", None),
        ("SR", "SU", "SR", None),   # the paper's asymmetric cell
    ])
    def test_cell(self, held, requested, result, child):
        conversion = TADOM2_TABLE.convert(held, requested)
        assert conversion.result == result
        assert conversion.child_mode == child

    def test_example_from_section_23(self):
        # "the transaction has to convert the existing LR lock on c to a
        # CX lock and to acquire an NR lock on each direct-child node"
        conversion = TADOM2_TABLE.convert("LR", "CX")
        assert conversion.result == "CX"
        assert conversion.child_mode == "NR"
        assert conversion.has_fanout


class TestDerivedMatrixMatchesFigure4:
    """The coverage algebra rederives Figure 4 (one documented exception)."""

    def test_all_cells(self):
        derived = derive_conversions(TADOM2_MODES, TADOM2_COVERAGE)
        mismatches = []
        for a in TADOM2_MODES:
            for b in TADOM2_MODES:
                want = TADOM2_TABLE.convert(a, b)
                got = derived[(a, b)]
                if (got.result, got.child_mode) != (want.result, want.child_mode):
                    mismatches.append((a, b))
        # (SR, SU): the paper keeps SR; pure coverage reasoning says SU.
        assert mismatches == [("SR", "SU")]


class TestCombinationModes:
    def test_tadom2p_mode_count(self):
        assert len(TADOM2P_TABLE.modes) == 12

    def test_tadom3p_has_twenty_modes(self):
        # "taDOM3+ includes 20 lock modes" (Section 2.3)
        assert len(TADOM3P_TABLE.modes) == 20

    def test_lrix_avoids_fanout(self):
        assert TADOM2_TABLE.convert("LR", "IX") == Conversion("IX", "NR")
        assert TADOM2P_TABLE.convert("LR", "IX") == Conversion("LRIX")

    def test_srcx_avoids_fanout(self):
        assert TADOM2_TABLE.convert("SR", "CX") == Conversion("CX", "SR")
        assert TADOM2P_TABLE.convert("SR", "CX") == Conversion("SRCX")

    def test_combination_compat_is_intersection(self):
        for other in TADOM2_TABLE.modes:
            expected = (TADOM2P_TABLE.compatible("LR", other)
                        and TADOM2P_TABLE.compatible("IX", other))
            assert TADOM2P_TABLE.compatible("LRIX", other) is expected

    def test_combination_conversions_close(self):
        # Converting any pair of taDOM3+ modes stays inside the table.
        for a in TADOM3P_TABLE.modes:
            for b in TADOM3P_TABLE.modes:
                conversion = TADOM3P_TABLE.convert(a, b)
                assert conversion.result in TADOM3P_TABLE.modes

    def test_base_cells_unchanged_where_no_combo_applies(self):
        assert TADOM2P_TABLE.convert("IR", "NR").result == "NR"
        assert TADOM2P_TABLE.convert("SU", "IX").result == "SX"


class TestTaDom3Refinement:
    def test_footnote3_split(self):
        # IR (pure intention) tolerates a node rename; NR does not.
        assert TADOM3_TABLE.compatible("IR", "NX")
        assert not TADOM3_TABLE.compatible("NR", "NX")

    def test_nu_allows_readers(self):
        for reader in ("IR", "NR", "LR", "SR"):
            assert TADOM3_TABLE.compatible(reader, "NU")
        assert not TADOM3_TABLE.compatible("NU", "NU")

    def test_nx_conflicts_with_double_role_intentions(self):
        # IX/CX keep their double role (they read the node they sit on),
        # so a rename (NX) must exclude them; only the pure intention IR
        # may pass through a node being renamed.
        assert not TADOM3_TABLE.compatible("NX", "IX")
        assert not TADOM3_TABLE.compatible("NX", "CX")
        assert TADOM3_TABLE.compatible("IR", "NX")

    def test_nu_upgrades_to_nx(self):
        assert TADOM3_TABLE.convert("NU", "NX").result == "NX"


class TestUrixFigure2:
    @pytest.mark.parametrize("held,requested,expected", [
        ("IR", "IX", True), ("IR", "U", False), ("IR", "X", False),
        ("IX", "R", False), ("IX", "IX", True),
        ("R", "U", False), ("R", "R", True), ("R", "IX", False),
        ("RIX", "IR", True), ("RIX", "IX", False),
        ("U", "R", True), ("U", "U", False), ("U", "IR", True),
        ("X", "IR", False),
    ])
    def test_compat_cell(self, held, requested, expected):
        assert URIX_TABLE.compatible(held, requested) is expected

    def test_asymmetric_u(self):
        # Figure 2 is asymmetric: a held U admits R requests, a held R
        # blocks U requests.
        assert URIX_TABLE.compatible("U", "R")
        assert not URIX_TABLE.compatible("R", "U")

    @pytest.mark.parametrize("held,requested,result", [
        ("IR", "X", "X"), ("IX", "R", "RIX"), ("R", "IX", "RIX"),
        ("U", "IX", "X"), ("U", "R", "U"), ("RIX", "U", "X"),
        ("R", "U", "R"),
    ])
    def test_conversion_cell(self, held, requested, result):
        assert URIX_TABLE.convert(held, requested).result == result

    def test_section22_example(self):
        # "a lock conversion of the context node to X can be performed by
        # converting IR to IX on the ancestor path and R to X on the
        # context node"
        assert URIX_TABLE.convert("IR", "IX").result == "IX"
        assert URIX_TABLE.convert("R", "X").result == "X"
