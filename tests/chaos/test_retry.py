"""Unit tests for retry backoff and admission control."""

import random

import pytest

from repro.chaos.retry import (
    ADMIT,
    QUEUE,
    SHED,
    AdmissionPolicy,
    RetryPolicy,
)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(base_backoff_ms=2.0, multiplier=2.0,
                             max_backoff_ms=64.0, jitter=0.0)
        rng = random.Random(0)
        assert [policy.backoff_ms(n, rng) for n in (1, 2, 3, 4)] == \
            [2.0, 4.0, 8.0, 16.0]

    def test_backoff_capped(self):
        policy = RetryPolicy(base_backoff_ms=2.0, multiplier=2.0,
                             max_backoff_ms=10.0, jitter=0.0)
        assert policy.backoff_ms(50, random.Random(0)) == 10.0

    def test_jitter_stays_in_band_and_is_seed_deterministic(self):
        policy = RetryPolicy(jitter=0.5)
        values = [policy.backoff_ms(3, random.Random(7)) for _ in range(5)]
        assert len(set(values)) == 1  # same seed, same jitter
        raw = min(policy.max_backoff_ms,
                  policy.base_backoff_ms * policy.multiplier ** 2)
        for _ in range(100):
            value = policy.backoff_ms(3, random.Random(_))
            assert raw * 0.5 <= value <= raw

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_ms(0, random.Random(0))

    def test_restart_budget(self):
        policy = RetryPolicy(max_restarts=2)
        assert policy.allows_restart(0)
        assert policy.allows_restart(1)
        assert not policy.allows_restart(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestAdmissionControl:
    def test_admits_below_pressure(self):
        controller = AdmissionPolicy(max_pressure=2).controller()
        controller.enter_restart()
        assert controller.admit() == ADMIT

    def test_queues_then_sheds_at_pressure(self):
        controller = AdmissionPolicy(max_pressure=1, max_queue_waits=2).controller()
        controller.enter_restart()
        assert controller.admit(waits_so_far=0) == QUEUE
        assert controller.admit(waits_so_far=1) == QUEUE
        assert controller.admit(waits_so_far=2) == SHED
        assert controller.queue_waits == 2
        assert controller.sheds == 1

    def test_pressure_release_readmits(self):
        controller = AdmissionPolicy(max_pressure=1).controller()
        controller.enter_restart()
        assert controller.admit() == QUEUE
        controller.leave_restart()
        assert controller.admit() == ADMIT

    def test_pressure_never_negative(self):
        controller = AdmissionPolicy().controller()
        controller.leave_restart()
        assert controller.pressure == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_pressure=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(queue_backoff_ms=-1.0)
