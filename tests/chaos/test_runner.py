"""Integration tests for verified chaos runs (the tentpole invariants).

A seeded TaMix workload runs under the ``ci-small`` fault schedule and
must come out the other side with (a) a serializable committed history,
(b) bit-identical WAL recovery, (c) exact commit accounting, and (d) a
run fingerprint that reproduces across invocations.
"""

import pytest

from repro.chaos import load_schedule
from repro.chaos.runner import run_chaos

SEED = 7
KWARGS = dict(scale=0.02, run_duration_ms=6_000.0)


@pytest.fixture(scope="module")
def report():
    return run_chaos(load_schedule("ci-small"), SEED, **KWARGS)


class TestInvariantsUnderFaults:
    def test_run_is_clean(self, report):
        assert report.ok, report.violations

    def test_faults_actually_fired(self, report):
        assert sum(report.faults.values()) > 0
        assert report.injection_rates["page.read"] > 0.0
        assert report.injection_rates["lock.acquire"] > 0.0

    def test_workload_made_progress_despite_faults(self, report):
        assert report.committed > 0
        assert report.result.restarts >= 0

    def test_history_oracle_passes(self, report):
        assert report.oracle_ok
        assert report.accesses_checked > 0
        assert report.oracle_violations == []

    def test_recovery_bit_identical(self, report):
        assert report.recovery_ok

    def test_no_lost_commits(self, report):
        assert report.commits_in_wal == report.committed

    def test_report_serializes(self, report):
        data = report.to_dict()
        assert data["ok"] is True
        assert data["schedule"] == "ci-small"
        assert data["fingerprint"] == report.fingerprint
        assert "chaos[ci-small" in report.summary()

    def test_determinism_across_invocations(self, report):
        again = run_chaos(load_schedule("ci-small"), SEED, **KWARGS)
        assert again.fingerprint == report.fingerprint
        assert again.faults == report.faults
        assert again.committed == report.committed
        assert again.restarts == report.restarts

    def test_seed_changes_the_run(self, report):
        other = run_chaos(load_schedule("ci-small"), SEED + 1, **KWARGS)
        assert other.ok, other.violations
        assert other.fingerprint != report.fingerprint


class TestTraceCapture:
    def test_trace_records_chaos_events(self, tmp_path):
        from repro.obs import CHAOS_FAULT, load_jsonl

        trace = tmp_path / "chaos.jsonl"
        report = run_chaos(load_schedule("ci-small"), SEED,
                           trace_path=trace, **KWARGS)
        assert report.ok, report.violations
        kinds = {event.kind for event in load_jsonl(trace)}
        assert CHAOS_FAULT in kinds
