"""Unit tests for fault schedules (validation, serialization, builtins)."""

import pytest

from repro.chaos.schedule import (
    BUILTIN_SCHEDULES,
    KINDS_BY_SITE,
    SITES,
    FaultRule,
    FaultSchedule,
    load_schedule,
    schedule_names,
)
from repro.errors import ChaosError


class TestFaultRuleValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ChaosError):
            FaultRule("page.mmap", "transient", probability=0.1)

    def test_kind_must_match_site(self):
        # torn writes exist; torn reads do not.
        with pytest.raises(ChaosError):
            FaultRule("page.read", "torn", probability=0.1)
        with pytest.raises(ChaosError):
            FaultRule("lock.acquire", "transient", probability=0.1)

    def test_probability_range(self):
        with pytest.raises(ChaosError):
            FaultRule("page.read", "transient", probability=1.5)
        with pytest.raises(ChaosError):
            FaultRule("page.read", "transient", probability=-0.1)

    def test_rule_that_never_fires_rejected(self):
        with pytest.raises(ChaosError):
            FaultRule("page.read", "transient")

    def test_at_ops_must_be_positive_ints(self):
        with pytest.raises(ChaosError):
            FaultRule("page.read", "transient", at_ops=(0,))
        with pytest.raises(ChaosError):
            FaultRule("page.read", "transient", at_ops=(1.5,))

    def test_at_ops_sorted(self):
        rule = FaultRule("page.read", "transient", at_ops=(9, 2, 5))
        assert rule.at_ops == (2, 5, 9)

    def test_latency_needs_latency_ms(self):
        with pytest.raises(ChaosError):
            FaultRule("page.read", "latency", probability=0.1)
        rule = FaultRule("page.read", "latency", probability=0.1, latency_ms=3.0)
        assert rule.latency_ms == 3.0


class TestSerialization:
    def test_rule_round_trip(self):
        rule = FaultRule("page.write", "torn", probability=0.02, at_ops=(7,))
        assert FaultRule.from_dict(rule.to_dict()) == rule

    def test_rule_rejects_unknown_fields(self):
        with pytest.raises(ChaosError):
            FaultRule.from_dict({"site": "page.read", "kind": "transient",
                                 "probability": 0.1, "severity": "high"})

    def test_rule_missing_field(self):
        with pytest.raises(ChaosError):
            FaultRule.from_dict({"site": "page.read"})

    def test_schedule_json_round_trip(self):
        schedule = FaultSchedule(rules=(
            FaultRule("page.read", "latency", probability=0.5, latency_ms=2.0),
            FaultRule("lock.acquire", "deadlock", at_ops=(3,)),
        ), name="rt")
        assert FaultSchedule.from_json(schedule.to_json()) == schedule

    def test_schedule_rejects_non_rules(self):
        with pytest.raises(ChaosError):
            FaultSchedule(rules=({"site": "page.read"},))

    def test_schedule_from_bad_json(self):
        with pytest.raises(ChaosError):
            FaultSchedule.from_json("{not json")
        with pytest.raises(ChaosError):
            FaultSchedule.from_json("[1, 2]")

    def test_rules_for_filters_by_site(self):
        schedule = load_schedule("ci-small")
        for site in SITES:
            assert all(r.site == site for r in schedule.rules_for(site))

    def test_empty_schedule_is_falsy(self):
        assert not FaultSchedule()
        assert load_schedule("ci-small")


class TestBuiltins:
    def test_builtins_are_valid_and_named(self):
        for name, schedule in BUILTIN_SCHEDULES.items():
            assert schedule.name == name
            assert schedule.rules
            for rule in schedule.rules:
                assert rule.kind in KINDS_BY_SITE[rule.site]

    def test_schedule_names_sorted(self):
        names = schedule_names()
        assert list(names) == sorted(names)
        assert "ci-small" in names

    def test_load_by_name(self):
        assert load_schedule("ci-small") is BUILTIN_SCHEDULES["ci-small"]

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "faults.json"
        schedule = FaultSchedule(
            rules=(FaultRule("page.read", "transient", probability=0.1),),
            name="custom",
        )
        path.write_text(schedule.to_json(), encoding="utf-8")
        assert load_schedule(str(path)) == schedule

    def test_load_unknown_raises(self, tmp_path):
        with pytest.raises(ChaosError):
            load_schedule(str(tmp_path / "missing.json"))
