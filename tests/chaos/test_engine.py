"""Unit tests for the deterministic chaos engine."""

from types import SimpleNamespace

import pytest

from repro.chaos import ChaosEngine, FaultRule, FaultSchedule, RetryPolicy
from repro.errors import (
    DeadlockAbort,
    LockTimeout,
    PermanentStorageError,
    TransientStorageError,
)


def engine_for(*rules, seed=7, **retry_overrides):
    policy = RetryPolicy(**retry_overrides) if retry_overrides else RetryPolicy()
    return ChaosEngine(FaultSchedule(rules=tuple(rules)), seed, retry=policy)


def drive_reads(engine, count):
    """Run ``count`` page reads, swallowing injected failures."""
    outcomes = []
    for page in range(count):
        try:
            outcomes.append(("ok", engine.page_read(page)))
        except TransientStorageError:
            outcomes.append(("transient", None))
        except PermanentStorageError:
            outcomes.append(("permanent", None))
    return outcomes


class TestDeterminism:
    RULES = (
        FaultRule("page.read", "transient", probability=0.2),
        FaultRule("page.read", "latency", probability=0.1, latency_ms=4.0),
    )

    def test_same_seed_same_fault_log(self):
        a, b = engine_for(*self.RULES, seed=3), engine_for(*self.RULES, seed=3)
        assert drive_reads(a, 200) == drive_reads(b, 200)
        assert a.fault_log == b.fault_log
        assert a.fingerprint() == b.fingerprint()

    def test_different_seed_different_faults(self):
        a, b = engine_for(*self.RULES, seed=3), engine_for(*self.RULES, seed=4)
        drive_reads(a, 200)
        drive_reads(b, 200)
        assert a.fault_log != b.fault_log

    def test_sites_are_independent_streams(self):
        """Adding rules on one site never moves faults at another."""
        read_rule = FaultRule("page.read", "transient", probability=0.2)
        write_rule = FaultRule("page.write", "transient", probability=0.5)
        alone = engine_for(read_rule, seed=11)
        with_writes = engine_for(read_rule, write_rule, seed=11)
        for page in range(50):
            try:
                with_writes.page_write(page)
            except TransientStorageError:
                pass
        assert drive_reads(alone, 100) == drive_reads(with_writes, 100)
        reads_only = [e for e in with_writes.fault_log if e[0] == "page.read"]
        assert reads_only == alone.fault_log


class TestFaultKinds:
    def test_scripted_at_ops_fire_exactly(self):
        engine = engine_for(
            FaultRule("page.read", "latency", at_ops=(2, 5), latency_ms=3.0)
        )
        delays = [engine.page_read(0) for _ in range(6)]
        assert delays == [0.0, 3.0, 0.0, 0.0, 3.0, 0.0]
        assert [op for _site, op, _k, _d in engine.fault_log] == [2, 5]

    def test_latency_returns_extra_ms(self):
        engine = engine_for(
            FaultRule("page.read", "latency", probability=1.0, latency_ms=7.5)
        )
        assert engine.page_read(0) == 7.5

    def test_permanent_raises_immediately(self):
        engine = engine_for(FaultRule("page.write", "permanent", at_ops=(1,)))
        with pytest.raises(PermanentStorageError):
            engine.page_write(0)
        assert engine.ops["page.write"] == 1  # no retries burned

    def test_transient_retry_succeeds_and_accrues_backoff(self):
        # Only the first operation faults; the retry (op 2) goes through
        # and the returned delay carries the backoff.
        engine = engine_for(FaultRule("page.read", "transient", at_ops=(1,)))
        delay = engine.page_read(0)
        assert delay > 0.0
        assert engine.ops["page.read"] == 2
        assert engine.faults == {"page.read:transient": 1}

    def test_transient_budget_exhausted(self):
        engine = engine_for(
            FaultRule("page.read", "transient", probability=1.0),
            max_attempts=3,
        )
        with pytest.raises(TransientStorageError):
            engine.page_read(0)
        assert engine.ops["page.read"] == 3
        assert engine.faults["page.read:transient"] == 3

    def test_torn_write_behaves_like_transient(self):
        engine = engine_for(FaultRule("page.write", "torn", at_ops=(1,)))
        assert engine.page_write(9) > 0.0
        assert engine.faults == {"page.write:torn": 1}


class TestLockSite:
    STEP = SimpleNamespace(space="node", key="1.3.5")

    def test_injected_timeout(self):
        engine = engine_for(FaultRule("lock.acquire", "timeout", at_ops=(1,)))
        with pytest.raises(LockTimeout) as excinfo:
            engine.lock_request("T1", self.STEP)
        assert excinfo.value.reason == "timeout"
        assert excinfo.value.resource == ("node", "1.3.5")

    def test_injected_deadlock_victim(self):
        engine = engine_for(FaultRule("lock.acquire", "deadlock", at_ops=(2,)))
        engine.lock_request("T1", self.STEP)  # op 1: clean
        with pytest.raises(DeadlockAbort) as excinfo:
            engine.lock_request("T1", self.STEP)
        assert excinfo.value.reason == "deadlock"


class TestWiring:
    def fake_database(self):
        return SimpleNamespace(
            document=SimpleNamespace(buffer=SimpleNamespace(chaos=None)),
            locks=SimpleNamespace(chaos=None),
        )

    def test_install_uninstall(self):
        engine = engine_for(FaultRule("page.read", "transient", probability=0.1))
        db = self.fake_database()
        engine.install(db)
        assert db.document.buffer.chaos is engine
        assert db.locks.chaos is engine
        engine.uninstall()
        assert db.document.buffer.chaos is None
        assert db.locks.chaos is None

    def test_injection_rates(self):
        engine = engine_for(FaultRule("page.read", "latency",
                                      at_ops=(1, 2), latency_ms=1.0))
        for page in range(4):
            engine.page_read(page)
        rates = engine.injection_rates()
        assert rates["page.read"] == pytest.approx(0.5)
        assert rates["page.write"] == 0.0

    def test_empty_schedule_never_faults(self):
        engine = ChaosEngine(FaultSchedule(), seed=1)
        assert [engine.page_read(p) for p in range(50)] == [0.0] * 50
        engine.lock_request("T1", TestLockSite.STEP)
        assert engine.fault_log == []
