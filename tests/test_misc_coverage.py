"""Edge-case coverage for smaller public surfaces."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.dom import parse_document, serialize_document
from repro.dom.streaming import collect_events, START_ELEMENT, END_ELEMENT
from repro.errors import StorageError, VocabularyError
from repro.splid import Splid, document_order
from repro.storage.vocabulary import MAX_SURROGATES, Vocabulary
from repro.tamix.metrics import RunResult
from repro.txn.wal import WriteAheadLog


class TestSplidHelpers:
    def test_document_order_helper(self):
        labels = [Splid.parse(t) for t in ("1.5", "1.3", "1.3.3")]
        assert [str(s) for s in document_order(labels)] == [
            "1.3", "1.3.3", "1.5",
        ]

    def test_common_ancestor_of_self(self):
        s = Splid.parse("1.3.3")
        assert s.common_ancestor(s) == s

    def test_ancestors_of_root_empty(self):
        assert list(Splid.root().ancestors()) == []
        assert Splid.root().ancestors_top_down() == ()


class TestStreamingEdgeCases:
    def test_root_only_document(self):
        db = Database(root_element="empty")
        txn = db.begin()
        events = collect_events(db, txn)
        db.commit(txn)
        assert events == [(START_ELEMENT, "empty", {}), (END_ELEMENT, "empty")]

    def test_attributes_on_root(self):
        db = Database(root_element="r")
        db.document.set_attribute(db.document.root, "k", "v")
        txn = db.begin()
        events = collect_events(db, txn)
        db.commit(txn)
        assert events[0] == (START_ELEMENT, "r", {"k": "v"})


class TestVocabularyLimits:
    def test_exhaustion(self):
        vocab = Vocabulary()
        vocab._by_surrogate = ["x"] * MAX_SURROGATES       # simulate fullness
        vocab._by_name = {"x": 0}
        with pytest.raises(VocabularyError):
            vocab.intern("one-too-many")


class TestMetricsEdgeCases:
    def test_normalized_throughput_zero_duration(self):
        result = RunResult("p", 0, "repeatable", 0.0)
        assert result.normalized_throughput() == 0.0

    def test_row_keys(self):
        row = RunResult("p", 3, "none", 10.0).row()
        assert set(row) == {
            "protocol", "lock_depth", "isolation",
            "committed", "aborted", "deadlocks",
        }


class TestWalRobustness:
    def test_truncated_log_bytes_rejected(self):
        log = WriteAheadLog()
        log.log_begin(1)
        log.log_commit(1)
        data = log.to_bytes()
        with pytest.raises(StorageError):
            WriteAheadLog.from_bytes(data[:-3])

    def test_empty_log_round_trip(self):
        assert len(WriteAheadLog.from_bytes(b"")) == 0


class TestDatabaseRun:
    def test_run_propagates_program_errors(self):
        db = Database(root_element="r")
        txn = db.begin()

        def broken():
            yield from db.nodes.get_child_nodes(txn, db.document.root)
            raise ValueError("app bug")

        with pytest.raises(ValueError):
            db.run(broken())


# -- serializer round-trip property ------------------------------------------

_tags = st.sampled_from(("alpha", "beta", "gamma"))
_texts = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"),
                           whitelist_characters=" <>&\"'"),
    min_size=1, max_size=12,
).filter(lambda t: t.strip())


@st.composite
def xml_specs(draw, depth=0):
    tag = draw(_tags)
    attrs = draw(st.dictionaries(
        st.sampled_from(("a1", "a2")), _texts, max_size=2
    ))
    children = []
    if depth < 2:
        for _i in range(draw(st.integers(0, 2))):
            if draw(st.booleans()):
                children.append(draw(xml_specs(depth=depth + 1)))
            elif not children or not isinstance(children[-1], str):
                children.append(draw(_texts))
    return (tag, attrs, children)


@settings(max_examples=80, deadline=None)
@given(spec=xml_specs())
def test_serialize_parse_round_trip(spec):
    from repro.dom import build_document

    document = build_document(spec)
    text = serialize_document(document)
    reparsed = parse_document(text)
    assert serialize_document(reparsed) == text
