"""Tests for the session-oriented public API (satellite of the
observability PR): context-manager lifecycle, the transaction-bound node
view, and per-session metrics."""

import pytest

from repro import Database, IsolationLevel, Session, TransactionError
from repro.txn.transaction import TxnState

LIBRARY = (
    "topics",
    [("topic", {"id": "t0"}, [
        ("book", {"id": "b0"}, [("title", ["Transaction Processing"])]),
    ])],
)


@pytest.fixture
def db():
    database = Database(protocol="taDOM3+", lock_depth=4, root_element="bib")
    database.load(LIBRARY)
    return database


class TestLifecycle:
    def test_clean_exit_commits(self, db):
        with db.session("reader") as session:
            assert isinstance(session, Session)
            assert session.txn.state is TxnState.ACTIVE
        assert session.txn.state is TxnState.COMMITTED
        assert db.statistics()["committed"] == 1

    def test_exception_rolls_back_and_reraises(self, db):
        book = db.document.element_by_id("b0")
        with pytest.raises(RuntimeError, match="boom"):
            with db.session("doomed") as session:
                session.run(session.nodes.rename_element(book, "tome"))
                assert db.document.name_of(book) == "tome"
                raise RuntimeError("boom")
        assert session.txn.state is TxnState.ABORTED
        # The undo log restored the rename.
        assert db.document.name_of(book) == "book"
        assert db.statistics()["aborted"] == 1

    def test_explicit_commit_makes_exit_a_noop(self, db):
        with db.session() as session:
            session.run(session.nodes.read_subtree(
                db.document.element_by_id("b0")))
            session.commit()
        assert db.statistics()["committed"] == 1

    def test_explicit_abort_even_on_clean_exit(self, db):
        with db.session() as session:
            session.abort()
        assert db.statistics()["committed"] == 0
        assert db.statistics()["aborted"] == 1

    def test_abort_reason_is_recorded(self, db):
        with pytest.raises(RuntimeError):
            with db.session("doomed"):
                raise RuntimeError("no reason attribute -> rollback")
        assert db.transactions.aborted_by_reason == {"rollback": 1}

    def test_run_after_close_raises(self, db):
        with db.session() as session:
            session.commit()
            with pytest.raises(TransactionError):
                session.run(session.nodes.read_subtree(
                    db.document.element_by_id("b0")))


class TestSessionNodes:
    def test_operations_are_transaction_bound(self, db):
        with db.session("reader") as session:
            book = session.run(session.nodes.get_element_by_id("b0"))
            entries = session.run(session.nodes.read_subtree(book))
        assert len(entries) > 1
        assert session.txn.stats.lock_requests > 0

    def test_bound_callable_keeps_its_name(self, db):
        with db.session() as session:
            assert session.nodes.read_subtree.__name__ == "read_subtree"

    def test_bound_methods_are_cached(self, db):
        with db.session() as session:
            assert session.nodes.read_subtree is session.nodes.read_subtree
            assert (session.nodes.get_element_by_id
                    is session.nodes.get_element_by_id)

    def test_dir_lists_node_operations(self, db):
        with db.session() as session:
            listing = dir(session.nodes)
        assert "read_subtree" in listing
        assert "get_element_by_id" in listing
        assert "update_content" in listing


class TestRunContract:
    def test_with_cost_returns_value_and_cost(self, db):
        with db.session() as session:
            value, cost = session.run(
                session.nodes.get_element_by_id("b0"), with_cost=True
            )
            assert value == db.document.element_by_id("b0")
            assert cost >= 0.0
            assert session.elapsed_ms == cost

    def test_database_run_always_returns_the_pair(self, db):
        txn = db.begin("pair")
        value, cost = db.run(db.nodes.get_element_by_id(txn, "b0"))
        assert value == db.document.element_by_id("b0")
        assert cost >= 0.0
        db.commit(txn)

    def test_deadlock_abort_reason_raises_typed(self, db):
        from repro import DeadlockAbort

        session = db.session("victim")
        db.abort(session.txn, reason="deadlock")
        with pytest.raises(DeadlockAbort) as excinfo:
            session.run(session.nodes.get_element_by_id("b0"))
        assert excinfo.value.reason == "deadlock"

    def test_timeout_abort_reason_raises_typed(self, db):
        from repro import LockTimeout

        session = db.session("slow")
        db.abort(session.txn, reason="timeout")
        with pytest.raises(LockTimeout) as excinfo:
            session.run(session.nodes.get_element_by_id("b0"))
        assert excinfo.value.reason == "timeout"

    def test_plain_rollback_raises_transaction_aborted(self, db):
        from repro import TransactionAborted

        session = db.session("plain")
        db.abort(session.txn)
        with pytest.raises(TransactionAborted):
            session.run(session.nodes.get_element_by_id("b0"))


class TestIsolation:
    def test_isolation_accepts_enum_and_string(self, db):
        with db.session("a", isolation=IsolationLevel.COMMITTED) as session:
            assert session.txn.isolation is IsolationLevel.COMMITTED
        with db.session("b", isolation="uncommitted") as session:
            assert session.txn.isolation is IsolationLevel.UNCOMMITTED

    def test_default_isolation_is_database_default(self, db):
        with db.session() as session:
            assert session.txn.isolation is db.default_isolation


class TestMetrics:
    def test_metrics_snapshot_after_work(self, db):
        with db.session("reader") as session:
            book = session.run(session.nodes.get_element_by_id("b0"))
            session.run(session.nodes.read_subtree(book))
            metrics = session.metrics
        assert metrics["state"] == "active"
        assert metrics["operations"] == 2
        assert metrics["lock_requests"] > 0
        assert metrics["elapsed_ms"] >= 0.0
        after = session.metrics
        assert after["state"] == "committed"

    def test_repr_shows_name_and_state(self, db):
        with db.session("probe") as session:
            pass
        assert "probe" in repr(session)
        assert "committed" in repr(session)
