"""Tests for query evaluation: raw oracle + locked evaluation agree."""

import pytest

from repro import Database
from repro.query import QueryProcessor, evaluate_raw
from repro.sched import Delay, Simulator

LIBRARY = (
    "bib",
    [
        ("topics", [
            ("topic", {"id": "t0"}, [
                ("book", {"id": "b0", "year": "1993"}, [
                    ("title", ["Transaction Processing"]),
                    ("author", ["Gray"]),
                    ("history", [
                        ("lend", {"person": "p1"}, []),
                        ("lend", {"person": "p2"}, []),
                    ]),
                ]),
                ("book", {"id": "b1", "year": "2002"}, [
                    ("title", ["XMark Explained"]),
                    ("author", ["Schmidt"]),
                ]),
            ]),
            ("topic", {"id": "t1"}, [
                ("book", {"id": "b2", "year": "1993"}, [
                    ("title", ["The Benchmark Handbook"]),
                    ("author", ["Gray"]),
                ]),
            ]),
        ]),
    ],
)


@pytest.fixture
def db():
    database = Database(protocol="taDOM3+", lock_depth=7, root_element="bib")
    for child in LIBRARY[1]:
        database.load(child)
    return database


def names(db, nodes):
    return [db.document.name_of(n) for n in nodes]


class TestRawEvaluation:
    def test_child_path(self, db):
        result = evaluate_raw(db.document, "/bib/topics/topic")
        assert names(db, result) == ["topic", "topic"]

    def test_descendant(self, db):
        result = evaluate_raw(db.document, "//book")
        assert len(result) == 3

    def test_attribute_result(self, db):
        years = evaluate_raw(db.document, "//book/@year")
        assert years == ["1993", "2002", "1993"]

    def test_text_result(self, db):
        titles = evaluate_raw(db.document, "//book[@id='b0']/title/text()")
        assert titles == ["Transaction Processing"]

    def test_attribute_predicate(self, db):
        result = evaluate_raw(db.document, "//book[@year='1993']")
        assert len(result) == 2

    def test_attribute_existence(self, db):
        assert len(evaluate_raw(db.document, "//book[@year]")) == 3
        assert evaluate_raw(db.document, "//book[@isbn]") == []

    def test_child_text_predicate(self, db):
        result = evaluate_raw(db.document, "//book[author='Gray']")
        assert len(result) == 2

    def test_child_existence_predicate(self, db):
        result = evaluate_raw(db.document, "//book[history]")
        assert [str(s) for s in result] == [
            str(evaluate_raw(db.document, "id('b0')")[0])
        ]

    def test_positional(self, db):
        second = evaluate_raw(db.document, "/bib/topics/topic[1]/book[2]")
        assert evaluate_raw(db.document, "id('b1')") == second
        assert evaluate_raw(db.document, "//book[9]") == []

    def test_wildcard(self, db):
        kids = evaluate_raw(db.document, "/bib/topics/topic[1]/book[1]/*")
        assert names(db, kids) == ["title", "author", "history"]

    def test_id_start(self, db):
        lends = evaluate_raw(db.document, "id('b0')//lend")
        assert len(lends) == 2

    def test_unknown_id(self, db):
        assert evaluate_raw(db.document, "id('zzz')/title") == []

    def test_root_mismatch(self, db):
        assert evaluate_raw(db.document, "/wrongroot/topics") == []


class TestLockedEvaluation:
    QUERIES = (
        "/bib/topics/topic",
        "//book",
        "//book/@year",
        "//book[@id='b0']/title/text()",
        "//book[@year='1993']",
        "//book[author='Gray']",
        "/bib/topics/topic[1]/book[2]",
        "id('b0')//lend",
        "id('b0')/history/lend/@person",
    )

    @pytest.mark.parametrize("query", QUERIES)
    def test_agrees_with_oracle(self, db, query):
        processor = QueryProcessor(db.nodes)
        txn = db.begin("q")
        result, _ = db.run(processor.evaluate(txn, query))
        db.commit(txn)
        assert result == evaluate_raw(db.document, query)

    def test_queries_take_locks(self, db):
        processor = QueryProcessor(db.nodes)
        txn = db.begin("q")
        db.run(processor.evaluate(txn, "//book[@year='1993']"))
        assert txn.stats.lock_requests > 0
        assert db.locks.table.lock_count() > 0
        db.commit(txn)
        assert db.locks.table.lock_count() == 0

    @pytest.mark.parametrize("protocol", [
        "Node2PL", "NO2PL", "OO2PL", "Node2PLa", "IRX", "IRIX", "URIX",
        "taDOM2", "taDOM2+", "taDOM3", "taDOM3+",
    ])
    def test_every_protocol_returns_identical_results(self, protocol):
        """Queries are protocol-independent: only locking differs."""
        database = Database(protocol=protocol, lock_depth=5,
                            root_element="bib")
        for child in LIBRARY[1]:
            database.load(child)
        processor = QueryProcessor(database.nodes)
        txn = database.begin("q")
        query = "//book[author='Gray']/@year"
        result, _ = database.run(processor.evaluate(txn, query))
        database.commit(txn)
        assert result == ["1993", "1993"]

    def test_repeatable_read_blocks_writer(self, db):
        """A query's locks keep its result stable against updates."""
        processor = QueryProcessor(db.nodes)
        order = []
        sim = Simulator()
        db.set_clock(lambda: sim.now)

        def reader():
            txn = db.begin("reader")
            first, = yield from processor.evaluate(
                txn, "//book[@id='b0']/title/text()"
            )
            yield Delay(100.0)
            second, = yield from processor.evaluate(
                txn, "//book[@id='b0']/title/text()"
            )
            order.append(("reads", first, second))
            db.commit(txn)

        def writer():
            txn = db.begin("writer")
            yield Delay(10.0)
            title = evaluate_raw(db.document, "id('b0')/title")[0]
            text = db.document.store.first_child(title)
            yield from db.nodes.update_content(txn, text, "Hacked")
            db.commit(txn)
            order.append(("written",))

        sim.spawn(reader())
        sim.spawn(writer())
        sim.run()
        assert order[0][0] == "reads"
        assert order[0][1] == order[0][2] == "Transaction Processing"
