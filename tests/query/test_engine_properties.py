"""Property test: locked evaluation == raw oracle on random documents."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.query import QueryProcessor, evaluate_raw

TAGS = ("a", "b", "c")


@st.composite
def document_specs(draw, depth=0):
    tag = draw(st.sampled_from(TAGS))
    attrs = {}
    if draw(st.booleans()):
        attrs["k"] = draw(st.sampled_from(("v1", "v2")))
    children = []
    if depth < 3:
        count = draw(st.integers(min_value=0, max_value=3))
        for _i in range(count):
            if draw(st.booleans()):
                children.append(draw(document_specs(depth=depth + 1)))
            else:
                # Adjacent text nodes merge on XML serialization; keep
                # at most one text node per gap so round trips are exact.
                if not children or not isinstance(children[-1], str):
                    children.append(draw(st.sampled_from(("x", "y"))))
    return (tag, attrs, children)


queries = st.sampled_from([
    "//a", "//b", "//c", "//a/b", "//b//c", "//a[@k]",
    "//a[@k='v1']", "//b[1]", "//a/@k", "//b/text()",
    "/root/*", "//a[b]", "//c[2]",
])


@settings(max_examples=80, deadline=None)
@given(spec=document_specs(), query=queries)
def test_locked_matches_oracle(spec, query):
    db = Database(protocol="taDOM3+", lock_depth=5, root_element="root")
    db.load(spec)
    expected = evaluate_raw(db.document, query)

    processor = QueryProcessor(db.nodes)
    txn = db.begin("q")
    result, _elapsed = db.run(processor.evaluate(txn, query))
    db.commit(txn)

    assert result == expected
    assert db.locks.table.lock_count() == 0     # everything released


@settings(max_examples=40, deadline=None)
@given(spec=document_specs(), query=queries)
def test_oracle_is_stable_under_reload(spec, query):
    """Serialization round-trips preserve query results."""
    from repro.dom import parse_document, serialize_document

    db = Database(protocol="taDOM2", root_element="root")
    db.load(spec)
    first = evaluate_raw(db.document, query)
    reloaded = parse_document(serialize_document(db.document))
    second = evaluate_raw(reloaded, query)
    if first and hasattr(first[0], "level"):
        # Node results: labels may differ after reload; compare by shape.
        assert len(first) == len(second)
    else:
        assert first == second
