"""Tests for the path-expression parser."""

import pytest

from repro.query import Axis, QueryError, TestKind, parse_path


class TestSteps:
    def test_simple_absolute_path(self):
        path = parse_path("/bib/topics/topic")
        assert path.id_start is None
        assert [s.test.name for s in path.steps] == ["bib", "topics", "topic"]
        assert all(s.axis is Axis.CHILD for s in path.steps)

    def test_descendant_axis(self):
        path = parse_path("//book/title")
        assert path.steps[0].axis is Axis.DESCENDANT
        assert path.steps[1].axis is Axis.CHILD

    def test_wildcard(self):
        path = parse_path("/bib/*")
        assert path.steps[1].test.kind is TestKind.ANY

    def test_text_step(self):
        path = parse_path("/bib/title/text()")
        assert path.steps[-1].test.kind is TestKind.TEXT

    def test_attribute_step(self):
        path = parse_path("//book/@year")
        assert path.steps[-1].axis is Axis.ATTRIBUTE
        assert path.steps[-1].test.name == "year"

    def test_id_start(self):
        path = parse_path("id('b42')/title")
        assert path.id_start == "b42"
        assert path.steps[0].test.name == "title"

    def test_id_start_alone(self):
        path = parse_path("id('b42')")
        assert path.id_start == "b42"
        assert path.steps == ()

    def test_round_trip_str(self):
        for text in (
            "/bib/topics/topic",
            "//book[@id='b3']/title",
            "id('t0')//lend",
            "/bib//book[2]/@year",
        ):
            assert str(parse_path(text)) == text


class TestPredicates:
    def test_positional(self):
        path = parse_path("/bib/book[2]")
        assert path.steps[1].predicates[0].position == 2

    def test_attribute_equality(self):
        pred = parse_path("//book[@id='b3']").steps[0].predicates[0]
        assert pred.attribute == "id"
        assert pred.value == "b3"

    def test_attribute_existence(self):
        pred = parse_path("//book[@year]").steps[0].predicates[0]
        assert pred.attribute == "year"
        assert pred.value is None

    def test_child_equality(self):
        pred = parse_path("//book[author='Gray']").steps[0].predicates[0]
        assert pred.child == "author"
        assert pred.value == "Gray"

    def test_child_existence(self):
        pred = parse_path("//book[history]").steps[0].predicates[0]
        assert pred.child == "history"
        assert pred.value is None

    def test_double_quotes(self):
        pred = parse_path('//book[@id="b3"]').steps[0].predicates[0]
        assert pred.value == "b3"

    def test_multiple_predicates(self):
        step = parse_path("//book[@year='1993'][2]").steps[0]
        assert len(step.predicates) == 2


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "", "book", "/bib/[1]", "//book[@id=b3]", "//book[0]",
        "id('x'", "id('x')title", "/bib/book[", "//@year",
        "/bib/book[@id='unterminated]",
    ])
    def test_rejected(self, bad):
        with pytest.raises(QueryError):
            parse_path(bad)
