"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py"),
    key=lambda p: p.name,
)

FAST_ARGS = {
    "protocol_contest.py": ["--scale", "0.02", "--seconds", "10"],
}


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    args = FAST_ARGS.get(script.name, [])
    proc = subprocess.run(
        [sys.executable, str(script), *args],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must print something"


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py", "protocol_contest.py", "deadlock_anatomy.py",
        "isolation_levels.py", "splid_storage_tour.py",
        "xdp_interfaces.py", "crash_recovery.py",
    } <= names
