"""Fault tolerance of the sweep runner: pool breakage, journal, resume."""

import json

import pytest

from repro.errors import BenchmarkError
from repro.tamix.sweep import SweepRunner, SweepSpec, _execute_cell


def small_spec(**overrides):
    defaults = dict(
        protocols=("taDOM2", "taDOM3+"),
        lock_depths=(0, 4),
        isolations=("repeatable",),
        runs_per_cell=1,
        scale=0.02,
        run_duration_ms=4_000.0,
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


@pytest.fixture(scope="module")
def baseline_json():
    """The uninterrupted serial run every scenario must reproduce."""
    runner = SweepRunner(small_spec())
    runner.run()
    return runner.to_json()


class TestPoolFailureSalvage:
    def test_broken_pool_keeps_delivered_cells(self, baseline_json,
                                               monkeypatch):
        """Kill the 'pool' after two delivered cells: the two delivered
        results must be kept and only the remaining cells re-executed."""
        spec = small_spec()
        cells = list(spec.cells())
        runner = SweepRunner(spec, workers=2)

        def dying_pool(self, pending):
            for cell in pending[:2]:
                yield (cell, _execute_cell(spec, cell))
            yield None  # the pool broke with the rest in flight

        executed = []
        real_execute = SweepRunner._execute_with_retry

        def counting_execute(self, cell):
            executed.append(cell)
            return real_execute(self, cell)

        monkeypatch.setattr(SweepRunner, "_iter_parallel", dying_pool)
        monkeypatch.setattr(SweepRunner, "_execute_with_retry",
                            counting_execute)
        runner.run()
        assert executed == cells[2:]          # salvaged cells not re-run
        assert runner.to_json() == baseline_json

    def test_immediately_broken_pool_falls_back_serial(self, baseline_json,
                                                       monkeypatch):
        monkeypatch.setattr(SweepRunner, "_iter_parallel",
                            lambda self, pending: iter([None]))
        runner = SweepRunner(small_spec(), workers=2)
        runner.run()
        assert runner.to_json() == baseline_json


class TestCellRetry:
    def test_transient_cell_failure_retried(self, monkeypatch):
        calls = {"n": 0}

        def flaky(spec, cell, trace_dir=None, access_events=False):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("worker died")
            return _execute_cell(spec, cell, trace_dir, access_events)

        monkeypatch.setattr("repro.tamix.sweep._execute_cell", flaky)
        spec = small_spec(protocols=("taDOM3+",), lock_depths=(0,))
        runner = SweepRunner(spec, cell_retries=1)
        results = runner.run()
        assert calls["n"] == 2
        assert len(results) == 1

    def test_retries_exhausted_reraises(self, monkeypatch):
        def always_fails(spec, cell, trace_dir=None, access_events=False):
            raise OSError("worker died")

        monkeypatch.setattr("repro.tamix.sweep._execute_cell", always_fails)
        runner = SweepRunner(small_spec(protocols=("taDOM3+",),
                                        lock_depths=(0,)), cell_retries=2)
        with pytest.raises(OSError):
            runner.run()

    def test_benchmark_error_not_retried(self, monkeypatch):
        calls = {"n": 0}

        def misconfigured(spec, cell, trace_dir=None, access_events=False):
            calls["n"] += 1
            raise BenchmarkError("bad spec")

        monkeypatch.setattr("repro.tamix.sweep._execute_cell", misconfigured)
        runner = SweepRunner(small_spec(protocols=("taDOM3+",),
                                        lock_depths=(0,)), cell_retries=3)
        with pytest.raises(BenchmarkError):
            runner.run()
        assert calls["n"] == 1


class TestJournalResume:
    def test_interrupt_and_resume_byte_identical(self, baseline_json,
                                                 tmp_path):
        journal = tmp_path / "sweep.journal"
        partial = SweepRunner(small_spec(), journal=journal)
        partial.run(stop_after=2)             # "killed" after two cells
        assert len(json.loads(partial.to_json())) == 2

        resumed = SweepRunner(small_spec(), journal=journal, resume=True)
        resumed.run()
        assert resumed.resumed_cells == 2
        assert resumed.to_json() == baseline_json

    def test_resume_of_complete_journal_runs_nothing(self, baseline_json,
                                                     tmp_path, monkeypatch):
        journal = tmp_path / "sweep.journal"
        SweepRunner(small_spec(), journal=journal).run()

        def boom(spec, cell, trace_dir=None, access_events=False):
            raise AssertionError("no cell should re-run")

        monkeypatch.setattr("repro.tamix.sweep._execute_cell", boom)
        resumed = SweepRunner(small_spec(), journal=journal, resume=True)
        resumed.run()
        assert resumed.resumed_cells == 4
        assert resumed.to_json() == baseline_json

    def test_torn_trailing_line_ignored(self, baseline_json, tmp_path):
        journal = tmp_path / "sweep.journal"
        partial = SweepRunner(small_spec(), journal=journal)
        partial.run(stop_after=2)
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "cell", "cell": {"proto')  # died mid-write
        resumed = SweepRunner(small_spec(), journal=journal, resume=True)
        resumed.run()
        assert resumed.resumed_cells == 2
        assert resumed.to_json() == baseline_json

    def test_journal_spec_mismatch_refused(self, tmp_path):
        journal = tmp_path / "sweep.journal"
        SweepRunner(small_spec(), journal=journal).run(stop_after=1)
        other = SweepRunner(small_spec(base_seed=99), journal=journal,
                            resume=True)
        with pytest.raises(BenchmarkError):
            other.run()

    def test_resume_requires_journal(self):
        with pytest.raises(BenchmarkError):
            SweepRunner(small_spec(), resume=True)

    def test_progress_fires_for_journaled_cells_in_matrix_order(self,
                                                                tmp_path):
        journal = tmp_path / "sweep.journal"
        SweepRunner(small_spec(), journal=journal).run(stop_after=2)
        seen = []
        resumed = SweepRunner(small_spec(), journal=journal, resume=True)
        resumed.run(progress=lambda cell, outcome: seen.append(cell))
        assert seen == list(small_spec().cells())
