"""Sweep report generation: determinism, canonical histogram columns,
and the Markdown/HTML renderers."""

import csv
import io
import json

from repro.tamix.sweep import (
    CellResult,
    HISTOGRAM_BUCKET_ORDER,
    SweepCell,
    SweepRunner,
    SweepSpec,
    canonical_histogram,
)
from repro.tamix.sweep_report import (
    load_rows,
    render_html,
    render_markdown,
)

ROWS = [
    {
        "protocol": "taDOM2", "lock_depth": 0, "isolation": "repeatable",
        "runs": 1, "committed": 40.0, "aborted": 3.0, "deadlocks": 1.0,
        "wait_total_ms": 812.5,
        "wait_histogram": {"le_100": 2, "le_1000": 1},
    },
    {
        "protocol": "taDOM2", "lock_depth": 4, "isolation": "repeatable",
        "runs": 1, "committed": 55.0, "aborted": 1.0, "deadlocks": 0.0,
        "wait_total_ms": 120.25,
        "wait_histogram": {"le_250": 1},
    },
    {
        "protocol": "taDOM3+", "lock_depth": 0, "isolation": "repeatable",
        "runs": 1, "committed": 44.0, "aborted": 2.0, "deadlocks": 1.0,
        "wait_total_ms": 600.0,
        "wait_histogram": {},
    },
    {
        "protocol": "taDOM3+", "lock_depth": 4, "isolation": "repeatable",
        "runs": 1, "committed": 61.0, "aborted": 0.0, "deadlocks": 0.0,
        "wait_total_ms": 45.125,
        "wait_histogram": {"le_50": 1},
    },
]


class TestRenderDeterminism:
    def test_markdown_is_byte_identical_across_calls(self):
        assert render_markdown(ROWS) == render_markdown(ROWS)

    def test_html_is_byte_identical_across_calls(self):
        assert render_html(ROWS) == render_html(ROWS)

    def test_rendering_from_file_equals_in_memory(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(ROWS), encoding="utf-8")
        assert render_markdown(path) == render_markdown(ROWS)
        assert load_rows(path) == ROWS


class TestMarkdownReport:
    def test_contains_the_paper_comparison_shapes(self):
        text = render_markdown(ROWS, title="contest")
        assert text.startswith("# contest")
        assert "## Experiment matrix" in text
        assert "Committed transactions -- isolation repeatable" in text
        assert "Throughput over lock depth" in text
        assert "Contention heatmap" in text
        assert "| taDOM3+ | 44.00 | 61.00 |" in text

    def test_histogram_table_uses_canonical_bucket_order(self):
        text = render_markdown(ROWS)
        header_line = next(
            line for line in text.splitlines() if "| le_1 |" in line
        )
        buckets = [
            cell.strip() for cell in header_line.strip("|").split("|")
        ][3:]
        assert buckets == list(HISTOGRAM_BUCKET_ORDER)

    def test_single_depth_sweep_skips_the_line_chart(self):
        rows = [row for row in ROWS if row["lock_depth"] == 4]
        text = render_markdown(rows)
        assert "Throughput over lock depth" not in text
        assert "Contention heatmap" in text


class TestHtmlReport:
    def test_is_a_self_contained_page_with_tables(self):
        page = render_html(ROWS, title="a <contest> & more")
        assert page.startswith("<!DOCTYPE html>")
        assert page.endswith("</html>\n")
        assert "<style>" in page
        assert "<table>" in page and "<pre>" in page
        assert "a &lt;contest&gt; &amp; more" in page
        assert "<contest>" not in page.replace(
            "<title>", "").replace("</title>", "")


class TestCanonicalHistogram:
    def test_order_and_zero_fill(self):
        buckets = canonical_histogram({"le_inf": 2, "le_5": 1})
        assert list(buckets) == list(HISTOGRAM_BUCKET_ORDER)
        assert buckets["le_5"] == 1
        assert buckets["le_inf"] == 2
        assert buckets["le_100"] == 0

    def test_as_row_histogram_keys_are_stable_even_when_empty(self):
        result = CellResult(cell=SweepCell("taDOM2", 0, "repeatable", 0))
        row = result.as_row(include_histogram=True)
        assert list(row["wait_histogram"]) == list(HISTOGRAM_BUCKET_ORDER)

    def test_csv_header_has_canonical_wait_columns(self):
        spec = SweepSpec(
            protocols=("taDOM2", "taDOM3+"),
            lock_depths=(0,),
            run_duration_ms=100.0,
            scale=0.05,
        )
        runner = SweepRunner(spec)
        for cell in spec.cells():  # no need to simulate: empty results
            runner.results[
                (cell.protocol, cell.lock_depth, cell.isolation)
            ] = CellResult(cell=cell, runs=1)
        text = runner.to_csv(include_histogram=True)
        header = next(csv.reader(io.StringIO(text)))
        expected = [f"wait_{bucket}" for bucket in HISTOGRAM_BUCKET_ORDER]
        assert [col for col in header if col.startswith("wait_le_")] == expected


class TestHeatmapRenderer:
    def test_peak_cell_gets_the_darkest_glyph(self):
        from repro.tamix.report import heatmap

        text = heatmap(
            {"taDOM2": {0: 812.5, 4: 120.25}, "taDOM3+": {0: 600.0}},
            columns=[0, 4],
            title="blocking",
        )
        assert text.splitlines()[0] == "blocking"
        assert "@@@" in text
        assert "scale: ' ' = 0 .. '@' = 812.50" in text

    def test_missing_cells_render_blank(self):
        from repro.tamix.report import heatmap

        text = heatmap({"single": {0: 1.0}}, columns=[0, 4])
        row = next(line for line in text.splitlines() if "single" in line)
        assert row.rstrip().endswith("@@@")
