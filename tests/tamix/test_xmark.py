"""Tests for the XMark-style auction workload (Section 4.1 argument)."""

import random

import pytest

from repro.errors import BenchmarkError
from repro.query import evaluate_raw
from repro.tamix.xmark import (
    generate_auction,
    run_xmark,
    xmark_query_mix,
)


@pytest.fixture(scope="module")
def info():
    return generate_auction(scale=0.05, seed=3)


class TestGenerator:
    def test_structure(self, info):
        doc = info.document
        assert doc.name_of(doc.root) == "site"
        assert len(doc.elements_by_name("item")) == len(info.item_ids)
        assert len(doc.elements_by_name("person")) == len(info.person_ids)
        assert len(doc.elements_by_name("open_auction")) == len(info.auction_ids)
        assert len(info.item_ids) == 6 * 5  # six regions x round(100*0.05)

    def test_ids_resolve(self, info):
        doc = info.document
        for item_id in info.item_ids[:5]:
            assert doc.element_by_id(item_id) is not None
        for auction_id in info.auction_ids[:5]:
            assert doc.element_by_id(auction_id) is not None

    def test_itemrefs_point_at_items(self, info):
        doc = info.document
        for auction_id in info.auction_ids[:10]:
            auction = doc.element_by_id(auction_id)
            refs = [
                doc.attribute_value(child, "item")
                for child in doc.store.children(auction)
                if doc.name_of(child) == "itemref"
            ]
            assert refs
            assert all(ref in set(info.item_ids) for ref in refs)

    def test_deterministic(self):
        a = generate_auction(scale=0.02, seed=9)
        b = generate_auction(scale=0.02, seed=9)
        assert a.item_ids == b.item_ids
        assert len(a.document) == len(b.document)

    def test_invalid_scale(self):
        with pytest.raises(BenchmarkError):
            generate_auction(scale=-1)


class TestQueries:
    def test_mix_queries_are_valid_and_nonempty(self, info):
        rng = random.Random(4)
        seen_shapes = set()
        for _i in range(40):
            query = xmark_query_mix(info, rng)
            result = evaluate_raw(info.document, query)
            assert result, f"empty result for {query}"
            seen_shapes.add(query.split("(")[0][:12])
        assert len(seen_shapes) >= 3  # several different templates drawn


class TestRunner:
    def test_read_only_run(self, info):
        result = run_xmark("taDOM3+", info=info, clients=6,
                           run_duration_ms=5_000.0, think_ms=50.0)
        assert result.completed_queries > 0
        assert result.aborted == 0
        assert result.deadlocks == 0

    def test_protocol_choice_is_irrelevant(self, ):
        counts = {}
        for protocol in ("Node2PLa", "taDOM3+"):
            local = generate_auction(scale=0.05, seed=3)
            result = run_xmark(protocol, info=local, clients=6,
                               run_duration_ms=5_000.0, think_ms=50.0)
            counts[protocol] = result.completed_queries
        low, high = sorted(counts.values())
        assert high <= low * 1.1
