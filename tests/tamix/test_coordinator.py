"""Tests for the TaMix coordinator, metrics, and cluster runners."""

import pytest

from repro.errors import BenchmarkError
from repro.tamix import (
    CLUSTER1_MIX,
    TaMixConfig,
    TaMixCoordinator,
    generate_bib,
    make_database,
    run_cluster1,
    run_cluster2,
)
from repro.tamix.metrics import RunResult, TypeMetrics


class TestConfig:
    def test_cluster1_population(self):
        config = TaMixConfig()
        assert sum(config.mix.values()) == 24
        assert config.active_transactions == 72

    def test_paper_defaults(self):
        config = TaMixConfig()
        assert config.wait_after_commit_ms == 2500.0
        assert config.wait_after_operation_ms == 100.0
        assert config.initial_wait_max_ms == 5000.0
        assert config.clients == 3

    def test_unknown_transaction_type_rejected(self):
        database, info = make_database("taDOM3+", 4, "repeatable", scale=0.02)
        config = TaMixConfig(mix={"TAnonsense": 1})
        with pytest.raises(BenchmarkError):
            TaMixCoordinator(database, info, config).run()

    def test_mismatched_document_rejected(self):
        database, _info = make_database("taDOM3+", 4, "repeatable", scale=0.02)
        other = generate_bib(scale=0.02)
        with pytest.raises(BenchmarkError):
            TaMixCoordinator(database, other, TaMixConfig())


class TestMetrics:
    def test_type_metrics_durations(self):
        metrics = TypeMetrics()
        metrics.record_commit(10.0)
        metrics.record_commit(30.0)
        metrics.record_abort("deadlock")
        metrics.record_abort("timeout")
        assert metrics.committed == 2
        assert metrics.aborted == 2
        assert metrics.deadlock_aborts == 1
        assert metrics.timeout_aborts == 1
        assert metrics.avg_duration == 20.0
        assert metrics.min_duration == 10.0
        assert metrics.max_duration == 30.0

    def test_empty_durations(self):
        metrics = TypeMetrics()
        assert metrics.avg_duration is None
        assert metrics.min_duration is None

    def test_run_result_aggregation(self):
        result = RunResult("taDOM3+", 4, "repeatable", 60_000.0)
        result.by_type["TAqueryBook"].record_commit(5.0)
        result.by_type["TAchapter"].record_commit(7.0)
        result.by_type["TAchapter"].record_abort()
        assert result.committed == 2
        assert result.aborted == 1
        assert result.committed_of("TAqueryBook") == 1
        assert result.normalized_throughput() == 10.0
        assert "taDOM3+" in result.summary()
        assert result.row()["committed"] == 2


class TestCluster1:
    def test_short_run_produces_commits(self):
        result = run_cluster1(
            "taDOM3+", lock_depth=6, scale=0.02, run_duration_ms=15_000
        )
        assert result.committed > 0
        assert result.protocol == "taDOM3+"
        assert set(result.by_type) <= set(CLUSTER1_MIX)
        for metrics in result.by_type.values():
            for duration in metrics.durations:
                assert duration > 0

    def test_reproducible_with_seed(self):
        a = run_cluster1("URIX", lock_depth=4, scale=0.02,
                         run_duration_ms=10_000, seed=3)
        b = run_cluster1("URIX", lock_depth=4, scale=0.02,
                         run_duration_ms=10_000, seed=3)
        assert a.committed == b.committed
        assert a.aborted == b.aborted
        assert a.deadlocks == b.deadlocks

    def test_different_seeds_differ(self):
        a = run_cluster1("taDOM3+", lock_depth=6, scale=0.02,
                         run_duration_ms=15_000, seed=1)
        b = run_cluster1("taDOM3+", lock_depth=6, scale=0.02,
                         run_duration_ms=15_000, seed=2)
        # Not necessarily different counts, but different schedules almost
        # surely change some metric.
        assert (a.committed, a.aborted, sorted(
            m.avg_duration for m in a.by_type.values() if m.durations
        )) != (b.committed, b.aborted, sorted(
            m.avg_duration for m in b.by_type.values() if m.durations
        ))

    def test_document_consistency_after_run(self):
        """After a concurrent run, committed state is structurally sound."""
        database, info = make_database(
            "taDOM2", 5, "repeatable", scale=0.02
        )
        config = TaMixConfig(protocol="taDOM2", lock_depth=5,
                             run_duration_ms=20_000.0)
        TaMixCoordinator(database, info, config).run()
        doc = info.document
        labels = [splid for splid, _r in doc.walk()]
        assert labels == sorted(labels)
        for splid in labels:
            parent = splid.parent
            if parent is not None:
                assert doc.exists(parent), f"orphan {splid}"
        # Every indexed id still points at a live element.
        for id_value in doc.id_index.ids():
            assert doc.exists(doc.element_by_id(id_value))


class TestCluster2:
    def test_returns_elapsed_time(self):
        elapsed = run_cluster2("taDOM3+", scale=0.02)
        assert elapsed > 0

    def test_star_2pl_pays_for_the_scan(self):
        fast = run_cluster2("taDOM3+", scale=0.02)
        slow = run_cluster2("Node2PL", scale=0.02)
        assert slow > fast * 1.3
