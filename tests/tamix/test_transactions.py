"""Unit tests for the five TaMix transaction programs."""

import random

import pytest

from repro import Database
from repro.sched.simulator import run_sync
from repro.tamix import TaMixConfig, generate_bib
from repro.tamix.transactions import (
    TRANSACTION_TYPES,
    ta_chapter,
    ta_del_book,
    ta_lend_and_return,
    ta_query_book,
    ta_rename_topic,
)


@pytest.fixture(scope="module")
def info():
    return generate_bib(scale=0.02, seed=11)


@pytest.fixture
def db(info):
    # Reuse the generated document across tests; read-only programs leave
    # it untouched and writers are validated per test.
    return Database(protocol="taDOM3+", lock_depth=6, document=info.document)


@pytest.fixture
def cfg():
    return TaMixConfig(wait_after_operation_ms=0.0)


def run_program(db, program, rng, info, cfg, name="t"):
    txn = db.begin(name)
    result, elapsed = run_sync(program(db.nodes, txn, rng, info, cfg))
    db.commit(txn)
    return txn, elapsed


class TestTaQueryBook:
    def test_reads_a_whole_book(self, db, info, cfg):
        txn, elapsed = run_program(db, ta_query_book, random.Random(1), info, cfg)
        assert txn.stats.operations == 2            # jump + subtree read
        assert txn.stats.nodes_visited > 20
        assert elapsed > 0
        assert not txn.undo_log

    def test_pure_reader_leaves_document_unchanged(self, db, info, cfg):
        before = len(db.document)
        run_program(db, ta_query_book, random.Random(2), info, cfg)
        assert len(db.document) == before

    def test_think_time_applied(self, db, info):
        chatty = TaMixConfig(wait_after_operation_ms=100.0)
        _txn, elapsed = run_program(db, ta_query_book, random.Random(3),
                                    info, chatty)
        assert elapsed > 1000.0                     # ~1 think per node read


class TestTaChapter:
    def test_updates_one_summary(self, db, info, cfg):
        rng = random.Random(4)
        txn = db.begin("chapter")
        run_sync(ta_chapter(db.nodes, txn, rng, info, cfg))
        # Before commit the undo log holds exactly the content change.
        kinds = [kind for kind, _p in txn.undo_log]
        assert kinds == ["content"]
        db.commit(txn)

    def test_summary_actually_changed(self, db, info, cfg):
        rng = random.Random(5)
        txn = db.begin("chapter")
        run_sync(ta_chapter(db.nodes, txn, rng, info, cfg))
        (kind, (owner, old)), = txn.undo_log
        db.commit(txn)
        assert db.document.string_value(owner) != old
        assert db.document.string_value(owner).startswith("revised summary")


class TestTaDelBook:
    def test_deletes_one_book(self, info, cfg):
        local = generate_bib(scale=0.02, seed=77)
        db = Database(protocol="taDOM3+", lock_depth=6, document=local.document)
        books_before = len(local.document.elements_by_name("book"))
        run_program(db, ta_del_book, random.Random(6), local, cfg)
        assert len(local.document.elements_by_name("book")) == books_before - 1

    def test_abort_restores_book(self, info, cfg):
        local = generate_bib(scale=0.02, seed=78)
        db = Database(protocol="taDOM3+", lock_depth=6, document=local.document)
        snapshot = sorted(str(s) for s, _r in local.document.walk())
        txn = db.begin("del")
        run_sync(ta_del_book(db.nodes, txn, random.Random(7), local, cfg))
        db.abort(txn)
        assert sorted(str(s) for s, _r in local.document.walk()) == snapshot


class TestTaLendAndReturn:
    def test_inserts_a_lend(self, info, cfg):
        local = generate_bib(scale=0.02, seed=79)
        db = Database(protocol="taDOM3+", lock_depth=6, document=local.document)
        lends_before = len(local.document.elements_by_name("lend"))
        txn, _ = run_program(db, ta_lend_and_return, random.Random(8),
                             local, cfg)
        lends_after = len(local.document.elements_by_name("lend"))
        # Either pure lend (+1) or return+lend (0 net).
        assert lends_after - lends_before in (0, 1)
        kinds = {kind for kind, _p in []}
        assert txn.stats.operations >= 4

    def test_new_lend_has_attributes(self, info, cfg):
        local = generate_bib(scale=0.02, seed=80)
        db = Database(protocol="taDOM3+", lock_depth=6, document=local.document)
        txn = db.begin("lend")
        run_sync(ta_lend_and_return(db.nodes, txn, random.Random(9),
                                    local, cfg))
        inserts = [p for kind, p in txn.undo_log if kind == "insert"]
        assert inserts
        db.commit(txn)
        attrs = local.document.attributes_of(inserts[-1])
        assert set(attrs) == {"person", "return"}
        assert attrs["person"].startswith("p")


class TestTaRenameTopic:
    def test_renames_a_topic(self, info, cfg):
        local = generate_bib(scale=0.02, seed=81)
        db = Database(protocol="taDOM3+", lock_depth=6, document=local.document)
        txn = db.begin("rename")
        run_sync(ta_rename_topic(db.nodes, txn, random.Random(10),
                                 local, cfg))
        renames = [p for kind, p in txn.undo_log if kind == "rename"]
        assert len(renames) == 1
        element, old = renames[0]
        db.commit(txn)
        assert old == "topic"
        assert local.document.name_of(element) in (
            "topic", "subject", "category", "area",
        )

    def test_id_still_resolves_after_rename(self, info, cfg):
        local = generate_bib(scale=0.02, seed=82)
        db = Database(protocol="taDOM3+", lock_depth=6, document=local.document)
        run_program(db, ta_rename_topic, random.Random(11), local, cfg)
        for topic_id in local.topic_ids:
            assert local.document.element_by_id(topic_id) is not None


class TestRegistry:
    def test_all_five_types(self):
        assert set(TRANSACTION_TYPES) == {
            "TAqueryBook", "TAchapter", "TAdelBook",
            "TAlendAndReturn", "TArenameTopic",
        }

    @pytest.mark.parametrize("name", sorted(TRANSACTION_TYPES))
    def test_every_type_runs_single_user(self, name, cfg):
        local = generate_bib(scale=0.02, seed=hash(name) % 1000)
        db = Database(protocol="URIX", lock_depth=6, document=local.document)
        txn = db.begin(name)
        run_sync(TRANSACTION_TYPES[name](db.nodes, txn, random.Random(0),
                                         local, cfg))
        db.commit(txn)
        assert txn.stats.operations >= 1
