"""Tests for the bib document generator (Section 4.3 composition)."""

import pytest

from repro.errors import BenchmarkError
from repro.storage.record import NodeKind
from repro.tamix import generate_bib


@pytest.fixture(scope="module")
def info():
    return generate_bib(scale=0.05, seed=99)


class TestComposition:
    def test_scale_proportions(self, info):
        doc = info.document
        # 5% of the paper's composition: 5 topics x 20 books, 50 persons.
        assert info.topics == 5
        assert info.books == 100
        assert len(doc.elements_by_name("topic")) == 5
        assert len(doc.elements_by_name("book")) == 100
        assert len(doc.elements_by_name("person")) == 50
        assert len(doc.elements_by_name("author")) >= 100  # section + books

    def test_books_equally_distributed(self, info):
        doc = info.document
        for topic in doc.elements_by_name("topic"):
            books = [
                child for child in doc.store.children(topic)
                if doc.name_of(child) == "book"
            ]
            assert len(books) == 20

    def test_chapter_counts(self, info):
        doc = info.document
        for chapters in doc.elements_by_name("chapters")[:20]:
            count = doc.store.child_count(chapters)
            assert 5 <= count <= 10

    def test_history_lend_counts(self, info):
        doc = info.document
        for history in doc.elements_by_name("history")[:20]:
            lends = list(doc.store.children(history))
            assert len(lends) in (9, 10)
            for lend in lends[:2]:
                attrs = doc.attributes_of(lend)
                assert set(attrs) == {"person", "return"}
                assert attrs["person"] in set(info.person_ids)

    def test_ids_resolvable(self, info):
        doc = info.document
        for book_id in info.book_ids[:10]:
            book = doc.element_by_id(book_id)
            assert book is not None
            assert doc.name_of(book) == "book"
        for topic_id in info.topic_ids:
            assert doc.element_by_id(topic_id) is not None

    def test_book_structure(self, info):
        doc = info.document
        book = doc.element_by_id(info.book_ids[0])
        names = [doc.name_of(c) for c in doc.store.children(book)]
        assert names == ["title", "author", "price", "chapters", "history"]

    def test_deterministic(self):
        a = generate_bib(scale=0.02, seed=5)
        b = generate_bib(scale=0.02, seed=5)
        assert len(a.document) == len(b.document)
        assert a.book_ids == b.book_ids
        labels_a = [str(s) for s, _r in a.document.walk()]
        labels_b = [str(s) for s, _r in b.document.walk()]
        assert labels_a == labels_b

    def test_invalid_scale(self):
        with pytest.raises(BenchmarkError):
            generate_bib(scale=0.0)

    def test_string_nodes_present(self, info):
        kinds = {record.kind for _s, record in info.document.walk()}
        assert kinds == {
            NodeKind.ELEMENT, NodeKind.ATTRIBUTE_ROOT, NodeKind.ATTRIBUTE,
            NodeKind.TEXT, NodeKind.STRING,
        }
