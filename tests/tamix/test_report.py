"""Tests for the ASCII report renderers."""

from repro.tamix.report import bar_chart, line_chart, mode_profile_table


class TestLineChart:
    def test_renders_series_and_legend(self):
        chart = line_chart(
            {"taDOM3+": [60, 80, 400, 420], "URIX": [60, 80, 300, 320]},
            x_labels=[0, 1, 2, 3],
            title="throughput",
        )
        assert "throughput" in chart
        assert "* taDOM3+" in chart
        assert "o URIX" in chart
        assert "+----" in chart

    def test_peak_row_contains_top_series(self):
        chart = line_chart({"a": [0, 100]}, x_labels=[0, 1])
        first_data_row = chart.splitlines()[0]
        assert "*" in first_data_row          # the peak sits on the top row

    def test_empty_series(self):
        assert line_chart({}, x_labels=[], title="t") == "t"

    def test_all_zero_series(self):
        chart = line_chart({"a": [0, 0]}, x_labels=[0, 1])
        assert "*" in chart                   # plotted on the baseline


class TestBarChart:
    def test_bars_scale_to_peak(self):
        chart = bar_chart({"Node2PL": 5.0, "taDOM3+": 10.0}, width=10)
        lines = chart.splitlines()
        node2pl = next(l for l in lines if "Node2PL" in l)
        tadom = next(l for l in lines if "taDOM3+" in l)
        assert tadom.count("#") == 10
        assert node2pl.count("#") == 5

    def test_zero_value_has_no_bar(self):
        chart = bar_chart({"dead": 0.0, "alive": 3.0})
        dead = next(l for l in chart.splitlines() if "dead" in l)
        assert "#" not in dead

    def test_empty(self):
        assert bar_chart({}, title="x") == "x"


class TestModeProfileTable:
    def test_sorted_by_count(self):
        table = mode_profile_table(
            {"taDOM3+": {"IR": 100, "SX": 5, "NR": 50}}, top=2
        )
        row = table.splitlines()[0]
        assert row.index("IR=100") < row.index("NR=50")
        assert "SX" not in row                # cut by top=2
