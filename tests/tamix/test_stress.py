"""High-contention stress runs: shake out rare interleavings.

A tiny document (one topic, 20 books) under the full 72-transaction
CLUSTER1 population maximizes conflicts, deadlocks, timeouts, and
rollbacks.  After each run the document must be structurally sound and
the metrics internally consistent -- for every protocol group.
"""

import pytest

from repro.tamix import generate_bib, make_database, TaMixConfig, TaMixCoordinator


def run_stress(protocol, *, lock_depth=4, isolation="repeatable"):
    info = generate_bib(scale=0.01, seed=99)   # 1 topic, 20 books
    database, info = make_database(
        protocol, lock_depth, isolation, info=info
    )
    config = TaMixConfig(
        protocol=protocol,
        lock_depth=lock_depth,
        isolation=isolation,
        run_duration_ms=40_000.0,
        seed=7,
    )
    result = TaMixCoordinator(database, info, config).run()
    return database, info, result


@pytest.mark.parametrize("protocol", [
    "Node2PL", "OO2PL", "Node2PLa", "IRX", "URIX", "taDOM2", "taDOM3+",
])
def test_stress_run_stays_consistent(protocol):
    database, info, result = run_stress(protocol)
    doc = database.document

    # Progress happened and the accounting adds up.
    assert result.committed > 0
    assert result.committed == database.transactions.committed
    assert result.aborted == database.transactions.aborted
    for metrics in result.by_type.values():
        assert metrics.aborted == metrics.deadlock_aborts + metrics.timeout_aborts
        assert len(metrics.durations) == metrics.committed

    # Structural soundness after heavy concurrent mutation.
    labels = [splid for splid, _record in doc.walk()]
    assert labels == sorted(labels)
    label_set = set(labels)
    for splid in labels:
        if splid.parent is not None:
            assert splid.parent in label_set, f"orphan {splid}"

    # Index integrity: every id resolves, every element is indexed.
    for id_value in doc.id_index.ids():
        assert doc.exists(doc.element_by_id(id_value))
    for name in ("book", "topic", "history"):
        for element in doc.elements_by_name(name):
            assert doc.exists(element)
            assert doc.name_of(element) == name


def test_stress_under_weak_isolation_does_not_crash():
    """Isolation 'uncommitted' permits anomalies but never corruption."""
    database, _info, result = run_stress("taDOM3+", isolation="uncommitted")
    assert result.committed > 0
    doc = database.document
    labels = [splid for splid, _record in doc.walk()]
    assert labels == sorted(labels)


def test_stress_depth_zero_is_survivable():
    """Document locks: almost everything serializes, nothing breaks."""
    database, _info, result = run_stress("taDOM3+", lock_depth=0)
    assert result.committed + result.aborted > 0
    assert database.locks.table.lock_count() >= 0  # table still coherent
