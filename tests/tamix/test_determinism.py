"""Determinism regression tests for the benchmark environment.

The SPLID interning cache and the parallel sweep must not perturb
results: the same ``TaMixConfig.seed`` has to yield identical
``RunResult`` counters whether the label cache is cold or warm, and a
multi-worker sweep has to reproduce the serial sweep byte-for-byte
(guards against iteration-order or RNG-stream drift from the
optimizations).
"""

from repro.obs import txn_label
from repro.splid import Splid
from repro.tamix import TaMixConfig, TaMixCoordinator, generate_bib, make_database
from repro.tamix.cluster import run_cluster1
from repro.tamix.sweep import SweepRunner, SweepSpec

RUN_KW = dict(
    lock_depth=4,
    isolation="repeatable",
    scale=0.05,
    run_duration_ms=4_000.0,
    seed=42,
)


def counters(result):
    return {
        "committed": result.committed,
        "aborted": result.aborted,
        "deadlocks": result.deadlocks,
        "deadlocks_by_kind": dict(result.deadlocks_by_kind),
        "lock_stats": dict(result.lock_stats),
        "by_type": {
            name: (m.committed, m.aborted, m.deadlock_aborts,
                   m.timeout_aborts, tuple(m.durations))
            for name, m in result.by_type.items()
        },
    }


def test_same_seed_same_counters_cold_vs_warm_intern_cache():
    Splid.clear_intern_cache()
    cold = counters(run_cluster1("taDOM3+", **RUN_KW))
    # Second run reuses every label the first one interned.
    warm = counters(run_cluster1("taDOM3+", **RUN_KW))
    assert cold == warm


def test_same_seed_identical_deadlock_event_logs():
    """Repeated seeded runs must record byte-identical deadlock events.

    The detector used to sort wait-for edges by object address; this
    compares the full event log (cycle, wait-edge snapshot, waiting
    modes) of two identical high-contention runs."""

    def deadlock_log():
        info = generate_bib(scale=0.01, seed=99)  # tiny doc: max contention
        database, info = make_database("taDOM3+", 4, "repeatable", info=info)
        config = TaMixConfig(
            protocol="taDOM3+",
            lock_depth=4,
            isolation="repeatable",
            run_duration_ms=40_000.0,
            seed=7,
        )
        TaMixCoordinator(database, info, config).run()
        return [
            (
                txn_label(event.victim),
                tuple(txn_label(txn) for txn in event.cycle),
                event.conversion,
                event.resource[0],
                str(event.resource[1]),
                event.active_transactions,
                event.locks_held,
                tuple(
                    (txn_label(waiter), txn_label(blocker))
                    for waiter, blocker in event.wait_edges
                ),
                event.waiting_modes,
            )
            for event in database.locks.detector.events
        ]

    first = deadlock_log()
    second = deadlock_log()
    assert first, "stress configuration produced no deadlocks to compare"
    assert first == second


def test_serial_and_parallel_sweep_agree():
    spec = SweepSpec(
        protocols=("taDOM3+",),
        lock_depths=(0, 4),
        isolations=("repeatable",),
        runs_per_cell=2,
        scale=0.05,
        run_duration_ms=3_000.0,
    )
    serial = [r.as_row() for r in SweepRunner(spec).run()]
    parallel = [r.as_row() for r in SweepRunner(spec, workers=2).run()]
    assert parallel == serial


def test_parallel_sweep_csv_matches_serial():
    spec = SweepSpec(
        protocols=("taDOM3+",),
        lock_depths=(4,),
        isolations=("none", "repeatable"),
        runs_per_cell=1,
        scale=0.05,
        run_duration_ms=3_000.0,
    )
    serial_runner = SweepRunner(spec)
    serial_runner.run()
    parallel_runner = SweepRunner(spec, workers=2)
    parallel_runner.run()
    assert parallel_runner.to_csv() == serial_runner.to_csv()
    assert parallel_runner.to_json() == serial_runner.to_json()
