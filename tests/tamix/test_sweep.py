"""Tests for the automated measurement environment (sweep runner)."""

import csv
import io
import json

import pytest

from repro.errors import BenchmarkError
from repro.tamix.sweep import SweepCell, SweepRunner, SweepSpec


def small_spec(**overrides):
    defaults = dict(
        protocols=("taDOM3+",),
        lock_depths=(0, 6),
        isolations=("repeatable",),
        runs_per_cell=1,
        scale=0.02,
        run_duration_ms=8_000.0,
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestSpec:
    def test_cell_expansion(self):
        spec = small_spec(protocols=("taDOM3+", "URIX"),
                          isolations=("none", "repeatable"),
                          runs_per_cell=2)
        cells = list(spec.cells())
        assert len(cells) == 2 * 2 * 2 * 2
        assert cells[0] == SweepCell("taDOM3+", 0, "none", 0)

    def test_depth_unaware_protocols_collapse_depths(self):
        spec = small_spec(protocols=("Node2PL",), lock_depths=(0, 3, 6))
        cells = list(spec.cells())
        assert len(cells) == 1
        assert cells[0].lock_depth == 0

    def test_invalid_runs(self):
        with pytest.raises(BenchmarkError):
            list(small_spec(runs_per_cell=0).cells())


class TestRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        runner = SweepRunner(small_spec(runs_per_cell=2))
        runner.run()
        return runner

    def test_aggregates_repetitions(self, runner):
        results = runner.sorted_results()
        assert len(results) == 2            # two depths, one protocol
        for result in results:
            assert result.runs == 2
            assert result.committed >= 0

    def test_depth_effect_visible(self, runner):
        depth0, depth6 = runner.sorted_results()
        assert depth0.cell.lock_depth == 0
        assert depth6.committed > depth0.committed

    def test_progress_callback(self):
        seen = []
        runner = SweepRunner(small_spec())
        runner.run(progress=lambda cell, outcome: seen.append(cell))
        assert len(seen) == 2

    def test_csv_output(self, runner):
        text = runner.to_csv()
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["protocol"] == "taDOM3+"
        assert "TAlendAndReturn" in rows[0]

    def test_json_output(self, runner):
        rows = json.loads(runner.to_json())
        assert len(rows) == 2
        assert {row["lock_depth"] for row in rows} == {0, 6}

    def test_series_for_charts(self, runner):
        series = runner.series("committed")
        assert list(series) == ["taDOM3+"]
        assert len(series["taDOM3+"]) == 2

    def test_empty_runner_csv(self):
        assert SweepRunner(small_spec()).to_csv() == ""


class TestParallelRunner:
    def test_progress_fires_per_cell_in_matrix_order(self):
        seen = []
        runner = SweepRunner(small_spec(), workers=2)
        runner.run(progress=lambda cell, outcome: seen.append(cell))
        assert seen == list(small_spec().cells())

    def test_workers_normalized(self):
        assert SweepRunner(small_spec(), workers=0).workers == 1
        assert SweepRunner(small_spec(), workers=-3).workers == 1
        assert SweepRunner(small_spec(), workers=4).workers == 4


class TestAccessEventTraces:
    def test_traces_carry_access_events_and_verify(self, tmp_path):
        from repro.tamix.sweep import trace_filename
        from repro.verify import verify_trace

        spec = small_spec(lock_depths=(4,))
        runner = SweepRunner(spec, trace_dir=tmp_path, access_events=True)
        runner.run()
        trace = tmp_path / trace_filename(list(spec.cells())[0])
        report = verify_trace(trace)
        assert report.ok
        assert report.accesses_checked > 0

    def test_access_events_off_by_default(self, tmp_path):
        from repro.obs import OP_ACCESS, load_jsonl
        from repro.tamix.sweep import trace_filename

        spec = small_spec(lock_depths=(4,))
        runner = SweepRunner(spec, trace_dir=tmp_path)
        runner.run()
        trace = tmp_path / trace_filename(list(spec.cells())[0])
        kinds = {event.kind for event in load_jsonl(trace)}
        assert OP_ACCESS not in kinds
