"""Tests for the command-line interface."""

import pytest

from repro.cli import main

XML = (
    '<bib><topic id="t1"><book id="b1" year="1993">'
    "<title>TP</title></book>"
    '<book id="b2" year="2002"><title>XML</title></book></topic></bib>'
)


@pytest.fixture
def xml_file(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(XML)
    return str(path)


class TestInfo:
    def test_lists_protocols(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for name in ("Node2PL", "URIX", "taDOM3+"):
            assert name in out


class TestQuery:
    def test_node_result(self, xml_file, capsys):
        assert main([
            "query", xml_file, "//book[@year='1993']/title/text()",
        ]) == 0
        assert capsys.readouterr().out.strip() == "TP"

    def test_element_result_serialized(self, xml_file, capsys):
        assert main(["query", xml_file, "//book[@id='b2']"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("<book")
        assert "XML" in out

    def test_empty_result_exit_code(self, xml_file):
        assert main(["query", xml_file, "//missing"]) == 1


class TestStats:
    def test_prints_statistics(self, xml_file, capsys):
        assert main(["stats", xml_file]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out
        assert "document_occupancy" in out


class TestBenchCommands:
    def test_cluster1_smoke(self, capsys):
        code = main([
            "cluster1", "--protocol", "taDOM3+", "--scale", "0.02",
            "--seconds", "8", "--lock-depth", "6",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "committed=" in out
        assert "lock stats" in out

    def test_sweep_smoke(self, capsys):
        code = main([
            "sweep", "--protocols", "taDOM3+", "--depths", "0", "6",
            "--scale", "0.02", "--seconds", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "taDOM3+" in out

    def test_cluster2_smoke(self, capsys):
        assert main(["cluster2", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        for name in ("Node2PL", "taDOM3+", "URIX"):
            assert name in out


class TestModes:
    def test_prints_figure_3a_and_4(self, capsys):
        assert main(["modes", "taDOM2", "--space", "node"]) == 0
        out = capsys.readouterr().out
        assert "taDOM2 compatibility" in out
        assert "CX[NR]" in out          # the subscripted Figure 4 cell

    def test_all_spaces_by_default(self, capsys):
        assert main(["modes", "URIX"]) == 0
        out = capsys.readouterr().out
        assert "lock space: node" in out
        assert "lock space: edge" in out

    def test_twenty_modes_of_tadom3_plus(self, capsys):
        assert main(["modes", "taDOM3+", "--space", "node"]) == 0
        out = capsys.readouterr().out
        for mode in ("NX", "LRIX", "SRCX", "NUIX"):
            assert mode in out


class TestXmark:
    def test_xmark_smoke(self, capsys):
        assert main(["xmark", "--scale", "0.02", "--seconds", "3"]) == 0
        out = capsys.readouterr().out
        assert "deadlocks=0" in out
        assert "taDOM3+" in out


class TestReport:
    def test_collates_result_files(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "figure09_synopsis.txt").write_text("FIG9 DATA")
        (results / "extra_experiment.txt").write_text("EXTRA DATA")
        assert main(["report", "--results-dir", str(results)]) == 0
        out = capsys.readouterr().out
        assert "evaluation report" in out
        assert out.index("FIG9 DATA") < out.index("EXTRA DATA")

    def test_report_to_file(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "figure11_cluster2.txt").write_text("F11")
        target = tmp_path / "REPORT.txt"
        assert main(["report", "--results-dir", str(results),
                     "--output", str(target)]) == 0
        assert "F11" in target.read_text()

    def test_missing_results_dir(self, tmp_path):
        assert main(["report", "--results-dir", str(tmp_path / "nope")]) == 1

    def test_empty_results_dir(self, tmp_path):
        empty = tmp_path / "results"
        empty.mkdir()
        assert main(["report", "--results-dir", str(empty)]) == 1


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["cluster1", "--protocol", "nope"])
