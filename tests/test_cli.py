"""Tests for the command-line interface."""

import pytest

from repro.cli import main

XML = (
    '<bib><topic id="t1"><book id="b1" year="1993">'
    "<title>TP</title></book>"
    '<book id="b2" year="2002"><title>XML</title></book></topic></bib>'
)


@pytest.fixture
def xml_file(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(XML)
    return str(path)


class TestInfo:
    def test_lists_protocols(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for name in ("Node2PL", "URIX", "taDOM3+"):
            assert name in out


class TestQuery:
    def test_node_result(self, xml_file, capsys):
        assert main([
            "query", xml_file, "//book[@year='1993']/title/text()",
        ]) == 0
        assert capsys.readouterr().out.strip() == "TP"

    def test_element_result_serialized(self, xml_file, capsys):
        assert main(["query", xml_file, "//book[@id='b2']"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("<book")
        assert "XML" in out

    def test_empty_result_exit_code(self, xml_file):
        assert main(["query", xml_file, "//missing"]) == 1


class TestStats:
    def test_prints_statistics(self, xml_file, capsys):
        assert main(["stats", xml_file]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out
        assert "document_occupancy" in out


class TestBenchCommands:
    def test_cluster1_smoke(self, capsys):
        code = main([
            "cluster1", "--protocol", "taDOM3+", "--scale", "0.02",
            "--seconds", "8", "--lock-depth", "6",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "committed=" in out
        assert "lock stats" in out

    def test_sweep_smoke(self, capsys):
        code = main([
            "sweep", "--protocols", "taDOM3+", "--depths", "0", "6",
            "--scale", "0.02", "--seconds", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "taDOM3+" in out

    def test_cluster2_smoke(self, capsys):
        assert main(["cluster2", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        for name in ("Node2PL", "taDOM3+", "URIX"):
            assert name in out


class TestModes:
    def test_prints_figure_3a_and_4(self, capsys):
        assert main(["modes", "taDOM2", "--space", "node"]) == 0
        out = capsys.readouterr().out
        assert "taDOM2 compatibility" in out
        assert "CX[NR]" in out          # the subscripted Figure 4 cell

    def test_all_spaces_by_default(self, capsys):
        assert main(["modes", "URIX"]) == 0
        out = capsys.readouterr().out
        assert "lock space: node" in out
        assert "lock space: edge" in out

    def test_twenty_modes_of_tadom3_plus(self, capsys):
        assert main(["modes", "taDOM3+", "--space", "node"]) == 0
        out = capsys.readouterr().out
        for mode in ("NX", "LRIX", "SRCX", "NUIX"):
            assert mode in out


class TestXmark:
    def test_xmark_smoke(self, capsys):
        assert main(["xmark", "--scale", "0.02", "--seconds", "3"]) == 0
        out = capsys.readouterr().out
        assert "deadlocks=0" in out
        assert "taDOM3+" in out


class TestReport:
    def test_collates_result_files(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "figure09_synopsis.txt").write_text("FIG9 DATA")
        (results / "extra_experiment.txt").write_text("EXTRA DATA")
        assert main(["report", "--results-dir", str(results)]) == 0
        out = capsys.readouterr().out
        assert "evaluation report" in out
        assert out.index("FIG9 DATA") < out.index("EXTRA DATA")

    def test_report_to_file(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "figure11_cluster2.txt").write_text("F11")
        target = tmp_path / "REPORT.txt"
        assert main(["report", "--results-dir", str(results),
                     "--output", str(target)]) == 0
        assert "F11" in target.read_text()

    def test_missing_results_dir(self, tmp_path):
        assert main(["report", "--results-dir", str(tmp_path / "nope")]) == 1

    def test_empty_results_dir(self, tmp_path):
        empty = tmp_path / "results"
        empty.mkdir()
        assert main(["report", "--results-dir", str(empty)]) == 1


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["cluster1", "--protocol", "nope"])


class TestSweepObservability:
    @pytest.fixture(scope="class")
    def sweep_run(self, tmp_path_factory):
        import json

        base = tmp_path_factory.mktemp("sweepcli")
        traces = base / "traces"
        sweep_json = base / "sweep.json"
        code = main([
            "sweep", "--protocols", "taDOM2", "taDOM3+",
            "--depths", "0", "4", "--scale", "0.02", "--seconds", "8",
            "--json", str(sweep_json), "--trace-dir", str(traces),
            "--progress",
        ])
        assert code == 0
        assert json.loads(sweep_json.read_text())
        return base, traces, sweep_json

    def test_progress_heartbeat_on_stderr(self, sweep_run, capsys):
        # The class fixture ran under the first test's capture; re-run a
        # tiny sweep here so this test owns its own streams.
        code = main([
            "sweep", "--protocols", "taDOM2", "--depths", "0",
            "--scale", "0.02", "--seconds", "4", "--progress",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "[1/1] taDOM2 d0" in err
        assert "committed=" in err

    def test_trace_dir_gets_one_file_per_cell(self, sweep_run):
        _base, traces, _sweep_json = sweep_run
        names = sorted(p.name for p in traces.glob("*.jsonl"))
        assert names == [
            "taDOM2_d0_repeatable_r0.jsonl",
            "taDOM2_d4_repeatable_r0.jsonl",
            "taDOM3+_d0_repeatable_r0.jsonl",
            "taDOM3+_d4_repeatable_r0.jsonl",
        ]

    def test_report_markdown_is_deterministic(self, sweep_run, tmp_path):
        _base, _traces, sweep_json = sweep_run
        first = tmp_path / "a.md"
        second = tmp_path / "b.md"
        assert main(["report", str(sweep_json),
                     "--output", str(first)]) == 0
        assert main(["report", str(sweep_json),
                     "--output", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        assert "# TaMix sweep report" in first.read_text()

    def test_report_html(self, sweep_run, tmp_path):
        _base, _traces, sweep_json = sweep_run
        target = tmp_path / "report.html"
        assert main(["report", str(sweep_json), "--format", "html",
                     "--output", str(target)]) == 0
        page = target.read_text()
        assert page.startswith("<!DOCTYPE html>")
        assert "taDOM3+" in page

    def test_report_to_stdout(self, sweep_run, capsys):
        _base, _traces, sweep_json = sweep_run
        assert main(["report", str(sweep_json)]) == 0
        assert "## Experiment matrix" in capsys.readouterr().out

    def test_analyze_trace(self, sweep_run, capsys):
        _base, traces, _sweep_json = sweep_run
        trace = traces / "taDOM3+_d4_repeatable_r0.jsonl"
        assert main(["analyze", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "transactions" in out
        assert "lock waits" in out


class TestWalMetrics:
    def test_wal_gauges_appear_in_metrics_dump(self, capsys):
        code = main([
            "metrics", "--protocol", "taDOM2", "--scale", "0.02",
            "--seconds", "4", "--wal",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "wal.appends" in out
        assert "wal.flushes" in out
        assert "buffer.pool_size" in out
        assert "buffer.hit_ratio" in out


class TestVerifyCommand:
    def test_sweep_verify_passes(self, capsys):
        code = main([
            "sweep", "--protocols", "taDOM3+", "--depths", "4",
            "--scale", "0.02", "--seconds", "8", "--verify",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "verify taDOM3+_d4_repeatable_r0.jsonl: PASS" in out
        assert "conformance=ok" in out

    def test_verify_trace_with_access_events(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main([
            "trace", "--protocol", "taDOM2", "--scale", "0.02",
            "--seconds", "8", "--access-events", "--output", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["verify", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "PASS protocol=taDOM2" in out
        assert "conformance=ok" in out

    def test_verify_crash_suite(self, capsys):
        assert main(["verify", "--crash"]) == 0
        out = capsys.readouterr().out
        assert "crash suite: PASS" in out

    def test_verify_wrong_protocol_fails(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main([
            "trace", "--protocol", "taDOM3+", "--scale", "0.02",
            "--seconds", "8", "--access-events", "--output", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["verify", str(trace), "--protocol", "Node2PL"]) == 1
        assert "conformance=violated" in capsys.readouterr().out

    def test_verify_without_target_or_crash(self, capsys):
        assert main(["verify"]) == 2
        assert "nothing to do" in capsys.readouterr().err


class TestTelemetryCommand:
    SIM_ARGS = [
        "telemetry", "--scale", "0.02", "--clients", "5",
        "--duration-ms", "1500", "--rate", "100", "--window-ms", "500",
    ]

    def test_sim_json_is_byte_identical(self, tmp_path, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(self.SIM_ARGS + ["--output", str(first)]) == 0
        assert main(self.SIM_ARGS + ["--output", str(second)]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_sim_json_payload_shape(self, capsys):
        assert main(self.SIM_ARGS) == 0
        out = capsys.readouterr().out
        import json

        payload = json.loads(out)
        assert payload["version"] == 1
        assert payload["window_ms"] == 500.0
        assert payload["windows"], "sim run should close windows"
        assert "txn.committed" in payload["snapshot"]["counters"]

    def test_prom_rendering(self, capsys):
        assert main(self.SIM_ARGS + ["--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_txn_committed_total counter" in out
        assert 'repro_lock_wait_ms_bucket{le="+Inf"}' in out

    def test_bad_connect_rejected(self, capsys):
        assert main(["telemetry", "--connect", "nonsense"]) == 2
        assert "bad --connect" in capsys.readouterr().err

    def test_top_bad_connect_rejected(self, capsys):
        assert main(["top", "--connect", "nonsense"]) == 2
        assert "bad --connect" in capsys.readouterr().err
