"""Unit tests for the document store built on the Figure 5 sample tree."""

import pytest

from repro.errors import NodeNotFound
from repro.splid import Splid
from repro.storage import DocumentStore, NodeKind, NodeRecord, Vocabulary


def S(text):
    return Splid.parse(text)


@pytest.fixture
def store():
    """A cutout of the paper's Figure 5 library document.

    bib(1) -> persons(1.3) -> person(1.3.3) with attribute root/attrs,
    name(1.3.3.3); topics(1.5) -> topic0(1.5.3) -> book(1.5.3.3) with
    attribute root, title(1.5.3.3.3) + text + string, author(1.5.3.3.5).
    """
    vocab = Vocabulary()
    store = DocumentStore()

    def el(name):
        return NodeRecord.element(vocab.intern(name))

    store.put(S("1"), el("bib"))
    store.put(S("1.3"), el("persons"))
    store.put(S("1.3.3"), el("person"))
    store.put(S("1.3.3.1"), NodeRecord.attribute_root())
    store.put(S("1.3.3.1.3"), NodeRecord.attribute(vocab.intern("id")))
    store.put(S("1.3.3.1.3.1"), NodeRecord.string("p001"))
    store.put(S("1.3.3.3"), el("name"))
    store.put(S("1.5"), el("topics"))
    store.put(S("1.5.3"), el("topic"))
    store.put(S("1.5.3.3"), el("book"))
    store.put(S("1.5.3.3.1"), NodeRecord.attribute_root())
    store.put(S("1.5.3.3.1.3"), NodeRecord.attribute(vocab.intern("id")))
    store.put(S("1.5.3.3.1.3.1"), NodeRecord.string("b001"))
    store.put(S("1.5.3.3.3"), el("title"))
    store.put(S("1.5.3.3.3.3"), NodeRecord.text())
    store.put(S("1.5.3.3.3.3.1"), NodeRecord.string("TP Concepts"))
    store.put(S("1.5.3.3.5"), el("author"))
    store.vocab = vocab
    return store


class TestPointAccess:
    def test_get_existing(self, store):
        assert store.get(S("1.5.3.3")).kind is NodeKind.ELEMENT

    def test_get_missing_raises(self, store):
        with pytest.raises(NodeNotFound):
            store.get(S("1.9"))

    def test_try_get(self, store):
        assert store.try_get(S("1.9")) is None
        assert store.try_get(S("1")) is not None

    def test_exists(self, store):
        assert store.exists(S("1.3.3"))
        assert not store.exists(S("1.3.5"))

    def test_len(self, store):
        assert len(store) == 17


class TestDocumentOrderNavigation:
    def test_first_node(self, store):
        assert store.first_node() == S("1")

    def test_next_in_document_order(self, store):
        assert store.next_in_document_order(S("1")) == S("1.3")
        assert store.next_in_document_order(S("1.3.3.1.3.1")) == S("1.3.3.3")
        assert store.next_in_document_order(S("1.5.3.3.5")) is None

    def test_previous_in_document_order(self, store):
        assert store.previous_in_document_order(S("1.3")) == S("1")
        assert store.previous_in_document_order(S("1")) is None

    def test_next_following_skips_subtree(self, store):
        assert store.next_following(S("1.3")) == S("1.5")
        assert store.next_following(S("1.3.3")) == S("1.5")


class TestDomNavigation:
    def test_first_child_skips_attribute_root(self, store):
        # book's first DOM child is title, not the attribute root.
        assert store.first_child(S("1.5.3.3")) == S("1.5.3.3.3")

    def test_first_child_of_leaf(self, store):
        assert store.first_child(S("1.5.3.3.5")) is None

    def test_first_child_of_text_is_none(self, store):
        # The string node below a text node is meta, not a DOM child.
        assert store.first_child(S("1.5.3.3.3.3")) is None

    def test_last_child(self, store):
        assert store.last_child(S("1.5.3.3")) == S("1.5.3.3.5")
        assert store.last_child(S("1")) == S("1.5")

    def test_last_child_of_leaf(self, store):
        assert store.last_child(S("1.3.3.3")) is None

    def test_next_sibling(self, store):
        assert store.next_sibling(S("1.3")) == S("1.5")
        assert store.next_sibling(S("1.5.3.3.3")) == S("1.5.3.3.5")
        assert store.next_sibling(S("1.5")) is None
        assert store.next_sibling(S("1.5.3.3.5")) is None

    def test_previous_sibling(self, store):
        assert store.previous_sibling(S("1.5")) == S("1.3")
        assert store.previous_sibling(S("1.5.3.3.5")) == S("1.5.3.3.3")
        assert store.previous_sibling(S("1.3")) is None

    def test_previous_sibling_skips_attribute_root(self, store):
        # title's previous sibling is None (attribute root is meta).
        assert store.previous_sibling(S("1.5.3.3.3")) is None

    def test_children(self, store):
        kids = list(store.children(S("1.5.3.3")))
        assert kids == [S("1.5.3.3.3"), S("1.5.3.3.5")]

    def test_child_count(self, store):
        assert store.child_count(S("1")) == 2
        assert store.child_count(S("1.5.3.3.5")) == 0


class TestMetaAccess:
    def test_attribute_root(self, store):
        assert store.attribute_root(S("1.5.3.3")) == S("1.5.3.3.1")
        assert store.attribute_root(S("1.5.3.3.3")) is None

    def test_attributes(self, store):
        attrs = list(store.attributes(S("1.5.3.3")))
        assert attrs == [S("1.5.3.3.1.3")]

    def test_attributes_of_attributeless_element(self, store):
        assert list(store.attributes(S("1.3"))) == []

    def test_string_child(self, store):
        assert store.string_child(S("1.5.3.3.3.3")) == S("1.5.3.3.3.3.1")
        assert store.string_child(S("1.5.3.3.3")) is None


class TestAxes:
    def test_following_siblings(self, store):
        assert list(store.following_siblings(S("1.3"))) == [S("1.5")]
        assert list(store.following_siblings(S("1.5"))) == []
        assert list(store.following_siblings(S("1.5.3.3.3"))) == [S("1.5.3.3.5")]

    def test_preceding_siblings(self, store):
        assert list(store.preceding_siblings(S("1.5"))) == [S("1.3")]
        assert list(store.preceding_siblings(S("1.3"))) == []
        # Attribute roots are meta: title has no preceding siblings.
        assert list(store.preceding_siblings(S("1.5.3.3.3"))) == []

    def test_ancestors(self, store):
        labels = [str(a) for a in store.ancestors(S("1.5.3.3.3.3"))]
        assert labels == ["1.5.3.3.3", "1.5.3.3", "1.5.3", "1.5", "1"]

    def test_descendants_skip_meta(self, store):
        descendants = list(store.descendants(S("1.5.3.3")))
        assert S("1.5.3.3.3") in descendants
        assert S("1.5.3.3.1") not in descendants      # attribute root
        assert S("1.5.3.3.3.3.1") not in descendants  # string node
        assert S("1.5.3.3") not in descendants        # self excluded

    def test_following_axis(self, store):
        after_persons = list(store.following(S("1.3")))
        assert after_persons[0] == S("1.5")
        assert all(s > S("1.3") for s in after_persons)
        assert not any(s.is_self_or_descendant_of(S("1.3"))
                       for s in after_persons)
        assert list(store.following(S("1.5.3.3.5"))) == []


class TestSubtrees:
    def test_subtree_size(self, store):
        assert store.subtree_size(S("1.5.3.3")) == 8
        assert store.subtree_size(S("1")) == len(store)

    def test_subtree_labels_in_order(self, store):
        labels = list(store.subtree_labels(S("1.3.3")))
        assert labels == sorted(labels)
        assert labels[0] == S("1.3.3")

    def test_delete_subtree(self, store):
        removed = store.delete_subtree(S("1.5.3.3"))
        assert removed == 8
        assert not store.exists(S("1.5.3.3"))
        assert not store.exists(S("1.5.3.3.3.3.1"))
        assert store.exists(S("1.5.3"))

    def test_scan_everything(self, store):
        labels = [splid for splid, _rec in store.scan()]
        assert labels == sorted(labels)
        assert len(labels) == len(store)
