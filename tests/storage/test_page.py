"""Unit tests for the slotted page."""

import pytest

from repro.errors import PageOverflowError, StorageError
from repro.storage.page import ENTRY_OVERHEAD, PAGE_HEADER, Page, entry_size


@pytest.fixture
def page():
    return Page(page_id=7, capacity=512)


class TestBasics:
    def test_empty_page(self, page):
        assert len(page) == 0
        assert page.used_bytes == PAGE_HEADER
        assert page.free_bytes == 512 - PAGE_HEADER

    def test_put_get(self, page):
        page.put(b"b", b"two")
        page.put(b"a", b"one")
        assert page.get(b"a") == b"one"
        assert page.get(b"b") == b"two"
        assert page.get(b"c") is None

    def test_keys_stay_sorted(self, page):
        for key in [b"d", b"a", b"c", b"b"]:
            page.put(key, b"")
        assert list(page.keys) == [b"a", b"b", b"c", b"d"]

    def test_replace_updates_size(self, page):
        page.put(b"k", b"xx")
        before = page.used_bytes
        page.put(b"k", b"xxxx")
        assert page.used_bytes == before + 2
        assert len(page) == 1

    def test_delete(self, page):
        page.put(b"k", b"v")
        assert page.delete(b"k")
        assert not page.delete(b"k")
        assert page.used_bytes == PAGE_HEADER

    def test_entry_size(self):
        assert entry_size(b"abc", b"de") == 5 + ENTRY_OVERHEAD

    def test_min_max_key(self, page):
        page.put(b"m", b"")
        page.put(b"a", b"")
        assert page.min_key() == b"a"
        assert page.max_key() == b"m"

    def test_min_key_of_empty_raises(self, page):
        with pytest.raises(StorageError):
            page.min_key()

    def test_position_of(self, page):
        page.put(b"b", b"")
        page.put(b"d", b"")
        assert page.position_of(b"a") == 0
        assert page.position_of(b"b") == 0
        assert page.position_of(b"c") == 1
        assert page.position_of(b"z") == 2

    def test_tiny_capacity_rejected(self):
        with pytest.raises(StorageError):
            Page(0, capacity=16)


class TestOverflowAndSplit:
    def test_overflow_raises(self, page):
        with pytest.raises(PageOverflowError):
            page.put(b"k", b"x" * 600)

    def test_replacement_overflow_raises(self, page):
        page.put(b"k", b"small")
        with pytest.raises(PageOverflowError):
            page.put(b"k", b"x" * 600)
        assert page.get(b"k") == b"small"

    def test_fits(self, page):
        assert page.fits(b"k", b"v")
        assert not page.fits(b"k", b"v" * 600)

    def test_split_moves_upper_half(self):
        left = Page(0, capacity=4096)
        for i in range(64):
            left.put(f"key{i:04d}".encode(), b"v" * 8)
        right = Page(1, capacity=4096)
        separator = left.split_off_upper_half(right)
        assert separator == right.min_key()
        assert left.max_key() < right.min_key()
        assert len(left) + len(right) == 64
        assert abs(left.used_bytes - right.used_bytes) < left.capacity // 4

    def test_split_single_entry_fails(self, page):
        page.put(b"k", b"v")
        with pytest.raises(PageOverflowError):
            page.split_off_upper_half(Page(1, capacity=512))

    def test_occupancy(self):
        page = Page(0, capacity=1024)
        assert page.occupancy < 0.05
        page.put(b"k", b"x" * 900)
        assert page.occupancy > 0.9


class TestAbsorb:
    def test_absorb_merges(self):
        left = Page(0, capacity=1024)
        right = Page(1, capacity=1024)
        left.put(b"a", b"1")
        right.put(b"b", b"2")
        left.absorb(right)
        assert list(left.keys) == [b"a", b"b"]

    def test_absorb_rejects_overlap(self):
        left = Page(0, capacity=1024)
        right = Page(1, capacity=1024)
        left.put(b"m", b"")
        right.put(b"a", b"")
        with pytest.raises(StorageError):
            left.absorb(right)
