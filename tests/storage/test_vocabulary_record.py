"""Unit tests for vocabulary surrogates and node records."""

import pytest

from repro.errors import StorageError, VocabularyError
from repro.storage.record import NO_NAME, NodeKind, NodeRecord
from repro.storage.vocabulary import Vocabulary


class TestVocabulary:
    def test_intern_is_idempotent(self):
        vocab = Vocabulary()
        first = vocab.intern("book")
        assert vocab.intern("book") == first
        assert len(vocab) == 1

    def test_distinct_names_distinct_surrogates(self):
        vocab = Vocabulary()
        surrogates = [vocab.intern(n) for n in ("bib", "book", "title")]
        assert len(set(surrogates)) == 3

    def test_round_trip(self):
        vocab = Vocabulary()
        s = vocab.intern("chapter")
        assert vocab.name_of(s) == "chapter"
        assert vocab.surrogate_of("chapter") == s

    def test_unknown_lookups_raise(self):
        vocab = Vocabulary()
        with pytest.raises(VocabularyError):
            vocab.surrogate_of("nope")
        with pytest.raises(VocabularyError):
            vocab.name_of(17)

    def test_contains(self):
        vocab = Vocabulary()
        vocab.intern("x")
        assert "x" in vocab
        assert "y" not in vocab

    def test_items_and_size(self):
        vocab = Vocabulary()
        vocab.intern("alpha")
        vocab.intern("beta")
        assert dict(vocab.items()) == {"alpha": 0, "beta": 1}
        assert vocab.encoded_size() > 0


class TestNodeRecord:
    def test_element_round_trip(self):
        rec = NodeRecord.element(42)
        decoded = NodeRecord.decode(rec.encode())
        assert decoded.kind is NodeKind.ELEMENT
        assert decoded.name_surrogate == 42
        assert decoded.content == b""

    def test_string_round_trip(self):
        rec = NodeRecord.string("Müller & Söhne")
        decoded = NodeRecord.decode(rec.encode())
        assert decoded.kind is NodeKind.STRING
        assert decoded.text_content == "Müller & Söhne"

    def test_all_kinds_encode(self):
        records = [
            NodeRecord.element(1),
            NodeRecord.attribute_root(),
            NodeRecord.attribute(2),
            NodeRecord.text(),
            NodeRecord.string("v"),
        ]
        for rec in records:
            assert NodeRecord.decode(rec.encode()) == rec

    def test_text_content_only_for_strings(self):
        assert NodeRecord.element(1).text_content is None

    def test_renamed(self):
        rec = NodeRecord.element(1)
        assert rec.renamed(9).name_surrogate == 9
        assert rec.renamed(9).kind is NodeKind.ELEMENT

    def test_with_content(self):
        rec = NodeRecord.string("old").with_content("new")
        assert rec.text_content == "new"

    def test_no_name_sentinel(self):
        assert NodeRecord.text().name_surrogate == NO_NAME

    def test_decode_rejects_short(self):
        with pytest.raises(StorageError):
            NodeRecord.decode(b"\x01")

    def test_decode_rejects_unknown_kind(self):
        with pytest.raises(StorageError):
            NodeRecord.decode(b"\x7f\x00\x00")

    def test_encode_rejects_bad_surrogate(self):
        with pytest.raises(StorageError):
            NodeRecord(NodeKind.ELEMENT, -1).encode()
