"""Unit tests for the buffer manager (LRU residency + I/O accounting)."""

import pytest

from repro.errors import StorageError
from repro.storage.buffer import BufferManager, PageFile, make_buffered_store


@pytest.fixture
def buffer():
    return BufferManager(PageFile(page_size=512), pool_size=4)


class TestPageFile:
    def test_allocate_and_read(self):
        pf = PageFile()
        page = pf.allocate()
        assert pf.read(page.page_id) is page
        assert page.page_id in pf

    def test_read_missing_raises(self):
        with pytest.raises(StorageError):
            PageFile().read(99)

    def test_free(self):
        pf = PageFile()
        page = pf.allocate()
        pf.free(page.page_id)
        assert page.page_id not in pf

    def test_ids_monotonic(self):
        pf = PageFile()
        ids = [pf.allocate().page_id for _ in range(5)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5


class TestResidency:
    def test_allocation_is_resident(self, buffer):
        page = buffer.allocate()
        assert buffer.is_resident(page.page_id)

    def test_hit_does_not_count_physical(self, buffer):
        page = buffer.allocate()
        before = buffer.stats.physical_reads
        buffer.fix(page.page_id)
        assert buffer.stats.physical_reads == before
        assert buffer.stats.logical_reads == 1

    def test_miss_counts_physical(self, buffer):
        pages = [buffer.allocate() for _ in range(6)]  # evicts the first two
        assert not buffer.is_resident(pages[0].page_id)
        before = buffer.stats.physical_reads
        buffer.fix(pages[0].page_id)
        assert buffer.stats.physical_reads == before + 1

    def test_lru_eviction_order(self, buffer):
        pages = [buffer.allocate() for _ in range(4)]
        buffer.fix(pages[0].page_id)          # page 0 becomes most recent
        buffer.allocate()                      # evicts page 1, not page 0
        assert buffer.is_resident(pages[0].page_id)
        assert not buffer.is_resident(pages[1].page_id)

    def test_dirty_eviction_counts_write(self, buffer):
        page = buffer.allocate()               # dirty on allocation
        for _ in range(4):
            buffer.allocate()
        assert not buffer.is_resident(page.page_id)
        assert buffer.stats.physical_writes >= 1

    def test_pool_size_bound(self, buffer):
        for _ in range(20):
            buffer.allocate()
        assert buffer.resident_count <= 4

    def test_pool_too_small_rejected(self):
        with pytest.raises(StorageError):
            BufferManager(PageFile(), pool_size=1)

    def test_free_drops_residency(self, buffer):
        page = buffer.allocate()
        buffer.free(page.page_id)
        assert not buffer.is_resident(page.page_id)
        with pytest.raises(StorageError):
            buffer.fix(page.page_id)


class TestAllDirtyEviction:
    def test_fix_miss_with_every_frame_dirty(self, buffer):
        """Eviction when all frames are dirty: the miss must still be
        admitted, writing back (not dropping) the LRU dirty victim."""
        pages = [buffer.allocate() for _ in range(5)]  # all enter dirty
        assert not buffer.is_resident(pages[0].page_id)
        writes_before = buffer.stats.physical_writes
        page = buffer.fix(pages[0].page_id)            # miss: evicts pages[1]
        assert page is pages[0]
        assert buffer.is_resident(pages[0].page_id)
        assert not buffer.is_resident(pages[1].page_id)
        assert buffer.stats.physical_writes == writes_before + 1
        assert buffer.resident_count == 4

    def test_all_dirty_eviction_fires_chaos_write_hook(self, buffer):
        from repro.chaos import ChaosEngine, FaultRule, FaultSchedule

        engine = ChaosEngine(FaultSchedule(rules=(
            FaultRule("page.write", "latency", probability=1.0,
                      latency_ms=5.0),
        )), seed=1)
        buffer.chaos = engine
        for _ in range(5):                             # forces dirty evictions
            buffer.allocate()
        assert engine.ops["page.write"] >= 1
        assert buffer.stats.fault_delay_ms >= 5.0

    def test_uninstalled_chaos_costs_nothing(self, buffer):
        assert buffer.chaos is None
        buffer.allocate()
        assert buffer.stats.fault_delay_ms == 0.0


class TestStatistics:
    def test_flush_writes_dirty_pages(self, buffer):
        buffer.allocate()
        buffer.allocate()
        buffer.flush()
        assert buffer.stats.physical_writes == 2
        buffer.flush()                          # now clean: no extra writes
        assert buffer.stats.physical_writes == 2

    def test_snapshot_delta(self, buffer):
        page = buffer.allocate()
        snap = buffer.stats.snapshot()
        buffer.fix(page.page_id)
        delta = buffer.stats.delta_since(snap)
        assert delta.logical_reads == 1
        assert delta.physical_reads == 0

    def test_hit_ratio(self, buffer):
        page = buffer.allocate()
        for _ in range(9):
            buffer.fix(page.page_id)
        assert buffer.stats.hit_ratio == 1.0

    def test_hit_ratio_without_reads(self):
        assert make_buffered_store().stats.hit_ratio == 1.0
