"""Model-based testing: the document store vs. a reference model.

Hypothesis drives random structural edit sequences against both the real
B*-tree-backed document store and a trivial in-memory reference model;
every navigation primitive must agree after every step.
"""

from typing import List, Optional

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dom import Document
from repro.splid import Splid


class ReferenceModel:
    """Ground truth: plain dicts + sorted label lists."""

    def __init__(self, root: Splid):
        self.labels: List[Splid] = [root]

    def insert(self, labels: List[Splid]) -> None:
        self.labels.extend(labels)
        self.labels.sort()

    def delete_subtree(self, root: Splid) -> None:
        self.labels = [
            label for label in self.labels
            if not label.is_self_or_descendant_of(root)
        ]

    def children(self, parent: Splid) -> List[Splid]:
        return sorted(
            label for label in self.labels
            if label.parent == parent and label.divisions[-1] != 1
        )

    def first_child(self, parent: Splid) -> Optional[Splid]:
        kids = self.children(parent)
        return kids[0] if kids else None

    def last_child(self, parent: Splid) -> Optional[Splid]:
        kids = self.children(parent)
        return kids[-1] if kids else None

    def next_sibling(self, node: Splid) -> Optional[Splid]:
        siblings = self.children(node.parent) if node.parent else []
        try:
            index = siblings.index(node)
        except ValueError:
            return None
        return siblings[index + 1] if index + 1 < len(siblings) else None

    def previous_sibling(self, node: Splid) -> Optional[Splid]:
        siblings = self.children(node.parent) if node.parent else []
        try:
            index = siblings.index(node)
        except ValueError:
            return None
        return siblings[index - 1] if index > 0 else None

    def subtree_size(self, root: Splid) -> int:
        return sum(
            1 for label in self.labels
            if label.is_self_or_descendant_of(root)
        )


@settings(max_examples=60, deadline=None)
@given(data=st.data(), operations=st.integers(min_value=3, max_value=30))
def test_document_matches_reference_model(data, operations):
    document = Document(root_element="root")
    model = ReferenceModel(document.root)
    elements: List[Splid] = [document.root]

    for _step in range(operations):
        action = data.draw(st.sampled_from(
            ["append", "prepend", "insert_between", "delete"]
        ))
        if action == "delete" and len(elements) > 1:
            victim = data.draw(st.sampled_from(
                [e for e in elements if e != document.root]
            ))
            document.delete_subtree(victim)
            model.delete_subtree(victim)
            elements = [
                e for e in elements
                if not e.is_self_or_descendant_of(victim)
            ]
            continue
        parent = data.draw(st.sampled_from(elements))
        if action == "append":
            new = document.add_element(parent, "el")
        elif action == "prepend":
            first = document.store.first_child(parent)
            new = document.add_element(
                parent, "el", before=first
            ) if first is not None else document.add_element(parent, "el")
        else:
            kids = list(document.store.children(parent))
            if len(kids) >= 2:
                index = data.draw(
                    st.integers(min_value=0, max_value=len(kids) - 2)
                )
                new = document.add_element(parent, "el", after=kids[index])
            else:
                new = document.add_element(parent, "el")
        model.insert([new])
        elements.append(new)

        # Compare every navigation primitive on every live element.
        for element in elements:
            assert document.store.first_child(element) == model.first_child(element)
            assert document.store.last_child(element) == model.last_child(element)
            assert document.store.next_sibling(element) == model.next_sibling(element)
            assert (document.store.previous_sibling(element)
                    == model.previous_sibling(element))
            assert list(document.store.children(element)) == model.children(element)
            assert (document.store.subtree_size(element)
                    == model.subtree_size(element))

    stored = [label for label, _record in document.walk()]
    assert stored == sorted(model.labels)
