"""Unit and property tests for the B*-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.bptree import BPTree, prefix_upper_bound
from repro.storage.buffer import BufferManager, PageFile


def make_tree(page_size=512, pool_size=64):
    return BPTree(BufferManager(PageFile(page_size=page_size), pool_size=pool_size))


@pytest.fixture
def tree():
    return make_tree()


class TestPrefixUpperBound:
    def test_simple(self):
        assert prefix_upper_bound(b"ab") == b"ac"

    def test_trailing_ff(self):
        assert prefix_upper_bound(b"a\xff\xff") == b"b"

    def test_all_ff(self):
        assert prefix_upper_bound(b"\xff\xff") is None

    def test_bounds_prefix_range(self):
        bound = prefix_upper_bound(b"ab")
        assert b"ab" < bound
        assert b"ab\xff\xff\xff" < bound
        assert not b"ac".startswith(b"ab")


class TestPointOperations:
    def test_get_missing(self, tree):
        assert tree.get(b"nope") is None
        assert b"nope" not in tree

    def test_put_get(self, tree):
        tree.put(b"k1", b"v1")
        assert tree.get(b"k1") == b"v1"
        assert len(tree) == 1

    def test_replace_keeps_count(self, tree):
        tree.put(b"k", b"a")
        tree.put(b"k", b"bb")
        assert tree.get(b"k") == b"bb"
        assert len(tree) == 1

    def test_delete(self, tree):
        tree.put(b"k", b"v")
        assert tree.delete(b"k")
        assert not tree.delete(b"k")
        assert len(tree) == 0
        assert tree.get(b"k") is None

    def test_rejects_non_bytes(self, tree):
        from repro.errors import StorageError
        with pytest.raises(StorageError):
            tree.put("text", b"v")


class TestSplitsAndScale:
    def test_many_sequential_inserts(self, tree):
        for i in range(2000):
            tree.put(f"{i:06d}".encode(), f"val{i}".encode())
        assert len(tree) == 2000
        assert tree.height() > 1
        for i in (0, 999, 1999):
            assert tree.get(f"{i:06d}".encode()) == f"val{i}".encode()

    def test_many_random_inserts(self):
        tree = make_tree()
        rng = random.Random(42)
        keys = [f"{rng.random():.12f}".encode() for _ in range(1500)]
        for key in keys:
            tree.put(key, b"x")
        assert len(tree) == len(set(keys))
        scanned = [k for k, _v in tree.items()]
        assert scanned == sorted(set(keys))

    def test_root_split_preserves_routing(self, tree):
        for i in range(500):
            tree.put(f"{i:04d}".encode(), b"v" * 20)
        for i in range(0, 500, 7):
            assert tree.get(f"{i:04d}".encode()) == b"v" * 20

    def test_delete_heavy_shrinks(self, tree):
        keys = [f"{i:05d}".encode() for i in range(1200)]
        for key in keys:
            tree.put(key, b"payload")
        for key in keys[:1100]:
            assert tree.delete(key)
        assert len(tree) == 100
        assert [k for k, _ in tree.items()] == keys[1100:]

    def test_delete_everything_then_reuse(self, tree):
        for i in range(300):
            tree.put(f"{i:04d}".encode(), b"v")
        for i in range(300):
            assert tree.delete(f"{i:04d}".encode())
        assert len(tree) == 0
        assert tree.first() is None
        tree.put(b"again", b"works")
        assert tree.get(b"again") == b"works"

    def test_leaf_occupancy_reasonable(self, tree):
        for i in range(1000):
            tree.put(f"{i:05d}".encode(), b"x" * 12)
        assert tree.leaf_occupancy() > 0.4
        assert tree.leaf_count() > 2


class TestOrderNavigation:
    @pytest.fixture
    def loaded(self):
        tree = make_tree()
        for i in range(0, 100, 10):  # keys 000, 010, ..., 090
            tree.put(f"{i:03d}".encode(), str(i).encode())
        return tree

    def test_ceiling(self, loaded):
        assert loaded.ceiling(b"015")[0] == b"020"
        assert loaded.ceiling(b"020")[0] == b"020"
        assert loaded.ceiling(b"091") is None

    def test_higher(self, loaded):
        assert loaded.higher(b"020")[0] == b"030"
        assert loaded.higher(b"015")[0] == b"020"
        assert loaded.higher(b"090") is None

    def test_floor(self, loaded):
        assert loaded.floor(b"015")[0] == b"010"
        assert loaded.floor(b"020")[0] == b"020"
        assert loaded.floor(b"\x00") is None

    def test_lower(self, loaded):
        assert loaded.lower(b"020")[0] == b"010"
        assert loaded.lower(b"000") is None

    def test_first_last(self, loaded):
        assert loaded.first()[0] == b"000"
        assert loaded.last()[0] == b"090"

    def test_empty_tree_navigation(self, tree):
        assert tree.first() is None
        assert tree.last() is None
        assert tree.ceiling(b"x") is None
        assert tree.lower(b"x") is None

    def test_navigation_across_page_boundaries(self):
        tree = make_tree(page_size=256)
        keys = [f"{i:04d}".encode() for i in range(200)]
        for key in keys:
            tree.put(key, b"v")
        for i in range(199):
            assert tree.higher(keys[i])[0] == keys[i + 1]
            assert tree.lower(keys[i + 1])[0] == keys[i]


class TestIteration:
    @pytest.fixture
    def loaded(self):
        tree = make_tree(page_size=256)
        for i in range(150):
            tree.put(f"{i:04d}".encode(), str(i).encode())
        return tree

    def test_full_scan(self, loaded):
        keys = [k for k, _v in loaded.items()]
        assert keys == [f"{i:04d}".encode() for i in range(150)]

    def test_range_scan(self, loaded):
        keys = [k for k, _v in loaded.items(b"0010", b"0015")]
        assert keys == [f"{i:04d}".encode() for i in range(10, 15)]

    def test_reverse_scan(self, loaded):
        keys = [k for k, _v in loaded.items_reverse()]
        assert keys == [f"{i:04d}".encode() for i in reversed(range(150))]

    def test_reverse_range(self, loaded):
        keys = [k for k, _v in loaded.items_reverse(b"0010", b"0005")]
        assert keys == [f"{i:04d}".encode() for i in (9, 8, 7, 6, 5)]

    def test_prefix_items(self, loaded):
        keys = [k for k, _v in loaded.prefix_items(b"001")]
        assert keys == [f"{i:04d}".encode() for i in range(10, 20)]


class TestRebalancing:
    def test_borrow_from_left_when_merge_impossible(self):
        """A leaf far below threshold next to a full left sibling borrows
        entries instead of merging, and routing stays correct."""
        tree = make_tree(page_size=512)
        # Two adjacent leaves: left full of big values, right made sparse.
        keys = [f"{i:04d}".encode() for i in range(40)]
        for key in keys:
            tree.put(key, b"v" * 40)
        assert tree.leaf_count() >= 3
        # Hollow out a middle leaf by deleting most of its keys.
        victims = keys[12:20]
        survivors = [k for k in keys if k not in victims[:-1]]
        for key in victims[:-1]:
            tree.delete(key)
        # Everything remaining is still reachable with correct values.
        for key in survivors:
            assert tree.get(key) == b"v" * 40
        assert [k for k, _v in tree.items()] == sorted(survivors)

    def test_heavy_random_delete_keeps_routing(self):
        import random
        rng = random.Random(77)
        tree = make_tree(page_size=256)
        keys = [f"{i:05d}".encode() for i in range(600)]
        for key in keys:
            tree.put(key, b"x" * rng.randint(4, 60))
        alive = set(keys)
        rng.shuffle(keys)
        for key in keys[:520]:
            assert tree.delete(key)
            alive.discard(key)
        assert sorted(alive) == [k for k, _v in tree.items()]
        for key in alive:
            assert tree.get(key) is not None
        # Navigation across rebalanced pages.
        ordered = sorted(alive)
        for a, b in zip(ordered, ordered[1:]):
            assert tree.higher(a)[0] == b


# -- property-based checks ----------------------------------------------------

keys_strategy = st.binary(min_size=1, max_size=24)


@settings(max_examples=60, deadline=None)
@given(entries=st.dictionaries(keys_strategy, st.binary(max_size=16),
                               min_size=1, max_size=120))
def test_matches_dict_semantics(entries):
    tree = make_tree(page_size=256)
    for key, value in entries.items():
        tree.put(key, value)
    assert len(tree) == len(entries)
    for key, value in entries.items():
        assert tree.get(key) == value
    assert [k for k, _v in tree.items()] == sorted(entries)


@settings(max_examples=40, deadline=None)
@given(
    entries=st.lists(keys_strategy, min_size=1, max_size=80, unique=True),
    delete_ratio=st.floats(min_value=0.0, max_value=1.0),
)
def test_interleaved_insert_delete(entries, delete_ratio):
    tree = make_tree(page_size=256)
    alive = set()
    cut = int(len(entries) * delete_ratio)
    for key in entries:
        tree.put(key, key)
        alive.add(key)
    for key in entries[:cut]:
        assert tree.delete(key)
        alive.discard(key)
    assert [k for k, _v in tree.items()] == sorted(alive)
    for key in alive:
        assert tree.get(key) == key
