"""Unit tests for the element index and the ID index."""

import pytest

from repro.errors import StorageError
from repro.splid import Splid
from repro.storage import ElementIndex, IdIndex, Vocabulary, make_buffered_store


def S(text):
    return Splid.parse(text)


@pytest.fixture
def element_index():
    return ElementIndex(make_buffered_store(), Vocabulary())


@pytest.fixture
def id_index():
    return IdIndex(make_buffered_store())


class TestElementIndex:
    def test_lookup_in_document_order(self, element_index):
        element_index.add("book", S("1.5.5"))
        element_index.add("book", S("1.5.3.3"))
        element_index.add("book", S("1.3.3"))
        assert element_index.lookup_list("book") == [
            S("1.3.3"), S("1.5.3.3"), S("1.5.5"),
        ]

    def test_names_are_isolated(self, element_index):
        element_index.add("book", S("1.3.3"))
        element_index.add("title", S("1.3.3.3"))
        assert element_index.lookup_list("book") == [S("1.3.3")]
        assert element_index.lookup_list("title") == [S("1.3.3.3")]

    def test_unknown_name(self, element_index):
        assert element_index.lookup_list("nope") == []
        assert element_index.count("nope") == 0

    def test_remove(self, element_index):
        element_index.add("book", S("1.3.3"))
        assert element_index.remove("book", S("1.3.3"))
        assert not element_index.remove("book", S("1.3.3"))
        assert not element_index.remove("never-seen", S("1.3.3"))
        assert element_index.lookup_list("book") == []

    def test_count(self, element_index):
        for i in range(5):
            element_index.add("chapter", S(f"1.3.{2 * i + 3}"))
        assert element_index.count("chapter") == 5

    def test_name_directory(self, element_index):
        element_index.add("bib", S("1"))
        element_index.add("book", S("1.3.3"))
        assert sorted(element_index.names()) == ["bib", "book"]

    def test_many_entries_per_name(self, element_index):
        labels = [S(f"1.{2 * i + 3}") for i in range(300)]
        for label in labels:
            element_index.add("person", label)
        assert element_index.lookup_list("person") == sorted(labels)


class TestIdIndex:
    def test_lookup(self, id_index):
        id_index.add("b42", S("1.5.3.3"))
        assert id_index.lookup("b42") == S("1.5.3.3")
        assert id_index.lookup("nope") is None

    def test_duplicate_id_rejected(self, id_index):
        id_index.add("b42", S("1.5.3.3"))
        with pytest.raises(StorageError):
            id_index.add("b42", S("1.5.5"))

    def test_re_adding_same_mapping_ok(self, id_index):
        id_index.add("b42", S("1.5.3.3"))
        id_index.add("b42", S("1.5.3.3"))
        assert len(id_index) == 1

    def test_remove(self, id_index):
        id_index.add("b42", S("1.5.3.3"))
        assert id_index.remove("b42")
        assert not id_index.remove("b42")
        assert id_index.lookup("b42") is None

    def test_ids_iteration(self, id_index):
        for value in ("a", "b", "c"):
            id_index.add(value, S("1.3"))
        assert sorted(id_index.ids()) == ["a", "b", "c"]
