"""Crash-point fault-injection tests."""

import pytest

from repro.database import Database
from repro.verify import canonical_image, run_crash_suite
from repro.verify.faults import _LIBRARY


@pytest.fixture(scope="module")
def suite():
    return run_crash_suite()


class TestCrashSuite:
    def test_suite_passes(self, suite):
        assert suite.ok, suite.failures[:5]
        assert suite.checks == {
            "prefix-crashes": "ok",
            "torn-tails": "ok",
            "fuzzy-checkpoint": "ok",
            "torn-checkpoint": "ok",
        }

    def test_all_crash_point_kinds_enumerated(self, suite):
        kinds = {point.kind for point in suite.points}
        assert {"baseline", "begin", "operation", "commit", "abort"} <= kinds

    def test_every_log_boundary_is_a_crash_point(self, suite):
        lsns = [point.lsn for point in suite.points]
        assert lsns == list(range(len(lsns)))
        assert len(lsns) > 10  # the workload logs a real mix of records

    def test_torn_tails_cover_every_byte(self, suite):
        # One probe per byte offset of the serialized log, plus the
        # empty and the full image.
        assert suite.torn_tails_checked > len(suite.points)

    def test_summary_mentions_outcome(self, suite):
        assert suite.summary().startswith("PASS")
        assert "crash_points" in suite.summary()


class TestCanonicalImage:
    def _db(self):
        db = Database(protocol="taDOM3+", lock_depth=4, root_element="bib",
                      enable_wal=True)
        db.load(_LIBRARY)
        return db

    def test_identical_builds_have_identical_images(self):
        assert canonical_image(self._db().document) == canonical_image(
            self._db().document
        )

    def test_mutation_changes_the_image(self):
        db = self._db()
        before = canonical_image(db.document)
        txn = db.begin("t")
        title = db.document.elements_by_name("title")[0]
        text = db.document.store.first_child(title)
        db.run(db.nodes.update_content(txn, text, "changed"))
        db.commit(txn)
        assert canonical_image(db.document) != before
