"""History-oracle tests: real traced runs pass; corrupted, mismatched,
or hand-crafted bad histories are flagged."""

import pytest

from repro.errors import BenchmarkError
from repro.obs import (
    LOCK_RELEASE,
    OP_ACCESS,
    RUN_INFO,
    TXN_BEGIN,
    TXN_COMMIT,
    Observability,
    TraceEvent,
)
from repro.tamix import TaMixConfig, TaMixCoordinator, generate_bib, make_database
from repro.verify import RunHistory, verify_history, verify_trace


def _traced_run(protocol="taDOM3+", lock_depth=4, *, sink=None):
    info = generate_bib(scale=0.01, seed=99)
    obs = Observability.enabled(capacity=None, sink=sink, access_events=True)
    db, info = make_database(protocol, lock_depth, "repeatable",
                             info=info, observability=obs)
    config = TaMixConfig(protocol=protocol, lock_depth=lock_depth,
                         isolation="repeatable", run_duration_ms=30_000.0,
                         seed=7)
    TaMixCoordinator(db, info, config).run()
    events = list(db.obs.tracer.events())
    obs.close()
    return events


@pytest.fixture(scope="module")
def tadom_events():
    return _traced_run()


class TestRealRuns:
    def test_tadom_run_passes_all_checks(self, tadom_events):
        report = verify_history(RunHistory.from_events(tadom_events))
        assert report.ok, [str(v) for v in report.violations[:5]]
        assert report.accesses_checked > 0
        assert report.steps_checked > 0
        assert report.checks == {
            "conformance": "ok",
            "serializability": "ok",
            "two-phase": "ok",
        }

    def test_report_is_deterministic(self, tadom_events):
        history = RunHistory.from_events(tadom_events)
        first = verify_history(history)
        second = verify_history(history)
        assert first.summary() == second.summary()
        assert first.violations == second.violations

    def test_wrong_protocol_is_flagged(self, tadom_events):
        report = verify_history(
            RunHistory.from_events(tadom_events), protocol="Node2PL"
        )
        assert not report.ok
        assert report.checks["conformance"] == "violated"

    def test_wrong_lock_depth_is_flagged(self, tadom_events):
        report = verify_history(
            RunHistory.from_events(tadom_events), lock_depth=0
        )
        assert not report.ok
        assert report.checks["conformance"] == "violated"

    def test_verify_trace_reads_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _traced_run(sink=path)
        report = verify_trace(path)
        assert report.ok
        assert report.protocol == "taDOM3+"
        assert report.accesses_checked > 0


class TestRunHistory:
    def test_manifest_carries_configuration(self, tadom_events):
        history = RunHistory.from_events(tadom_events)
        config = history.configuration()
        assert config["protocol"] == "taDOM3+"
        assert config["lock_depth"] == 4
        assert history.committed_transactions()

    def test_overrides_beat_manifest(self, tadom_events):
        history = RunHistory.from_events(tadom_events)
        config = history.configuration(protocol="taDOM2", lock_depth=1)
        assert config["protocol"] == "taDOM2"
        assert config["lock_depth"] == 1

    def test_missing_manifest_is_an_error(self):
        history = RunHistory.from_events([])
        with pytest.raises(BenchmarkError):
            history.configuration()
        with pytest.raises(BenchmarkError):
            verify_history(history)


def _event(seq, kind, txn=None, **data):
    return TraceEvent(seq, float(seq), kind, txn, data)


def _access(seq, txn, op, target):
    return _event(seq, OP_ACCESS, txn,
                  op=op, target=target, access="navigation")


class TestSyntheticHistories:
    """Hand-crafted bad histories: the oracle must not be vacuous."""

    def _manifest(self):
        return _event(0, RUN_INFO, protocol="taDOM3+", lock_depth=4,
                      isolation="repeatable", seed=0)

    def test_write_write_cycle_is_not_serializable(self):
        # T1 and T2 write content of A and B in opposite orders -- the
        # classic non-serializable interleaving.
        events = [
            self._manifest(),
            _event(1, TXN_BEGIN, "T1:w", name="w", isolation="repeatable"),
            _event(2, TXN_BEGIN, "T2:w", name="w", isolation="repeatable"),
            _access(3, "T1:w", "write_content", "1.3.3"),
            _access(4, "T2:w", "write_content", "1.3.3"),
            _access(5, "T2:w", "write_content", "1.5.3"),
            _access(6, "T1:w", "write_content", "1.5.3"),
            _event(7, TXN_COMMIT, "T1:w"),
            _event(8, TXN_COMMIT, "T2:w"),
        ]
        report = verify_history(RunHistory.from_events(events))
        assert report.checks["serializability"] == "violated"
        assert any(v.check == "serializability" for v in report.violations)

    def test_serial_writes_are_serializable(self):
        events = [
            self._manifest(),
            _event(1, TXN_BEGIN, "T1:w", name="w", isolation="repeatable"),
            _access(2, "T1:w", "write_content", "1.3.3"),
            _event(3, TXN_COMMIT, "T1:w"),
            _event(4, TXN_BEGIN, "T2:w", name="w", isolation="repeatable"),
            _access(5, "T2:w", "write_content", "1.3.3"),
            _event(6, TXN_COMMIT, "T2:w"),
        ]
        report = verify_history(RunHistory.from_events(events))
        assert report.checks["serializability"] == "ok"

    def test_uncovered_access_violates_conformance(self):
        events = [
            self._manifest(),
            _event(1, TXN_BEGIN, "T1:w", name="w", isolation="repeatable"),
            _access(2, "T1:w", "write_content", "1.3.3"),
            _event(3, TXN_COMMIT, "T1:w"),
        ]
        report = verify_history(RunHistory.from_events(events))
        assert report.checks["conformance"] == "violated"

    def test_operation_release_violates_two_phase(self):
        events = [
            self._manifest(),
            _event(1, TXN_BEGIN, "T1:w", name="w", isolation="repeatable"),
            _event(2, LOCK_RELEASE, "T1:w", scope="operation", count=1),
            _event(3, TXN_COMMIT, "T1:w"),
        ]
        report = verify_history(RunHistory.from_events(events))
        assert report.checks["two-phase"] == "violated"

    def test_isolation_none_skips_conformance(self):
        events = [
            self._manifest(),
            _event(1, TXN_BEGIN, "T1:w", name="w", isolation="none"),
            _access(2, "T1:w", "write_content", "1.3.3"),
            _event(3, TXN_COMMIT, "T1:w"),
        ]
        report = verify_history(RunHistory.from_events(events))
        assert report.checks["conformance"] == "skipped"
