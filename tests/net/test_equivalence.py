"""Embedded-vs-remote equivalence: the same scripted session against an
in-process :class:`Database` and a live server over the wire must see
identical values (SPLIDs, subtree entries, query results, serialized
XML), since the remote path round-trips everything through the codec."""

import pytest

from repro import Database
from repro.net.client import RemoteDatabase
from repro.tamix.bibgen import generate_bib


@pytest.fixture(scope="module")
def embedded():
    # the very document the live_server fixture builds (same scale/seed)
    info = generate_bib(scale=0.05, seed=2006)
    database = Database(
        protocol="taDOM3+", lock_depth=4, document=info.document,
        wait_timeout_ms=1_000.0,
    )
    return database, info


@pytest.fixture
def remote(live_server):
    handle = RemoteDatabase("127.0.0.1", live_server.port, pool_size=2)
    yield handle
    handle.close()


def scripted_session(db, book_id, topic_id):
    """One read-only tour, identical for Session and RemoteSession."""
    out = {}
    with db.session("tour") as session:
        book = session.run(session.nodes.get_element_by_id(book_id))
        out["book"] = book
        out["subtree"] = session.run(session.nodes.read_subtree(book))
        out["first_child"] = session.run(session.nodes.get_first_child(book))
        out["content"] = session.run(session.nodes.read_content(book))
        out["query"] = session.run(
            session.query(f"id('{topic_id}')")
        )
    return out


class TestEquivalence:
    def test_scripted_session_sees_identical_values(self, embedded, remote):
        database, info = embedded
        book_id, topic_id = info.book_ids[0], info.topic_ids[0]
        local = scripted_session(database, book_id, topic_id)
        served = scripted_session(remote, book_id, topic_id)
        assert local["book"] == served["book"]
        assert local["subtree"] == served["subtree"]
        assert local["first_child"] == served["first_child"]
        assert local["content"] == served["content"]
        assert local["query"] == served["query"]

    def test_session_surfaces_match(self, embedded, remote):
        database, info = embedded
        book_id = info.book_ids[0]
        with database.session("a") as local, remote.session("b") as served:
            # the one-constructor-change contract: same node operations,
            # same run keyword, same lifecycle methods
            for name in ("read_subtree", "get_element_by_id", "read_content"):
                assert name in dir(local.nodes)
                assert name in dir(served.nodes)
            lv, lc = local.run(
                local.nodes.get_element_by_id(book_id), with_cost=True
            )
            rv, rc = served.run(
                served.nodes.get_element_by_id(book_id), with_cost=True
            )
            assert lv == rv
            assert lc >= 0.0 and rc >= 0.0
            local.abort()
            served.abort()
