"""Shared fixtures for the wire-protocol tests: a live asyncio server
running on a background thread, bound to an ephemeral port."""

import asyncio
import threading

import pytest

from repro.net.server import LockServer, ServerConfig


class ServerHandle:
    """A :class:`LockServer` on its own thread + event loop.

    ``handle.port`` is the bound ephemeral port; ``handle.server`` is
    the live server object (its counters are safe to *read* from the
    test thread once traffic has drained).
    """

    def __init__(self, config: ServerConfig):
        self.server = LockServer.from_config(config)
        self.port = None
        self._ready = threading.Event()
        self._stop = None
        self._loop = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(10):
            raise RuntimeError("server failed to start within 10s")

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        _host, port = await self.server.start()
        self.port = port
        self._ready.set()
        task = asyncio.ensure_future(self.server.serve_forever())
        await self._stop.wait()
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass
        await self.server.stop()

    def shutdown(self):
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(10)


def make_server(**overrides) -> ServerHandle:
    config = ServerConfig(port=0, scale=0.05, seed=2006,
                          wait_timeout_ms=1_000.0)
    for key, value in overrides.items():
        setattr(config, key, value)
    return ServerHandle(config)


@pytest.fixture(scope="module")
def live_server():
    handle = make_server()
    yield handle
    handle.shutdown()
