"""Wire-codec tests: value/frame round-trips (including seeded fuzzing),
torn-frame detection, and the typed-error envelope."""

import random

import pytest

from repro.errors import (
    AdmissionRejected,
    DeadlockAbort,
    LockTimeout,
    NodeNotFound,
    PermanentRemoteError,
    ProtocolError,
    RemoteError,
    TransientRemoteError,
    UnsupportedWireVersion,
)
from repro.net import wire
from repro.splid import Splid
from repro.storage.record import NodeKind, NodeRecord


class TestValueRoundTrip:
    VALUES = [
        None, True, False,
        0, 1, -1, 63, 64, -64, -65, 2**40, -(2**40), 2**62,
        0.0, -0.0, 1.5, -273.15, 1e300,
        "", "book", "naïve – ünïcödé ✓",
        b"", b"\x00\xff" * 9,
        [], [1, "two", None], (), (1, (2, (3,))),
        {}, {"a": 1, "b": [True, None]}, {1: "one"},
        Splid((1,)), Splid((1, 3, 5, 127, 128, 255)),
        NodeRecord(NodeKind.ELEMENT, 3, b"title"),
        NodeRecord(NodeKind.TEXT, content=b"TP"),
    ]

    @pytest.mark.parametrize("value", VALUES, ids=repr)
    def test_round_trip(self, value):
        encoded = wire.encode_value(value)
        decoded = wire.decode_value(encoded)
        assert decoded == value
        assert type(decoded) is type(value)

    def test_trailing_garbage_rejected(self):
        encoded = wire.encode_value(42) + b"\x00"
        with pytest.raises(ProtocolError):
            wire.decode_value(encoded)

    def test_unencodable_type_rejected(self):
        with pytest.raises(ProtocolError):
            wire.encode_value(object())


def _random_value(rng, depth=0):
    choices = "int float str bytes none bool".split()
    if depth < 3:
        choices += ["list", "tuple", "dict", "splid"]
    kind = rng.choice(choices)
    if kind == "int":
        return rng.randint(-(2**50), 2**50)
    if kind == "float":
        return rng.uniform(-1e6, 1e6)
    if kind == "str":
        return "".join(chr(rng.randint(32, 0x2FF))
                       for _i in range(rng.randint(0, 12)))
    if kind == "bytes":
        return bytes(rng.randint(0, 255) for _i in range(rng.randint(0, 12)))
    if kind == "none":
        return None
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "splid":
        tail = tuple(rng.randint(1, 999) for _i in range(rng.randint(0, 4)))
        return Splid((1,) + tail + (rng.randint(0, 499) * 2 + 1,))
    if kind == "list":
        return [_random_value(rng, depth + 1)
                for _i in range(rng.randint(0, 4))]
    if kind == "tuple":
        return tuple(_random_value(rng, depth + 1)
                     for _i in range(rng.randint(0, 4)))
    return {
        rng.randint(0, 999): _random_value(rng, depth + 1)
        for _i in range(rng.randint(0, 4))
    }


class TestFrameFuzz:
    def test_seeded_frame_round_trips(self):
        rng = random.Random(2006)
        for _round in range(300):
            opcode = rng.randint(0, 255)
            fields = tuple(_random_value(rng)
                           for _i in range(rng.randint(0, 4)))
            frame = wire.encode_frame(opcode, *fields)
            got_op, got_fields = wire.decode_frame(frame)
            assert got_op == opcode
            assert got_fields == fields

    def test_every_truncation_is_a_torn_frame(self):
        frame = wire.encode_frame(
            wire.OP_CALL, 7, "read_subtree", (Splid((1, 3)),),
        )
        for cut in range(len(frame)):
            with pytest.raises(ProtocolError):
                wire.decode_frame(frame[:cut])

    def test_trailing_bytes_are_a_torn_frame(self):
        frame = wire.encode_frame(wire.OP_PING)
        with pytest.raises(ProtocolError):
            wire.decode_frame(frame + b"\x00")

    def test_corrupted_length_fails_fast(self):
        frame = bytearray(wire.encode_frame(wire.OP_PING))
        frame[0:4] = (0xFF, 0xFF, 0xFF, 0xFF)  # > MAX_FRAME_BYTES
        with pytest.raises(ProtocolError):
            wire.split_frame(bytes(frame))

    def test_split_frame_waits_for_header(self):
        assert wire.split_frame(b"") == (-1, -1)
        assert wire.split_frame(b"\x00\x00\x00") == (-1, -1)

    def test_split_frame_reports_lengths(self):
        frame = wire.encode_frame(wire.OP_PING)
        payload, total = wire.split_frame(frame + b"extra")
        assert total == len(frame)
        assert payload == len(frame) - 4

    def test_zero_length_payload_rejected(self):
        with pytest.raises(ProtocolError):
            wire.split_frame(b"\x00\x00\x00\x00rest")


class TestErrorEnvelope:
    @pytest.mark.parametrize("error", [
        DeadlockAbort("victim of the cycle"),
        LockTimeout("gave up after 5000 ms"),
        AdmissionRejected("shed at pressure 9"),
        NodeNotFound("no element 'b404'"),
        UnsupportedWireVersion("want 1, got 99"),
    ], ids=lambda e: type(e).__name__)
    def test_registered_errors_round_trip_typed(self, error):
        opcode, fields = wire.decode_frame(wire.encode_error(error))
        assert opcode == wire.OP_ERROR
        rebuilt = wire.decode_error(fields)
        assert type(rebuilt) is type(error)
        assert str(error) in str(rebuilt)

    def test_taxonomy_travels_with_the_frame(self):
        _op, fields = wire.decode_frame(
            wire.encode_error(LockTimeout("slow"))
        )
        assert fields[1] == "transient"
        _op, fields = wire.decode_frame(
            wire.encode_error(UnsupportedWireVersion("no"))
        )
        assert fields[1] == "permanent"

    def test_unknown_code_falls_back_by_taxonomy(self):
        base = wire.decode_frame(wire.encode_error(LockTimeout("x")))[1]
        transient = wire.decode_error(("Exotic", "transient", "", "m"))
        assert isinstance(transient, TransientRemoteError)
        assert transient.code == "Exotic"
        permanent = wire.decode_error(("Exotic", "permanent", "", "m"))
        assert isinstance(permanent, PermanentRemoteError)
        unknown = wire.decode_error(("Exotic", "unclassified", "", "m"))
        assert type(unknown) is RemoteError
        assert len(base) == 4

    def test_reason_attribute_survives(self):
        error = DeadlockAbort("boom")
        error.reason = "deadlock"
        _op, fields = wire.decode_frame(wire.encode_error(error))
        rebuilt = wire.decode_error(fields)
        assert rebuilt.reason == "deadlock"

    def test_malformed_error_frame_rejected(self):
        with pytest.raises(ProtocolError):
            wire.decode_error(("only", "three", "fields"))
