"""Live server tests: handshake, typed errors over the wire, admission
shed, SLO stats, and survival of malformed requests."""

import socket

import pytest

import repro
from repro.chaos import AdmissionPolicy, RetryPolicy
from repro.errors import (
    AdmissionRejected,
    LockTimeout,
    RemoteError,
    UnsupportedWireVersion,
)
from repro.net import wire
from repro.net.client import RemoteDatabase, RemoteSession
from repro.splid import Splid

from tests.net.conftest import make_server


@pytest.fixture
def db(live_server):
    handle = RemoteDatabase("127.0.0.1", live_server.port, pool_size=2)
    yield handle
    handle.close()


class TestHandshake:
    def test_info_carries_identity_and_workload(self, db):
        info = db.info()
        assert info["protocol"] == "taDOM3+"
        assert info["lock_depth"] == 4
        assert info["root"] == "bib"
        assert info["nodes"] > 0
        assert info["book_ids"], "bib generator should publish book ids"

    def test_connect_url_reaches_the_server(self, live_server):
        handle = repro.connect(f"tcp://127.0.0.1:{live_server.port}")
        try:
            assert isinstance(handle, RemoteDatabase)
            assert handle.info()["root"] == "bib"
        finally:
            handle.close()

    def test_version_mismatch_is_typed_and_permanent(self, live_server):
        with socket.create_connection(
            ("127.0.0.1", live_server.port), timeout=5
        ) as sock:
            sock.sendall(wire.encode_frame(wire.OP_HELLO, 99, "time-traveller"))
            buffer = b""
            while True:
                _payload, total = wire.split_frame(buffer)
                if total > 0 and len(buffer) >= total:
                    break
                chunk = sock.recv(65536)
                assert chunk, "server closed without an ERROR frame"
                buffer += chunk
        opcode, fields = wire.decode_frame(buffer[:total])
        assert opcode == wire.OP_ERROR
        error = wire.decode_error(fields)
        assert isinstance(error, UnsupportedWireVersion)
        assert repro.is_permanent(error)


class TestSessions:
    def test_commit_path_mirrors_embedded_session(self, db, live_server):
        committed_before = live_server.server.slo.committed
        with db.session("reader") as session:
            assert isinstance(session, RemoteSession)
            book_id = db.info()["book_ids"][0]
            book = session.run(session.nodes.get_element_by_id(book_id))
            assert isinstance(book, Splid)
            entries = session.run(session.nodes.read_subtree(book))
            assert len(entries) > 1
            assert session.elapsed_ms >= 0.0
        assert live_server.server.slo.committed == committed_before + 1

    def test_with_cost_returns_server_measured_pair(self, db):
        with db.session("costed") as session:
            book_id = db.info()["book_ids"][0]
            value, cost = session.run(
                session.nodes.get_element_by_id(book_id), with_cost=True
            )
            assert isinstance(value, Splid)
            assert cost >= 0.0

    def test_query_over_the_wire(self, db):
        with db.session("xpath") as session:
            topic_id = db.info()["topic_ids"][0]
            result = session.run(session.query(f"id('{topic_id}')"))
            assert result  # the topic node resolves

    def test_lock_timeout_arrives_typed(self, db):
        book_id = db.info()["book_ids"][0]
        with db.session("writer") as writer:
            book = writer.run(writer.nodes.get_element_by_id(book_id))
            writer.run(writer.nodes.rename_element(book, "tome"))
            with pytest.raises(LockTimeout) as excinfo:
                with db.session("blocked-reader") as reader:
                    reader.run(reader.nodes.read_subtree(book))
            assert repro.is_transient(excinfo.value)
            writer.abort()  # roll the rename back for the other tests

    def test_missing_id_resolves_to_none_like_embedded(self, db):
        with db.session("missing-id") as session:
            assert session.run(
                session.nodes.get_element_by_id("b404-nope")
            ) is None

    def test_abort_rolls_back_on_the_server(self, db, live_server):
        aborted_before = live_server.server.slo.aborted
        with pytest.raises(RuntimeError, match="boom"):
            with db.session("doomed") as session:
                book_id = db.info()["book_ids"][0]
                session.run(session.nodes.get_element_by_id(book_id))
                raise RuntimeError("boom")
        assert live_server.server.slo.aborted == aborted_before + 1

    def test_bad_arguments_fail_the_txn_not_the_server(self, db):
        with pytest.raises(RemoteError):
            with db.session("fumbling") as session:
                # a string where a SPLID belongs: server answers with an
                # ERROR frame instead of dropping the connection
                session.run(session.nodes.read_subtree("9.9.9"))
        # the connection pool is still serviceable afterwards
        assert db.info()["root"] == "bib"

    def test_unknown_operation_rejected_client_side(self, db):
        with db.session("typo") as session:
            with pytest.raises(AttributeError):
                session.nodes.raed_subtree  # noqa: B018 -- the typo is the test
            session.abort()

    def test_remote_nodes_caches_and_lists_operations(self, db):
        with db.session("introspect") as session:
            assert session.nodes.read_subtree is session.nodes.read_subtree
            assert "read_subtree" in dir(session.nodes)
            session.abort()


class TestStats:
    def test_stats_report_slo_percentiles(self, db, live_server):
        errors_before = live_server.server.protocol_errors
        book_id = db.info()["book_ids"][0]
        for _i in range(3):
            with db.session("warm") as session:
                session.run(session.nodes.get_element_by_id(book_id))
        stats = db.stats()
        overall = stats["slo"]["_overall"]
        for key in ("count", "p50_ms", "p99_ms", "p999_ms"):
            assert key in overall
        assert overall["count"] >= 3
        assert stats["slo"]["warm"]["count"] >= 3
        # well-formed traffic never trips the protocol-error counter
        assert stats["protocol_errors"] == errors_before


class TestAdmission:
    def test_shed_is_typed_and_retryable(self):
        handle = make_server(
            admission=AdmissionPolicy(max_pressure=1, max_queue_waits=0)
        )
        try:
            # force overload: pressure beyond max_pressure sheds BEGINs
            handle.server.admission.pressure = 5
            plain = RemoteDatabase("127.0.0.1", handle.port, pool_size=1)
            try:
                with pytest.raises(AdmissionRejected) as excinfo:
                    plain.session("shed-me")
                assert repro.is_transient(excinfo.value)
            finally:
                plain.close()
            assert handle.server.sheds > 0

            # a retrying client absorbs the shed once pressure drops
            retrying = RemoteDatabase(
                "127.0.0.1", handle.port, pool_size=1,
                retry=RetryPolicy(max_restarts=4, base_backoff_ms=1.0,
                                  max_backoff_ms=2.0),
            )
            try:
                handle.server.admission.pressure = 0
                with retrying.session("admitted") as session:
                    session.abort()
            finally:
                retrying.close()
        finally:
            handle.shutdown()
