"""Load-generator tests: deterministic sim mode (byte-identical seeded
reports), zipfian sampling, and a small live run against a real server."""

import json

import pytest

from repro.chaos import AdmissionPolicy, RetryPolicy
from repro.net.loadgen import (
    LoadGenConfig,
    ZipfSampler,
    render_report,
    run,
    run_sim,
)

SIM_CFG = dict(
    mode="sim", clients=20, duration_ms=4_000.0, rate_tps=200.0,
    think_ms=1.0, seed=2006, scale=0.05, wait_timeout_ms=500.0,
)


class TestZipfSampler:
    def test_seeded_sampling_is_deterministic(self):
        import random
        a = [ZipfSampler(50, 1.1).pick(random.Random(7)) for _i in range(20)]
        b = [ZipfSampler(50, 1.1).pick(random.Random(7)) for _i in range(20)]
        assert a == b

    def test_skew_prefers_the_head(self):
        import random
        rng = random.Random(11)
        sampler = ZipfSampler(100, 1.5)
        picks = [sampler.pick(rng) for _i in range(2000)]
        head = sum(1 for p in picks if p < 10)
        assert head > len(picks) * 0.4  # far above the uniform 10%

    def test_zero_exponent_is_uniform(self):
        import random
        rng = random.Random(3)
        sampler = ZipfSampler(2, 0.0)
        picks = {sampler.pick(rng) for _i in range(50)}
        assert picks == {0, 1}


class TestSimDeterminism:
    def test_same_seed_renders_byte_identical_reports(self):
        first = render_report(run(LoadGenConfig(**SIM_CFG)))
        second = render_report(run(LoadGenConfig(**SIM_CFG)))
        assert first == second

    def test_different_seed_changes_the_traffic(self):
        first = render_report(run(LoadGenConfig(**SIM_CFG)))
        other = render_report(run(LoadGenConfig(**dict(SIM_CFG, seed=7))))
        assert first != other

    def test_report_shape(self):
        report = run_sim(LoadGenConfig(**SIM_CFG))
        assert report["config"]["mode"] == "sim"
        assert report["config"]["protocol"] == "taDOM3+"
        overall = report["overall"]
        assert overall["issued"] > 0
        assert overall["committed"] > 0
        assert overall["issued"] >= (
            overall["committed"] + overall["gave_up"]
        )
        for row in report["by_type"].values():
            for key in ("issued", "committed", "aborted", "retries",
                        "sheds", "gave_up", "latency"):
                assert key in row
        if overall["latency"]:
            for key in ("count", "p50_ms", "p99_ms", "p999_ms"):
                assert key in overall["latency"]
        assert report["protocol_errors"] == 0
        # canonical JSON round-trips
        assert json.loads(render_report(report)) == report

    def test_admission_control_sheds_under_pressure(self):
        cfg = LoadGenConfig(**dict(
            SIM_CFG, clients=40, rate_tps=2_000.0, wait_timeout_ms=100.0,
            admission=AdmissionPolicy(max_pressure=1, max_queue_waits=0),
            retry=RetryPolicy(max_restarts=2, base_backoff_ms=1.0,
                              max_backoff_ms=4.0),
        ))
        report = run(cfg)
        # overload must be *reported*, not silently absorbed
        assert "sheds" in report["overall"]
        assert report["config"]["retry"]["max_restarts"] == 2


class TestLiveMode:
    def test_small_live_run_is_clean(self, live_server):
        cfg = LoadGenConfig(
            mode="live", host="127.0.0.1", port=live_server.port,
            clients=8, duration_ms=600.0, rate_tps=100.0, think_ms=0.5,
            seed=2006, pool_size=4,
            retry=RetryPolicy(max_restarts=2, base_backoff_ms=1.0,
                              max_backoff_ms=4.0),
        )
        report = run(cfg)
        assert report["config"]["mode"] == "live"
        assert report["overall"]["issued"] > 0
        assert report["overall"]["committed"] > 0
        assert report["protocol_errors"] == 0
        assert "server" in report
        assert "_overall" in report["server"]["slo"]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run(LoadGenConfig(mode="warp"))


class TestReport:
    def test_render_is_sorted_and_stable(self):
        cfg = LoadGenConfig(**SIM_CFG)
        report = run(cfg)
        text = render_report(report)
        assert text == render_report(json.loads(text))
