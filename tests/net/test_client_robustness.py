"""Client-side robustness: linear frame reassembly, no leaked sockets
on a failed handshake, and surfaced (never silent) dropped windows."""

import asyncio
import socket
import threading

import pytest

from repro.errors import (
    ConnectionLostError,
    ProtocolError,
    TransientError,
    UnsupportedWireVersion,
)
from repro.net import wire
from repro.net.client import ClientPool, RemoteDatabase, WireConnection
from repro.net.server import TelemetryPlane, _Subscriber

from tests.net.conftest import make_server


def _bare_connection(sock) -> WireConnection:
    """A WireConnection wrapped around an existing socket, skipping the
    constructor's handshake (the framing layer under test is below it)."""
    conn = WireConnection.__new__(WireConnection)
    conn.host, conn.port = "test", 0
    conn._sock = sock
    conn._recv_buffer = bytearray()
    conn._recv_offset = 0
    conn.closed = False
    return conn


class TestReadExactly:
    def test_large_frame_reassembles_from_many_segments(self):
        """A multi-megabyte frame delivered in small TCP segments must
        come back intact (regression: the old ``bytes`` buffer re-sliced
        itself per segment, quadratic in segment count)."""
        ours, theirs = socket.socketpair()
        try:
            payload = bytes(range(256)) * (4 * 1024 * 16)  # 4 MiB
            def feed():
                for start in range(0, len(payload), 8192):
                    theirs.sendall(payload[start:start + 8192])
            sender = threading.Thread(target=feed)
            sender.start()
            conn = _bare_connection(ours)
            data = conn._read_exactly(len(payload))
            sender.join(30)
            assert data == payload
            # Fully drained: the buffer resets instead of accumulating.
            assert len(conn._recv_buffer) == 0
            assert conn._recv_offset == 0
        finally:
            ours.close()
            theirs.close()

    def test_cursor_spans_frame_boundaries(self):
        """Reads that straddle what one recv delivered must honor the
        offset cursor (consumed bytes stay in the buffer until trimmed)."""
        ours, theirs = socket.socketpair()
        try:
            theirs.sendall(b"aaaa" + b"bbbbbb" + b"cc")
            conn = _bare_connection(ours)
            assert conn._read_exactly(4) == b"aaaa"
            assert conn._read_exactly(6) == b"bbbbbb"
            assert conn._read_exactly(2) == b"cc"
            assert conn._recv_offset == 0  # drained -> reset
        finally:
            ours.close()
            theirs.close()

    def test_eof_mid_frame_is_protocol_error(self):
        ours, theirs = socket.socketpair()
        try:
            theirs.sendall(b"abc")
            theirs.close()
            conn = _bare_connection(ours)
            with pytest.raises(ProtocolError, match="3/8"):
                conn._read_exactly(8)
        finally:
            ours.close()


class _OneShotServer:
    """Accepts one client, replies to its first frame with a canned
    frame, then reports whether the client closed its end."""

    def __init__(self, reply: bytes):
        self._reply = reply
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(1)
        self.port = self._sock.getsockname()[1]
        self.client_closed = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        client, _addr = self._sock.accept()
        with client:
            client.settimeout(10)
            buffer = b""
            while True:
                _length, total = wire.split_frame(buffer)
                if total > 0 and len(buffer) >= total:
                    break
                buffer += client.recv(65536)
            client.sendall(self._reply)
            # A closed peer reads as EOF; a leaked socket blocks.
            try:
                if client.recv(1) == b"":
                    self.client_closed.set()
            except OSError:
                self.client_closed.set()

    def join(self):
        self._thread.join(10)
        self._sock.close()


class TestHandshakeLeak:
    def test_refused_dial_leaves_no_live_slot(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        refused_port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        pool = ClientPool("127.0.0.1", refused_port, size=2)
        with pytest.raises(OSError):
            pool.acquire()
        assert pool.live == 0

    def test_error_reply_to_hello_closes_socket_and_slot(self):
        """A server that rejects the HELLO (version mismatch) must leave
        the pool empty *and* the dialed socket closed."""
        server = _OneShotServer(
            wire.encode_error(UnsupportedWireVersion("speak version 1"))
        )
        pool = ClientPool("127.0.0.1", server.port, size=2)
        with pytest.raises(UnsupportedWireVersion):
            pool.acquire()
        assert pool.live == 0
        assert server.client_closed.wait(10), "handshake failure leaked fd"
        server.join()

    def test_non_welcome_reply_closes_socket_and_slot(self):
        server = _OneShotServer(wire.encode_frame(wire.OP_PONG))
        pool = ClientPool("127.0.0.1", server.port, size=2)
        with pytest.raises(ProtocolError, match="expected WELCOME"):
            pool.acquire()
        assert pool.live == 0
        assert server.client_closed.wait(10), "handshake failure leaked fd"
        server.join()


class TestConnectionLost:
    """A peer hangup mid-call is *transient* (the server restarted, the
    link dropped) -- unlike a protocol violation, the caller may retry
    on a fresh connection.  The broken one must close itself so the
    pool evicts it instead of handing it out again."""

    def _lost_peer_connection(self) -> WireConnection:
        ours, theirs = socket.socketpair()
        theirs.close()  # writes now raise BrokenPipeError
        return _bare_connection(ours)

    def test_hangup_mid_request_is_typed_transient(self):
        conn = self._lost_peer_connection()
        with pytest.raises(ConnectionLostError, match="lost mid-call"):
            conn.request(wire.OP_PING)
        assert isinstance(ConnectionLostError("x"), TransientError)
        assert conn.closed, "broken connection must mark itself dead"

    def test_hangup_mid_stream_is_typed_transient(self):
        conn = self._lost_peer_connection()
        with pytest.raises(ConnectionLostError, match="lost mid-stream"):
            next(conn.stream(wire.OP_SUBSCRIBE, 1))
        assert conn.closed

    def test_pool_evicts_broken_connection_on_release(self):
        pool = ClientPool("127.0.0.1", 1, size=2)
        conn = self._lost_peer_connection()
        with pool._lock:
            pool._live = 1  # stand in for a dialed lease
        with pytest.raises(ConnectionLostError):
            conn.request(wire.OP_PING)
        pool.release(conn)
        assert pool.live == 0, "dead connection held its pool slot"
        assert not pool._idle, "dead connection re-entered the idle list"


class TestDroppedWindows:
    def test_publish_counts_overflow_instead_of_swallowing(self):
        """Queue-full skips increment the subscriber's drop counter (the
        value the DONE trailer reports) and the plane-wide total."""
        class PlaneStub:
            subscribers = [_Subscriber(asyncio.Queue(maxsize=1))]
            dropped_windows = 0

        plane = PlaneStub()
        for index in range(3):
            TelemetryPlane.publish(plane, {"index": index})
        subscriber = plane.subscribers[0]
        assert subscriber.queue.qsize() == 1
        assert subscriber.dropped == 2
        assert plane.dropped_windows == 2

    def test_done_trailer_reports_drop_count_over_the_wire(self):
        handle = make_server(telemetry_window_ms=25.0)
        try:
            conn = WireConnection("127.0.0.1", handle.port)
            try:
                stream = conn.stream(wire.OP_SUBSCRIBE, 2)
                windows = []
                while True:
                    try:
                        windows.append(next(stream))
                    except StopIteration as stop:
                        done = stop.value
                        break
                assert len(windows) == 2
                assert len(done) == 2  # (elapsed_ms, dropped_windows)
                assert done[1] == 0  # this consumer kept up
            finally:
                conn.close()
            with RemoteDatabase("127.0.0.1", handle.port) as db:
                assert len(list(db.subscribe(1))) == 1
                assert db.last_dropped_windows == 0
        finally:
            handle.shutdown()
