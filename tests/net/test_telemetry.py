"""Live-server tests for the telemetry plane (PR 8).

TELEMETRY/SUBSCRIBE opcodes, trace-context propagation, slow-request
attribution, uptime/per-opcode STATS enrichment, and the disabled-plane
error path.
"""

import time

import pytest

from repro.errors import ProtocolError, RemoteError
from repro.net import wire
from repro.net.client import RemoteDatabase, WireConnection
from repro.net.server import SlowRequestLog
from repro.obs import Observability

from .conftest import make_server


@pytest.fixture(scope="module")
def fast_server():
    """A server ticking telemetry windows every 50 ms."""
    handle = make_server(telemetry_window_ms=50.0, telemetry_capacity=16)
    yield handle
    handle.shutdown()


def do_some_work(db: RemoteDatabase, *, trace=None) -> None:
    book_id = db.info()["book_ids"][0]
    with db.session("TAqueryBook") as session:
        book = session.run(
            session.nodes.get_element_by_id(book_id), trace=trace
        )
        if book is not None:
            session.run(session.nodes.read_subtree(book), trace=trace)


class TestTelemetryFrame:
    def test_payload_shape(self, fast_server):
        with RemoteDatabase("127.0.0.1", fast_server.port) as db:
            do_some_work(db)
            time.sleep(0.15)  # let a few windows close
            payload = db.telemetry()
        assert payload["version"] == 1
        assert payload["window_ms"] == 50.0
        assert payload["total_windows"] >= 1
        assert payload["windows"]
        assert payload["uptime_ms"] > 0
        window = payload["windows"][-1]
        assert set(window) >= {
            "index", "t_start_ms", "t_end_ms",
            "counters", "gauges", "histograms", "slo",
        }
        snapshot = payload["snapshot"]
        assert "server.requests" in snapshot["counters"]
        assert "server.request_ms" in snapshot["histograms"]
        assert snapshot["counters"]["server.committed"] >= 1

    def test_windows_count_requests(self, fast_server):
        with RemoteDatabase("127.0.0.1", fast_server.port) as db:
            do_some_work(db)
            time.sleep(0.15)
            payload = db.telemetry()
        total = sum(
            w["counters"].get("server.requests", 0)
            for w in payload["windows"]
        )
        assert total >= 3  # BEGIN + CALLs + COMMIT landed in windows

    def test_loop_lag_histogram_populated(self, fast_server):
        time.sleep(0.15)
        with RemoteDatabase("127.0.0.1", fast_server.port) as db:
            payload = db.telemetry()
        lag = payload["snapshot"]["histograms"]["server.loop_lag_ms"]
        assert lag["count"] >= 1  # one probe per closed window

    def test_slow_request_log_attributes(self, fast_server):
        with RemoteDatabase("127.0.0.1", fast_server.port) as db:
            do_some_work(db, trace="req-slow-1")
            payload = db.telemetry()
        slow = payload["slow_requests"]
        assert slow
        record = slow[0]
        assert set(record) >= {
            "op", "service_ms", "lock_wait_ms", "sim_cost_ms", "t_ms", "txn",
        }
        # Slowest first.
        services = [r["service_ms"] for r in slow]
        assert services == sorted(services, reverse=True)
        assert any(r.get("trace") == "req-slow-1" for r in slow)


class TestSubscribe:
    def test_streams_requested_windows(self, fast_server):
        with RemoteDatabase("127.0.0.1", fast_server.port) as db:
            windows = list(db.subscribe(3))
        assert len(windows) == 3
        indexes = [w["index"] for w in windows]
        assert indexes == sorted(indexes)
        assert all("counters" in w for w in windows)

    def test_connection_reusable_after_stream(self, fast_server):
        conn = WireConnection("127.0.0.1", fast_server.port)
        try:
            got = sum(1 for _ in conn.stream(wire.OP_SUBSCRIBE, 2))
            assert got == 2
            assert conn.ping()  # DONE terminated the stream cleanly
        finally:
            conn.close()

    def test_bad_max_windows_is_protocol_error(self, fast_server):
        for bad in (0, -1, 100_000):
            conn = WireConnection("127.0.0.1", fast_server.port)
            try:
                with pytest.raises(ProtocolError):
                    list(conn.stream(wire.OP_SUBSCRIBE, bad))
            finally:
                conn.close()

    def test_abandoned_stream_closes_connection(self, fast_server):
        with RemoteDatabase("127.0.0.1", fast_server.port) as db:
            stream = db.subscribe(50)
            next(stream)
            stream.close()  # abandon mid-stream
            # The pool must not hand back the tainted connection.
            assert db.ping()


class TestTraceContext:
    def test_trace_propagates_into_spans(self):
        handle = make_server(
            telemetry_window_ms=50.0,
            observability=Observability.enabled(capacity=4096),
        )
        try:
            with RemoteDatabase("127.0.0.1", handle.port) as db:
                do_some_work(db, trace="req-42")
            events = [
                e for e in handle.server.database.tracer.events()
                if e.kind.startswith("span.") and e.data.get("cat") == "rpc"
            ]
            traced = [e for e in events if e.data.get("trace") == "req-42"]
            assert traced  # both span.begin and span.end carry it
            kinds = {e.kind for e in traced}
            assert kinds == {"span.begin", "span.end"}
        finally:
            handle.shutdown()

    def test_untraced_requests_omit_the_field(self):
        handle = make_server(
            telemetry_window_ms=50.0,
            observability=Observability.enabled(capacity=4096),
        )
        try:
            with RemoteDatabase("127.0.0.1", handle.port) as db:
                do_some_work(db)  # no trace kwarg
            events = [
                e for e in handle.server.database.tracer.events()
                if e.kind.startswith("span.") and e.data.get("cat") == "rpc"
            ]
            assert events
            assert all("trace" not in e.data for e in events)
        finally:
            handle.shutdown()

    def test_non_string_trace_rejected(self, fast_server):
        conn = WireConnection("127.0.0.1", fast_server.port)
        try:
            _op, body = conn.request(wire.OP_BEGIN, "t", None)
            txn_id = int(body[0])
            with pytest.raises(ProtocolError):
                conn.request(wire.OP_QUERY, txn_id, "/bib", 123)
        finally:
            conn.close()


class TestStatsEnrichment:
    def test_uptime_and_per_opcode_counts(self, fast_server):
        with RemoteDatabase("127.0.0.1", fast_server.port) as db:
            do_some_work(db)
            stats = db.stats()
        assert stats["uptime_ms"] > 0
        by_opcode = stats["requests_by_opcode"]
        assert by_opcode["BEGIN"] >= 1
        assert by_opcode["CALL"] >= 1
        assert by_opcode["COMMIT"] >= 1
        assert sum(by_opcode.values()) == stats["requests"]


class TestDisabledTelemetry:
    def test_telemetry_frame_errors(self):
        handle = make_server(telemetry=False)
        try:
            with RemoteDatabase("127.0.0.1", handle.port) as db:
                with pytest.raises(RemoteError):
                    db.telemetry()
                assert db.ping()  # the error did not drop the link
            assert handle.server._plane is None
        finally:
            handle.shutdown()

    def test_subscribe_errors_without_closing(self):
        handle = make_server(telemetry=False)
        try:
            conn = WireConnection("127.0.0.1", handle.port)
            try:
                with pytest.raises(RemoteError):
                    list(conn.stream(wire.OP_SUBSCRIBE, 1))
                assert conn.ping()
            finally:
                conn.close()
        finally:
            handle.shutdown()


class TestSlowRequestLog:
    def test_keeps_top_k_by_service_time(self):
        log = SlowRequestLog(3)
        for ms in (5.0, 1.0, 9.0, 3.0, 7.0):
            log.note({"op": "x", "service_ms": ms})
        assert [r["service_ms"] for r in log.as_list()] == [9.0, 7.0, 5.0]

    def test_zero_size_log_is_inert(self):
        log = SlowRequestLog(0)
        log.note({"op": "x", "service_ms": 1.0})
        assert log.as_list() == []
