"""SLO percentile and bounded-reservoir tracker edge cases (PR 8)."""

import pytest

from repro.net.server import SloTracker
from repro.tamix.metrics import histogram_percentile, latency_slo, nearest_rank


class TestLatencySlo:
    def test_empty_sample(self):
        assert latency_slo([]) == {"count": 0}

    def test_single_sample_is_every_percentile(self):
        slo = latency_slo([7.5])
        assert slo == {
            "count": 1, "p50_ms": 7.5, "p99_ms": 7.5, "p999_ms": 7.5,
        }

    def test_nearest_rank_boundaries_on_hundred(self):
        samples = [float(i) for i in range(1, 101)]
        slo = latency_slo(samples)
        # Nearest rank: ceil(q*n/100) -- p50 is the 50th of 100, p99 the
        # 99th, p999 ceil(99.9) = the 100th.
        assert slo["p50_ms"] == 50.0
        assert slo["p99_ms"] == 99.0
        assert slo["p999_ms"] == 100.0

    def test_nearest_rank_rounds_up_on_small_samples(self):
        samples = [1.0, 2.0, 3.0]
        assert nearest_rank(samples, 50.0) == 2.0  # ceil(1.5) = rank 2
        assert nearest_rank(samples, 99.0) == 3.0
        assert nearest_rank(samples, 33.4) == 2.0  # just past rank 1

    def test_nearest_rank_rejects_bad_input(self):
        with pytest.raises(ValueError):
            nearest_rank([], 50.0)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 0.0)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 100.1)

    def test_unsorted_input_is_sorted_by_latency_slo(self):
        assert latency_slo([3.0, 1.0, 2.0])["p50_ms"] == 2.0


class TestHistogramPercentile:
    def test_empty_histogram(self):
        assert histogram_percentile((1.0, 10.0), [0, 0, 0], 50.0) is None

    def test_picks_containing_bucket_upper_bound(self):
        # 3 obs <= 1ms, 6 obs <= 10ms, 1 overflow.
        counts = [3, 6, 1]
        assert histogram_percentile((1.0, 10.0), counts, 30.0) == 1.0
        assert histogram_percentile((1.0, 10.0), counts, 50.0) == 10.0
        assert histogram_percentile((1.0, 10.0), counts, 99.0) == float("inf")

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            histogram_percentile((1.0,), [1], 50.0)
        with pytest.raises(ValueError):
            histogram_percentile((1.0,), [1, 0], 0.0)


class TestSloTracker:
    def test_empty_tracker(self):
        tracker = SloTracker()
        assert tracker.slo() == {"_overall": {"count": 0}}
        assert tracker.committed == 0

    def test_counts_and_shape(self):
        tracker = SloTracker()
        tracker.record_commit("TAchapter", 10.0)
        tracker.record_commit("TAchapter", 20.0)
        tracker.record_commit("TAqueryBook", 5.0)
        report = tracker.slo()
        assert set(report) == {"TAchapter", "TAqueryBook", "_overall"}
        assert report["TAchapter"]["count"] == 2
        assert report["TAchapter"]["p50_ms"] == 10.0
        assert report["_overall"]["count"] == 3
        assert report["_overall"]["p50_ms"] == 10.0

    def test_reservoir_bounds_memory(self):
        tracker = SloTracker(reservoir=64, seed=1)
        for i in range(10_000):
            tracker.record_commit("TAchapter", float(i))
        assert len(tracker._samples["TAchapter"]) == 64
        report = tracker.slo()
        # True count survives sampling; percentiles come from the
        # reservoir, so they stay within the observed range.
        assert report["TAchapter"]["count"] == 10_000
        assert 0.0 <= report["TAchapter"]["p50_ms"] <= 9_999.0
        assert tracker.committed == 10_000

    def test_reservoir_is_deterministic_per_seed(self):
        def fill(seed):
            tracker = SloTracker(reservoir=16, seed=seed)
            for i in range(1_000):
                tracker.record_commit("t", float(i))
            return tracker.slo()

        assert fill(7) == fill(7)
        assert fill(7) != fill(8)

    def test_below_reservoir_keeps_exact_samples(self):
        tracker = SloTracker(reservoir=512)
        for i in range(100):
            tracker.record_commit("t", float(i + 1))
        assert tracker.slo()["t"]["p50_ms"] == 50.0

    def test_abort_reason_accounting(self):
        tracker = SloTracker()
        tracker.record_abort("deadlock")
        tracker.record_abort("deadlock")
        tracker.record_abort("timeout")
        assert tracker.aborted == 3
        assert tracker.aborted_by_reason == {"deadlock": 2, "timeout": 1}

    def test_aborts_do_not_pollute_latency(self):
        tracker = SloTracker()
        tracker.record_commit("t", 5.0)
        tracker.record_abort("timeout")
        assert tracker.slo()["_overall"]["count"] == 1

    def test_rejects_empty_reservoir(self):
        with pytest.raises(ValueError):
            SloTracker(reservoir=0)
