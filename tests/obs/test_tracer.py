"""Unit tests for the event tracers (ring buffer, JSONL, null tracer)."""

import pytest

from repro.obs import (
    LOCK_BLOCK,
    LOCK_GRANT,
    LOCK_REQUEST,
    NULL_TRACER,
    NullTracer,
    Observability,
    RingTracer,
    TXN_ABORT,
    TXN_COMMIT,
    TraceEvent,
    aggregate,
    load_jsonl,
)


class TestNullTracer:
    def test_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.emit(LOCK_GRANT, txn="t1", node="1.3")  # accepted, discarded
        assert tracer.events() == []
        tracer.close()  # idempotent no-op

    def test_shared_instance_is_disabled(self):
        assert NULL_TRACER.enabled is False


class TestRingTracer:
    def test_sequence_numbers_are_strictly_increasing(self):
        tracer = RingTracer()
        for _ in range(5):
            tracer.emit(LOCK_REQUEST, txn="t1")
        seqs = [event.seq for event in tracer.events()]
        assert seqs == [1, 2, 3, 4, 5]

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            RingTracer().emit("lock.frobnicate")

    def test_capacity_evicts_oldest_and_counts_drops(self):
        tracer = RingTracer(capacity=3)
        for _ in range(5):
            tracer.emit(LOCK_REQUEST)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [event.seq for event in tracer.events()] == [3, 4, 5]

    def test_unbounded_capacity_keeps_everything(self):
        tracer = RingTracer(capacity=None)
        for _ in range(100):
            tracer.emit(LOCK_REQUEST)
        assert len(tracer) == 100
        assert tracer.dropped == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingTracer(capacity=0)

    def test_bound_clock_stamps_timestamps(self):
        now = {"t": 0.0}
        tracer = RingTracer(clock=lambda: now["t"])
        tracer.emit(LOCK_REQUEST)
        now["t"] = 125.5
        tracer.emit(LOCK_GRANT)
        stamps = [event.ts for event in tracer.events()]
        assert stamps == [0.0, 125.5]

    def test_filtering_by_kind_and_txn(self):
        tracer = RingTracer()
        tracer.emit(LOCK_REQUEST, txn="t1")
        tracer.emit(LOCK_GRANT, txn="t1")
        tracer.emit(LOCK_REQUEST, txn="t2")
        assert len(tracer.events(kind=LOCK_REQUEST)) == 2
        assert len(tracer.events(txn="t1")) == 2
        assert len(tracer.events(kind=LOCK_GRANT, txn="t2")) == 0
        assert tracer.counts_by_kind() == {LOCK_REQUEST: 2, LOCK_GRANT: 1}


class TestJsonlRoundTrip:
    def test_dump_and_load_are_lossless(self, tmp_path):
        tracer = RingTracer()
        tracer.emit(LOCK_REQUEST, txn="t1", node="1.3.5", mode="SX")
        tracer.emit(LOCK_BLOCK, txn="t1", node="1.3.5", conversion=False)
        tracer.emit(TXN_ABORT, txn="t1", reason="deadlock")
        path = tmp_path / "trace.jsonl"
        assert tracer.dump_jsonl(path) == 3
        assert load_jsonl(path) == tracer.events()

    def test_sink_mirror_survives_ring_overflow(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = RingTracer(capacity=2, sink=path)
        for _ in range(10):
            tracer.emit(LOCK_REQUEST)
        tracer.close()
        assert len(tracer) == 2  # ring kept only the tail...
        assert len(load_jsonl(path)) == 10  # ...but the sink saw everything

    def test_close_is_idempotent(self, tmp_path):
        tracer = RingTracer(sink=tmp_path / "trace.jsonl")
        tracer.close()
        tracer.close()


class TestAggregate:
    def test_per_kind_and_derived_txn_counters(self):
        events = [
            TraceEvent(1, 0.0, TXN_COMMIT, "t1"),
            TraceEvent(2, 1.0, TXN_ABORT, "t2", {"reason": "deadlock"}),
            TraceEvent(3, 2.0, TXN_ABORT, "t3", {"reason": "timeout"}),
            TraceEvent(4, 3.0, TXN_ABORT, "t4", {"reason": "deadlock"}),
            TraceEvent(5, 4.0, LOCK_BLOCK, "t4"),
        ]
        totals = aggregate(events)
        assert totals["committed"] == 1
        assert totals["aborted.deadlock"] == 2
        assert totals["aborted.timeout"] == 1
        assert totals[TXN_ABORT] == 3
        assert totals[LOCK_BLOCK] == 1


class ExplodingTracer(NullTracer):
    """A disabled tracer that detonates if any site calls emit anyway."""

    def emit(self, kind, txn=None, **data):
        raise AssertionError(
            f"emit({kind!r}) reached a disabled tracer -- an instrumentation "
            "site is missing its `if tracer.enabled` guard"
        )


class TestZeroCostGuard:
    def test_disabled_tracer_is_never_called_by_a_workload(self):
        """Every instrumentation site must guard on ``tracer.enabled``.

        Run a workload that exercises locking, conversion, commit, abort,
        and buffer traffic with a booby-trapped disabled tracer: any
        unguarded emit call blows up the test.
        """
        from repro import Database

        obs = Observability(tracer=ExplodingTracer())
        db = Database(protocol="taDOM3+", lock_depth=4, root_element="bib",
                      observability=obs)
        db.load(("topic", {"id": "t0"}, [
            ("book", {"id": "b0"}, [("title", ["Locking"])]),
        ]))
        with db.session("reader") as session:
            book = session.run(session.nodes.get_element_by_id("b0"))
            session.run(session.nodes.read_subtree(book))
        try:
            with db.session("doomed") as session:
                session.run(session.nodes.rename_element(book, "tome"))
                raise RuntimeError("force rollback")
        except RuntimeError:
            pass
        assert db.statistics()["committed"] == 1
