"""Integration tests: traces from real workloads are ordered, deterministic,
and agree exactly with the metrics of the run that produced them."""

import pytest

from repro import Database, DeadlockAbort
from repro.obs import (
    DEADLOCK_DETECTED,
    LOCK_BLOCK,
    LOCK_REQUEST,
    Observability,
    TXN_ABORT,
    TXN_BEGIN,
    TXN_COMMIT,
    aggregate,
    load_jsonl,
)
from repro.sched import Delay, Simulator

LIBRARY = (
    "topics",
    [("topic", {"id": "t0"}, [
        ("book", {"id": "b0"}, [
            ("title", ["Concurrency Control Theory"]),
            ("history", [("lend", {"person": "p1"}, [])]),
        ]),
    ])],
)


def updater(db, name, outcomes):
    """Read the book subtree, pause, then delete its lend entry.

    Two of these on the same book at lock depth 0 produce the paper's
    canonical conversion deadlock: shared subtree reads, then both try
    to upgrade for the delete.
    """
    txn = db.begin(name)
    book = db.document.element_by_id("b0")
    try:
        yield from db.nodes.read_subtree(txn, book)
        yield Delay(50.0)
        history = [
            splid for splid in db.document.store.children(book)
            if db.document.name_of(splid) == "history"
        ][0]
        lend = next(db.document.store.children(history))
        yield from db.nodes.delete_subtree(txn, lend)
        db.commit(txn)
        outcomes[name] = "committed"
    except DeadlockAbort as exc:
        db.abort(txn, reason=exc.reason)
        outcomes[name] = "deadlock"


def run_scripted_deadlock():
    obs = Observability.enabled()
    db = Database(protocol="taDOM2", lock_depth=0, root_element="bib",
                  observability=obs)
    db.load(LIBRARY)
    sim = Simulator()
    db.set_clock(lambda: sim.now)
    outcomes = {}
    sim.spawn(updater(db, "alpha", outcomes))
    sim.spawn(updater(db, "beta", outcomes))
    sim.run()
    return obs.tracer.events(), outcomes


class TestScriptedDeadlockTrace:
    def test_outcome_one_victim_one_survivor(self):
        _events, outcomes = run_scripted_deadlock()
        assert sorted(outcomes.values()) == ["committed", "deadlock"]

    def test_sequence_and_timestamps_are_monotone(self):
        events, _outcomes = run_scripted_deadlock()
        seqs = [event.seq for event in events]
        stamps = [event.ts for event in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert stamps == sorted(stamps)

    def test_event_ordering_tells_the_deadlock_story(self):
        events, outcomes = run_scripted_deadlock()
        by_kind = {}
        for event in events:
            by_kind.setdefault(event.kind, []).append(event)

        # Exactly one conversion deadlock, exactly one abort, one commit.
        assert len(by_kind[DEADLOCK_DETECTED]) == 1
        assert len(by_kind[TXN_ABORT]) == 1
        assert len(by_kind[TXN_COMMIT]) == 1
        assert len(by_kind[TXN_BEGIN]) == 2

        deadlock = by_kind[DEADLOCK_DETECTED][0]
        abort = by_kind[TXN_ABORT][0]
        assert deadlock.data["deadlock_kind"] == "conversion"
        assert abort.data["reason"] == "deadlock"
        # The victim recorded by the detector is the transaction aborted.
        assert abort.txn == deadlock.txn
        victim_name = next(n for n, o in outcomes.items() if o == "deadlock")
        assert victim_name in abort.txn

        # Causal order: the victim began, requested, blocked on the
        # conversion, the detector fired, then the abort was recorded.
        victim = deadlock.txn
        begin = next(e for e in by_kind[TXN_BEGIN] if e.txn == victim)
        block = next(
            e for e in by_kind[LOCK_BLOCK]
            if e.txn == victim and e.data.get("conversion")
        )
        request = next(e for e in by_kind[LOCK_REQUEST] if e.txn == victim)
        assert (begin.seq < request.seq < block.seq
                < deadlock.seq < abort.seq)

    def test_trace_is_deterministic_across_runs(self):
        """Same workload, same simulated clock => byte-identical trace."""
        first, _ = run_scripted_deadlock()
        second, _ = run_scripted_deadlock()
        assert first == second


class TestCellTraceMatchesMetrics:
    """Acceptance: a TaMix sweep cell's JSONL trace aggregates to exactly
    the counters the cell reports."""

    @pytest.fixture(scope="class")
    def cell(self, tmp_path_factory):
        from repro.tamix.cluster import run_cluster1

        sink = tmp_path_factory.mktemp("trace") / "cell.jsonl"
        obs = Observability.enabled(capacity=None, sink=sink)
        result = run_cluster1(
            "taDOM2", lock_depth=2, scale=0.05,
            run_duration_ms=20_000.0, seed=42, observability=obs,
        )
        obs.close()
        return obs, result, sink

    def test_replayed_counters_match_reported_metrics(self, cell):
        _obs, result, sink = cell
        totals = aggregate(load_jsonl(sink))
        assert totals.get("committed", 0) == result.committed
        assert (totals.get("aborted.deadlock", 0)
                == result.aborted_by_kind["deadlock"])
        assert (totals.get("aborted.timeout", 0)
                == result.aborted_by_kind["timeout"])
        assert totals.get("lock.block", 0) == result.lock_stats["waits"]
        assert totals.get(LOCK_REQUEST, 0) == result.lock_stats["requests"]

    def test_trace_timestamps_follow_the_simulator_clock(self, cell):
        _obs, _result, sink = cell
        events = load_jsonl(sink)
        assert events, "cell trace must not be empty"
        stamps = [event.ts for event in events]
        assert stamps == sorted(stamps)
        assert stamps[-1] > 0.0

    def test_cell_reports_wait_histogram(self, cell):
        _obs, result, _sink = cell
        histogram = result.wait_histogram
        assert set(histogram) == {"count", "total", "mean", "max", "buckets"}
        assert histogram["count"] >= 0
