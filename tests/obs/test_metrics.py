"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import csv
import io
import json

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    WAIT_TIME_BUCKETS_MS,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_decrease(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("g")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3

    def test_preserves_int_ness(self):
        """Mirrored native counters must export as integers, not floats."""
        gauge = Gauge("g")
        gauge.set(42)
        assert isinstance(gauge.value, int)
        gauge.set(0.5)
        assert isinstance(gauge.value, float)


class TestHistogram:
    def test_bucket_assignment_is_upper_bound_inclusive(self):
        hist = Histogram("h", boundaries=(1.0, 10.0, 100.0))
        hist.observe(0.5)    # le_1
        hist.observe(1.0)    # le_1 (boundary itself is inclusive)
        hist.observe(5.0)    # le_10
        hist.observe(100.0)  # le_100
        hist.observe(1e9)    # le_inf
        buckets = hist.as_dict()["buckets"]
        assert buckets == {"le_1": 2, "le_10": 1, "le_100": 1, "le_inf": 1}

    def test_count_total_mean_max(self):
        hist = Histogram("h", boundaries=(10.0,))
        for value in (2.0, 4.0, 12.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == pytest.approx(18.0)
        assert hist.mean == pytest.approx(6.0)
        assert hist.max == pytest.approx(12.0)

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("h").mean == 0.0

    def test_default_buckets_are_the_wait_time_ladder(self):
        assert Histogram("h").boundaries == WAIT_TIME_BUCKETS_MS

    def test_rejects_unsorted_or_duplicate_boundaries(self):
        with pytest.raises(ValueError):
            Histogram("h", boundaries=(10.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", boundaries=(1.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_name_collision_across_types_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_histogram_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", boundaries=(1.0, 2.0))
        registry.histogram("h", boundaries=(1.0, 2.0))  # same buckets: fine
        with pytest.raises(ValueError):
            registry.histogram("h", boundaries=(5.0,))

    def test_collectors_run_at_snapshot_time(self):
        registry = MetricsRegistry()
        source = {"value": 1}
        registry.register_collector(
            lambda reg: reg.gauge("mirrored").set(source["value"])
        )
        assert registry.as_dict()["mirrored"] == 1
        source["value"] = 9
        assert registry.as_dict()["mirrored"] == 9

    def test_snapshot_is_sorted_and_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.gauge("a.level").set(3)
        registry.histogram("c.hist", boundaries=(1.0,)).observe(0.5)
        snapshot = json.loads(registry.to_json())
        assert snapshot["a.level"] == 3
        assert snapshot["b.count"] == 2
        assert snapshot["c.hist"]["count"] == 1

    def test_csv_flattens_histograms(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc(7)
        registry.histogram("wait", boundaries=(1.0,)).observe(2.0)
        rows = list(csv.reader(io.StringIO(registry.to_csv())))
        table = dict(rows[1:])
        assert rows[0] == ["metric", "value"]
        assert table["ops"] == "7"
        assert table["wait.count"] == "1"
        assert table["wait.bucket.le_1"] == "0"
        assert table["wait.bucket.le_inf"] == "1"
