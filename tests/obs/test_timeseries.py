"""Tests for the windowed telemetry series and Prometheus rendering."""

import pytest

from repro.obs import (
    MetricsRegistry,
    WindowedSeries,
    render_prometheus,
    render_registry,
    sanitize_metric_name,
)


class FakeClock:
    """An injectable millisecond clock (the sim-determinism contract)."""

    def __init__(self, now=0.0):
        self.now = now

    def advance(self, ms):
        self.now += ms

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def registry():
    return MetricsRegistry()


def make_series(registry, clock, **kwargs):
    kwargs.setdefault("window_ms", 1000.0)
    return WindowedSeries(registry, clock=clock, **kwargs)


class TestTypedSnapshot:
    def test_kinds_kept_apart(self, registry):
        registry.counter("c").inc(3)
        registry.gauge("g").set(0.5)
        registry.histogram("h").observe(2.0)
        snap = registry.typed_snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 0.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_collectors_run(self, registry):
        registry.register_collector(
            lambda r: r.gauge("collected").set(7)
        )
        assert registry.typed_snapshot()["gauges"]["collected"] == 7


class TestWindowDeltas:
    def test_counter_deltas_per_window(self, registry, clock):
        series = make_series(registry, clock)
        counter = registry.counter("server.committed")
        counter.inc(5)
        clock.advance(1000.0)
        first = series.tick()
        assert first.counters == {"server.committed": 5}
        counter.inc(2)
        clock.advance(1000.0)
        second = series.tick()
        assert second.counters == {"server.committed": 2}

    def test_gauge_last_value(self, registry, clock):
        series = make_series(registry, clock)
        gauge = registry.gauge("buffer.hit_ratio")
        gauge.set(0.25)
        series.tick()
        gauge.set(0.75)
        window = series.tick()
        assert window.gauges == {"buffer.hit_ratio": 0.75}

    def test_histogram_window_merge(self, registry, clock):
        series = make_series(registry, clock)
        hist = registry.histogram("wait", (10.0, 100.0))
        hist.observe(5.0)
        hist.observe(50.0)
        series.tick()
        hist.observe(5.0)
        window = series.tick()
        delta = window.histograms["wait"]
        assert delta["count"] == 1
        assert delta["total"] == 5.0
        assert delta["mean"] == 5.0
        assert delta["buckets"] == {"le_10": 1, "le_100": 0, "le_inf": 0}

    def test_empty_window_histogram_mean_is_zero(self, registry, clock):
        series = make_series(registry, clock)
        registry.histogram("wait", (10.0,)).observe(3.0)
        series.tick()
        window = series.tick()
        assert window.histograms["wait"]["count"] == 0
        assert window.histograms["wait"]["mean"] == 0.0

    def test_window_timestamps_from_clock(self, registry, clock):
        series = make_series(registry, clock)
        clock.advance(1000.0)
        first = series.tick()
        clock.advance(500.0)
        second = series.tick()
        assert (first.t_start_ms, first.t_end_ms) == (0.0, 1000.0)
        assert (second.t_start_ms, second.t_end_ms) == (1000.0, 1500.0)
        assert second.duration_ms == 500.0


class TestRingEviction:
    def test_capacity_bounds_retained_windows(self, registry, clock):
        series = make_series(registry, clock, capacity=3)
        for _ in range(5):
            series.tick()
        assert len(series) == 3
        assert series.total_windows == 5
        assert [w.index for w in series.windows()] == [2, 3, 4]
        assert series.latest().index == 4

    def test_bad_parameters_rejected(self, registry, clock):
        with pytest.raises(ValueError):
            WindowedSeries(registry, window_ms=0.0, clock=clock)
        with pytest.raises(ValueError):
            WindowedSeries(registry, capacity=0, clock=clock)


class TestSamplers:
    def test_sampler_slo_per_window(self, registry, clock):
        series = make_series(registry, clock)
        pending = []

        def drain():
            out = list(pending)
            pending.clear()
            return out

        series.add_sampler("request_ms", drain)
        pending.extend([1.0, 2.0, 3.0])
        window = series.tick()
        slo = window.slo["request_ms"]
        assert slo["count"] == 3
        assert slo["p50_ms"] == 2.0
        assert slo["p99_ms"] == 3.0
        # Drained: the next window summarizes only its own samples.
        assert series.tick().slo["request_ms"] == {"count": 0}


class TestDeterminism:
    def run_script(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        series = make_series(registry, clock)
        counter = registry.counter("c")
        hist = registry.histogram("h", (1.0, 10.0))
        for i in range(5):
            counter.inc(i)
            hist.observe(float(i))
            clock.advance(1000.0)
            series.tick()
        return series.to_dict()

    def test_identical_runs_identical_payloads(self):
        assert self.run_script() == self.run_script()

    def test_to_dict_shape(self, registry, clock):
        series = make_series(registry, clock)
        payload = series.to_dict()
        assert payload["version"] == 1
        assert payload["windows"] == []
        assert payload["snapshot"] is None  # no tick yet
        series.tick()
        payload = series.to_dict()
        assert payload["total_windows"] == 1
        assert payload["snapshot"] is not None


class TestPrometheus:
    def test_sanitize(self):
        assert sanitize_metric_name("lock.requests") == "repro_lock_requests"
        assert sanitize_metric_name("a-b c", prefix="") == "a_b_c"
        assert sanitize_metric_name("9lives", prefix="").startswith("_")

    def test_counter_and_gauge_lines(self, registry):
        registry.counter("lock.requests").inc(4)
        registry.gauge("buffer.hit_ratio").set(0.5)
        text = render_registry(registry)
        assert "# TYPE repro_lock_requests_total counter" in text
        assert "repro_lock_requests_total 4" in text
        assert "repro_buffer_hit_ratio 0.5" in text

    def test_histogram_buckets_are_cumulative(self, registry):
        hist = registry.histogram("wait", (1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(500.0)
        text = render_registry(registry)
        assert 'repro_wait_bucket{le="1"} 1' in text
        assert 'repro_wait_bucket{le="10"} 2' in text
        assert 'repro_wait_bucket{le="+Inf"} 3' in text
        assert "repro_wait_count 3" in text

    def test_help_text_emitted(self, registry):
        registry.counter("c").inc()
        text = render_registry(registry, help_text={"c": "a counter"})
        assert "# HELP repro_c_total a counter" in text

    def test_renders_window_snapshot_dicts(self, registry):
        registry.counter("c").inc(2)
        snap = registry.typed_snapshot()
        assert render_prometheus(snap) == render_registry(registry)

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""
