"""The trace analyzer: round-trip fidelity, blocking chains, hotspot
attribution, critical path, and the histogram acceptance check."""

import pytest

from repro.obs import Observability, TraceAnalysis
from tests.obs.test_spans import run_timeout_scenario
from tests.obs.test_trace_integration import run_scripted_deadlock


def wait_fingerprint(analysis):
    """Everything the analyzer derives per wait, comparison-ready."""
    return [
        (
            record.txn, record.space, record.key, record.mode,
            record.from_mode, record.conversion, record.blockers,
            record.chain, record.waited_ms, record.timed_out,
        )
        for record in analysis.waits
    ]


class TestRoundTripFidelity:
    """JSONL dump -> load_jsonl -> analyzer must produce identical
    results as the in-memory RingTracer path."""

    @pytest.fixture(scope="class")
    def pair(self, tmp_path_factory):
        from repro.tamix.cluster import run_cluster1

        sink = tmp_path_factory.mktemp("ana") / "cell.jsonl"
        obs = Observability.enabled(capacity=None, sink=sink)
        run_cluster1(
            "taDOM3+", lock_depth=4, scale=0.05,
            run_duration_ms=6_000.0, seed=11, observability=obs,
        )
        obs.close()
        return (
            TraceAnalysis.from_tracer(obs.tracer),
            TraceAnalysis.from_jsonl(sink),
        )

    def test_events_round_trip(self, pair):
        ring, jsonl = pair
        assert ring.events == jsonl.events

    def test_identical_wait_records_and_chains(self, pair):
        ring, jsonl = pair
        assert wait_fingerprint(ring) == wait_fingerprint(jsonl)
        assert ring.total_wait_ms == jsonl.total_wait_ms
        assert len(ring.waits) > 0, "fixture must actually wait"

    def test_identical_hotspots_and_rendering(self, pair):
        ring, jsonl = pair
        assert ring.hotspots() == jsonl.hotspots()
        assert ring.render_text() == jsonl.render_text()

    def test_identical_timelines(self, pair):
        ring, jsonl = pair
        assert list(ring.timelines) == list(jsonl.timelines)
        for label in ring.timelines:
            assert (ring.critical_path(label)
                    == jsonl.critical_path(label))


class TestSweepHistogramAcceptance:
    """Acceptance: on a seeded two-protocol sweep, the analyzer's
    reconstructed blocking time equals each cell's histogram sum."""

    @pytest.fixture(scope="class")
    def sweep(self, tmp_path_factory):
        from repro.tamix.sweep import SweepRunner, SweepSpec, trace_filename

        trace_dir = tmp_path_factory.mktemp("traces")
        spec = SweepSpec(
            protocols=("taDOM2", "taDOM3+"),
            lock_depths=(4,),
            isolations=("repeatable",),
            runs_per_cell=1,
            scale=0.05,
            run_duration_ms=6_000.0,
            base_seed=11,
        )
        runner = SweepRunner(spec, trace_dir=trace_dir)
        results = runner.run()
        return spec, trace_dir, results, trace_filename

    def test_blocking_time_matches_histogram_per_cell(self, sweep):
        spec, trace_dir, results, trace_filename = sweep
        nonzero = 0
        for result in results:
            analysis = TraceAnalysis.from_jsonl(
                trace_dir / trace_filename(result.cell)
            )
            buckets = result.wait_histogram
            assert len(analysis.granted_waits) == sum(buckets.values())
            assert round(analysis.total_wait_ms, 6) == result.wait_total_ms
            nonzero += bool(analysis.granted_waits)
        assert nonzero > 0, "seeded sweep must produce real lock waits"

    def test_matches_histogram_helper(self, sweep):
        _spec, trace_dir, results, trace_filename = sweep
        for result in results:
            analysis = TraceAnalysis.from_jsonl(
                trace_dir / trace_filename(result.cell)
            )
            histogram = {
                "count": sum(result.wait_histogram.values()),
                "total": result.wait_total_ms,
            }
            assert analysis.matches_histogram(histogram)


class TestBlockingChains:
    def test_survivor_chain_names_the_deadlock_victim(self):
        # The victim aborts at request time (the upgrade closes the
        # cycle), so the surviving txn owns the only wait record and
        # its chain points at the victim it was blocked behind.
        events, outcomes = run_scripted_deadlock()
        analysis = TraceAnalysis(events)
        victim = next(n for n, o in outcomes.items() if o == "deadlock")
        survivor = next(n for n, o in outcomes.items() if o == "committed")
        chains = [r.chain for r in analysis.waits + analysis.open_waits]
        assert any(
            survivor in chain[0] and any(victim in hop for hop in chain[1:])
            for chain in chains
        )

    def test_conversion_edge_attribution(self):
        events, _outcomes = run_scripted_deadlock()
        spots = TraceAnalysis(events).hotspots()
        # The scripted scenario stalls on a shared->exclusive upgrade.
        assert spots.by_conversion
        assert all("->" in edge for edge in spots.by_conversion)

    def test_hotspot_groups_sum_to_total_closed_wait_time(self):
        events, _outcomes = run_scripted_deadlock()
        analysis = TraceAnalysis(events)
        closed_total = sum(r.waited_ms for r in analysis.waits)
        spots = analysis.hotspots()
        assert sum(spots.by_prefix.values()) == pytest.approx(closed_total)
        assert sum(spots.by_mode.values()) == pytest.approx(closed_total)


class TestTimeoutAccounting:
    def test_timed_out_waits_are_excluded_from_granted_total(self):
        obs, _outcomes = run_timeout_scenario()
        analysis = TraceAnalysis.from_tracer(obs.tracer)
        assert len(analysis.waits) == 1
        record = analysis.waits[0]
        assert record.timed_out
        assert record.waited_ms == 100.0
        assert analysis.granted_waits == []
        assert analysis.total_wait_ms == 0.0
        # ... but the timeout still shows up in hotspot attribution.
        assert sum(analysis.hotspots().by_mode.values()) == 100.0


class TestCriticalPath:
    def test_breakdown_components_sum_to_total(self):
        events, _outcomes = run_scripted_deadlock()
        analysis = TraceAnalysis(events)
        for label, line in analysis.timelines.items():
            if line.outcome != "committed":
                continue
            path = analysis.critical_path(label)
            assert path["total_ms"] == pytest.approx(
                path["lock_wait_ms"] + path["io_ms"]
                + path["compute_ms"] + path["think_ms"]
            )

    def test_summary_counts_committed_only(self):
        events, outcomes = run_scripted_deadlock()
        analysis = TraceAnalysis(events)
        summary = analysis.critical_path_summary()
        committed = sum(1 for o in outcomes.values() if o == "committed")
        assert summary["txn_count"] == committed
        assert summary["total_ms"] > 0.0

    def test_render_text_mentions_the_headline_numbers(self):
        events, _outcomes = run_scripted_deadlock()
        text = TraceAnalysis(events).render_text()
        assert "transactions" in text
        assert "critical path" in text
