"""The span layer: begin/end pairing, nesting, closure on every exit
path, I/O attribution, and the zero-cost-when-disabled contract."""

import gc

from repro import Database
from repro.errors import LockTimeout
from repro.obs import (
    Observability,
    SPAN_BEGIN,
    SPAN_END,
    build_timelines,
)
from repro.sched import Delay, Simulator

LIBRARY = (
    "topics",
    [("topic", {"id": "t0"}, [
        ("book", {"id": "b0"}, [
            ("title", ["Transaction Processing"]),
            ("history", [("lend", {"person": "p1"}, [])]),
        ]),
    ])],
)


def make_db(**kwargs):
    obs = Observability.enabled()
    db = Database(protocol="taDOM2", root_element="bib",
                  observability=obs, **kwargs)
    db.load(LIBRARY)
    return db, obs


class TestOpSpans:
    def test_every_begin_has_a_matching_end(self):
        db, obs = make_db()
        txn = db.begin("reader")
        book = db.document.element_by_id("b0")
        db.run(db.nodes.read_subtree(txn, book))
        db.run(db.nodes.get_child_nodes(txn, book))
        db.commit(txn)
        begins = obs.tracer.events(SPAN_BEGIN)
        ends = obs.tracer.events(SPAN_END)
        assert len(begins) == len(ends) == 2
        assert [e.data["name"] for e in begins] == [
            "read_subtree", "get_child_nodes",
        ]
        assert all(e.data["cat"] == "op" for e in begins)

    def test_nested_ops_keep_stack_discipline(self):
        db, obs = make_db()
        txn = db.begin("reader")
        book = db.document.element_by_id("b0")
        db.run(db.nodes.get_attribute_value(txn, book, "id"))
        db.commit(txn)
        timelines = build_timelines(obs.tracer.events())
        line = timelines[txn.label]
        # get_attribute_value delegates to get_attributes (and possibly
        # read_content): exactly one top-level span, nested children.
        assert [s.name for s in line.spans] == ["get_attribute_value"]
        nested = [s.name for s in line.spans[0].children]
        assert "get_attributes" in nested
        assert all(s.depth == 1 for s in line.spans[0].children)
        assert all(s.closed for s in line.all_spans())

    def test_op_end_carries_io_attribution(self):
        db, obs = make_db()
        txn = db.begin("reader")
        book = db.document.element_by_id("b0")
        db.run(db.nodes.read_subtree(txn, book))
        db.commit(txn)
        end = obs.tracer.events(SPAN_END)[-1]
        assert end.data["logical_reads"] == txn.stats.logical_reads
        assert end.data["physical_reads"] == txn.stats.physical_reads
        assert end.data["io_ms"] >= 0.0

    def test_failing_op_still_closes_its_span(self):
        db, obs = make_db()
        txn = db.begin("writer")
        book = db.document.element_by_id("b0")
        db.run(db.nodes.delete_subtree(txn, book))
        db.abort(txn)
        timelines = build_timelines(obs.tracer.events())
        line = timelines[txn.label]
        assert line.outcome == "aborted"
        assert all(span.closed for span in line.all_spans())

    def test_rollback_emits_a_txn_span(self):
        db, obs = make_db()
        txn = db.begin("writer")
        book = db.document.element_by_id("b0")
        db.run(db.nodes.rename_element(txn, book, "tome"))
        db.abort(txn)
        spans = [
            e for e in obs.tracer.events(SPAN_BEGIN)
            if e.data["cat"] == "txn"
        ]
        assert [e.data["name"] for e in spans] == ["rollback"]

    def test_disabled_tracer_returns_undecorated_generator(self):
        db = Database(protocol="taDOM2", root_element="bib")
        db.load(LIBRARY)
        txn = db.begin("reader")
        generator = db.nodes.get_parent(
            txn, db.document.element_by_id("b0")
        )
        # With tracing off the wrapper must hand back the raw operation
        # generator -- no _op_span frame, no per-yield overhead.
        assert generator.gi_code.co_name == "get_parent"
        generator.close()


def run_timeout_scenario():
    """holder grabs the subtree and parks; waiter times out at 100 ms."""
    obs = Observability.enabled()
    db = Database(protocol="taDOM2", lock_depth=0, root_element="bib",
                  observability=obs, wait_timeout_ms=100.0)
    db.load(LIBRARY)
    sim = Simulator()
    db.set_clock(lambda: sim.now)
    outcomes = {}

    def holder():
        txn = db.begin("holder")
        book = db.document.element_by_id("b0")
        yield from db.nodes.read_subtree(txn, book)
        yield Delay(10_000.0)
        db.commit(txn)
        outcomes["holder"] = "committed"

    def waiter():
        txn = db.begin("waiter")
        yield Delay(5.0)
        book = db.document.element_by_id("b0")
        try:
            yield from db.nodes.delete_subtree(txn, book)
            db.commit(txn)
            outcomes["waiter"] = "committed"
        except LockTimeout as exc:
            db.abort(txn, reason=exc.reason)
            outcomes["waiter"] = "timeout"

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run()
    return obs, outcomes


class TestTimeoutClosure:
    def test_wait_span_closes_on_timeout(self):
        obs, outcomes = run_timeout_scenario()
        assert outcomes == {"holder": "committed", "waiter": "timeout"}
        waits = [
            e for e in obs.tracer.events(SPAN_END)
            if e.data.get("cat") == "wait"
        ]
        assert len(waits) == 1
        assert waits[0].data["waited_ms"] == 100.0
        timelines = build_timelines(obs.tracer.events())
        assert timelines[waits[0].txn].outcome == "aborted"
        assert all(
            span.closed
            for span in timelines[waits[0].txn].all_spans()
        )


def run_parked_scenario():
    """holder keeps the subtree lock forever; waiter parks at the horizon."""
    obs = Observability.enabled()
    db = Database(protocol="taDOM2", lock_depth=0, root_element="bib",
                  observability=obs, wait_timeout_ms=None)
    db.load(LIBRARY)
    sim = Simulator()
    db.set_clock(lambda: sim.now)

    def holder():
        txn = db.begin("holder")
        book = db.document.element_by_id("b0")
        yield from db.nodes.read_subtree(txn, book)
        # Never commits: the generator just ends, locks stay held.

    def waiter():
        txn = db.begin("waiter")
        yield Delay(5.0)
        book = db.document.element_by_id("b0")
        yield from db.nodes.delete_subtree(txn, book)
        db.commit(txn)

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run()
    return obs, sim, db


class TestHorizonParking:
    def test_parked_spans_stay_open_with_running_outcome(self):
        obs, sim, _db = run_parked_scenario()
        timelines = build_timelines(obs.tracer.events())
        waiter = next(
            line for line in timelines.values() if "waiter" in line.label
        )
        assert waiter.outcome == "running"
        open_spans = [s for s in waiter.all_spans() if not s.closed]
        assert {s.cat for s in open_spans} == {"op", "wait"}

    def test_collecting_parked_generators_emits_nothing(self):
        """GeneratorExit at GC time must not stamp wall-clock span ends
        into the trace (determinism would be gone)."""
        obs, sim, _db = run_parked_scenario()
        before = len(obs.tracer.events())
        del sim  # drops the parked waiter generator
        gc.collect()
        assert len(obs.tracer.events()) == before

    def test_parked_run_is_deterministic(self):
        first, sim1, _ = run_parked_scenario()
        second, sim2, _ = run_parked_scenario()
        assert first.tracer.events() == second.tracer.events()
