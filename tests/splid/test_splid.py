"""Unit tests for the SPLID value type (paper Section 3.2 examples)."""

import pytest

from repro.errors import SplidError
from repro.splid import Splid


class TestConstruction:
    def test_root(self):
        root = Splid.root()
        assert root.divisions == (1,)
        assert root.level == 0
        assert root.is_root

    def test_parse_round_trip(self):
        s = Splid.parse("1.3.4.3")
        assert str(s) == "1.3.4.3"
        assert s.divisions == (1, 3, 4, 3)

    def test_parse_rejects_garbage(self):
        with pytest.raises(SplidError):
            Splid.parse("1.x.3")

    def test_rejects_empty(self):
        with pytest.raises(SplidError):
            Splid(())

    def test_rejects_non_root_start(self):
        with pytest.raises(SplidError):
            Splid((3, 3))

    def test_rejects_even_tail(self):
        with pytest.raises(SplidError):
            Splid((1, 3, 4))

    def test_rejects_nonpositive_division(self):
        with pytest.raises(SplidError):
            Splid((1, 0, 3))

    def test_repr_mentions_label(self):
        assert "1.3.3" in repr(Splid.parse("1.3.3"))


class TestStrictParse:
    """Dotted-notation parsing rejects anything ``int`` would quietly
    normalize: signs, whitespace, empty divisions, non-ASCII digits."""

    @pytest.mark.parametrize("text", [
        "", "1.", ".3", "1..3",          # empty divisions
        " 1.3", "1.3 ", "1. 3", "1.3\n",  # whitespace
        "1.+3", "+1", "1.-3",            # signs
        "1.x.3", "1,3",                  # non-digits
        "1.³", "1.๓",          # unicode digits int() disagrees on
    ])
    def test_rejects_malformed(self, text):
        with pytest.raises(SplidError):
            Splid.parse(text)

    def test_error_names_text_and_division(self):
        with pytest.raises(SplidError) as excinfo:
            Splid.parse("1.+3")
        message = str(excinfo.value)
        assert "1.+3" in message
        assert "+3" in message

    def test_error_names_empty_division(self):
        with pytest.raises(SplidError) as excinfo:
            Splid.parse("1.")
        assert "''" in str(excinfo.value)

    def test_still_validates_label_invariants(self):
        with pytest.raises(SplidError):
            Splid.parse("1.4")   # even tail
        with pytest.raises(SplidError):
            Splid.parse("3.3")   # non-root start


class TestInterning:
    def test_equal_labels_are_canonical(self):
        assert Splid.parse("1.3.4.3") is Splid((1, 3, 4, 3))

    def test_derived_labels_are_interned(self):
        node = Splid.parse("1.3.4.3")
        assert node.parent is Splid.parse("1.3")
        assert node.parent is node.parent          # memoized
        assert Splid.root().child(3) is Splid.parse("1.3")
        assert node.ancestor_at_level(0) is Splid.root()

    def test_ancestor_chain_cached_and_correct(self):
        node = Splid.parse("1.3.4.3.5")
        chain = node.ancestors_bottom_up()
        assert chain is node.ancestors_bottom_up()  # same tuple object
        assert [str(a) for a in chain] == ["1.3.4.3", "1.3", "1"]
        assert list(node.ancestors()) == list(chain)

    def test_invalid_labels_never_enter_the_cache(self):
        with pytest.raises(SplidError):
            Splid((1, 4))
        with pytest.raises(SplidError):
            Splid((1, 4))  # still rejected on the second attempt

    def test_cache_stays_bounded_and_evictees_stay_valid(self):
        from repro.splid.splid import INTERN_CAPACITY

        keep = Splid((1, 999_999))
        for i in range(INTERN_CAPACITY + 2_000):
            Splid((1, 2 * i + 1))
        info = Splid.intern_info()
        assert info["size"] <= info["capacity"]
        # Evicted instances still compare and hash by value.
        again = Splid((1, 999_999))
        assert keep == again and hash(keep) == hash(again)

    def test_pickle_round_trips_through_intern(self):
        import pickle

        node = Splid.parse("1.5.3.3")
        clone = pickle.loads(pickle.dumps(node))
        assert clone is node


class TestLevels:
    def test_paper_level_example(self):
        # "d1=1.3.3 and d2=1.3.5 label two consecutive nodes at level 3"
        # (the paper counts the root as level 1; we count it as level 0,
        # so these nodes are at level 2 in our convention).
        assert Splid.parse("1.3.3").level == 2
        assert Splid.parse("1.3.5").level == 2

    def test_overflow_division_does_not_add_level(self):
        # 1.3.4.3 sits between 1.3.3 and 1.3.5 at the same level.
        assert Splid.parse("1.3.4.3").level == Splid.parse("1.3.3").level

    def test_deep_overflow(self):
        assert Splid.parse("1.3.4.2.3").level == 2

    def test_attribute_chain_levels(self):
        element = Splid.parse("1.3.3")
        attr_root = element.attribute_root
        assert attr_root.level == element.level + 1
        assert attr_root.is_meta


class TestParentAndAncestors:
    def test_parent_simple(self):
        assert Splid.parse("1.3.3").parent == Splid.parse("1.3")

    def test_parent_skips_overflow_divisions(self):
        # Paper: ancestor determination of 1.3.4.3 yields 1.3 and 1.
        assert Splid.parse("1.3.4.3").parent == Splid.parse("1.3")

    def test_parent_of_root(self):
        assert Splid.root().parent is None

    def test_ancestors_bottom_up(self):
        labels = [str(a) for a in Splid.parse("1.3.4.3.5").ancestors()]
        assert labels == ["1.3.4.3", "1.3", "1"]

    def test_ancestors_top_down(self):
        labels = [str(a) for a in Splid.parse("1.3.3.7.3").ancestors_top_down()]
        assert labels == ["1", "1.3", "1.3.3", "1.3.3.7"]

    def test_ancestor_at_level(self):
        s = Splid.parse("1.5.3.3.11.3")
        assert str(s.ancestor_at_level(0)) == "1"
        assert str(s.ancestor_at_level(2)) == "1.5.3"
        assert s.ancestor_at_level(s.level) is s

    def test_ancestor_at_level_too_deep(self):
        with pytest.raises(SplidError):
            Splid.parse("1.3").ancestor_at_level(5)

    def test_is_ancestor_of(self):
        assert Splid.parse("1.3").is_ancestor_of(Splid.parse("1.3.4.3"))
        assert not Splid.parse("1.3").is_ancestor_of(Splid.parse("1.3"))
        assert not Splid.parse("1.3").is_ancestor_of(Splid.parse("1.5"))
        # Division prefix but not label prefix: 1.3 vs 1.33 style collision
        assert not Splid.parse("1.3").is_ancestor_of(Splid.parse("1.31"))

    def test_common_ancestor(self):
        a = Splid.parse("1.3.3.5")
        b = Splid.parse("1.3.5.7")
        assert str(a.common_ancestor(b)) == "1.3"
        assert a.common_ancestor(a) == a

    def test_common_ancestor_with_overflow(self):
        a = Splid.parse("1.3.4.3.5")
        b = Splid.parse("1.3.5")
        assert str(a.common_ancestor(b)) == "1.3"


class TestDocumentOrder:
    def test_paper_comparison_example(self):
        # Paper: d3 = 1.3.4.3 < d2 = 1.3.5
        assert Splid.parse("1.3.4.3") < Splid.parse("1.3.5")

    def test_ancestor_sorts_before_descendant(self):
        assert Splid.parse("1.3") < Splid.parse("1.3.3")

    def test_sibling_order(self):
        assert Splid.parse("1.3.3") < Splid.parse("1.3.5")

    def test_total_order_of_figure5_cutout(self):
        labels = [
            "1", "1.3", "1.3.3", "1.3.3.1", "1.3.3.1.3", "1.3.3.1.3.1",
            "1.3.3.3", "1.3.5", "1.5", "1.5.3", "1.5.3.3", "1.5.4.3",
            "1.5.4.5", "1.5.5",
        ]
        parsed = [Splid.parse(t) for t in labels]
        assert sorted(parsed) == parsed

    def test_hash_consistency(self):
        assert hash(Splid.parse("1.3.3")) == hash(Splid((1, 3, 3)))
        assert Splid.parse("1.3.3") in {Splid((1, 3, 3))}

    def test_cross_type_comparison(self):
        assert Splid.root() != "1"
        with pytest.raises(TypeError):
            _ = Splid.root() < "1"


class TestSuffixHelpers:
    def test_local_suffix(self):
        child = Splid.parse("1.3.4.3")
        assert child.local_suffix(Splid.parse("1.3")) == (4, 3)

    def test_local_suffix_requires_ancestor(self):
        with pytest.raises(SplidError):
            Splid.parse("1.3.3").local_suffix(Splid.parse("1.5"))

    def test_child_rejects_even_division(self):
        with pytest.raises(SplidError):
            Splid.root().child(4)

    def test_meta_labels(self):
        element = Splid.parse("1.5.3.3")
        assert str(element.attribute_root) == "1.5.3.3.1"
        text = Splid.parse("1.5.3.3.5.3")
        assert str(text.string_node) == "1.5.3.3.5.3.1"
