"""Unit and property tests for SPLID allocation (gaps + overflow)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SplidError
from repro.splid import Splid, SplidAllocator


@pytest.fixture
def alloc():
    return SplidAllocator(dist=2)


class TestInitialLabeling:
    def test_dist_2_children(self, alloc):
        parent = Splid.parse("1.3")
        kids = alloc.initial_children(parent, 3)
        assert [str(k) for k in kids] == ["1.3.3", "1.3.5", "1.3.7"]

    def test_larger_dist_gaps(self):
        alloc = SplidAllocator(dist=10)
        kids = alloc.initial_children(Splid.root(), 3)
        assert [str(k) for k in kids] == ["1.11", "1.21", "1.31"]

    def test_nth_initial_child_matches_bulk(self, alloc):
        parent = Splid.parse("1.5.3")
        bulk = alloc.initial_children(parent, 5)
        assert [alloc.nth_initial_child(parent, i) for i in range(5)] == list(bulk)

    def test_dist_validation(self):
        with pytest.raises(SplidError):
            SplidAllocator(dist=3)
        with pytest.raises(SplidError):
            SplidAllocator(dist=0)


class TestInsertBetween:
    def test_paper_overflow_example(self, alloc):
        # Insertion before 1.3.5 (after 1.3.3) receives 1.3.4.3.
        parent = Splid.parse("1.3")
        new = alloc.between(parent, Splid.parse("1.3.3"), Splid.parse("1.3.5"))
        assert str(new) == "1.3.4.3"

    def test_between_with_room(self, alloc):
        parent = Splid.parse("1.3")
        new = alloc.between(parent, Splid.parse("1.3.3"), Splid.parse("1.3.9"))
        assert Splid.parse("1.3.3") < new < Splid.parse("1.3.9")
        assert new.parent == parent

    def test_append_after_last(self, alloc):
        parent = Splid.parse("1.3")
        new = alloc.last_child(parent, Splid.parse("1.3.7"))
        assert new > Splid.parse("1.3.7")
        assert new.parent == parent

    def test_first_child_of_empty(self, alloc):
        new = alloc.first_child(Splid.parse("1.3"), None)
        assert str(new) == "1.3.3"

    def test_insert_before_first(self, alloc):
        parent = Splid.parse("1.3")
        new = alloc.first_child(parent, Splid.parse("1.3.3"))
        assert new < Splid.parse("1.3.3")
        assert new.parent == parent
        # Division 1 stays reserved for attribute roots.
        assert new.divisions[-1] != 1 or len(new.divisions) > 3

    def test_neighbours_must_be_children(self, alloc):
        with pytest.raises(SplidError):
            alloc.between(Splid.parse("1.3"), Splid.parse("1.5.3"), None)
        with pytest.raises(SplidError):
            alloc.between(Splid.parse("1.3"), Splid.parse("1.3.3.3"), None)

    def test_neighbours_must_be_ordered(self, alloc):
        with pytest.raises(SplidError):
            alloc.between(
                Splid.parse("1.3"), Splid.parse("1.3.5"), Splid.parse("1.3.3")
            )

    def test_repeated_inserts_at_front(self, alloc):
        """Immutability: endless inserts before the first child succeed."""
        parent = Splid.parse("1.3")
        first = alloc.first_child(parent, None)
        for _ in range(12):
            new = alloc.first_child(parent, first)
            assert new < first
            assert new.parent == parent
            first = new

    def test_repeated_inserts_between_adjacent(self, alloc):
        parent = Splid.parse("1.3")
        lo = Splid.parse("1.3.3")
        hi = Splid.parse("1.3.5")
        for _ in range(12):
            new = alloc.between(parent, lo, hi)
            assert lo < new < hi
            assert new.parent == parent
            hi = new


# -- property-based checks ---------------------------------------------------

splid_parents = st.builds(
    lambda suffix: Splid((1,) + tuple(suffix)),
    st.lists(st.integers(min_value=1, max_value=9).map(lambda v: 2 * v + 1),
             min_size=0, max_size=4),
)


@settings(max_examples=200)
@given(parent=splid_parents, count=st.integers(min_value=1, max_value=30))
def test_initial_children_sorted_and_parented(parent, count):
    alloc = SplidAllocator(dist=2)
    kids = alloc.initial_children(parent, count)
    assert list(kids) == sorted(kids)
    assert len(set(kids)) == count
    for kid in kids:
        assert kid.parent == parent
        assert kid.level == parent.level + 1


@settings(max_examples=120)
@given(
    parent=splid_parents,
    positions=st.lists(st.integers(min_value=0, max_value=20), min_size=1,
                       max_size=24),
)
def test_arbitrary_insert_sequence_keeps_invariants(parent, positions):
    """Fuzz a sequence of inserts at random gap positions.

    Invariants: the child list stays sorted and duplicate-free, every label
    is a direct child of the parent, and no existing label ever changes
    (immutability of SPLIDs).
    """
    alloc = SplidAllocator(dist=2)
    children = list(alloc.initial_children(parent, 3))
    for pos in positions:
        gap = pos % (len(children) + 1)
        before = children[gap - 1] if gap > 0 else None
        after = children[gap] if gap < len(children) else None
        new = alloc.between(parent, before, after)
        if before is not None:
            assert before < new
        if after is not None:
            assert new < after
        assert new.parent == parent
        assert new.level == parent.level + 1
        assert new not in children
        children.insert(gap, new)
    assert children == sorted(children)
