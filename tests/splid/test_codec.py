"""Unit and property tests for the order-preserving SPLID byte codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SplidError
from repro.splid import Splid, encode, decode
from repro.splid.codec import (
    average_stored_bytes,
    common_prefix_length,
    compressed_size,
    decode_divisions,
    encode_division,
    prefix_compress,
    prefix_decompress,
)


class TestDivisionBands:
    def test_band1(self):
        assert encode_division(1) == b"\x01"
        assert encode_division(0x7F) == b"\x7f"

    def test_band2_boundaries(self):
        assert encode_division(0x80)[0] & 0xC0 == 0x80
        assert len(encode_division(0x80)) == 2
        assert len(encode_division(0x407F)) == 2

    def test_band3(self):
        assert len(encode_division(0x4080)) == 4
        assert encode_division(0x4080)[0] & 0xC0 == 0xC0

    def test_rejects_nonpositive(self):
        with pytest.raises(SplidError):
            encode_division(0)

    def test_rejects_huge(self):
        with pytest.raises(SplidError):
            encode_division(1 << 40)

    def test_band_transitions_preserve_order(self):
        probes = [1, 2, 0x7E, 0x7F, 0x80, 0x81, 0x407E, 0x407F, 0x4080, 0x10000]
        codes = [encode_division(v) for v in probes]
        assert codes == sorted(codes)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text", ["1", "1.3", "1.3.4.3", "1.5.3.3.11.3.1", "1.3.4.2.3"]
    )
    def test_paper_labels(self, text):
        s = Splid.parse(text)
        assert decode(encode(s)) == s

    def test_decode_rejects_empty(self):
        with pytest.raises(SplidError):
            decode(b"")

    def test_decode_rejects_truncation(self):
        full = encode_division(0x200)
        with pytest.raises(SplidError):
            decode_divisions(full[:-1])


class TestOrderPreservation:
    def test_ancestor_is_byte_prefix(self):
        parent = encode(Splid.parse("1.3"))
        child = encode(Splid.parse("1.3.4.3"))
        assert child.startswith(parent)

    def test_figure5_order(self):
        labels = ["1", "1.3", "1.3.3", "1.3.3.1", "1.3.3.1.3", "1.3.5",
                  "1.5", "1.5.3.3", "1.5.4.3", "1.5.5"]
        keys = [encode(Splid.parse(t)) for t in labels]
        assert keys == sorted(keys)


class TestPrefixCompression:
    def test_round_trip(self):
        keys = sorted(
            encode(Splid.parse(t))
            for t in ["1.3.3", "1.3.3.1", "1.3.3.1.3", "1.3.5", "1.5.3"]
        )
        assert prefix_decompress(prefix_compress(keys)) == keys

    def test_compression_wins_on_document_order(self):
        # Sorted sibling runs share long prefixes.
        parent = Splid.parse("1.3.3.5")
        keys = [encode(parent.child(2 * i + 3)) for i in range(50)]
        assert compressed_size(keys) < sum(len(k) for k in keys) / 3

    def test_average_stored_bytes_small(self):
        # The paper reports 2-3 bytes per SPLID in document order.
        parent = Splid.parse("1.3.3.5.7")
        keys = [encode(parent.child(2 * i + 3)) for i in range(200)]
        assert average_stored_bytes(keys) <= 3.0

    def test_empty_input(self):
        assert prefix_compress([]) == []
        assert average_stored_bytes([]) == 0.0

    def test_corrupt_front_coding_detected(self):
        with pytest.raises(SplidError):
            prefix_decompress([(5, b"x")])

    def test_common_prefix_length(self):
        assert common_prefix_length(b"abc", b"abd") == 2
        assert common_prefix_length(b"", b"abd") == 0
        assert common_prefix_length(b"ab", b"ab") == 2


# -- property-based checks ---------------------------------------------------

divisions = st.lists(
    st.integers(min_value=1, max_value=0x5000), min_size=0, max_size=6
)
splids = st.builds(
    lambda mid, last: Splid((1, *mid, 2 * last + 1)),
    divisions,
    st.integers(min_value=0, max_value=0x4000),
)


@settings(max_examples=300)
@given(s=splids)
def test_round_trip_property(s):
    assert decode(encode(s)) == s


@settings(max_examples=300)
@given(a=splids, b=splids)
def test_byte_order_equals_document_order(a, b):
    assert (encode(a) < encode(b)) == (a < b)
    assert (encode(a) == encode(b)) == (a == b)


@settings(max_examples=100)
@given(keys=st.lists(splids, min_size=1, max_size=40, unique=True))
def test_front_coding_round_trip(keys):
    encoded = sorted(encode(k) for k in keys)
    assert prefix_decompress(prefix_compress(encoded)) == encoded
