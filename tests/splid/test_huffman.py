"""Tests for the Huffman-style SPLID bit encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SplidError
from repro.splid import Splid
from repro.splid.huffman import (
    average_encoded_bytes,
    decode_bits,
    decode_divisions_bits,
    encode_bits,
    encode_bytes,
    encode_division_bits,
    encoded_bit_length,
)


class TestDivisionClasses:
    def test_small_values_are_short(self):
        assert encode_division_bits(1) == "0000"
        assert encode_division_bits(3) == "0010"
        assert encode_division_bits(8) == "0111"

    def test_class_boundaries(self):
        assert encode_division_bits(9).startswith("10")
        assert len(encode_division_bits(9)) == 8
        assert encode_division_bits(72).startswith("10")
        assert encode_division_bits(73).startswith("110")
        assert encode_division_bits(1097).startswith("1110")
        assert encode_division_bits(17481).startswith("1111")

    def test_rejects_nonpositive(self):
        with pytest.raises(SplidError):
            encode_division_bits(0)

    def test_rejects_huge(self):
        with pytest.raises(SplidError):
            encode_division_bits(1 << 30)

    def test_prefix_free(self):
        codes = [encode_division_bits(v)
                 for v in (1, 8, 9, 72, 73, 1096, 1097, 20000)]
        for a in codes:
            for b in codes:
                if a != b:
                    assert not b.startswith(a) or len(a) == len(b)


class TestRoundTrip:
    @pytest.mark.parametrize("text", [
        "1", "1.3", "1.3.4.3", "1.5.3.3.11.3.1", "1.255.3",
    ])
    def test_examples(self, text):
        splid = Splid.parse(text)
        assert decode_bits(encode_bits(splid)) == splid

    def test_truncation_detected(self):
        bits = encode_bits(Splid.parse("1.3.5"))
        with pytest.raises(SplidError):
            decode_divisions_bits(bits[:-2])

    def test_empty_rejected(self):
        with pytest.raises(SplidError):
            decode_divisions_bits("")


class TestSizeClaims:
    def test_paper_size_claim_for_deep_trees(self):
        """Average 5-10 bytes for documents with tree depths up to 38.

        The paper's figure is an average over realistic label
        populations: depths cluster far below the maximum of 38, and
        small division values (children early in their sibling lists)
        dominate heavily.
        """
        import random
        rng = random.Random(2006)
        labels = []
        for _ in range(400):
            depth = max(2, min(38, int(rng.gauss(11, 6))))
            divisions = [1] + [2 * rng.randint(1, 10) + 1
                               for _ in range(depth)]
            labels.append(Splid(divisions))
        assert max(s.level for s in labels) >= 24
        assert 4.0 <= average_encoded_bytes(labels) <= 10.5

    def test_shallow_labels_tiny(self):
        assert encoded_bit_length(Splid.parse("1.3.3")) <= 12

    def test_encode_bytes_length(self):
        splid = Splid.parse("1.3.3")
        raw = encode_bytes(splid)
        assert len(raw) == (encoded_bit_length(splid) + 7) // 8

    def test_average_empty(self):
        assert average_encoded_bytes([]) == 0.0


# -- property-based checks ----------------------------------------------------

splids = st.builds(
    lambda mid, last: Splid((1, *mid, 2 * last + 1)),
    st.lists(st.integers(min_value=1, max_value=2000), min_size=0, max_size=8),
    st.integers(min_value=0, max_value=5000),
)


@settings(max_examples=300)
@given(s=splids)
def test_round_trip_property(s):
    assert decode_bits(encode_bits(s)) == s


@settings(max_examples=300)
@given(a=splids, b=splids)
def test_bit_order_preserves_document_order(a, b):
    """Lexicographic bit-string order equals document order."""
    assert (encode_bits(a) < encode_bits(b)) == (a < b)
