"""Stateful model-based testing of the whole database.

A hypothesis state machine drives random transactions (insert / update /
rename / delete, randomly committed or aborted) against a live database
and a plain-Python oracle of the *committed* state.  After every commit or
abort, the stored document must match the oracle exactly -- undo logs,
index maintenance, and label allocation all have to cooperate for this to
hold across arbitrary operation sequences.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import Database


class _Oracle:
    """Committed state: {counter_id: text} plus live element ids."""

    def __init__(self):
        self.texts = {}          # element id -> text value
        self.names = {}          # element id -> tag name
        self.next_id = 0


class DatabaseMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.db = Database(protocol="taDOM3+", lock_depth=6,
                           root_element="bib")
        self.oracle = _Oracle()
        self.txn = None
        self.pending = None      # staged oracle changes of the open txn

    # -- helpers -------------------------------------------------------------

    def _element(self, element_id):
        return self.db.document.element_by_id(element_id)

    def _text_node(self, element_id):
        element = self._element(element_id)
        return self.db.document.store.first_child(element)

    # -- transaction lifecycle -------------------------------------------------

    @precondition(lambda self: self.txn is None)
    @rule()
    def begin(self):
        self.txn = self.db.begin("fuzz")
        self.pending = _Oracle()
        self.pending.texts = dict(self.oracle.texts)
        self.pending.names = dict(self.oracle.names)
        self.pending.next_id = self.oracle.next_id

    @precondition(lambda self: self.txn is not None)
    @rule()
    def commit(self):
        self.db.commit(self.txn)
        self.oracle = self.pending
        self.txn = None
        self.pending = None

    @precondition(lambda self: self.txn is not None)
    @rule()
    def abort(self):
        self.db.abort(self.txn)
        self.txn = None
        self.pending = None

    # -- operations --------------------------------------------------------------

    @precondition(lambda self: self.txn is not None)
    @rule(text=st.text(alphabet="abcxyz", min_size=1, max_size=6))
    def insert_element(self, text):
        element_id = f"e{self.pending.next_id}"
        self.pending.next_id += 1
        self.db.run(self.db.nodes.insert_tree(
            self.txn, self.db.document.root,
            ("item", {"id": element_id}, [text]),
        ))
        self.pending.texts[element_id] = text
        self.pending.names[element_id] = "item"

    @precondition(lambda self: self.txn is not None and self.pending.texts)
    @rule(data=st.data(), text=st.text(alphabet="mnop", min_size=1, max_size=6))
    def update_text(self, data, text):
        element_id = data.draw(
            st.sampled_from(sorted(self.pending.texts)), label="target"
        )
        node = self._text_node(element_id)
        self.db.run(self.db.nodes.update_content(self.txn, node, text))
        self.pending.texts[element_id] = text

    @precondition(lambda self: self.txn is not None and self.pending.names)
    @rule(data=st.data(), name=st.sampled_from(("item", "entry", "node")))
    def rename(self, data, name):
        element_id = data.draw(
            st.sampled_from(sorted(self.pending.names)), label="target"
        )
        self.db.run(self.db.nodes.rename_element(
            self.txn, self._element(element_id), name
        ))
        self.pending.names[element_id] = name

    @precondition(lambda self: self.txn is not None and self.pending.texts)
    @rule(data=st.data())
    def delete(self, data):
        element_id = data.draw(
            st.sampled_from(sorted(self.pending.texts)), label="target"
        )
        self.db.run(self.db.nodes.delete_subtree(
            self.txn, self._element(element_id)
        ))
        del self.pending.texts[element_id]
        del self.pending.names[element_id]

    # -- the invariant ---------------------------------------------------------------

    @invariant()
    def committed_state_matches_oracle(self):
        if self.txn is not None:
            return      # only check between transactions
        doc = self.db.document
        live = {}
        for element in doc.elements_by_name("item") + \
                doc.elements_by_name("entry") + doc.elements_by_name("node"):
            element_id = doc.attribute_value(element, "id")
            live[element_id] = (doc.name_of(element),
                                doc.text_of_element(element))
        expected = {
            element_id: (self.oracle.names[element_id],
                         self.oracle.texts[element_id])
            for element_id in self.oracle.texts
        }
        assert live == expected
        # Index coherence.
        for element_id in expected:
            assert doc.element_by_id(element_id) is not None
        # No locks leak between transactions.
        assert self.db.locks.table.lock_count() == 0


DatabaseMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestDatabaseStateful = DatabaseMachine.TestCase
