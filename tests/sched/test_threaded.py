"""Tests for the threaded runtime: the same generators on real threads."""

import threading

import pytest

from repro import Database
from repro.errors import TransactionAborted
from repro.sched import Delay, ThreadedRuntime, SimulationError
from repro.sched.threaded import run_threaded

LIBRARY = (
    "topics",
    [("topic", {"id": "t0"}, [
        ("book", {"id": "b0"}, [
            ("title", ["TP"]),
            ("history", [("lend", {"person": "p1"}, [])]),
        ]),
        ("book", {"id": "b1"}, [
            ("title", ["Handbook"]),
            ("history", []),
        ]),
    ])],
)


def make_db(**kwargs):
    db = Database(protocol="taDOM3+", lock_depth=7, root_element="bib", **kwargs)
    db.load(LIBRARY)
    return db


class TestBasics:
    def test_plain_delays(self):
        done = []

        def proc(name):
            yield Delay(1.0)
            done.append(name)

        run_threaded([proc("a"), proc("b"), proc("c")])
        assert sorted(done) == ["a", "b", "c"]

    def test_unknown_effect_surfaces_in_join(self):
        def proc():
            yield 42

        runtime = ThreadedRuntime()
        runtime.spawn(proc())
        with pytest.raises(SimulationError):
            runtime.join()

    def test_generator_exceptions_surface(self):
        def proc():
            yield Delay(0.1)
            raise ValueError("boom")

        runtime = ThreadedRuntime()
        runtime.spawn(proc())
        with pytest.raises(ValueError):
            runtime.join()


class TestRealContention:
    def test_reader_blocks_writer(self):
        db = make_db()
        book = db.document.element_by_id("b0")
        order = []
        reader_done = threading.Event()

        def reader():
            txn = db.begin("reader")
            yield from db.nodes.read_subtree(txn, book)
            order.append("reader-read")
            yield Delay(80.0)
            db.commit(txn)
            order.append("reader-commit")
            reader_done.set()

        def writer():
            txn = db.begin("writer")
            yield Delay(20.0)
            yield from db.nodes.delete_subtree(txn, book)
            order.append("writer-deleted")
            db.commit(txn)

        run_threaded([reader(), writer()], time_scale=0.002)
        assert order == ["reader-read", "reader-commit", "writer-deleted"]
        assert not db.document.exists(book)

    def test_many_threads_consistent_counts(self):
        """8 threads keep appending lends; the final count is exact."""
        db = make_db()
        history = db.document.elements_by_name("history")[1]
        per_thread = 5

        def appender(i):
            for k in range(per_thread):
                txn = db.begin(f"append-{i}-{k}")
                try:
                    yield from db.nodes.insert_tree(
                        txn, history, ("lend", {"person": f"p{i}"}, [])
                    )
                except TransactionAborted:
                    db.abort(txn)
                    continue
                db.commit(txn)
                yield Delay(1.0)

        db_threads = 8
        run_threaded([appender(i) for i in range(db_threads)],
                     time_scale=0.0002)
        committed = db.transactions.committed
        lends = sum(
            1 for splid in db.document.store.children(history)
        )
        assert lends == committed
        assert committed + db.transactions.aborted == db_threads * per_thread

    def test_timeout_under_threads(self):
        db = make_db(wait_timeout_ms=30.0)
        book = db.document.element_by_id("b0")
        outcome = {}

        def holder():
            txn = db.begin("holder")
            yield from db.nodes.delete_subtree(txn, book)
            yield Delay(300.0)
            db.commit(txn)

        def waiter():
            txn = db.begin("waiter")
            yield Delay(10.0)
            try:
                yield from db.nodes.read_subtree(txn, book)
                outcome["read"] = True
            except TransactionAborted:
                db.abort(txn)
                outcome["aborted"] = True

        run_threaded([holder(), waiter()], time_scale=0.002)
        assert outcome == {"aborted": True}
        assert db.locks.timeouts == 1
