"""Unit tests for the discrete-event simulator and the sync driver."""

import pytest

from repro.core import NODE_SPACE
from repro.core.tables import TADOM2_TABLE
from repro.errors import LockTimeout
from repro.locking import LockTable
from repro.sched import Delay, SimulationError, Simulator, run_sync
from repro.sched.costs import CostModel
from repro.splid import Splid
from repro.storage.buffer import IoStatistics


class TestDelays:
    def test_time_advances(self):
        sim = Simulator()
        seen = []

        def proc():
            yield Delay(5.0)
            seen.append(sim.now)
            yield Delay(2.5)
            seen.append(sim.now)

        sim.spawn(proc())
        assert sim.run() == 7.5
        assert seen == [5.0, 7.5]

    def test_interleaving_is_time_ordered(self):
        sim = Simulator()
        order = []

        def proc(name, delay):
            yield Delay(delay)
            order.append(name)

        sim.spawn(proc("slow", 10.0))
        sim.spawn(proc("fast", 1.0))
        sim.spawn(proc("mid", 5.0))
        sim.run()
        assert order == ["fast", "mid", "slow"]

    def test_fifo_at_equal_times(self):
        sim = Simulator()
        order = []

        def proc(name):
            yield Delay(1.0)
            order.append(name)

        for name in "abc":
            sim.spawn(proc(name))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        sim = Simulator()

        def proc():
            yield Delay(-1.0)

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_unknown_effect_rejected(self):
        sim = Simulator()

        def proc():
            yield "nonsense"

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_horizon_stops_processing(self):
        sim = Simulator()
        seen = []

        def proc():
            while True:
                yield Delay(10.0)
                seen.append(sim.now)

        sim.spawn(proc())
        sim.run(until=35.0)
        assert seen == [10.0, 20.0, 30.0]
        assert sim.now == 35.0

    def test_spawn_at_future_time(self):
        sim = Simulator()
        seen = []

        def proc():
            seen.append(sim.now)
            yield Delay(0.0)

        sim.spawn(proc(), at=42.0)
        sim.run()
        assert seen == [42.0]


class TestLockWaits:
    def _table(self):
        return LockTable({NODE_SPACE: TADOM2_TABLE})

    def test_wait_until_release(self):
        sim = Simulator()
        table = self._table()
        node = Splid.parse("1.3")
        events = []

        def holder():
            table.request("h", NODE_SPACE, node, "SX")
            yield Delay(50.0)
            table.release_all("h")
            events.append(("released", sim.now))

        def waiter():
            yield Delay(1.0)
            result = table.request("w", NODE_SPACE, node, "NR")
            assert not result.granted
            yield result.ticket
            events.append(("granted", sim.now))

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run()
        assert events == [("released", 50.0), ("granted", 50.0)]

    def test_timeout_throws_into_process(self):
        sim = Simulator()
        table = self._table()
        node = Splid.parse("1.3")
        outcome = {}

        def holder():
            table.request("h", NODE_SPACE, node, "SX")
            yield Delay(500.0)
            table.release_all("h")

        def waiter():
            yield Delay(1.0)
            result = table.request("w", NODE_SPACE, node, "NR")
            result.ticket.timeout_ms = 100.0
            result.ticket.cancel = lambda: table.cancel_wait("w")
            try:
                yield result.ticket
                outcome["granted"] = True
            except LockTimeout:
                outcome["timed_out_at"] = sim.now

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run()
        assert outcome == {"timed_out_at": 101.0}
        assert table.waiting_ticket("w") is None

    def test_grant_beats_timeout(self):
        sim = Simulator()
        table = self._table()
        node = Splid.parse("1.3")
        outcome = {}

        def holder():
            table.request("h", NODE_SPACE, node, "SX")
            yield Delay(10.0)
            table.release_all("h")

        def waiter():
            yield Delay(1.0)
            result = table.request("w", NODE_SPACE, node, "NR")
            result.ticket.timeout_ms = 100.0
            result.ticket.cancel = lambda: table.cancel_wait("w")
            yield result.ticket
            outcome["granted_at"] = sim.now

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run()
        assert outcome == {"granted_at": 10.0}


class TestRunSync:
    def test_returns_value_and_elapsed(self):
        def gen():
            yield Delay(3.0)
            yield Delay(4.0)
            return "done"

        result, elapsed = run_sync(gen())
        assert result == "done"
        assert elapsed == 7.0

    def test_blocking_wait_is_an_error(self):
        table = LockTable({NODE_SPACE: TADOM2_TABLE})
        node = Splid.parse("1.3")
        table.request("other", NODE_SPACE, node, "SX")

        def gen():
            result = table.request("me", NODE_SPACE, node, "NR")
            yield result.ticket

        with pytest.raises(SimulationError):
            run_sync(gen())


class TestCostModel:
    def test_io_cost(self):
        costs = CostModel(buffer_hit_ms=1.0, buffer_miss_ms=10.0)
        delta = IoStatistics(logical_reads=5, physical_reads=2)
        assert costs.io_cost(delta) == 3 * 1.0 + 2 * 10.0

    def test_lock_cost(self):
        costs = CostModel(lock_request_ms=2.0, lock_covered_ms=0.5)
        assert costs.lock_cost(3, 4) == 8.0

    def test_misses_cost_more_than_hits(self):
        costs = CostModel()
        assert costs.buffer_miss_ms > 100 * costs.buffer_hit_ms
