"""Cross-substrate validation: a TaMix-style mix under real threads.

The discrete-event simulator is the primary substrate; this test runs the
same transaction programs on the threaded runtime and validates the
invariants that must hold under *any* interleaving:

* committed + aborted = attempts, per slot;
* the document is structurally consistent afterwards (sorted labels, no
  orphans, live ID index);
* every lend element committed by a lender is present, every aborted one
  is absent.
"""

import random
import threading

import pytest

from repro import Database
from repro.errors import TransactionAborted
from repro.sched import Delay
from repro.sched.threaded import ThreadedRuntime
from repro.tamix import TaMixConfig, generate_bib
from repro.tamix.transactions import (
    ta_chapter,
    ta_lend_and_return,
    ta_query_book,
    ta_rename_topic,
)

PROGRAMS = (ta_query_book, ta_chapter, ta_lend_and_return, ta_rename_topic)


@pytest.mark.parametrize("protocol", ["taDOM3+", "URIX"])
def test_threaded_mixed_workload_consistency(protocol):
    info = generate_bib(scale=0.02, seed=21)
    db = Database(protocol=protocol, lock_depth=6, document=info.document,
                  wait_timeout_ms=2_000.0)
    cfg = TaMixConfig(wait_after_operation_ms=1.0)
    counters = {"committed": 0, "aborted": 0, "attempts": 0}
    counter_lock = threading.Lock()

    def slot(index):
        rng = random.Random(index)
        program = PROGRAMS[index % len(PROGRAMS)]
        for _round in range(3):
            with counter_lock:
                counters["attempts"] += 1
            txn = db.begin(f"slot{index}")
            try:
                yield from program(db.nodes, txn, rng, info, cfg)
            except TransactionAborted:
                db.abort(txn)
                with counter_lock:
                    counters["aborted"] += 1
                yield Delay(2.0 + index)
                continue
            db.commit(txn)
            with counter_lock:
                counters["committed"] += 1
            yield Delay(1.0)

    runtime = ThreadedRuntime(time_scale=0.0005)
    runtime.run([slot(i) for i in range(8)])

    assert counters["committed"] + counters["aborted"] == counters["attempts"]
    assert counters["committed"] == db.transactions.committed
    assert counters["aborted"] == db.transactions.aborted
    assert db.transactions.active_count == 0
    assert db.locks.table.lock_count() == 0

    # Structural consistency of the shared document.
    doc = db.document
    labels = [splid for splid, _record in doc.walk()]
    assert labels == sorted(labels)
    label_set = set(labels)
    for splid in labels:
        parent = splid.parent
        if parent is not None:
            assert parent in label_set, f"orphan {splid}"
    for id_value in doc.id_index.ids():
        assert doc.exists(doc.element_by_id(id_value))
