"""ChaosTransport semantics: seeded network faults over the shard wire.

Every fault decision is made coordinator-side, so these tests pin the
observable contract per kind -- how many frames actually reach the inner
transport, that re-sends reuse the same idempotency envelope (the shard
dedups), that crashes fire only at EXEC boundaries, and that a rule-less
schedule leaves the decorator as a pure passthrough.
"""

import pytest

from repro.chaos import ChaosEngine, FaultRule, FaultSchedule
from repro.errors import ShardUnavailableError
from repro.net import wire
from repro.shard import ChaosTransport, SimTransport, messages, shard_config


class SpyTransport:
    """Records every frame delivered to the wrapped transport."""

    def __init__(self, inner):
        self.inner = inner
        self.frames = []

    @property
    def shards(self):
        return self.inner.shards

    def request(self, shard_id, frame):
        self.frames.append((shard_id, bytes(frame)))
        return self.inner.request(shard_id, frame)

    def alive(self, shard_id):
        return self.inner.alive(shard_id)

    def kill(self, shard_id):
        self.inner.kill(shard_id)

    def restart(self, shard_id):
        self.inner.restart(shard_id)

    def close(self):
        self.inner.close()


@pytest.fixture
def sim():
    transport = SimTransport(
        [shard_config("taDOM3+", 4, "repeatable", scale=0.02)]
    )
    yield transport
    transport.close()


def wrap(sim, *rules, seed=1):
    spy = SpyTransport(sim)
    engine = ChaosEngine(FaultSchedule(tuple(rules)), seed)
    return ChaosTransport(spy, engine), spy, engine


PING = messages.encode_ping(0.0)


class TestPassthrough:
    def test_ruleless_schedule_delegates_untouched(self, sim):
        chaos, spy, _engine = wrap(sim)
        direct = sim.request(0, PING)
        decorated = chaos.request(0, PING)
        assert decorated == direct
        # The frame went through verbatim: no envelope, one delivery.
        assert spy.frames == [(0, PING)]

    def test_storage_only_schedule_is_inactive(self, sim):
        chaos, spy, _engine = wrap(
            sim, FaultRule("page.read", "transient", probability=1.0)
        )
        chaos.request(0, PING)
        assert spy.frames == [(0, PING)]

    def test_disabled_flag_quiesces_active_schedule(self, sim):
        chaos, spy, _engine = wrap(
            sim, FaultRule("net.request", "drop", probability=1.0)
        )
        chaos.enabled = False
        reply = chaos.request(0, PING)
        opcode, _fields = wire.decode_frame(reply)
        assert opcode == messages.OP_SHARD_INFO
        assert spy.frames == [(0, PING)]


class TestNetworkFaults:
    def test_dropped_request_is_resent_under_envelope(self, sim):
        chaos, spy, engine = wrap(
            sim, FaultRule("net.request", "drop", at_ops=(1,))
        )
        reply = chaos.request(0, PING)
        opcode, _fields = wire.decode_frame(reply)
        assert opcode == messages.OP_SHARD_INFO
        # Attempt 1 was lost before delivery; only the re-send arrived,
        # wrapped in the idempotency envelope.
        assert len(spy.frames) == 1
        assert messages.opcode_of(spy.frames[0][1]) == messages.OP_SHARD_REQ
        assert engine.faults.get("net.request:drop") == 1

    def test_torn_request_behaves_as_receiver_side_loss(self, sim):
        chaos, spy, engine = wrap(
            sim, FaultRule("net.request", "torn", at_ops=(1,))
        )
        chaos.request(0, PING)
        assert len(spy.frames) == 1
        assert engine.faults.get("net.request:torn") == 1

    def test_duplicate_request_delivers_twice_same_envelope(self, sim):
        chaos, spy, _engine = wrap(
            sim, FaultRule("net.request", "duplicate", at_ops=(1,))
        )
        reply = chaos.request(0, PING)
        opcode, _fields = wire.decode_frame(reply)
        assert opcode == messages.OP_SHARD_INFO
        # Both copies carry the identical request id, so the shard's
        # dedup cache absorbs the second execution.
        assert len(spy.frames) == 2
        assert spy.frames[0] == spy.frames[1]

    def test_lost_reply_resend_hits_dedup_cache(self, sim):
        chaos, spy, engine = wrap(
            sim, FaultRule("net.reply", "drop", at_ops=(1,))
        )
        reply = chaos.request(0, PING)
        opcode, _fields = wire.decode_frame(reply)
        assert opcode == messages.OP_SHARD_INFO
        # The shard executed, the reply vanished, and the re-sent
        # envelope replayed the cached bytes: two deliveries, one id.
        assert len(spy.frames) == 2
        assert spy.frames[0] == spy.frames[1]
        assert engine.faults.get("net.reply:drop") == 1

    def test_total_loss_exhausts_retries_as_unavailable(self, sim):
        chaos, spy, engine = wrap(
            sim, FaultRule("net.request", "drop", probability=1.0)
        )
        with pytest.raises(ShardUnavailableError) as info:
            chaos.request(0, PING)
        assert info.value.shard_id == 0
        assert spy.frames == []  # nothing ever reached the shard
        assert (
            engine.faults["net.request:drop"] == engine.retry.max_attempts
        )

    def test_request_ids_are_deterministic_per_shard(self, sim):
        chaos, spy, _engine = wrap(
            sim, FaultRule("net.reply", "delay", probability=0.0001,
                           latency_ms=1.0)
        )
        chaos.request(0, PING)
        chaos.request(0, PING)
        ids = [
            wire.decode_frame(frame)[1][0] for _sid, frame in spy.frames
        ]
        assert ids == ["s0:1", "s0:2"]


class TestCrashSite:
    def exec_frame(self):
        return messages.encode_exec(
            0.0, "t1", "TAchapter", "repeatable", "noop", ()
        )

    def test_kill_fires_only_on_exec_frames(self, sim):
        chaos, spy, _engine = wrap(
            sim, FaultRule("shard.crash", "kill", probability=1.0)
        )
        # Control frames are never crash points: PING sails through.
        chaos.request(0, PING)
        assert len(spy.frames) == 1
        with pytest.raises(ShardUnavailableError):
            chaos.request(0, self.exec_frame())
        # The frame died before delivery; the supervisor restarted the
        # shard under a fresh epoch.
        assert len(spy.frames) == 1
        assert chaos.supervisor.restart_log == [(0, 1)]
        assert chaos.epoch(0) == 1
        assert sim.alive(0)

    def test_commit_frames_are_never_crash_points(self, sim):
        chaos, spy, _engine = wrap(
            sim, FaultRule("shard.crash", "kill", probability=1.0)
        )
        frame = messages.encode_commit(0.0, "t-unknown")
        opcode, fields = wire.decode_frame(chaos.request(0, frame))
        # Delivered (and answered -- unknown label after a restart).
        assert len(spy.frames) == 1
        assert opcode == messages.OP_SHARD_EXC
        assert fields[0] == "ShardUnavailableError"


class TestDeterminism:
    RULES = (
        FaultRule("net.request", "drop", probability=0.1),
        FaultRule("net.reply", "delay", probability=0.1, latency_ms=2.0),
    )

    def run_once(self, seed):
        transport = SimTransport(
            [shard_config("taDOM3+", 4, "repeatable", scale=0.02)]
        )
        try:
            chaos, _spy, engine = wrap(transport, *self.RULES, seed=seed)
            for _ in range(40):
                chaos.request(0, PING)
            return dict(engine.faults), engine.fingerprint()
        finally:
            transport.close()

    def test_same_seed_same_fault_log(self):
        assert self.run_once(3) == self.run_once(3)


class TestAddCost:
    def test_done_blocked_exc_carry_delay(self):
        done = messages.encode_done("v", 1.0, [], [])
        _op, fields = wire.decode_frame(messages.add_cost(done, 2.5))
        assert fields[1] == 3.5
        blocked = messages.encode_blocked([], False, "n", "k", "X", 1.0,
                                          [], [])
        _op, fields = wire.decode_frame(messages.add_cost(blocked, 2.5))
        assert fields[5] == 3.5
        exc = messages.encode_exc(ValueError("x"), 1.0, [], [])
        _op, fields = wire.decode_frame(messages.add_cost(exc, 2.5))
        assert fields[3] == 3.5

    def test_info_and_zero_delay_pass_through(self):
        info = messages.encode_info({"ok": True})
        assert messages.add_cost(info, 5.0) == info
        done = messages.encode_done("v", 1.0, [], [])
        assert messages.add_cost(done, 0.0) is done
