"""The sweep's shard axis: cell expansion, persistence, and reporting."""

import json

from repro.tamix.sweep import (
    SweepCell,
    SweepRunner,
    SweepSpec,
    shardable,
    trace_filename,
)
from repro.tamix.sweep_report import render_markdown


class TestShardAxis:
    def test_cells_expand_the_shard_axis(self):
        spec = SweepSpec(protocols=("taDOM3+",), lock_depths=(4,),
                         shards=(1, 2, 4))
        cells = list(spec.cells())
        assert [c.shards for c in cells] == [1, 2, 4]

    def test_unshardable_combinations_are_skipped(self):
        spec = SweepSpec(protocols=("taDOM3+", "Node2PL"),
                         lock_depths=(1, 4), shards=(1, 2))
        cells = [(c.protocol, c.lock_depth, c.shards) for c in spec.cells()]
        # Depth 1 sits above the partition level; Node2PL navigates from
        # the root (and is depth-unaware, so only its first depth runs).
        assert ("taDOM3+", 1, 2) not in cells
        assert ("taDOM3+", 4, 2) in cells
        assert all(p != "Node2PL" or s == 1 for p, _d, s in cells)
        assert not shardable("Node2PL", 4)
        assert not shardable("taDOM3+", 1)
        assert shardable("taDOM3+", 2)

    def test_trace_filename_tags_sharded_cells_only(self):
        plain = SweepCell("taDOM3+", 4, "repeatable", 0)
        sharded = SweepCell("taDOM3+", 4, "repeatable", 1, shards=2)
        assert trace_filename(plain) == "taDOM3+_d4_repeatable_r0.jsonl"
        assert trace_filename(sharded) == "taDOM3+_d4_repeatable_s2_r1.jsonl"


class TestShardedSweepRun:
    def _spec(self, **overrides):
        defaults = dict(
            protocols=("taDOM3+",), lock_depths=(4,), shards=(1, 2),
            scale=0.05, run_duration_ms=2_000.0,
        )
        defaults.update(overrides)
        return SweepSpec(**defaults)

    def test_rows_carry_the_shard_count(self):
        runner = SweepRunner(self._spec())
        results = runner.run()
        assert [(r.cell.shards, r.runs) for r in results] == [(1, 1), (2, 1)]
        rows = json.loads(runner.to_json())
        assert [row["shards"] for row in rows] == [1, 2]
        assert all(row["committed"] >= 0 for row in rows)

    def test_series_filters_by_shard_count(self):
        runner = SweepRunner(self._spec())
        runner.run()
        single = runner.series("committed", shards=1)
        double = runner.series("committed", shards=2)
        assert set(single) == set(double) == {"taDOM3+"}
        assert len(single["taDOM3+"]) == len(double["taDOM3+"]) == 1

    def test_journal_resume_round_trips_sharded_cells(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        full = SweepRunner(self._spec(), journal=journal)
        full.run()
        reference = full.to_json()

        resumed = SweepRunner(self._spec(), journal=journal, resume=True)
        resumed.run()
        assert resumed.resumed_cells == 2
        assert resumed.to_json() == reference

    def test_report_renders_the_scale_up_section(self):
        runner = SweepRunner(self._spec())
        runner.run()
        rows = json.loads(runner.to_json())
        markdown = render_markdown(rows)
        assert "Shard scale-up" in markdown
        assert "s=2" in markdown

    def test_report_back_compat_with_pre_shard_rows(self):
        """Rows persisted before the shard axis (no ``shards`` key) must
        still render, with no scale-up section."""
        legacy = [{
            "protocol": "taDOM3+", "lock_depth": 4,
            "isolation": "repeatable", "runs": 1,
            "committed": 10.0, "aborted": 1.0, "deadlocks": 0.0,
            "wait_total_ms": 0.0,
        }]
        markdown = render_markdown(legacy)
        assert "Shard scale-up" not in markdown
        assert "taDOM3+" in markdown
