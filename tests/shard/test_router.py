"""The shard router end-to-end: seeded sharded contests are deterministic,
validity gates hold, and the arXiv 2504.03073 options stay functional."""

import json
import os

import pytest

from repro.errors import BenchmarkError
from repro.shard.runner import run_sharded_cluster1, validate_sharding

#: CI sets REPRO_SHARDS to exercise the suite at other shard counts.
SHARDS = int(os.environ.get("REPRO_SHARDS", "2"))


def _run(seed=7, duration=4_000.0, **kwargs):
    return run_sharded_cluster1(
        "taDOM3+", shards=SHARDS, lock_depth=4, scale=0.05,
        run_duration_ms=duration, seed=seed, **kwargs,
    )


class TestValidityGate:
    def test_root_navigating_protocol_rejected(self):
        with pytest.raises(BenchmarkError, match="root"):
            validate_sharding("Node2PL", 4, 2)

    def test_shallow_lock_depth_rejected(self):
        with pytest.raises(BenchmarkError, match="lock_depth"):
            validate_sharding("taDOM3+", 1, 2)

    def test_single_shard_always_passes(self):
        validate_sharding("Node2PL", 0, 1)  # delegates to the classic path

    def test_bad_shard_count_rejected(self):
        with pytest.raises(BenchmarkError, match=">= 1"):
            validate_sharding("taDOM3+", 4, 0)

    def test_unknown_transport_rejected(self):
        with pytest.raises(BenchmarkError, match="transport"):
            run_sharded_cluster1("taDOM3+", shards=2, transport="carrier-pigeon")


class TestSeededDeterminism:
    def test_same_seed_is_byte_identical(self):
        first = _run(seed=7)
        second = _run(seed=7)
        assert json.dumps(first.as_journal(), sort_keys=True) == \
            json.dumps(second.as_journal(), sort_keys=True)

    def test_different_seeds_diverge(self):
        first = _run(seed=7)
        second = _run(seed=8)
        assert json.dumps(first.as_journal(), sort_keys=True) != \
            json.dumps(second.as_journal(), sort_keys=True)

    def test_contest_makes_progress_and_merges_stats(self):
        result = _run(seed=42, duration=8_000.0)
        assert result.committed > 0
        assert set(result.by_type) <= {
            "TAqueryBook", "TAchapter", "TArenameTopic", "TAlendAndReturn",
        }
        wait = result.wait_stats
        assert wait["count"] >= 0.0
        histogram = result.wait_histogram
        assert histogram["count"] == sum(histogram["buckets"].values())


class TestRouterOptions:
    def test_grant_cache_run_completes(self):
        result = _run(seed=11, grant_cache=True)
        assert result.committed > 0

    def test_adaptive_backoff_run_completes(self):
        result = _run(seed=11, adaptive_backoff=True)
        assert result.committed > 0

    def test_single_shard_delegates_to_classic_runner(self):
        from repro.tamix.cluster import run_cluster1

        sharded = run_sharded_cluster1(
            "taDOM3+", shards=1, lock_depth=4, scale=0.05,
            run_duration_ms=3_000.0, seed=5,
        )
        classic = run_cluster1(
            "taDOM3+", lock_depth=4, scale=0.05,
            run_duration_ms=3_000.0, seed=5,
        )
        assert json.dumps(sharded.as_journal(), sort_keys=True) == \
            json.dumps(classic.as_journal(), sort_keys=True)
