"""SPLID-range partitioning: deterministic, subtree-atomic, round-trippable."""

import pytest

from repro.errors import BenchmarkError
from repro.shard.partition import PARTITION_LEVEL, PartitionPlan, plan_partitions
from repro.tamix.bibgen import generate_bib


@pytest.fixture(scope="module")
def document():
    return generate_bib(scale=0.05, seed=2006).document


class TestPlanPartitions:
    def test_same_document_same_plan(self, document):
        first = plan_partitions(document, 3)
        second = plan_partitions(document, 3)
        assert first.boundaries == second.boundaries
        assert first.shards == second.shards == 3

    def test_partition_units_stay_whole(self, document):
        """No subtree rooted at the partition level may straddle a
        boundary: every node at or below that level must land on the
        same shard as its level-``PARTITION_LEVEL`` ancestor."""
        plan = plan_partitions(document, 4)
        for splid, _record in document.walk():
            if splid.level < PARTITION_LEVEL:
                continue
            unit = splid.ancestor_at_level(PARTITION_LEVEL)
            assert plan.shard_of(splid) == plan.shard_of(unit), (
                f"{splid} split from its unit {unit}"
            )

    def test_every_shard_owns_work(self, document):
        plan = plan_partitions(document, 4)
        owners = {
            plan.shard_of(splid)
            for splid, _record in document.walk()
            if splid.level >= PARTITION_LEVEL
        }
        assert owners == set(range(4))

    def test_shard_ids_are_in_document_order(self, document):
        plan = plan_partitions(document, 3)
        units = sorted(
            {
                splid.ancestor_at_level(PARTITION_LEVEL)
                for splid, _record in document.walk()
                if splid.level >= PARTITION_LEVEL
            }
        )
        shard_ids = [plan.shard_of(unit) for unit in units]
        assert shard_ids == sorted(shard_ids)

    def test_config_round_trip(self, document):
        plan = plan_partitions(document, 3)
        clone = PartitionPlan.from_config(plan.as_config())
        assert clone.shards == plan.shards
        assert clone.boundaries == plan.boundaries
        sample = [s for s, _r in document.walk()][:200]
        assert [clone.shard_of(s) for s in sample] == \
            [plan.shard_of(s) for s in sample]

    def test_invalid_shard_counts_rejected(self, document):
        for bad in (0, -1):
            with pytest.raises(BenchmarkError):
                plan_partitions(document, bad)

    def test_more_shards_than_units_rejected(self, document):
        units = {
            splid.ancestor_at_level(PARTITION_LEVEL)
            for splid, _record in document.walk()
            if splid.level >= PARTITION_LEVEL
        }
        with pytest.raises(BenchmarkError):
            plan_partitions(document, len(units) + 1)
