"""Real multiprocessing shards: identical to the simulated network for
the same seed, and oracle-clean under tracing."""

import json

from repro.obs import Observability
from repro.shard.runner import run_sharded_cluster1
from repro.verify import verify_trace


class TestProcessTransport:
    def test_process_mode_equals_sim_mode(self):
        """Shards take all timing from message-carried clocks and the
        router is synchronous, so real processes reproduce the simulated
        network byte for byte."""
        sim = run_sharded_cluster1(
            "taDOM3+", shards=2, lock_depth=4, scale=0.05,
            run_duration_ms=4_000.0, seed=7, transport="sim",
        )
        process = run_sharded_cluster1(
            "taDOM3+", shards=2, lock_depth=4, scale=0.05,
            run_duration_ms=4_000.0, seed=7, transport="process",
        )
        assert json.dumps(process.as_journal(), sort_keys=True) == \
            json.dumps(sim.as_journal(), sort_keys=True)

    def test_four_shard_multiprocessing_run_is_oracle_clean(self):
        """The acceptance cell: a seeded 4-shard process-mode contest
        completes and its merged event history passes the oracle."""
        obs = Observability.enabled(capacity=None, access_events=True)
        result = run_sharded_cluster1(
            "taDOM3+", shards=4, lock_depth=4, scale=0.05,
            run_duration_ms=4_000.0, seed=42, transport="process",
            observability=obs,
        )
        assert result.committed > 0
        report = verify_trace(list(obs.tracer.events()),
                              protocol="taDOM3+", lock_depth=4)
        assert report.ok, report.summary()
        assert report.committed == result.committed
