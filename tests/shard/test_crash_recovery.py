"""Supervised shard crash/restart: WAL recovery and the acceptance bar.

The `shard-kill` builtin schedule SIGKILLs (or, on the simulated
transport, discards) a shard mid-run and sprinkles request drops and
reply delays on top.  These tests hold the full crash runner to the
Jepsen-style bar -- committed history passes the oracle, every shard's
recovered document equals a fault-free replay of its WAL, accounting
balances, nothing leaks -- and pin that the whole thing is reproducible
bit-for-bit across repeats and across the sim/process transports.
"""

import multiprocessing

import pytest

from repro.chaos import FaultRule, FaultSchedule, load_schedule
from repro.net import wire
from repro.shard import build_sharded_cluster, messages
from repro.shard.chaosrun import run_shard_chaos
from repro.tamix.cluster import CLUSTER1_MIX
from repro.tamix.coordinator import TaMixConfig, TaMixCoordinator


def crash_run(transport="sim", seed=7):
    return run_shard_chaos(
        load_schedule("shard-kill"), seed=seed, shards=2, scale=0.05,
        run_duration_ms=4_000.0, transport=transport,
    )


@pytest.fixture(scope="module")
def sim_report():
    return crash_run()


class TestAcceptance:
    def test_crash_run_passes_all_oracles(self, sim_report):
        report = sim_report
        assert report.ok, report.violations
        assert report.oracle_ok and report.accesses_checked > 0
        assert report.recovery_ok
        assert report.committed > 0

    def test_the_kill_actually_fired_and_was_recovered(self, sim_report):
        report = sim_report
        assert report.faults.get("shard.crash:kill", 0) >= 1
        assert report.shard_restarts, "no supervised restart happened"
        for snapshot in report.shard_snapshots:
            assert snapshot["live_image"] == snapshot["replayed_image"]

    def test_wal_commit_accounting_balances(self, sim_report):
        report = sim_report
        assert not any("COMMIT records" in v for v in report.violations)
        if report.partial_commits == 0:
            # No partially-committed cross-shard group: the WALs hold
            # exactly one COMMIT per committed leg, nothing doubled or
            # lost despite the retries and the restart.
            assert report.commits_in_wal == report.leg_commits

    def test_nothing_leaks_past_teardown(self, sim_report):
        assert sim_report.leaked_processes == 0
        assert len(multiprocessing.active_children()) == 0


class TestDeterminism:
    def test_repeat_is_bit_identical(self, sim_report):
        assert crash_run().fingerprint == sim_report.fingerprint

    def test_process_transport_matches_sim(self, sim_report):
        report = crash_run(transport="process")
        assert report.ok, report.violations
        assert report.leaked_processes == 0
        assert report.fingerprint == sim_report.fingerprint


class TestWalRestart:
    #: A crash rule that never fires: provisions per-shard WAL files
    #: without injecting anything, so the restart below is the only one.
    NEVER = FaultSchedule(
        (FaultRule("shard.crash", "kill", at_ops=(10**9,)),),
        name="never",
    )

    def snapshot(self, cluster, shard_id):
        opcode, fields = wire.decode_frame(
            cluster.transport.request(
                shard_id, messages.encode_snapshot(0.0)
            )
        )
        assert opcode == messages.OP_SHARD_INFO
        return fields[0]

    def test_restart_recovers_exactly_the_committed_state(self):
        cluster = build_sharded_cluster(
            "taDOM3+", shards=2, scale=0.05, fault_schedule=self.NEVER,
        )
        try:
            config = TaMixConfig(
                protocol="taDOM3+", lock_depth=4, isolation="repeatable",
                run_duration_ms=2_000.0, mix=dict(CLUSTER1_MIX), seed=5,
            )
            TaMixCoordinator(cluster.database, cluster.info, config).run()
            # Roll back in-flight work so the live document holds the
            # committed effects only (what a WAL replay reconstructs).
            cluster.database.abort_in_flight(reason="rollback")

            before = self.snapshot(cluster, 0)
            assert before["recovered"] is False
            assert before["commits_in_wal"] > 0

            cluster.transport.supervisor.kill_and_restart(0)

            after = self.snapshot(cluster, 0)
            assert after["recovered"] is True
            assert after["commits_in_wal"] == before["commits_in_wal"]
            assert after["live_image"] == before["live_image"]
            assert after["live_image"] == after["replayed_image"]
            # The untouched shard is unaffected.
            assert self.snapshot(cluster, 1)["recovered"] is False
        finally:
            cluster.close()

    def test_cold_start_without_wal_file_is_pristine(self):
        cluster = build_sharded_cluster(
            "taDOM3+", shards=1, scale=0.02, fault_schedule=self.NEVER,
        )
        try:
            snapshot = self.snapshot(cluster, 0)
            assert snapshot["recovered"] is False
            assert snapshot["commits_in_wal"] == 0
            assert snapshot["live_image"] == snapshot["replayed_image"]
        finally:
            cluster.close()
