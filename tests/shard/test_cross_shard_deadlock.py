"""Cross-shard deadlock detection: a seeded two-shard cycle must abort a
deterministic victim, and the history oracle must clear what survives."""

import pytest

from repro.errors import DeadlockAbort
from repro.obs import DEADLOCK_DETECTED, Observability
from repro.sched.simulator import Delay, Simulator
from repro.shard.partition import plan_partitions
from repro.shard.router import ShardedDatabase
from repro.shard.runner import shard_config
from repro.shard.transport import SimTransport
from repro.tamix.bibgen import generate_bib
from repro.verify import verify_trace


def _run_cycle():
    """Two transactions renaming two books in opposite orders across a
    shard boundary: a wait-for cycle no single shard can see."""
    obs = Observability.enabled(capacity=None, access_events=True)
    info = generate_bib(scale=0.1, seed=2006)
    plan = plan_partitions(info.document, 2)
    config = shard_config("taDOM3+", 4, "repeatable",
                          tracing=True, access_events=True)
    transport = SimTransport([config, config])
    db = ShardedDatabase(plan, transport, info,
                         protocol="taDOM3+", observability=obs)
    try:
        by_shard = {}
        for book_id in info.book_ids:
            home = plan.shard_of(info.document.element_by_id(book_id))
            by_shard.setdefault(home, book_id)
        assert set(by_shard) == {0, 1}, "need a book on each shard"
        b0, b1 = by_shard[0], by_shard[1]

        sim = Simulator()
        db.set_clock(lambda: sim.now)
        outcome = {}

        def prog(name, first, second, start):
            txn = db.begin(name, "repeatable")
            yield Delay(start)
            try:
                s1 = yield from db.nodes.get_element_by_id(txn, first)
                yield from db.nodes.rename_element(txn, s1, name + "-1")
                yield Delay(50)
                s2 = yield from db.nodes.get_element_by_id(txn, second)
                yield from db.nodes.rename_element(txn, s2, name + "-2")
            except DeadlockAbort as exc:
                db.abort(txn, reason="deadlock")
                outcome[name] = ("abort", txn.label, tuple(exc.cycle))
                return
            db.commit(txn)
            outcome[name] = ("commit", txn.label)

        sim.spawn(prog("A", b0, b1, 0.0))
        sim.spawn(prog("B", b1, b0, 10.0))
        sim.run()
        detector = db.router.detector
        return outcome, detector, list(obs.tracer.events())
    finally:
        transport.close()


@pytest.fixture(scope="module")
def cycle_run():
    return _run_cycle()


class TestCrossShardDeadlock:
    def test_deterministic_victim_aborts_and_survivor_commits(self, cycle_run):
        outcome, _detector, _events = cycle_run
        assert outcome["B"] == ("abort", "T2:B", ("T2:B", "T1:A"))
        assert outcome["A"] == ("commit", "T1:A")

    def test_detector_records_the_cross_shard_cycle(self, cycle_run):
        _outcome, detector, _events = cycle_run
        assert detector.cross_events == [(("T2:B", "T1:A"), "distinct-subtree")]
        assert detector.probes_sent > 0
        assert detector.cross_count() == 1
        assert detector.counts_by_kind().get("distinct-subtree", 0) >= 1

    def test_deadlock_event_carries_probe_provenance(self, cycle_run):
        _outcome, _detector, events = cycle_run
        detected = [e for e in events if e.kind == DEADLOCK_DETECTED]
        assert len(detected) == 1
        event = detected[0]
        assert event.txn == "T2:B"
        assert event.data["scope"] == "cross-shard"
        assert event.data["cycle"] == ["T2:B", "T1:A"]
        assert event.data["deadlock_kind"] == "distinct-subtree"
        assert event.data["probes"] >= 1

    def test_history_oracle_clears_the_surviving_schedule(self, cycle_run):
        _outcome, _detector, events = cycle_run
        report = verify_trace(events, protocol="taDOM3+", lock_depth=4)
        assert report.ok, report.summary()
        assert report.committed == 1
        assert report.accesses_checked > 0

    def test_rerun_is_identical(self, cycle_run):
        outcome, detector, _events = cycle_run
        again, detector2, _events2 = _run_cycle()
        assert again == outcome
        assert detector2.cross_events == detector.cross_events
        assert detector2.probes_sent == detector.probes_sent
