"""The transient/permanent taxonomy of shard failures.

``ShardUnavailableError`` is the single currency for "this shard cannot
answer right now": transport timeouts, dead processes, exhausted network
retries, and state lost in a restart all surface as it.  It must be
*transient* -- the TaMix retry loop restarts the transaction instead of
failing the run -- and it must survive the wire round trip typed.  The
router side turns repeated failures into a DOWN mark with probe-based
re-admission, shedding traffic locally in between.
"""

import pytest

from repro.chaos import load_schedule
from repro.errors import ReproError, ShardUnavailableError, TransientError
from repro.net import wire
from repro.shard import build_sharded_cluster, messages
from repro.shard.chaosrun import run_shard_chaos


class TestTaxonomy:
    def test_is_transient_and_typed(self):
        error = ShardUnavailableError("shard 3 crashed", shard_id=3)
        assert isinstance(error, TransientError)
        assert isinstance(error, ReproError)
        assert error.reason == "shard-unavailable"
        assert error.shard_id == 3

    def test_defaults(self):
        error = ShardUnavailableError()
        assert str(error) == "shard unavailable"
        assert error.shard_id is None

    def test_survives_the_shard_wire_typed(self):
        rebuilt = messages.rebuild_exception(
            "ShardUnavailableError", "leg lost in restart", ()
        )
        assert isinstance(rebuilt, ShardUnavailableError)
        assert isinstance(rebuilt, TransientError)
        assert rebuilt.reason == "shard-unavailable"

    def test_survives_the_client_wire_typed(self):
        frame = wire.encode_error(ShardUnavailableError("gone"))
        opcode, body = wire.decode_frame(frame)
        assert opcode == wire.OP_ERROR
        rebuilt = wire.decode_error(body)
        assert isinstance(rebuilt, ShardUnavailableError)
        assert isinstance(rebuilt, TransientError)


class TestRouterPartitionAwareness:
    @pytest.fixture
    def cluster(self):
        built = build_sharded_cluster("taDOM3+", shards=2, scale=0.02)
        yield built
        built.close()

    def test_failure_threshold_marks_down_then_probe_readmits(
        self, cluster
    ):
        router = cluster.database.router
        transport = cluster.transport
        transport.kill(0)

        # Each failed request is noted; at the threshold the shard is
        # marked DOWN with a scheduled probe point.
        for _ in range(router.failure_threshold):
            with pytest.raises(ShardUnavailableError):
                router._request(0, messages.encode_ping(0.0))
        health = router._health[0]
        assert health.down
        assert health.next_probe_at > 0.0

        # While DOWN and before the probe point, traffic is shed
        # locally -- the dead shard sees no frames at all.
        with pytest.raises(ShardUnavailableError):
            router._check_available(0)
        assert router.down_sheds == 1

        # After recovery, the next scheduled heartbeat re-admits it.
        transport.restart(0)
        probe_at = health.next_probe_at
        router.clock = lambda: probe_at + 1.0
        router._check_available(0)
        assert not health.down
        assert health.failures == 0
        router._request(0, messages.encode_ping(0.0))

    def test_failed_probe_backs_off_and_stays_down(self, cluster):
        router = cluster.database.router
        cluster.transport.kill(1)
        for _ in range(router.failure_threshold):
            with pytest.raises(ShardUnavailableError):
                router._request(1, messages.encode_ping(0.0))
        health = router._health[1]
        probe_at = health.next_probe_at
        router.clock = lambda: probe_at + 1.0
        with pytest.raises(ShardUnavailableError):
            router._check_available(1)
        assert health.down
        assert health.next_probe_at > probe_at  # rescheduled, later
        assert router.down_sheds == 1

    def test_success_resets_the_failure_count(self, cluster):
        router = cluster.database.router
        cluster.transport.kill(0)
        with pytest.raises(ShardUnavailableError):
            router._request(0, messages.encode_ping(0.0))
        assert router._health[0].failures == 1
        cluster.transport.restart(0)
        router._request(0, messages.encode_ping(0.0))
        assert router._health[0].failures == 0
        assert not router._health[0].down


class TestRunAccounting:
    def test_crash_aborts_are_typed_and_retried(self):
        report = run_shard_chaos(
            load_schedule("shard-kill"), seed=7, shards=2, scale=0.05,
            run_duration_ms=4_000.0,
        )
        assert report.ok, report.violations
        # The kill aborted at least one in-flight transaction with the
        # transient reason, and the retry loop restarted work rather
        # than failing the run.
        assert report.result.aborted_by_kind.get("shard-unavailable", 0) > 0
        assert report.restarts > 0
        assert report.committed > 0
        row_kinds = report.result.aborted_by_kind
        assert all(isinstance(kind, str) for kind in row_kinds)
