"""The consolidated front door: ``repro.__all__`` resolves, and
``repro.connect`` picks the right deployment from a URL."""

import pytest

import repro
from repro import Database
from repro.net.client import RemoteDatabase


class TestAll:
    def test_every_exported_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_no_duplicates(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_headline_names_are_exported(self):
        for name in ("Database", "RemoteDatabase", "connect", "Session",
                     "RemoteSession", "LockServer", "ServerConfig",
                     "RetryPolicy", "AdmissionPolicy", "DeadlockAbort",
                     "LockTimeout", "is_transient", "is_permanent"):
            assert name in repro.__all__


class TestConnect:
    def test_embedded_default(self):
        db = repro.connect()
        assert isinstance(db, Database)

    def test_embedded_with_protocol_path(self):
        db = repro.connect("embedded://taDOM2", root_element="bib")
        assert isinstance(db, Database)
        assert db.protocol.name == "taDOM2"

    def test_embedded_kwargs_pass_through(self):
        db = repro.connect("embedded://", protocol="Node2PL", lock_depth=2)
        assert db.protocol.name == "Node2PL"
        assert db.lock_depth == 2

    def test_tcp_builds_remote_handle_without_dialing(self):
        # the pool dials lazily, so a dead endpoint is fine to construct
        db = repro.connect("tcp://127.0.0.1:1", pool_size=1)
        assert isinstance(db, RemoteDatabase)
        db.close()

    def test_tcp_bad_port_rejected(self):
        with pytest.raises(ValueError):
            repro.connect("tcp://localhost:not-a-port")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            repro.connect("gopher://old-school")
