"""The transient/permanent error classification (repro.errors mixins)."""

import pytest

import repro
from repro.errors import (
    AdmissionRejected,
    BenchmarkError,
    ChaosError,
    DeadlockAbort,
    DocumentError,
    LockError,
    LockTimeout,
    PageOverflowError,
    PermanentError,
    PermanentStorageError,
    ReproError,
    RollbackError,
    SplidError,
    StorageError,
    TransactionAborted,
    TransientError,
    TransientStorageError,
    VocabularyError,
    is_permanent,
    is_transient,
)

TRANSIENT = [
    DeadlockAbort("victim"),
    LockTimeout("slow"),
    TransientStorageError("flaky page"),
    AdmissionRejected("shed"),
]

PERMANENT = [
    PermanentStorageError("dead page"),
    RollbackError("undo failed"),
    SplidError("bad label"),
    DocumentError("no such node"),
    VocabularyError("unknown surrogate"),
    LockError("protocol misuse"),
    ChaosError("bad schedule"),
    BenchmarkError("bad spec"),
]

UNCLASSIFIED = [
    StorageError("torn log image"),
    PageOverflowError("record too large"),
    TransactionAborted("plain abort"),
]


class TestClassification:
    @pytest.mark.parametrize("error", TRANSIENT,
                             ids=lambda e: type(e).__name__)
    def test_transient(self, error):
        assert is_transient(error)
        assert not is_permanent(error)
        assert isinstance(error, ReproError)

    @pytest.mark.parametrize("error", PERMANENT,
                             ids=lambda e: type(e).__name__)
    def test_permanent(self, error):
        assert is_permanent(error)
        assert not is_transient(error)
        assert isinstance(error, ReproError)

    @pytest.mark.parametrize("error", UNCLASSIFIED,
                             ids=lambda e: type(e).__name__)
    def test_unclassified_makes_no_promise(self, error):
        """StorageError stays neutral: the WAL torn-tail contract raises
        it where 'retry' is meaningless (see repro.verify.faults)."""
        assert not is_transient(error)
        assert not is_permanent(error)

    def test_classification_is_exclusive(self):
        """No concrete repro error carries both mixins."""

        def subclasses(cls):
            for sub in cls.__subclasses__():
                yield sub
                yield from subclasses(sub)

        for cls in subclasses(ReproError):
            assert not (issubclass(cls, TransientError)
                        and issubclass(cls, PermanentError)), cls


class TestAbortReasons:
    def test_reason_tokens(self):
        assert TransactionAborted("x").reason == "rollback"
        assert DeadlockAbort("x").reason == "deadlock"
        assert LockTimeout("x").reason == "timeout"

    def test_one_except_clause_still_catches_everything(self):
        for error in TRANSIENT + PERMANENT + UNCLASSIFIED:
            with pytest.raises(ReproError):
                raise error

    def test_mixins_exported_at_top_level(self):
        assert repro.TransientError is TransientError
        assert repro.is_transient is is_transient
        assert repro.is_permanent is is_permanent
