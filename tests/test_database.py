"""Tests for the Database facade."""

import pytest

from repro import ALL_PROTOCOLS, Database, IsolationLevel, get_protocol
from repro.core.protocol import LockProtocol
from repro.errors import UnknownProtocolError


class TestConstruction:
    def test_protocol_by_name(self):
        db = Database(protocol="URIX")
        assert db.protocol.name == "URIX"

    def test_protocol_by_instance(self):
        db = Database(protocol=get_protocol("taDOM2"))
        assert db.protocol.name == "taDOM2"

    def test_unknown_protocol(self):
        with pytest.raises(UnknownProtocolError):
            Database(protocol="taDOM9")

    def test_all_protocols_construct(self):
        for name in ALL_PROTOCOLS:
            db = Database(protocol=name)
            assert isinstance(db.protocol, LockProtocol)

    def test_default_isolation(self):
        db = Database(isolation="committed")
        txn = db.begin()
        assert txn.isolation is IsolationLevel.COMMITTED
        override = db.begin(isolation="none")
        assert override.isolation is IsolationLevel.NONE

    def test_root_element(self):
        db = Database(root_element="bib")
        assert db.document.name_of(db.document.root) == "bib"

    def test_existing_document(self):
        from repro.dom import build_document
        doc = build_document(("lib", [("shelf", [])]))
        db = Database(document=doc)
        assert db.document is doc
        assert db.document.elements_by_name("shelf")


class TestRunAndStatistics:
    def test_load_and_run(self):
        db = Database(root_element="bib")
        db.load(("book", {"id": "b1"}, [("title", ["T"])]))
        txn = db.begin()
        book, elapsed = db.run(db.nodes.get_element_by_id(txn, "b1"))
        assert book is not None
        assert elapsed > 0
        db.commit(txn)

    def test_statistics_merge_everything(self):
        db = Database(root_element="bib")
        db.load(("book", {"id": "b1"}, []))
        txn = db.begin()
        db.run(db.nodes.get_element_by_id(txn, "b1"))
        db.commit(txn)
        stats = db.statistics()
        for key in ("requests", "deadlocks", "nodes", "committed", "aborted"):
            assert key in stats
        assert stats["committed"] == 1

    def test_set_clock(self):
        db = Database()
        db.set_clock(lambda: 123.0)
        txn = db.begin()
        assert txn.start_time == 123.0

    def test_wait_timeout_plumbed(self):
        db = Database(wait_timeout_ms=42.0)
        assert db.locks.wait_timeout_ms == 42.0
        assert Database(wait_timeout_ms=None).locks.wait_timeout_ms is None

    def test_lock_depth_plumbed(self):
        db = Database(lock_depth=2)
        assert db.locks.lock_depth == 2
