"""Abort under injected undo-time faults: all-or-nothing rollback.

``TransactionManager.abort`` must either complete the rollback (retrying
transiently failing undo entries) or raise ``RollbackError`` with the
transaction still ACTIVE and its locks held -- never return with the
document half-rolled-back and unprotected.
"""

import pytest

from repro.core import get_protocol
from repro.dom import Document, build_children
from repro.errors import (
    PermanentStorageError,
    RollbackError,
    TransactionError,
    TransientStorageError,
    is_permanent,
)
from repro.locking import LockManager
from repro.txn import TransactionManager, TxnState


@pytest.fixture
def setup():
    document = Document(root_element="bib")
    build_children(document, document.root, [
        ("book", {"id": "b1"}, [("title", ["TP"])]),
    ])
    locks = LockManager(get_protocol("taDOM3+"))
    manager = TransactionManager(document, locks)
    return document, manager


def rename_with_undo(document, txn, id_value, new_name):
    element = document.element_by_id(id_value)
    old = document.rename_element(element, new_name)
    txn.log_undo("rename", (element, old))
    return element


class Flaky:
    """Wraps a bound method to fail ``failures`` times, then delegate."""

    def __init__(self, real, failures, exc_type=TransientStorageError):
        self.real = real
        self.failures = failures
        self.exc_type = exc_type
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc_type(f"injected undo fault #{self.calls}")
        return self.real(*args, **kwargs)


class TestTransientUndoFaults:
    def test_rollback_retries_through_transient_faults(self, setup,
                                                       monkeypatch):
        document, manager = setup
        txn = manager.begin()
        book = rename_with_undo(document, txn, "b1", "tome")
        flaky = Flaky(document.rename_element, failures=2)
        monkeypatch.setattr(document, "rename_element", flaky)
        manager.abort(txn)
        assert txn.state is TxnState.ABORTED
        assert document.name_of(book) == "book"      # fully rolled back
        assert flaky.calls == 3                      # 2 failures + success
        assert manager.aborted == 1

    def test_exhausted_transient_budget_raises_permanent(self, setup,
                                                         monkeypatch):
        document, manager = setup
        txn = manager.begin()
        rename_with_undo(document, txn, "b1", "tome")
        budget = TransactionManager.UNDO_RETRY_ATTEMPTS
        flaky = Flaky(document.rename_element, failures=budget)
        monkeypatch.setattr(document, "rename_element", flaky)
        with pytest.raises(RollbackError) as excinfo:
            manager.abort(txn)
        assert is_permanent(excinfo.value)
        assert flaky.calls == budget


class TestPermanentUndoFaults:
    def test_permanent_fault_never_half_rolls_back(self, setup, monkeypatch):
        """Two undo entries; the second (in undo order) hits a hard fault.
        The transaction must stay ACTIVE, keep its undo log, and a later
        abort -- once the fault clears -- must complete the rollback."""
        document, manager = setup
        txn = manager.begin()
        book = rename_with_undo(document, txn, "b1", "tome")
        title = document.elements_by_name("title")[0]
        text = next(iter(document.store.children(title)))
        old_title = document.update_string(text, "CC")
        txn.log_undo("content", (text, old_title))

        # Undo runs in reverse: "content" succeeds, then "rename" dies hard.
        flaky = Flaky(document.rename_element, failures=1,
                      exc_type=PermanentStorageError)
        monkeypatch.setattr(document, "rename_element", flaky)
        with pytest.raises(RollbackError):
            manager.abort(txn)
        assert flaky.calls == 1                      # no pointless retries
        assert txn.state is TxnState.ACTIVE          # not half-finished
        assert txn.undo_log                          # kept for a later abort
        assert manager.aborted == 0
        assert document.name_of(book) == "tome"      # damage still isolated

        # The fault clears; a second abort completes (undo is idempotent).
        monkeypatch.setattr(document, "rename_element", flaky.real)
        manager.abort(txn)
        assert txn.state is TxnState.ABORTED
        assert document.name_of(book) == "book"
        assert document.store.get(
            document.store.string_child(text)).text_content == "TP"

    def test_unknown_undo_kind_is_a_transaction_error(self, setup):
        _document, manager = setup
        txn = manager.begin()
        txn.log_undo("teleport", None)
        with pytest.raises(TransactionError):
            manager.abort(txn)
        assert txn.state is TxnState.ACTIVE
