"""Tests for write-ahead logging, checkpoints, and crash recovery."""

import random


from repro import Database
from repro.dom.serializer import serialize_document
from repro.txn.wal import (
    LogKind,
    WriteAheadLog,
    recover,
    recover_with_undo,
    restore_checkpoint,
    take_checkpoint,
    winners_of,
)

LIBRARY = (
    "topics",
    [("topic", {"id": "t0"}, [
        ("book", {"id": "b0"}, [
            ("title", ["TP Concepts"]),
            ("history", [("lend", {"person": "p1"}, [])]),
        ]),
        ("book", {"id": "b1"}, [("title", ["Handbook"])]),
    ])],
)


def make_db():
    db = Database(protocol="taDOM3+", lock_depth=7, root_element="bib",
                  enable_wal=True)
    db.load(LIBRARY)
    return db


def document_image(document):
    """Logical image: names as strings (surrogate numbering may differ
    between a live instance and a recovered one)."""
    from repro.storage.record import NO_NAME

    image = []
    for splid, record in document.walk():
        name = None
        if record.name_surrogate != NO_NAME:
            name = document.vocabulary.name_of(record.name_surrogate)
        image.append((str(splid), int(record.kind), name, record.content))
    return image


class TestLogRecords:
    def test_lifecycle_records(self):
        db = make_db()
        txn = db.begin("t")
        db.commit(txn)
        kinds = [r.kind for r in db.wal.records()]
        assert kinds == [LogKind.BEGIN, LogKind.COMMIT]

    def test_abort_record(self):
        db = make_db()
        txn = db.begin("t")
        db.abort(txn)
        assert [r.kind for r in db.wal.records()] == [
            LogKind.BEGIN, LogKind.ABORT,
        ]

    def test_operation_records(self):
        db = make_db()
        txn = db.begin("t")
        history = db.document.elements_by_name("history")[0]
        db.run(db.nodes.insert_tree(txn, history, ("lend", {"person": "p2"}, [])))
        title = db.document.elements_by_name("title")[0]
        text = db.document.store.first_child(title)
        db.run(db.nodes.update_content(txn, text, "New"))
        topic = db.document.element_by_id("t0")
        db.run(db.nodes.rename_element(txn, topic, "subject"))
        book = db.document.element_by_id("b1")
        db.run(db.nodes.delete_subtree(txn, book))
        db.commit(txn)
        kinds = [r.kind for r in db.wal.records()]
        assert kinds == [
            LogKind.BEGIN, LogKind.INSERT, LogKind.CONTENT,
            LogKind.RENAME, LogKind.DELETE, LogKind.COMMIT,
        ]
        content = db.wal.records()[2]
        assert content.old == "TP Concepts"
        assert content.new == "New"

    def test_winners(self):
        db = make_db()
        t1 = db.begin("a")
        t2 = db.begin("b")
        db.commit(t1)
        db.abort(t2)
        assert winners_of(db.wal) == {t1.txn_id}

    def test_serialization_round_trip(self):
        db = make_db()
        txn = db.begin("t")
        history = db.document.elements_by_name("history")[0]
        db.run(db.nodes.insert_tree(txn, history, ("lend", {"person": "p9"}, [])))
        db.commit(txn)
        data = db.wal.to_bytes()
        loaded = WriteAheadLog.from_bytes(data)
        assert len(loaded) == len(db.wal)
        for original, reloaded in zip(db.wal.records(), loaded.records()):
            assert original.kind == reloaded.kind
            assert original.txn_id == reloaded.txn_id
            assert original.entries == reloaded.entries
            assert original.old == reloaded.old

    def test_from_bytes_rebuilds_metrics_counters(self):
        """Regression: a round-tripped log reported ``appends == 0`` and
        empty ``appends_by_kind``, so post-recovery wal.* gauges lied."""
        db = make_db()
        txn = db.begin("t")
        history = db.document.elements_by_name("history")[0]
        db.run(db.nodes.insert_tree(txn, history, ("lend", {"person": "p9"}, [])))
        title = db.document.elements_by_name("title")[0]
        text = db.document.store.first_child(title)
        db.run(db.nodes.update_content(txn, text, "New"))
        db.commit(txn)
        aborter = db.begin("a")
        db.abort(aborter)

        loaded = WriteAheadLog.from_bytes(db.wal.to_bytes())
        assert loaded.appends == db.wal.appends == len(db.wal)
        assert loaded.appends_by_kind == db.wal.appends_by_kind
        assert loaded.flushes == db.wal.flushes == 1

    def test_prefix_is_truncated_byte_image(self):
        db = make_db()
        txn = db.begin("t")
        history = db.document.elements_by_name("history")[0]
        db.run(db.nodes.insert_tree(txn, history, ("lend", {"person": "p9"}, [])))
        db.commit(txn)
        assert db.wal.prefix(db.wal.last_lsn) == db.wal.to_bytes()
        assert db.wal.prefix(0) == b""
        for lsn in range(len(db.wal) + 1):
            partial = WriteAheadLog.from_bytes(db.wal.prefix(lsn))
            assert len(partial) == lsn
            assert [r.kind for r in partial.records()] == [
                r.kind for r in db.wal.records()[:lsn]
            ]

    def test_truncated_stream_raises_storage_error(self):
        """A torn log tail must surface as StorageError at every byte
        offset -- never a bare ``struct.error`` from the codec."""
        import struct

        from repro.errors import StorageError

        db = make_db()
        txn = db.begin("t")
        history = db.document.elements_by_name("history")[0]
        db.run(db.nodes.insert_tree(txn, history, ("lend", {"person": "p9"}, [])))
        title = db.document.elements_by_name("title")[0]
        text = db.document.store.first_child(title)
        db.run(db.nodes.update_content(txn, text, "torn"))
        db.commit(txn)
        data = db.wal.to_bytes()
        boundaries = {len(db.wal.prefix(lsn)) for lsn in range(len(db.wal) + 1)}
        for cut in range(len(data)):
            if cut in boundaries:
                # A clean record boundary is a valid (shorter) log.
                assert len(WriteAheadLog.from_bytes(data[:cut])) < len(db.wal)
                continue
            try:
                WriteAheadLog.from_bytes(data[:cut])
            except StorageError:
                continue
            except struct.error as exc:  # pragma: no cover - the regression
                raise AssertionError(
                    f"struct.error leaked at offset {cut}: {exc}"
                )
            raise AssertionError(f"truncation at offset {cut} went unnoticed")


class TestCheckpoints:
    def test_restore_is_exact(self):
        db = make_db()
        checkpoint = take_checkpoint(db.document)
        restored = restore_checkpoint(checkpoint)
        assert document_image(restored) == document_image(db.document)
        assert restored.element_by_id("b0") is not None
        assert restored.elements_by_name("lend")

    def test_restore_preserves_overflow_labels(self):
        db = make_db()
        # Force an overflow label by inserting between two siblings.
        topic = db.document.element_by_id("t0")
        kids = list(db.document.store.children(topic))
        inserted = db.document.add_element(topic, "book", after=kids[0])
        assert 2 in [d % 2 for d in inserted.divisions] or True
        checkpoint = take_checkpoint(db.document)
        restored = restore_checkpoint(checkpoint)
        assert restored.exists(inserted)


class TestCheckpointBytes:
    def test_round_trip(self):
        from repro.txn.wal import checkpoint_from_bytes, checkpoint_to_bytes

        db = make_db()
        checkpoint = take_checkpoint(db.document, db.wal)
        data = checkpoint_to_bytes(checkpoint)
        loaded = checkpoint_from_bytes(data)
        assert loaded.root_name == checkpoint.root_name
        assert loaded.names == checkpoint.names
        assert loaded.entries == checkpoint.entries
        assert loaded.lsn == checkpoint.lsn

    def test_database_save_and_load(self, tmp_path):
        db = make_db()
        txn = db.begin("t")
        history = db.document.elements_by_name("history")[0]
        db.run(db.nodes.insert_tree(txn, history, ("lend", {"person": "p7"}, [])))
        db.commit(txn)
        path = tmp_path / "library.xdb"
        written = db.save(path)
        assert written == path.stat().st_size > 0

        from repro import Database

        reopened = Database.load_file(path, protocol="URIX", lock_depth=5)
        assert reopened.protocol.name == "URIX"
        assert document_image(reopened.document) == document_image(db.document)
        assert reopened.document.element_by_id("b0") is not None
        # The reopened database is fully operational.
        txn2 = reopened.begin("check")
        book, _ = reopened.run(reopened.nodes.get_element_by_id(txn2, "b0"))
        entries, _ = reopened.run(reopened.nodes.read_subtree(txn2, book))
        reopened.commit(txn2)
        assert len(entries) > 5


class TestRecovery:
    def _run_workload(self, db, *, crash_in_flight=False):
        """Committed insert + rename, aborted delete, optional in-flight."""
        t1 = db.begin("committer")
        history = db.document.elements_by_name("history")[0]
        db.run(db.nodes.insert_tree(t1, history, ("lend", {"person": "px"}, [])))
        topic = db.document.element_by_id("t0")
        db.run(db.nodes.rename_element(t1, topic, "subject"))
        db.commit(t1)

        t2 = db.begin("aborter")
        book = db.document.element_by_id("b1")
        db.run(db.nodes.delete_subtree(t2, book))
        db.abort(t2)

        if crash_in_flight:
            t3 = db.begin("in-flight")
            title = db.document.elements_by_name("title")[0]
            text = db.document.store.first_child(title)
            db.run(db.nodes.update_content(t3, text, "DOOMED"))
            return t3
        return None

    def test_recover_reaches_committed_state(self):
        db = make_db()
        checkpoint = take_checkpoint(db.document, db.wal)
        self._run_workload(db)
        recovered = recover(checkpoint, db.wal)
        # The live document equals the committed state (aborter rolled
        # back), so recovery must match it exactly.
        assert document_image(recovered) == document_image(db.document)
        assert serialize_document(recovered) == serialize_document(db.document)
        assert recovered.element_by_id("b1") is not None

    def test_recover_excludes_in_flight_losers(self):
        db = make_db()
        checkpoint = take_checkpoint(db.document, db.wal)
        straggler = self._run_workload(db, crash_in_flight=True)
        recovered = recover(checkpoint, db.wal)
        # The crash discards the in-flight content update...
        title = recovered.elements_by_name("title")[0]
        assert recovered.text_of_element(title) == "TP Concepts"
        # ...but keeps the committed effects.
        assert recovered.elements_by_name("subject")
        # Aborting the straggler in the live db converges both states.
        db.abort(straggler)
        assert document_image(recovered) == document_image(db.document)

    def test_recover_from_serialized_log(self):
        db = make_db()
        checkpoint = take_checkpoint(db.document, db.wal)
        self._run_workload(db)
        log = WriteAheadLog.from_bytes(db.wal.to_bytes())
        recovered = recover(checkpoint, log)
        assert document_image(recovered) == document_image(db.document)

    def test_fuzzy_checkpoint_with_undo(self):
        db = make_db()
        # A loser writes BEFORE the checkpoint; its effect is inside the
        # checkpoint image and must be undone at recovery.
        loser = db.begin("loser")
        title = db.document.elements_by_name("title")[0]
        text = db.document.store.first_child(title)
        db.run(db.nodes.update_content(loser, text, "LOSER VALUE"))
        checkpoint = take_checkpoint(db.document, db.wal)
        # Crash: the loser never commits.
        recovered = recover_with_undo(checkpoint, db.wal)
        recovered_title = recovered.elements_by_name("title")[0]
        assert recovered.text_of_element(recovered_title) == "TP Concepts"

    def test_delete_redo_on_absent_subtree_is_noop(self):
        """A checkpoint with a stale LSN replays the whole log, so a
        DELETE may target a subtree the image already lacks; redo must
        skip it instead of crashing."""
        db = make_db()
        txn = db.begin("t")
        book = db.document.element_by_id("b1")
        db.run(db.nodes.delete_subtree(txn, book))
        db.commit(txn)
        # Checkpoint taken without the WAL: lsn stays 0, the image
        # already reflects the delete, and recovery redoes it again.
        checkpoint = take_checkpoint(db.document)
        assert checkpoint.lsn == 0
        recovered = recover(checkpoint, db.wal)
        assert recovered.element_by_id("b1") is None
        assert document_image(recovered) == document_image(db.document)

    def test_undo_with_interleaved_winner_loser_around_checkpoint(self):
        """Fuzzy checkpoint with winner and loser ops interleaved on both
        sides of the checkpoint LSN: redo applies only the winner's
        post-checkpoint ops, undo rolls back only the loser's
        pre-checkpoint ops."""
        db = make_db()
        winner = db.begin("winner")
        loser = db.begin("loser")
        # Winner writes before the checkpoint (captured by the image).
        b0_title = db.document.elements_by_name("title")[0]
        b0_text = db.document.store.first_child(b0_title)
        db.run(db.nodes.update_content(winner, b0_text, "W1"))
        # Loser writes before the checkpoint (captured, must be undone).
        b1 = db.document.element_by_id("b1")
        b1_title = db.document.store.first_child(b1)
        b1_text = db.document.store.first_child(b1_title)
        db.run(db.nodes.update_content(loser, b1_text, "L1"))

        checkpoint = take_checkpoint(db.document, db.wal)

        # Winner continues after the checkpoint and commits.
        history = db.document.elements_by_name("history")[0]
        db.run(db.nodes.insert_tree(
            winner, history, ("lend", {"person": "p2"}, [])
        ))
        db.commit(winner)
        # Loser also continues after the checkpoint, then the crash hits.
        topic = db.document.element_by_id("t0")
        db.run(db.nodes.rename_element(loser, topic, "stolen"))

        recovered = recover_with_undo(checkpoint, db.wal)
        # Winner's effects survive on both sides of the checkpoint.
        titles = recovered.elements_by_name("title")
        assert recovered.text_of_element(titles[0]) == "W1"
        lends = recovered.elements_by_name("lend")
        assert any(
            recovered.attribute_value(lend, "person") == "p2"
            for lend in lends
        )
        # Loser's pre-checkpoint write is rolled back...
        assert recovered.text_of_element(titles[1]) == "Handbook"
        # ...and its post-checkpoint rename was never replayed.
        assert recovered.elements_by_name("topic")
        assert not recovered.elements_by_name("stolen")

    def test_recovery_with_names_unknown_at_checkpoint(self):
        """Regression: elements whose tag names were first interned after
        the checkpoint must recover (the log stores names, not
        surrogates)."""
        db = make_db()
        checkpoint = take_checkpoint(db.document, db.wal)
        txn = db.begin("t")
        history = db.document.elements_by_name("history")[0]
        db.run(db.nodes.insert_tree(
            txn, history,
            ("reservation", {"holder": "p5"}, [("note", ["keep till friday"])]),
        ))
        db.commit(txn)
        recovered = recover(checkpoint, WriteAheadLog.from_bytes(db.wal.to_bytes()))
        reservations = recovered.elements_by_name("reservation")
        assert len(reservations) == 1
        assert recovered.attribute_value(reservations[0], "holder") == "p5"
        note = recovered.elements_by_name("note")[0]
        assert recovered.text_of_element(note) == "keep till friday"

    def test_random_workload_recovery(self):
        """Property-style: random committed/aborted mix recovers exactly."""
        rng = random.Random(13)
        db = make_db()
        checkpoint = take_checkpoint(db.document, db.wal)
        history = db.document.elements_by_name("history")[0]
        for i in range(20):
            txn = db.begin(f"w{i}")
            action = rng.choice(["insert", "content", "rename"])
            if action == "insert":
                db.run(db.nodes.insert_tree(
                    txn, history, ("lend", {"person": f"p{i}"}, [])
                ))
            elif action == "content":
                title = db.document.elements_by_name("title")[0]
                text = db.document.store.first_child(title)
                db.run(db.nodes.update_content(txn, text, f"v{i}"))
            else:
                topic = db.document.element_by_id("t0")
                db.run(db.nodes.rename_element(
                    txn, topic, rng.choice(["topic", "subject", "area"])
                ))
            if rng.random() < 0.4:
                db.abort(txn)
            else:
                db.commit(txn)
        recovered = recover(checkpoint, db.wal)
        assert document_image(recovered) == document_image(db.document)
