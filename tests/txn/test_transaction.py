"""Unit tests for transactions and the transaction manager."""

import pytest

from repro.core import get_protocol
from repro.dom import Document, build_children
from repro.errors import TransactionError
from repro.locking import IsolationLevel, LockManager
from repro.txn import Transaction, TransactionManager, TxnState


@pytest.fixture
def setup():
    document = Document(root_element="bib")
    build_children(document, document.root, [
        ("book", {"id": "b1"}, [("title", ["TP"])]),
    ])
    locks = LockManager(get_protocol("taDOM3+"))
    manager = TransactionManager(document, locks)
    return document, locks, manager


class TestLifecycle:
    def test_begin_assigns_unique_ids(self, setup):
        _doc, _locks, manager = setup
        t1 = manager.begin("a")
        t2 = manager.begin("b")
        assert t1.txn_id != t2.txn_id
        assert t1.is_active and t2.is_active
        assert manager.active_count == 2

    def test_commit(self, setup):
        _doc, _locks, manager = setup
        txn = manager.begin()
        manager.commit(txn)
        assert txn.state is TxnState.COMMITTED
        assert manager.committed == 1
        assert manager.active_count == 0
        assert txn.duration is not None

    def test_commit_twice_rejected(self, setup):
        _doc, _locks, manager = setup
        txn = manager.begin()
        manager.commit(txn)
        with pytest.raises(TransactionError):
            manager.commit(txn)

    def test_abort_is_idempotent(self, setup):
        _doc, _locks, manager = setup
        txn = manager.begin()
        manager.abort(txn)
        manager.abort(txn)  # no error
        assert manager.aborted == 1

    def test_abort_after_commit_rejected(self, setup):
        _doc, _locks, manager = setup
        txn = manager.begin()
        manager.commit(txn)
        with pytest.raises(TransactionError):
            manager.abort(txn)

    def test_isolation_parsing(self, setup):
        _doc, _locks, manager = setup
        txn = manager.begin(isolation="committed")
        assert txn.isolation is IsolationLevel.COMMITTED

    def test_require_active(self):
        txn = Transaction()
        txn.require_active()
        txn.state = TxnState.ABORTED
        with pytest.raises(TransactionError):
            txn.require_active()

    def test_clock_binding(self, setup):
        document, locks, _m = setup
        times = iter([10.0, 250.0])
        manager = TransactionManager(document, locks, clock=lambda: next(times))
        txn = manager.begin()
        manager.commit(txn)
        assert txn.start_time == 10.0
        assert txn.duration == 240.0


class TestRollback:
    def test_undo_insert(self, setup):
        document, _locks, manager = setup
        txn = manager.begin()
        new = document.add_element(document.root, "person")
        txn.log_undo("insert", new)
        manager.abort(txn)
        assert not document.exists(new)

    def test_undo_delete(self, setup):
        document, _locks, manager = setup
        book = document.element_by_id("b1")
        txn = manager.begin()
        removed = document.delete_subtree(book)
        txn.log_undo("delete", removed)
        manager.abort(txn)
        assert document.exists(book)
        assert document.element_by_id("b1") == book

    def test_undo_content_and_rename(self, setup):
        document, _locks, manager = setup
        title = document.elements_by_name("title")[0]
        text = document.store.first_child(title)
        txn = manager.begin()
        old = document.update_string(text, "changed")
        txn.log_undo("content", (text, old))
        old_name = document.rename_element(title, "heading")
        txn.log_undo("rename", (title, old_name))
        manager.abort(txn)
        assert document.string_value(text) == "TP"
        assert document.name_of(title) == "title"

    def test_undo_applied_in_reverse_order(self, setup):
        document, _locks, manager = setup
        title = document.elements_by_name("title")[0]
        text = document.store.first_child(title)
        txn = manager.begin()
        first = document.update_string(text, "v1")
        txn.log_undo("content", (text, first))
        second = document.update_string(text, "v2")
        txn.log_undo("content", (text, second))
        manager.abort(txn)
        assert document.string_value(text) == "TP"

    def test_unknown_undo_kind(self, setup):
        _document, _locks, manager = setup
        txn = manager.begin()
        txn.log_undo("bogus", None)
        with pytest.raises(TransactionError):
            manager.abort(txn)

    def test_commit_releases_locks(self, setup):
        document, locks, manager = setup
        txn = manager.begin()
        locks.table.request(txn, "node", document.root, "SR")
        manager.commit(txn)
        assert locks.table.lock_count() == 0
