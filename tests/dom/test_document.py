"""Unit tests for the raw taDOM document operations."""

import pytest

from repro.errors import DocumentError, NodeNotFound
from repro.dom import Document
from repro.storage.record import NodeKind


@pytest.fixture
def doc():
    return Document(name="lib", root_element="bib")


class TestCreation:
    def test_root_exists(self, doc):
        assert doc.exists(doc.root)
        assert doc.name_of(doc.root) == "bib"
        assert doc.elements_by_name("bib") == [doc.root]

    def test_add_element(self, doc):
        book = doc.add_element(doc.root, "book")
        assert doc.kind(book) is NodeKind.ELEMENT
        assert doc.name_of(book) == "book"
        assert book.parent == doc.root
        assert doc.elements_by_name("book") == [book]

    def test_add_text_creates_string_node(self, doc):
        title = doc.add_element(doc.root, "title")
        text = doc.add_text(title, "TP: Concepts and Techniques")
        assert doc.kind(text) is NodeKind.TEXT
        assert doc.string_value(text) == "TP: Concepts and Techniques"
        assert doc.text_of_element(title) == "TP: Concepts and Techniques"

    def test_add_element_positions(self, doc):
        b = doc.add_element(doc.root, "b")
        d = doc.add_element(doc.root, "d")
        a = doc.add_element(doc.root, "a", before=b)
        c = doc.add_element(doc.root, "c", after=b)
        kids = [doc.name_of(k) for k in doc.store.children(doc.root)]
        assert kids == ["a", "b", "c", "d"]
        assert a < b < c < d

    def test_before_and_after_conflict(self, doc):
        child = doc.add_element(doc.root, "x")
        with pytest.raises(DocumentError):
            doc.add_element(doc.root, "y", before=child, after=child)

    def test_add_to_text_rejected(self, doc):
        text = doc.add_text(doc.root, "data")
        with pytest.raises(DocumentError):
            doc.add_element(text, "nested")


class TestAttributes:
    def test_set_and_read(self, doc):
        book = doc.add_element(doc.root, "book")
        doc.set_attribute(book, "year", "1993")
        doc.set_attribute(book, "lang", "en")
        assert doc.attribute_value(book, "year") == "1993"
        assert doc.attributes_of(book) == {"year": "1993", "lang": "en"}

    def test_update_existing_attribute(self, doc):
        book = doc.add_element(doc.root, "book")
        first = doc.set_attribute(book, "year", "1993")
        second = doc.set_attribute(book, "year", "2006")
        assert first == second
        assert doc.attribute_value(book, "year") == "2006"

    def test_id_attribute_feeds_index(self, doc):
        book = doc.add_element(doc.root, "book")
        doc.set_attribute(book, "id", "b42")
        assert doc.element_by_id("b42") == book

    def test_id_update_moves_index(self, doc):
        book = doc.add_element(doc.root, "book")
        doc.set_attribute(book, "id", "b1")
        doc.set_attribute(book, "id", "b2")
        assert doc.element_by_id("b1") is None
        assert doc.element_by_id("b2") == book

    def test_missing_attribute(self, doc):
        book = doc.add_element(doc.root, "book")
        assert doc.attribute_value(book, "year") is None


class TestContentUpdates:
    def test_update_string_returns_old(self, doc):
        text = doc.add_text(doc.root, "old")
        assert doc.update_string(text, "new") == "old"
        assert doc.string_value(text) == "new"

    def test_update_string_requires_string_node(self, doc):
        el = doc.add_element(doc.root, "el")
        with pytest.raises(DocumentError):
            doc.update_string(el, "x")

    def test_rename_element(self, doc):
        topic = doc.add_element(doc.root, "topic")
        old = doc.rename_element(topic, "subject")
        assert old == "topic"
        assert doc.name_of(topic) == "subject"
        assert doc.elements_by_name("topic") == []
        assert doc.elements_by_name("subject") == [topic]

    def test_rename_non_element_rejected(self, doc):
        text = doc.add_text(doc.root, "data")
        with pytest.raises(DocumentError):
            doc.rename_element(text, "x")


class TestDeletion:
    def _build_book(self, doc):
        book = doc.add_element(doc.root, "book")
        doc.set_attribute(book, "id", "b9")
        title = doc.add_element(book, "title")
        doc.add_text(title, "The Benchmark Handbook")
        return book

    def test_delete_subtree(self, doc):
        book = self._build_book(doc)
        before = len(doc)
        removed = doc.delete_subtree(book)
        # book + attr root + attr + string + title + text + string = 7
        assert len(removed) == 7
        assert len(doc) == before - 7
        assert not doc.exists(book)
        assert doc.element_by_id("b9") is None
        assert doc.elements_by_name("title") == []

    def test_delete_root_rejected(self, doc):
        with pytest.raises(DocumentError):
            doc.delete_subtree(doc.root)

    def test_delete_missing_raises(self, doc):
        book = self._build_book(doc)
        doc.delete_subtree(book)
        with pytest.raises(NodeNotFound):
            doc.delete_subtree(book)

    def test_restore_subtree_is_exact_undo(self, doc):
        book = self._build_book(doc)
        snapshot = sorted(str(s) for s, _r in doc.walk())
        removed = doc.delete_subtree(book)
        doc.restore_subtree(removed)
        assert sorted(str(s) for s, _r in doc.walk()) == snapshot
        assert doc.element_by_id("b9") == book
        assert doc.elements_by_name("title") != []


class TestStatistics:
    def test_statistics_keys(self, doc):
        for i in range(50):
            el = doc.add_element(doc.root, "person")
            doc.set_attribute(el, "id", f"p{i}")
        stats = doc.statistics()
        assert stats["nodes"] == len(doc)
        assert stats["indexed_ids"] == 50
        assert stats["vocabulary_names"] >= 2
        assert 0 < stats["document_occupancy"] <= 1
