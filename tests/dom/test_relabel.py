"""Tests for subtree relabeling (SPLID maintenance, Section 3.2)."""

import pytest

from repro.dom import Document, build_children, serialize_document


@pytest.fixture
def doc():
    document = Document(root_element="bib")
    build_children(document, document.root, [
        ("topic", {"id": "t0"}, [
            ("book", {"id": "b0"}, [("title", ["One"])]),
            ("book", {"id": "b1"}, [("title", ["Two"])]),
        ]),
        ("topic", {"id": "t1"}, [
            ("book", {"id": "b2"}, [("title", ["Three"])]),
        ]),
    ])
    return document


def bloat_labels(doc, parent, rounds=10):
    """Create long overflow labels by repeated front insertions."""
    first = doc.store.first_child(parent)
    for i in range(rounds):
        first = doc.add_element(parent, "filler", before=first)
    return first


class TestRelabel:
    def test_order_and_content_preserved(self, doc):
        topic = doc.element_by_id("t0")
        bloat_labels(doc, topic)
        before = serialize_document(doc)
        doc.relabel_subtree(topic)
        assert serialize_document(doc) == before

    def test_labels_become_compact(self, doc):
        topic = doc.element_by_id("t0")
        deepest = bloat_labels(doc, topic, rounds=14)
        worst_before = max(
            len(s.divisions) for s in doc.store.subtree_labels(topic)
        )
        doc.relabel_subtree(topic)
        worst_after = max(
            len(s.divisions) for s in doc.store.subtree_labels(topic)
        )
        assert worst_after < worst_before

    def test_only_the_subtree_is_affected(self, doc):
        topic0 = doc.element_by_id("t0")
        outside_before = [
            s for s, _r in doc.walk()
            if not s.is_self_or_descendant_of(topic0)
        ]
        bloat_labels(doc, topic0)
        doc.relabel_subtree(topic0)
        outside_after = [
            s for s, _r in doc.walk()
            if not s.is_self_or_descendant_of(topic0)
        ]
        assert outside_after == outside_before

    def test_root_label_unchanged(self, doc):
        topic = doc.element_by_id("t0")
        mapping = doc.relabel_subtree(topic)
        assert mapping[topic] == topic

    def test_mapping_covers_every_node(self, doc):
        topic = doc.element_by_id("t0")
        before = set(doc.store.subtree_labels(topic))
        mapping = doc.relabel_subtree(topic)
        assert set(mapping) == before
        assert set(doc.store.subtree_labels(topic)) == set(mapping.values())

    def test_indexes_follow_the_relabeling(self, doc):
        topic = doc.element_by_id("t0")
        bloat_labels(doc, topic)
        mapping = doc.relabel_subtree(topic)
        b0 = doc.element_by_id("b0")
        assert b0 is not None
        assert doc.name_of(b0) == "book"
        assert b0 in set(mapping.values())
        # Element index finds exactly the relabeled books.
        books = doc.elements_by_name("book")
        assert len(books) == 3
        assert all(doc.exists(b) for b in books)

    def test_document_order_is_stable(self, doc):
        topic = doc.element_by_id("t0")
        names_before = [
            doc.name_of(s) for s in doc.store.subtree_labels(topic)
            if doc.node(s).kind.name == "ELEMENT"
        ]
        bloated = bloat_labels(doc, topic)
        doc.relabel_subtree(topic)
        labels = list(doc.store.subtree_labels(topic))
        assert labels == sorted(labels)

    def test_meta_children_keep_division_one(self, doc):
        topic = doc.element_by_id("t0")
        doc.relabel_subtree(topic)
        for splid, record in doc.store.subtree(topic):
            if record.kind.name in ("ATTRIBUTE_ROOT", "STRING"):
                assert splid.divisions[-1] == 1
