"""Unit tests for the lock-guarded node manager (single-user driving)."""

import pytest

from repro import Database
from repro.core.protocol import Access
from repro.storage.record import NodeKind

LIBRARY = (
    "topics",
    [
        ("topic", {"id": "t0"}, [
            ("book", {"id": "b0", "year": "1993"}, [
                ("title", ["Transaction Processing"]),
                ("author", ["Gray"]),
                ("history", [
                    ("lend", {"person": "p1", "return": "2006-01-01"}, []),
                    ("lend", {"person": "p2", "return": "2006-02-01"}, []),
                ]),
            ]),
            ("book", {"id": "b1"}, [("title", ["XML Storage"])]),
        ]),
    ],
)


@pytest.fixture(params=["taDOM3+", "URIX", "Node2PL", "OO2PL"])
def db(request):
    database = Database(protocol=request.param, lock_depth=7,
                        root_element="bib")
    database.load(LIBRARY)
    return database


@pytest.fixture
def tadom_db():
    database = Database(protocol="taDOM3+", lock_depth=7, root_element="bib")
    database.load(LIBRARY)
    return database


class TestJumpsAndNavigation:
    def test_get_element_by_id(self, db):
        txn = db.begin()
        book, ms = db.run(db.nodes.get_element_by_id(txn, "b0"))
        assert db.document.name_of(book) == "book"
        assert ms > 0
        db.commit(txn)

    def test_get_element_by_id_missing(self, db):
        txn = db.begin()
        result, _ = db.run(db.nodes.get_element_by_id(txn, "nope"))
        assert result is None
        db.commit(txn)

    def test_navigation_chain(self, db):
        txn = db.begin()
        book, _ = db.run(db.nodes.get_element_by_id(txn, "b0"))
        first, _ = db.run(db.nodes.get_first_child(txn, book))
        assert db.document.name_of(first) == "title"
        sibling, _ = db.run(db.nodes.get_next_sibling(txn, first))
        assert db.document.name_of(sibling) == "author"
        back, _ = db.run(db.nodes.get_previous_sibling(txn, sibling))
        assert back == first
        last, _ = db.run(db.nodes.get_last_child(txn, book))
        assert db.document.name_of(last) == "history"
        parent, _ = db.run(db.nodes.get_parent(txn, first))
        assert parent == book
        db.commit(txn)

    def test_get_child_nodes(self, db):
        txn = db.begin()
        book, _ = db.run(db.nodes.get_element_by_id(txn, "b0"))
        children, _ = db.run(db.nodes.get_child_nodes(txn, book))
        assert [db.document.name_of(c) for c in children] == [
            "title", "author", "history",
        ]
        db.commit(txn)

    def test_get_attributes_and_value(self, db):
        txn = db.begin()
        book, _ = db.run(db.nodes.get_element_by_id(txn, "b0"))
        attrs, _ = db.run(db.nodes.get_attributes(txn, book))
        assert len(attrs) == 2
        year, _ = db.run(db.nodes.get_attribute_value(txn, book, "year"))
        assert year == "1993"
        missing, _ = db.run(db.nodes.get_attribute_value(txn, book, "isbn"))
        assert missing is None
        db.commit(txn)

    def test_read_subtree(self, db):
        txn = db.begin()
        book, _ = db.run(db.nodes.get_element_by_id(txn, "b0"))
        entries, _ = db.run(db.nodes.read_subtree(txn, book))
        kinds = {record.kind for _s, record in entries}
        assert NodeKind.ELEMENT in kinds
        assert NodeKind.STRING in kinds
        assert entries[0][0] == book
        db.commit(txn)

    def test_read_content(self, db):
        txn = db.begin()
        title = db.document.elements_by_name("title")[0]
        text = db.document.store.first_child(title)
        value, _ = db.run(db.nodes.read_content(txn, text))
        assert value == "Transaction Processing"
        db.commit(txn)


class TestUpdates:
    def test_update_content(self, db):
        txn = db.begin()
        title = db.document.elements_by_name("title")[0]
        text = db.document.store.first_child(title)
        old, _ = db.run(db.nodes.update_content(txn, text, "New Title"))
        assert old == "Transaction Processing"
        db.commit(txn)
        assert db.document.string_value(text) == "New Title"

    def test_rename(self, db):
        txn = db.begin()
        topic = db.document.element_by_id("t0")
        old, _ = db.run(db.nodes.rename_element(txn, topic, "subject"))
        assert old == "topic"
        db.commit(txn)
        assert db.document.name_of(topic) == "subject"

    def test_insert_tree_appends(self, db):
        txn = db.begin()
        history = db.document.elements_by_name("history")[0]
        before = list(db.document.store.children(history))
        new, _ = db.run(db.nodes.insert_tree(
            txn, history, ("lend", {"person": "p9"}, [])
        ))
        db.commit(txn)
        after = list(db.document.store.children(history))
        assert after == before + [new]
        assert db.document.attribute_value(new, "person") == "p9"

    def test_delete_subtree(self, db):
        txn = db.begin()
        book, _ = db.run(db.nodes.get_element_by_id(txn, "b0"))
        count, _ = db.run(db.nodes.delete_subtree(txn, book, access=Access.JUMP))
        assert count > 10
        db.commit(txn)
        assert not db.document.exists(book)
        assert db.document.element_by_id("b0") is None

    def test_delete_missing_is_noop(self, db):
        txn = db.begin()
        book, _ = db.run(db.nodes.get_element_by_id(txn, "b0"))
        db.run(db.nodes.delete_subtree(txn, book))
        count, _ = db.run(db.nodes.delete_subtree(txn, book))
        assert count == 0
        db.commit(txn)

    def test_abort_undoes_everything(self, db):
        snapshot = sorted(str(s) for s, _r in db.document.walk())
        txn = db.begin()
        history = db.document.elements_by_name("history")[0]
        db.run(db.nodes.insert_tree(txn, history, ("lend", {"person": "px"}, [])))
        title = db.document.elements_by_name("title")[0]
        text = db.document.store.first_child(title)
        db.run(db.nodes.update_content(txn, text, "garbage"))
        topic = db.document.element_by_id("t0")
        db.run(db.nodes.rename_element(txn, topic, "oops"))
        book, _ = db.run(db.nodes.get_element_by_id(txn, "b1"))
        db.run(db.nodes.delete_subtree(txn, book))
        db.abort(txn)
        assert sorted(str(s) for s, _r in db.document.walk()) == snapshot
        assert db.document.name_of(topic) == "topic"
        assert db.document.string_value(text) == "Transaction Processing"


class TestStatsAndCosts:
    def test_operations_counted(self, tadom_db):
        db = tadom_db
        txn = db.begin()
        book, _ = db.run(db.nodes.get_element_by_id(txn, "b0"))
        db.run(db.nodes.read_subtree(txn, book))
        assert txn.stats.operations == 2
        assert txn.stats.lock_requests > 0
        assert txn.stats.nodes_visited > 10
        db.commit(txn)

    def test_subtree_lock_covers_rereads(self, tadom_db):
        db = tadom_db
        txn = db.begin()
        book, _ = db.run(db.nodes.get_element_by_id(txn, "b0"))
        db.run(db.nodes.read_subtree(txn, book))
        before = txn.stats.lock_requests
        # Reading inside the SR-covered subtree needs no new locks.
        title = db.document.elements_by_name("title")[0]
        db.run(db.nodes.get_first_child(txn, title))
        assert txn.stats.lock_requests == before
        assert txn.stats.covered_skips > 0
        db.commit(txn)

    def test_committed_isolation_releases_read_locks(self, tadom_db):
        db = tadom_db
        txn = db.begin("r", "committed")
        book, _ = db.run(db.nodes.get_element_by_id(txn, "b0"))
        db.run(db.nodes.read_subtree(txn, book))
        # All read locks are gone at the end of the operation.
        assert db.locks.table.lock_count() == 0
        db.commit(txn)

    def test_star2pl_visits_more(self):
        def locks_used(protocol):
            database = Database(protocol=protocol, lock_depth=7,
                                root_element="bib")
            database.load(LIBRARY)
            txn = database.begin()
            book, _ = database.run(database.nodes.get_element_by_id(txn, "b0"))
            database.run(database.nodes.read_subtree(txn, book))
            database.commit(txn)
            return txn.stats.lock_requests

        assert locks_used("Node2PL") > locks_used("taDOM3+")
