"""Tests for the SAX-style streaming interface."""

import pytest

from repro import Database
from repro.dom.streaming import (
    CHARACTERS,
    END_ELEMENT,
    START_ELEMENT,
    StreamReader,
    collect_events,
)
from repro.dom.parser import parse_document
from repro.dom.serializer import serialize_document
from repro.sched import Delay, Simulator

LIBRARY = (
    "topics",
    [("topic", {"id": "t0"}, [
        ("book", {"id": "b0", "year": "1993"}, [
            ("title", ["TP Concepts"]),
            ("history", [("lend", {"person": "p1"}, [])]),
        ]),
    ])],
)


@pytest.fixture
def db():
    database = Database(protocol="taDOM3+", lock_depth=7, root_element="bib")
    database.load(LIBRARY)
    return database


class TestEventStream:
    def test_whole_document(self, db):
        txn = db.begin()
        events = collect_events(db, txn)
        db.commit(txn)
        assert events[0] == (START_ELEMENT, "bib", {})
        assert events[-1] == (END_ELEMENT, "bib")
        starts = [e[1] for e in events if e[0] == START_ELEMENT]
        ends = [e[1] for e in events if e[0] == END_ELEMENT]
        assert sorted(starts) == sorted(ends)

    def test_fragment_stream(self, db):
        book = db.document.element_by_id("b0")
        txn = db.begin()
        events = collect_events(db, txn, book)
        db.commit(txn)
        assert events[0] == (START_ELEMENT, "book", {"id": "b0", "year": "1993"})
        assert (CHARACTERS, "TP Concepts") in events
        assert events[-1] == (END_ELEMENT, "book")

    def test_nesting_is_well_formed(self, db):
        txn = db.begin()
        events = collect_events(db, txn)
        db.commit(txn)
        stack = []
        for event in events:
            if event[0] == START_ELEMENT:
                stack.append(event[1])
            elif event[0] == END_ELEMENT:
                assert stack and stack[-1] == event[1]
                stack.pop()
        assert stack == []

    def test_attributes_delivered_on_start(self, db):
        book = db.document.element_by_id("b0")
        txn = db.begin()
        events = collect_events(db, txn, book)
        db.commit(txn)
        lend_start = next(e for e in events
                          if e[0] == START_ELEMENT and e[1] == "lend")
        assert lend_start[2] == {"person": "p1"}

    def test_stream_round_trips_through_serializer(self, db):
        """Events rebuilt into XML parse back to the same document."""
        txn = db.begin()
        events = collect_events(db, txn)
        db.commit(txn)
        pieces = []
        for event in events:
            if event[0] == START_ELEMENT:
                attrs = "".join(f' {k}="{v}"' for k, v in event[2].items())
                pieces.append(f"<{event[1]}{attrs}>")
            elif event[0] == CHARACTERS:
                pieces.append(event[1])
            else:
                pieces.append(f"</{event[1]}>")
        rebuilt = parse_document("".join(pieces))
        assert serialize_document(rebuilt) == serialize_document(db.document)

    def test_stream_takes_subtree_lock(self, db):
        txn = db.begin()
        book = db.document.element_by_id("b0")
        collect_events(db, txn, book)
        assert txn.stats.lock_requests > 0
        assert db.locks.table.lock_count() > 0
        db.commit(txn)

    def test_stream_is_isolated_from_writers(self, db):
        """A concurrent delete waits for the stream's transaction."""
        book = db.document.element_by_id("b0")
        order = []
        sim = Simulator()
        db.set_clock(lambda: sim.now)
        reader = StreamReader(db.nodes)

        def streamer():
            txn = db.begin("stream")
            events = []
            yield from reader.events(txn, book, handler=events.append)
            order.append(("streamed", len(events)))
            yield Delay(100.0)
            db.commit(txn)

        def deleter():
            txn = db.begin("delete")
            yield Delay(10.0)
            yield from db.nodes.delete_subtree(txn, book)
            db.commit(txn)
            order.append(("deleted",))

        sim.spawn(streamer())
        sim.spawn(deleter())
        sim.run()
        assert order[0][0] == "streamed"
        assert order[1] == ("deleted",)
