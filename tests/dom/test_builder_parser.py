"""Tests for the builder, the XML parser, and the serializer."""

import pytest

from repro.errors import DocumentError
from repro.dom import (
    build_document,
    parse_document,
    parse_spec,
    serialize_document,
    serialize_subtree,
)

LIBRARY_SPEC = (
    "bib",
    [
        ("persons", [
            ("person", {"id": "p1"}, [("name", ["Gray"])]),
            ("person", {"id": "p2"}, [("name", ["Reuter"])]),
        ]),
        ("topics", [
            ("topic", {"id": "t1"}, [
                ("book", {"id": "b1", "year": "1993"}, [
                    ("title", ["Transaction Processing"]),
                    ("author", ["Gray & Reuter"]),
                ]),
            ]),
        ]),
    ],
)


class TestBuilder:
    def test_build_document(self):
        doc = build_document(LIBRARY_SPEC)
        assert doc.name_of(doc.root) == "bib"
        assert len(doc.elements_by_name("person")) == 2
        assert doc.element_by_id("b1") is not None
        book = doc.element_by_id("b1")
        assert doc.attribute_value(book, "year") == "1993"

    def test_text_content(self):
        doc = build_document(LIBRARY_SPEC)
        title = doc.elements_by_name("title")[0]
        assert doc.text_of_element(title) == "Transaction Processing"

    def test_rejects_text_root(self):
        with pytest.raises(DocumentError):
            build_document("just text")

    def test_rejects_malformed_spec(self):
        with pytest.raises(DocumentError):
            build_document((42, []))
        with pytest.raises(DocumentError):
            build_document(("ok", [("child", 99)]))


class TestParser:
    def test_simple_document(self):
        doc = parse_document(
            '<bib><book id="b1" year="1993">'
            "<title>TP &amp; Recovery</title></book></bib>"
        )
        book = doc.element_by_id("b1")
        assert doc.attribute_value(book, "year") == "1993"
        title = doc.elements_by_name("title")[0]
        assert doc.text_of_element(title) == "TP & Recovery"

    def test_self_closing_and_comments(self):
        spec = parse_spec(
            "<?xml version='1.0'?><!-- header --><a><b/><!-- mid --><c/></a>"
        )
        assert spec[0] == "a"
        assert [child[0] for child in spec[2]] == ["b", "c"]

    def test_cdata(self):
        doc = parse_document("<a><![CDATA[<raw> & data]]></a>")
        assert doc.text_of_element(doc.root) == "<raw> & data"

    def test_single_quotes_and_entities(self):
        spec = parse_spec("<a title='O&apos;Neil'/>")
        assert spec[1]["title"] == "O'Neil"

    def test_mismatched_tags(self):
        with pytest.raises(DocumentError):
            parse_spec("<a><b></a></b>")

    def test_unclosed(self):
        with pytest.raises(DocumentError):
            parse_spec("<a><b></b>")

    def test_multiple_roots(self):
        with pytest.raises(DocumentError):
            parse_spec("<a/><b/>")

    def test_no_root(self):
        with pytest.raises(DocumentError):
            parse_spec("   just text   ")


class TestSerializer:
    def test_round_trip(self):
        doc = build_document(LIBRARY_SPEC)
        text = serialize_document(doc)
        doc2 = parse_document(text)
        assert serialize_document(doc2) == text

    def test_escaping(self):
        doc = parse_document('<a note="x&quot;y">a &lt; b</a>')
        text = serialize_document(doc)
        assert "&lt;" in text
        assert "&quot;" in text
        round_tripped = parse_document(text)
        assert round_tripped.text_of_element(round_tripped.root) == "a < b"

    def test_pretty_print(self):
        doc = build_document(("a", [("b", ["hi"])]))
        pretty = serialize_document(doc, indent=2)
        assert "\n  <b>" in pretty

    def test_subtree_serialization(self):
        doc = build_document(LIBRARY_SPEC)
        book = doc.element_by_id("b1")
        text = serialize_subtree(doc, book)
        assert text.startswith("<book")
        assert "Transaction Processing" in text
        assert "persons" not in text

    def test_empty_element_self_closes(self):
        doc = build_document(("a", [("hollow", {})]))
        assert "<hollow/>" in serialize_document(doc)
