"""Figure 9: synopsis of all protocols on CLUSTER1.

Throughput (left) and deadlocks (right) over lock depth 0-7 for the
depth-aware protocols, grouped as in the paper: Node2PLa (the optimized
*-2PL representative), the MGL* group, and the taDOM* group.

Expected shape:

* low throughput at depths 0-1 (document locks, abort storms), steep rise
  once locks fall into diverse subtrees, then saturation;
* clear group gaps at saturation: taDOM* > MGL* > Node2PLa, with the
  taDOM* advantage over Node2PLa on the order of the paper's ~100 % and
  MGL* in between;
* fewer deadlocks for the finer groups, particularly at low depths.
"""

import pytest

from conftest import DEPTH_PROTOCOLS, DEPTHS, figure_header, write_result

GROUPS = {
    "*-2PL(a)": ("Node2PLa",),
    "MGL*": ("IRX", "IRIX", "URIX"),
    "taDOM*": ("taDOM2", "taDOM2+", "taDOM3", "taDOM3+"),
}


def _group_mean(results, members, depth_index, metric):
    values = [metric(results[name][depth_index]) for name in members]
    return sum(values) / len(values)


@pytest.mark.benchmark(group="figure9")
def test_figure9_synopsis(benchmark, cluster1):
    def sweep():
        return {
            name: [cluster1.get(name, depth) for depth in DEPTHS]
            for name in DEPTH_PROTOCOLS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [figure_header(
        "Figure 9 -- synopsis of all protocols on CLUSTER1 (isolation repeatable)"
    )]
    lines.append("throughput (committed transactions):")
    lines.append("protocol   " + "".join(f"d{d:<7}" for d in DEPTHS))
    for name in DEPTH_PROTOCOLS:
        row = "".join(f"{r.committed:<8}" for r in results[name])
        lines.append(f"{name:<11}{row}")
    lines.append("")
    lines.append("deadlocks (incl. lock-wait timeouts counted as aborts separately):")
    lines.append("protocol   " + "".join(f"d{d:<7}" for d in DEPTHS))
    for name in DEPTH_PROTOCOLS:
        row = "".join(f"{r.deadlocks:<8}" for r in results[name])
        lines.append(f"{name:<11}{row}")
    from repro.tamix.report import line_chart

    lines.append("")
    lines.append(line_chart(
        {
            "taDOM3+": [r.committed for r in results["taDOM3+"]],
            "URIX": [r.committed for r in results["URIX"]],
            "Node2PLa": [r.committed for r in results["Node2PLa"]],
        },
        x_labels=list(DEPTHS),
        title="throughput over lock depth (cf. the paper's Figure 9, left):",
        y_label="lock depth",
    ))
    lines.append("")
    lines.append("group means at saturation (depth 6/7):")
    for group, members in GROUPS.items():
        mean = (
            _group_mean(results, members, -1, lambda r: r.committed)
            + _group_mean(results, members, -2, lambda r: r.committed)
        ) / 2
        lines.append(f"  {group:<9} {mean:8.1f}")
    write_result("figure09_synopsis", "\n".join(lines))

    # Shape assertions.
    for name in DEPTH_PROTOCOLS:
        runs = results[name]
        # Rise from document locks to saturation.
        assert runs[-1].committed > runs[0].committed
    star = _group_mean(results, GROUPS["*-2PL(a)"], -1, lambda r: r.committed)
    mgl = _group_mean(results, GROUPS["MGL*"], -1, lambda r: r.committed)
    tadom = _group_mean(results, GROUPS["taDOM*"], -1, lambda r: r.committed)
    # The paper's group ordering with clear gaps.
    assert star < mgl < tadom
    # taDOM* gains on the order of the paper's ~100 % over Node2PLa.
    assert tadom / star > 1.5
