"""Figure 11: transaction execution times for all protocols on CLUSTER2.

A single TAdelBook in single-user mode under isolation level repeatable;
the metric is the transaction's execution time, which measures pure
locking overhead.

Expected shape: the *-2PL protocols (Node2PL, NO2PL, OO2PL) need roughly
twice the time of every intention-lock protocol, because they must search
the doomed subtree for ID-owning elements and IDX-lock them before the
delete; all protocols using intention locks handle the deletion with a
single subtree lock.
"""

import pytest

from conftest import SCALE, figure_header, write_result
from repro.tamix import run_cluster2

#: All 11 protocols in the paper's Figure 11 order.
PROTOCOLS = (
    "Node2PL", "NO2PL", "OO2PL",
    "IRX", "IRIX", "URIX", "Node2PLa",
    "taDOM2+", "taDOM2", "taDOM3", "taDOM3+",
)

STAR_2PL = ("Node2PL", "NO2PL", "OO2PL")


@pytest.mark.benchmark(group="figure11")
def test_figure11_cluster2_delete_times(benchmark):
    def sweep():
        times = {}
        for seed in (7, 11, 13):
            info = None
            for name in PROTOCOLS:
                # A fresh document per protocol (deletes mutate it).
                elapsed = run_cluster2(name, scale=SCALE, seed=seed)
                times.setdefault(name, []).append(elapsed)
        return {
            name: sum(values) / len(values) for name, values in times.items()
        }

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)

    from repro.tamix.report import bar_chart

    lines = [figure_header(
        "Figure 11 -- CLUSTER2: single TAdelBook execution time [simulated ms]"
    )]
    lines.append(bar_chart(
        {name: times[name] for name in PROTOCOLS}, unit="ms",
    ))
    star = sum(times[p] for p in STAR_2PL) / len(STAR_2PL)
    rest = [times[p] for p in PROTOCOLS if p not in STAR_2PL]
    mean_rest = sum(rest) / len(rest)
    lines.append("")
    lines.append(f"  *-2PL mean / intention-lock mean = {star / mean_rest:4.2f}x")
    write_result("figure11_cluster2", "\n".join(lines))

    # The paper's headline: *-2PL needs roughly twice the time.
    assert star / mean_rest > 1.5
    # Every *-2PL protocol is slower than every intention-lock protocol.
    assert min(times[p] for p in STAR_2PL) > max(rest)
