"""Figure 10: CLUSTER1 throughput separated by transaction type.

Four panels over lock depth 0-7: (a) TAqueryBook, (b) TAchapter,
(c) TAlendAndReturn, (d) TArenameTopic.

Expected shape:

* (a) the readers contribute almost all throughput at depths 0-1 and
  produce no aborts at all;
* (b)/(c) the writers only start committing once fine-grained locking
  kicks in; Node2PLa "reacts one level deeper" than the rest;
* (d) TArenameTopic: Node2PLa fails almost completely (X on the whole
  topics level); the taDOM3/taDOM3+ node-rename modes beat the MGL* group
  by a factor of 2 or more.
"""

import pytest

from conftest import DEPTH_PROTOCOLS, DEPTHS, figure_header, write_result

PANELS = (
    ("a", "TAqueryBook"),
    ("b", "TAchapter"),
    ("c", "TAlendAndReturn"),
    ("d", "TArenameTopic"),
)


@pytest.mark.benchmark(group="figure10")
def test_figure10_transaction_types(benchmark, cluster1):
    def sweep():
        return {
            name: [cluster1.get(name, depth) for depth in DEPTHS]
            for name in DEPTH_PROTOCOLS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [figure_header(
        "Figure 10 -- CLUSTER1 throughput separated by transaction type"
    )]
    for panel, txn_type in PANELS:
        lines.append(f"({panel}) {txn_type}:")
        lines.append("protocol   " + "".join(f"d{d:<7}" for d in DEPTHS))
        for name in DEPTH_PROTOCOLS:
            row = "".join(
                f"{r.committed_of(txn_type):<8}" for r in results[name]
            )
            lines.append(f"{name:<11}{row}")
        lines.append("")
    write_result("figure10_txn_types", "\n".join(lines))

    # (a) readers essentially never become deadlock victims: across the
    # whole sweep their share of deadlock aborts stays marginal (they may
    # time out behind document-level write locks at depth 0/1, which
    # counts as an abort but not as a deadlock).
    reader_deadlocks = 0
    writer_deadlocks = 0
    for name in DEPTH_PROTOCOLS:
        for run in results[name]:
            reader_deadlocks += run.by_type["TAqueryBook"].deadlock_aborts
            writer_deadlocks += sum(
                run.by_type[t].deadlock_aborts for t in
                ("TAchapter", "TAlendAndReturn", "TArenameTopic")
            )
    assert reader_deadlocks <= max(2, 0.02 * (reader_deadlocks + writer_deadlocks))

    # At depth 0/1 the readers dominate total throughput and the writers
    # produce (virtually) all the deadlocks.
    for name in ("taDOM3+", "URIX"):
        depth0 = results[name][0]
        assert depth0.committed_of("TAqueryBook") >= depth0.committed * 0.5
        assert depth0.by_type["TAqueryBook"].deadlock_aborts == 0

    # (d) Node2PLa fails on renames; taDOM3+ clearly beats the MGL* group.
    sat = -1
    node2pla_renames = results["Node2PLa"][sat].committed_of("TArenameTopic")
    urix_renames = results["URIX"][sat].committed_of("TArenameTopic")
    tadom3p_renames = results["taDOM3+"][sat].committed_of("TArenameTopic")
    assert node2pla_renames <= max(2, tadom3p_renames * 0.05)
    assert tadom3p_renames >= urix_renames * 2
