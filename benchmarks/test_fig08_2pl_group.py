"""Figure 8: running CLUSTER1 under the *-2PL group.

Left chart: throughput (total and per transaction type) for Node2PL,
NO2PL, OO2PL.  Right chart: the corresponding aborts/deadlocks.

Expected shape: OO2PL >= NO2PL >= Node2PL in total throughput (finer
granularity wins even though it acquires more locks), TArenameTopic is
close to zero for the whole group, and the group produces substantially
more aborted transactions per commit than the intention-lock protocols.
"""

import pytest

from conftest import figure_header, write_result

PROTOCOLS = ("Node2PL", "NO2PL", "OO2PL")
TXN_TYPES = ("TAqueryBook", "TAchapter", "TAlendAndReturn", "TArenameTopic")


@pytest.mark.benchmark(group="figure8")
def test_figure8_star_2pl_group(benchmark, cluster1):
    def sweep():
        # The *-2PL group has no lock-depth parameter; depth is ignored.
        return {name: cluster1.get(name, 0) for name in PROTOCOLS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [figure_header("Figure 8 -- CLUSTER1 under the *-2PL group")]
    lines.append(f"{'':<18}" + "".join(f"{p:>10}" for p in PROTOCOLS))
    lines.append(
        f"{'CLUSTER1 total':<18}"
        + "".join(f"{results[p].committed:>10}" for p in PROTOCOLS)
    )
    for txn_type in TXN_TYPES:
        lines.append(
            f"{txn_type:<18}"
            + "".join(f"{results[p].committed_of(txn_type):>10}" for p in PROTOCOLS)
        )
    lines.append("")
    lines.append(
        f"{'aborted':<18}"
        + "".join(f"{results[p].aborted:>10}" for p in PROTOCOLS)
    )
    lines.append(
        f"{'deadlocks':<18}"
        + "".join(f"{results[p].deadlocks:>10}" for p in PROTOCOLS)
    )
    write_result("figure08_star2pl", "\n".join(lines))

    node2pl, no2pl, oo2pl = (results[p] for p in PROTOCOLS)
    # Finer granularity does not lose: OO2PL and NO2PL at or above Node2PL.
    assert oo2pl.committed >= node2pl.committed
    assert no2pl.committed >= node2pl.committed * 0.9
    # TArenameTopic collapses for the whole group (parent-level blocking).
    for result in results.values():
        assert result.committed_of("TArenameTopic") <= max(
            5, result.committed * 0.05
        )
    # The group aborts transactions continuously.
    assert all(r.aborted > 0 for r in results.values())
