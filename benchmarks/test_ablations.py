"""Ablations of the design choices DESIGN.md calls out.

These are not figures from the paper; they isolate the mechanisms the
paper credits for the results:

* **SPLID ancestor derivation** -- intention locking needs all ancestor
  IDs; SPLIDs deliver them with zero document accesses, while a
  pointer-chasing scheme would pay one index lookup per ancestor
  (the paper: "of paramount importance for the lock protocol overhead").
* **Level locks (LR)** -- taDOM's getChildNodes needs one lock where MGL
  locks every child individually.
* **Combination modes** -- taDOM2+ answers LR/SR + IX/CX conversions with
  a single lock where taDOM2 fans NR/SR locks out to every child.
* **Buffer pool size** -- the *-2PL CLUSTER2 scan cost is I/O-bound: a
  small pool makes the pre-delete ID scan hit disk.
"""

import pytest

from conftest import SCALE, write_result
from repro.core import MetaOp, MetaRequest, get_protocol
from repro.splid import Splid, encode
from repro.storage import make_buffered_store, BPTree
from repro.tamix import generate_bib, run_cluster2


@pytest.mark.benchmark(group="ablation-splid")
def test_ablation_splid_ancestor_derivation(benchmark):
    """Ancestor IDs from SPLIDs vs. simulated pointer chasing."""
    info = generate_bib(scale=min(SCALE, 0.1))
    doc = info.document
    deep_nodes = [splid for splid, _r in doc.walk() if splid.level >= 4][:2000]

    # Pointer chasing: resolve each ancestor through the document store.
    parent_index = BPTree(make_buffered_store(pool_size=64))
    for splid, _record in doc.walk():
        parent = splid.parent
        if parent is not None:
            parent_index.put(encode(splid), encode(parent))

    def splid_way():
        total = 0
        for node in deep_nodes:
            total += len(node.ancestors_bottom_up())
        return total

    def pointer_way():
        total = 0
        for node in deep_nodes:
            key = encode(node)
            while True:
                parent = parent_index.get(key)
                if parent is None:
                    break
                total += 1
                key = parent
        return total

    baseline = pointer_way()
    io_before = parent_index.buffer.stats.snapshot()
    assert pointer_way() == baseline
    pointer_io = parent_index.buffer.stats.delta_since(io_before)

    result = benchmark.pedantic(splid_way, rounds=3, iterations=1)
    assert result == baseline
    text = (
        "Ablation: ancestor derivation for intention locking\n"
        f"  ancestors resolved          : {baseline}\n"
        f"  SPLID document accesses     : 0\n"
        f"  pointer-chasing accesses    : {pointer_io.logical_reads} logical "
        f"/ {pointer_io.physical_reads} physical\n"
    )
    write_result("ablation_splid", text)
    assert pointer_io.logical_reads > 0


@pytest.mark.benchmark(group="ablation-level-locks")
def test_ablation_level_locks(benchmark):
    """Lock requests for getChildNodes: taDOM's LR vs. MGL's fan-out."""
    parent = Splid.parse("1.5.3.3")
    children = tuple(parent.child(2 * i + 3) for i in range(20))
    request = MetaRequest(MetaOp.READ_LEVEL, parent, children=children)

    tadom = get_protocol("taDOM3+")
    mgl = get_protocol("URIX")

    def plans():
        return (
            len(tadom.plan(request, 7).steps),
            len(mgl.plan(request, 7).steps),
        )

    tadom_steps, mgl_steps = benchmark.pedantic(plans, rounds=3, iterations=1)
    text = (
        "Ablation: level locks (getChildNodes over 20 children)\n"
        f"  taDOM3+ lock steps (LR)     : {tadom_steps}\n"
        f"  URIX lock steps (per child) : {mgl_steps}\n"
    )
    write_result("ablation_level_locks", text)
    assert mgl_steps > tadom_steps + 10


@pytest.mark.benchmark(group="ablation-combination-modes")
def test_ablation_combination_modes(benchmark):
    """Conversion fan-out: taDOM2 vs taDOM2+ over the whole matrix."""
    from repro.core.tables import TADOM2_TABLE, TADOM2P_TABLE

    def count_fanouts(table):
        return sum(
            1
            for a in ("IR", "NR", "LR", "SR", "IX", "CX", "SU", "SX")
            for b in ("IR", "NR", "LR", "SR", "IX", "CX", "SU", "SX")
            if table.convert(a, b).has_fanout
        )

    def both():
        return count_fanouts(TADOM2_TABLE), count_fanouts(TADOM2P_TABLE)

    tadom2, tadom2p = benchmark.pedantic(both, rounds=3, iterations=1)
    text = (
        "Ablation: conversion fan-outs across the 8x8 base-mode matrix\n"
        f"  taDOM2  cells with child fan-out : {tadom2}\n"
        f"  taDOM2+ cells with child fan-out : {tadom2p}\n"
    )
    write_result("ablation_combination_modes", text)
    assert tadom2 == 8          # the eight subscripted cells of Figure 4
    assert tadom2p == 0         # all absorbed by LRIX/LRCX/SRIX/SRCX


@pytest.mark.benchmark(group="ablation-buffer")
def test_ablation_buffer_pool_cluster2(benchmark):
    """CLUSTER2 delete time under Node2PL for shrinking buffer pools."""
    pools = (8192, 256, 64)

    def sweep():
        times = {}
        for pool in pools:
            info = generate_bib(scale=min(SCALE, 0.1), buffer_pool_pages=pool)
            times[pool] = run_cluster2("Node2PL", scale=SCALE, info=info)
        return times

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: Node2PL CLUSTER2 delete time vs. buffer pool size"]
    for pool in pools:
        lines.append(f"  {pool:>6} pages : {times[pool]:9.2f} ms")
    write_result("ablation_buffer_pool", "\n".join(lines) + "\n")
    assert times[64] >= times[8192]
