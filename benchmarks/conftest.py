"""Shared infrastructure for the figure-reproduction benchmarks.

Scaling
-------
The paper's testbed ran 5-minute wall-clock experiments against a 2000-book
document.  By default the benchmarks run a scaled configuration (10% sized
bib, 60 simulated seconds) so the whole suite finishes in minutes; set

* ``TAMIX_SCALE=full``      -- the paper's document (2000 books) and
  5-minute simulated runs, or
* ``TAMIX_SCALE=<float>``   -- a custom document scale, with
* ``TAMIX_DURATION_MS=<ms>`` -- a custom simulated run duration.

Results are printed as figure-shaped tables and appended to
``benchmarks/results/``.

CLUSTER1 runs are cached per (protocol, depth, isolation) for the whole
benchmark session, because Figure 9 and Figure 10 are two views of the
same parameter sweep.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Tuple

import pytest

from repro.tamix import RunResult, run_cluster1

RESULTS_DIR = Path(__file__).parent / "results"


def _scale_settings() -> Tuple[float, float]:
    raw = os.environ.get("TAMIX_SCALE", "0.1")
    if raw.lower() == "full":
        scale, duration = 1.0, 300_000.0
    else:
        scale = float(raw)
        duration = float(os.environ.get("TAMIX_DURATION_MS", "60000"))
    return scale, duration


SCALE, DURATION_MS = _scale_settings()

#: The paper's lock-depth grid.
DEPTHS = tuple(range(8))

#: Depth-aware protocols in the paper's figure order.
DEPTH_PROTOCOLS = (
    "Node2PLa", "IRX", "IRIX", "URIX",
    "taDOM2", "taDOM2+", "taDOM3", "taDOM3+",
)


class Cluster1Cache:
    """Memoized CLUSTER1 runs shared by the figure benchmarks."""

    def __init__(self):
        self._runs: Dict[Tuple[str, int, str], RunResult] = {}

    def get(
        self, protocol: str, lock_depth: int, isolation: str = "repeatable"
    ) -> RunResult:
        key = (protocol, lock_depth, isolation)
        if key not in self._runs:
            self._runs[key] = run_cluster1(
                protocol,
                lock_depth=lock_depth,
                isolation=isolation,
                scale=SCALE,
                run_duration_ms=DURATION_MS,
            )
        return self._runs[key]


@pytest.fixture(scope="session")
def cluster1() -> Cluster1Cache:
    return Cluster1Cache()


def write_result(name: str, text: str) -> None:
    """Print a figure table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n{text}")


def figure_header(title: str) -> str:
    return (
        f"{title}\n"
        f"(bib scale={SCALE}, simulated duration={DURATION_MS / 1000:.0f}s; "
        f"counts are committed transactions per run)\n"
    )
