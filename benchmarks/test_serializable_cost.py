"""The cost of isolation level serializable (extension of footnote 1).

The paper excludes serializable from its experiments "to enable
comparison with the remaining protocols which don't support this
isolation level".  This extension measures what the exclusion hid: the
overhead of the taDOM* group's serializable level (repeatable read plus
key-range locks on the ID index) on the CLUSTER1 workload.

Expected shape: a modest throughput cost relative to repeatable read --
the extra S key locks only conflict with ID creation/deletion, which
CLUSTER1's lend inserts do not perform (lend elements carry no id
attribute), so the overhead is lock-manager work rather than blocking.
"""

import pytest

from conftest import DURATION_MS, SCALE, figure_header, write_result
from repro.tamix import run_cluster1

DEPTHS = (3, 5, 7)


@pytest.mark.benchmark(group="serializable-cost")
def test_serializable_overhead(benchmark):
    def sweep():
        results = {}
        for isolation in ("repeatable", "serializable"):
            results[isolation] = [
                run_cluster1(
                    "taDOM3+", lock_depth=depth, isolation=isolation,
                    scale=SCALE, run_duration_ms=DURATION_MS,
                )
                for depth in DEPTHS
            ]
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [figure_header(
        "Extension -- cost of isolation level serializable (taDOM3+ only)"
    )]
    lines.append("isolation     " + "".join(f"d{d:<7}" for d in DEPTHS))
    for isolation in ("repeatable", "serializable"):
        row = "".join(f"{r.committed:<8}" for r in results[isolation])
        lines.append(f"{isolation:<14}{row}")
    repeatable = sum(r.committed for r in results["repeatable"])
    serializable = sum(r.committed for r in results["serializable"])
    overhead = 1.0 - serializable / max(repeatable, 1)
    lines.append("")
    lines.append(f"throughput cost of serializable: {overhead:+.1%}")
    write_result("serializable_cost", "\n".join(lines))

    # Serializable still commits work and costs at most a modest fraction.
    assert serializable > 0
    assert serializable >= repeatable * 0.7
