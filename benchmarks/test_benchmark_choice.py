"""Section 4.1 made executable: why TaMix instead of XMark.

"The scope of XMark is the XML query processor and concentrates on
single-user mode only ... the scope of the benchmark must be directed
towards stretching the lock manager's behavior and must therefore include
multi-user operations and contain a varying degree of update operations."

The benchmark runs a read-only XMark-style query mix multi-user under a
coarse and a fine protocol: both perform identically (shared locks never
conflict), so the workload cannot discriminate lock protocols -- whereas
the CLUSTER1 figures separate the same two protocols decisively.
"""

import pytest

from conftest import figure_header, write_result
from repro.tamix.xmark import generate_auction, run_xmark

PROTOCOLS = ("Node2PLa", "URIX", "taDOM3+")


@pytest.mark.benchmark(group="benchmark-choice")
def test_xmark_style_workload_cannot_discriminate(benchmark, cluster1):
    def sweep():
        results = {}
        for name in PROTOCOLS:
            info = generate_auction(scale=0.1)
            results[name] = run_xmark(name, info=info,
                                      run_duration_ms=20_000.0)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [figure_header(
        "Benchmark choice (Section 4.1): read-only XMark-style mix vs TaMix"
    )]
    lines.append(f"{'protocol':<10} {'queries':>8} {'waits':>6} {'deadlocks':>10}"
                 f"   {'CLUSTER1 committed':>20}")
    for name in PROTOCOLS:
        xmark = results[name]
        tamix = cluster1.get(name, 6)
        lines.append(
            f"{name:<10} {xmark.completed_queries:>8} {xmark.lock_waits:>6} "
            f"{xmark.deadlocks:>10}   {tamix.committed:>20}"
        )
    write_result("benchmark_choice", "\n".join(lines))

    counts = [results[name].completed_queries for name in PROTOCOLS]
    # Read-only multi-user: no deadlocks, (almost) no waits, and protocol
    # choice moves throughput by well under 10 %.
    assert all(results[name].deadlocks == 0 for name in PROTOCOLS)
    assert max(counts) <= min(counts) * 1.1
    # TaMix separates the same protocols by >50 %.
    tamix_counts = [cluster1.get(name, 6).committed for name in PROTOCOLS]
    assert max(tamix_counts) > min(tamix_counts) * 1.5
