"""Lock-mode usage profiles per protocol (beyond the paper's figures).

Runs a fixed CLUSTER1 slice under one representative of each group and
reports which lock modes actually carried the workload -- a view the
paper discusses qualitatively ("up to 20 lock modes in taDOM3+") but
never tabulates.  The assertions pin the qualitative claims:

* taDOM3+ really *uses* its specialized modes (NX renames, SR subtrees,
  level locks, combination modes where conversions demand them);
* URIX leans on IR/IX/R/X only;
* Node2PL's traffic is all T/M parent locks + content locks.
"""

import pytest

from conftest import SCALE, figure_header, write_result
from repro.tamix import TaMixConfig, TaMixCoordinator, make_database
from repro.tamix.report import mode_profile_table

PROTOCOLS = ("Node2PL", "Node2PLa", "URIX", "taDOM3+")


def profile_of(protocol):
    database, info = make_database(protocol, 6, "repeatable", scale=SCALE)
    config = TaMixConfig(protocol=protocol, lock_depth=6,
                         run_duration_ms=20_000.0)
    TaMixCoordinator(database, info, config).run()
    return database.locks.mode_profile(), database.locks.wait_statistics()


@pytest.mark.benchmark(group="mode-profiles")
def test_lock_mode_profiles(benchmark):
    def sweep():
        return {name: profile_of(name) for name in PROTOCOLS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    profiles = {name: data[0] for name, data in results.items()}
    lines = [figure_header("Lock-mode usage per protocol (CLUSTER1 slice)")]
    lines.append(mode_profile_table(profiles, top=10))
    lines.append("")
    lines.append("lock-wait statistics (simulated ms):")
    for name, (_profile, waits) in results.items():
        lines.append(
            f"  {name:<10} waits={waits['count']:6.0f}  "
            f"mean={waits['mean_ms']:8.1f}  max={waits['max_ms']:9.1f}"
        )
    write_result("mode_profiles", "\n".join(lines))

    tadom = profiles["taDOM3+"]
    assert tadom.get("node:NX", 0) > 0          # dedicated renames
    assert tadom.get("node:SR", 0) > 0          # subtree reads
    assert tadom.get("node:SX", 0) > 0          # subtree writes
    assert tadom.get("edge:EX", 0) > 0          # edge isolation

    urix = profiles["URIX"]
    assert set(mode.split(":")[1] for mode in urix
               if mode.startswith("node:")) <= {"IR", "IX", "R", "RIX", "U", "X"}

    node2pl = profiles["Node2PL"]
    assert node2pl.get("struct:T", 0) > 0
    assert node2pl.get("struct:M", 0) > 0
    assert all(not key.startswith("node:") for key in node2pl)
