"""Figure 7: CLUSTER1 under taDOM3+ -- influence of the isolation level.

Left chart: transaction throughput vs. lock depth (0-7) for isolation
levels none / uncommitted / committed / repeatable.  Right chart: deadlock
counts for the same grid.

Expected shape (checked by assertions):

* throughput rises with lock depth and saturates (depth 0 corresponds to
  document locks);
* stronger isolation never helps throughput: none >= uncommitted >=
  committed >= repeatable (up to noise, compared at the depth extremes);
* deadlocks concentrate at low lock depths and strongly decrease from the
  depth at which the transaction types operate in diverse subtrees.
"""

import pytest

from conftest import DEPTHS, figure_header, write_result

ISOLATION_LEVELS = ("none", "uncommitted", "committed", "repeatable")
PROTOCOL = "taDOM3+"


@pytest.mark.benchmark(group="figure7")
def test_figure7_isolation_levels(benchmark, cluster1):
    def sweep():
        return {
            isolation: [cluster1.get(PROTOCOL, depth, isolation) for depth in DEPTHS]
            for isolation in ISOLATION_LEVELS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [figure_header(
        "Figure 7 -- CLUSTER1 under taDOM3+: influence of isolation level"
    )]
    lines.append("throughput (committed transactions):")
    lines.append("isolation    " + "".join(f"d{d:<7}" for d in DEPTHS))
    for isolation in ISOLATION_LEVELS:
        row = "".join(f"{r.committed:<8}" for r in results[isolation])
        lines.append(f"{isolation:<13}{row}")
    lines.append("")
    lines.append("deadlocks:")
    lines.append("isolation    " + "".join(f"d{d:<7}" for d in DEPTHS))
    for isolation in ISOLATION_LEVELS:
        row = "".join(f"{r.deadlocks:<8}" for r in results[isolation])
        lines.append(f"{isolation:<13}{row}")
    write_result("figure07_isolation", "\n".join(lines))

    repeatable = results["repeatable"]
    none = results["none"]
    # Depth 0 = document locks: far below the saturated throughput.
    assert repeatable[0].committed < repeatable[-1].committed * 0.5
    # Weaker isolation is never slower at the extremes.
    assert none[0].committed >= repeatable[0].committed
    assert none[-1].committed >= repeatable[-1].committed * 0.95
    # Deadlocks concentrate at low depths under repeatable read.
    low = sum(r.deadlocks for r in repeatable[:2])
    high = sum(r.deadlocks for r in repeatable[-2:])
    assert low > high
    # Isolation level none never deadlocks (it takes no locks).
    assert all(r.deadlocks == 0 for r in none)
