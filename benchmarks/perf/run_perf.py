"""Micro-benchmark harness for the repro hot paths.

Measures the three layers the lock protocols live on:

1. **SPLID kernel** -- label construction/parse, ancestor derivation,
   ``ancestor_at_level`` (the operation Section 3.2 calls
   performance-critical for intention locking);
2. **lock pipeline** -- meta-request acquire/release throughput through
   :class:`~repro.locking.lock_manager.LockManager`, both the cold path
   (fresh lock-table requests) and the warm path (coverage-cache hits
   under a subtree lock);
3. **end-to-end** -- one small CLUSTER1 cell, plus a serial vs. parallel
   sweep over the same cells.

Usage (from the repository root)::

    python benchmarks/perf/run_perf.py            # full run
    python benchmarks/perf/run_perf.py --quick    # CI smoke mode
    python benchmarks/perf/run_perf.py --output /tmp/before.json
    python benchmarks/perf/run_perf.py --compare BENCH_perf.json

Writes ``BENCH_perf.json`` at the repository root by default.  Numbers
are ops/sec (higher is better) for the micro-benchmarks and wall-clock
seconds (lower is better) for the end-to-end cells.

``--compare BASELINE.json`` checks the fresh ops/sec numbers against a
previous report and exits non-zero when any drops by more than
``--tolerance`` (a fraction; the generous default absorbs machine noise
-- the check is a regression tripwire, not a precision gate).  The
``obs`` section measures the observability layer directly: lock
throughput with tracing disabled vs. ring-buffer tracing, as a
machine-independent ratio.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core.protocol import MetaOp, MetaRequest  # noqa: E402
from repro.core.registry import get_protocol  # noqa: E402
from repro.locking.lock_manager import IsolationLevel, LockManager  # noqa: E402
from repro.splid import Splid  # noqa: E402
from repro.splid.codec import decode, encode  # noqa: E402
from repro.tamix.cluster import run_cluster1  # noqa: E402
from repro.tamix.sweep import SweepRunner, SweepSpec  # noqa: E402


# -- corpus -------------------------------------------------------------------


def label_corpus(count: int = 2_000) -> List[str]:
    """A deterministic corpus of dotted labels shaped like a bib document:
    shallow fan-out near the root, deeper chains with occasional overflow
    (even) divisions further down."""
    import random

    rng = random.Random(20061)
    labels: List[str] = []
    while len(labels) < count:
        depth = rng.randint(1, 7)
        divisions = [1]
        for _ in range(depth):
            if rng.random() < 0.15:
                divisions.append(2 * rng.randint(1, 8))  # overflow hop
            divisions.append(2 * rng.randint(1, 40) + 1)
        labels.append(".".join(str(d) for d in divisions))
    return labels


# -- timing helpers -----------------------------------------------------------


def ops_per_sec(fn: Callable[[], int], *, repeat: int = 3) -> Dict[str, float]:
    """Best-of-``repeat`` ops/sec; ``fn`` returns the op count it did."""
    best = 0.0
    ops = 0
    for _ in range(repeat):
        start = time.perf_counter()
        ops = fn()
        elapsed = time.perf_counter() - start
        rate = ops / elapsed if elapsed > 0 else float("inf")
        best = max(best, rate)
    return {"ops": float(ops), "ops_per_sec": round(best, 1)}


def interleaved_ops(
    fn_a: Callable[[], int], fn_b: Callable[[], int], *, repeat: int = 9
) -> Tuple[Dict[str, float], Dict[str, float], float]:
    """Two best-of measurements with their repeats interleaved, plus the
    median of the per-round a/b rate ratios.

    Used for the CI-gated overhead ratios.  Interleaving means a
    noisy-neighbour burst slows *both* sides of a round, and the
    per-round ratio cancels machine drift that best-of-over-separate-
    windows cannot; the median then discards the rounds a burst still
    managed to split.
    """
    best = [0.0, 0.0]
    ops = [0, 0]
    ratios: List[float] = []
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(repeat):
            rates = [0.0, 0.0]
            for i, fn in enumerate((fn_a, fn_b)):
                # A cyclic collection landing inside one side's window
                # would skew the round's ratio by several percent, so
                # drain the garbage outside the window and keep the
                # collector off while the clock runs.
                gc.collect()
                gc.disable()
                start = time.perf_counter()
                ops[i] = fn()
                elapsed = time.perf_counter() - start
                if gc_was_enabled:
                    gc.enable()
                rates[i] = ops[i] / elapsed if elapsed > 0 else float("inf")
                best[i] = max(best[i], rates[i])
            if rates[1]:
                ratios.append(rates[0] / rates[1])
    finally:
        if gc_was_enabled:
            gc.enable()
    ratios.sort()
    median = ratios[len(ratios) // 2] if ratios else float("nan")
    return (
        {"ops": float(ops[0]), "ops_per_sec": round(best[0], 1)},
        {"ops": float(ops[1]), "ops_per_sec": round(best[1], 1)},
        round(median, 3),
    )


# -- layer 1: SPLID kernel ----------------------------------------------------


def bench_splid(scale: int) -> Dict[str, Dict[str, float]]:
    texts = label_corpus(2_000)
    tuples = [tuple(int(p) for p in t.split(".")) for t in texts]
    parsed = [Splid.parse(t) for t in texts]
    encoded = [encode(s) for s in parsed]
    loops = scale

    def run_parse() -> int:
        for _ in range(loops):
            for text in texts:
                Splid.parse(text)
        return loops * len(texts)

    def run_construct() -> int:
        for _ in range(loops):
            for divs in tuples:
                Splid(divs)
        return loops * len(tuples)

    def run_ancestors() -> int:
        n = 0
        for _ in range(loops):
            for label in parsed:
                n += len(label.ancestors_bottom_up())
        return n

    def run_ancestor_at_level() -> int:
        n = 0
        for _ in range(loops):
            for label in parsed:
                own = label.level
                for level in range(own + 1):
                    label.ancestor_at_level(level)
                n += own + 1
        return n

    def run_decode() -> int:
        for _ in range(loops):
            for data in encoded:
                decode(data)
        return loops * len(encoded)

    return {
        "parse": ops_per_sec(run_parse),
        "construct": ops_per_sec(run_construct),
        "ancestors": ops_per_sec(run_ancestors),
        "ancestor_at_level": ops_per_sec(run_ancestor_at_level),
        "codec_decode": ops_per_sec(run_decode),
    }


# -- layer 2: lock pipeline ---------------------------------------------------


class _BenchTxn:
    __slots__ = ("name", "isolation")

    def __init__(self, name: str):
        self.name = name
        self.isolation = IsolationLevel.REPEATABLE

    def __repr__(self) -> str:
        return self.name


def _drive(generator) -> object:
    """Run a LockManager.acquire generator to completion (single user:
    nothing ever blocks, so no tickets are yielded)."""
    try:
        while True:
            next(generator)
    except StopIteration as stop:
        return stop.value


def _lock_targets() -> List[Splid]:
    """Leaf-ish nodes under a handful of document subtrees."""
    targets: List[Splid] = []
    for top in (3, 5, 7, 9):
        for mid in (3, 5, 7, 9, 11):
            for leaf in (3, 5, 7, 9, 11, 13, 15, 17, 19, 21):
                targets.append(Splid((1, top, mid, leaf)))
    return targets


def bench_locks(scale: int) -> Dict[str, Dict[str, float]]:
    protocol = get_protocol("taDOM3+")
    targets = _lock_targets()
    loops = scale

    def run_cold() -> int:
        """Fresh transactions taking node-read locks: every request walks
        the ancestor path through the lock table."""
        n = 0
        for i in range(loops * 4):
            manager = LockManager(protocol, lock_depth=8)
            txn = _BenchTxn(f"cold{i}")
            for node in targets:
                _drive(manager.acquire(
                    txn, MetaRequest(MetaOp.READ_NODE, node)))
                n += 1
            manager.release_transaction(txn)
        return n

    def run_warm() -> int:
        """One subtree read lock, then node reads under it: every request
        after the first should be a coverage-cache hit."""
        n = 0
        for i in range(loops * 4):
            manager = LockManager(protocol, lock_depth=8)
            txn = _BenchTxn(f"warm{i}")
            _drive(manager.acquire(
                txn, MetaRequest(MetaOp.READ_SUBTREE, Splid.root())))
            for node in targets:
                _drive(manager.acquire(
                    txn, MetaRequest(MetaOp.READ_NODE, node)))
                n += 1
            manager.release_transaction(txn)
        return n

    def run_write() -> int:
        n = 0
        for i in range(loops * 2):
            manager = LockManager(protocol, lock_depth=8)
            txn = _BenchTxn(f"write{i}")
            for node in targets:
                _drive(manager.acquire(
                    txn, MetaRequest(MetaOp.WRITE_CONTENT, node)))
                n += 1
            manager.release_transaction(txn)
        return n

    def run_batched_path() -> int:
        """One long transaction re-walking ancestor chains: the batched
        fast path turns repeat chain steps into held-lock skips and
        prefix-memo hits (one set probe per re-walked chain)."""
        n = 0
        for i in range(loops):
            manager = LockManager(protocol, lock_depth=8)
            txn = _BenchTxn(f"batch{i}")
            for _ in range(8):
                for node in targets:
                    _drive(manager.acquire(
                        txn, MetaRequest(MetaOp.READ_NODE, node)))
                    n += 1
            manager.release_transaction(txn)
        return n

    def run_escalated() -> int:
        """Node reads under an escalation threshold: once a parent has
        seen enough child grants the manager takes the subtree lock and
        every later request below it is a coverage-cache hit."""
        n = 0
        for i in range(loops * 4):
            manager = LockManager(protocol, lock_depth=8,
                                  escalation_threshold=4)
            txn = _BenchTxn(f"esc{i}")
            for node in targets:
                _drive(manager.acquire(
                    txn, MetaRequest(MetaOp.READ_NODE, node)))
                n += 1
            manager.release_transaction(txn)
        return n

    return {
        "acquire_cold_read": ops_per_sec(run_cold),
        "acquire_covered_read": ops_per_sec(run_warm),
        "acquire_write": ops_per_sec(run_write),
        "acquire_batched_path": ops_per_sec(run_batched_path),
        "acquire_escalated_subtree": ops_per_sec(run_escalated),
    }


def bench_obs(scale: int) -> Dict[str, object]:
    """Tracing overhead on the write path.

    The observability contract is static dispatch: (re)binding a tracer
    selects the instrumented or plain implementations once, so a wired
    but *disabled* ring tracer must cost the same as no instrumentation
    at all.  ``tracing_overhead_ratio`` pins exactly that (plain /
    disabled-ring, target 1.0); ``tracing_enabled_ratio`` keeps the
    price of *enabled* ring tracing visible as a separate number.
    """
    from repro.obs import Observability
    from repro.obs.tracer import RingTracer

    protocol = get_protocol("taDOM3+")
    targets = _lock_targets()
    # Floor the work so the CI-gated ratio is measured over windows
    # (tens of milliseconds) long enough that scheduler noise averages
    # out *within* a round rather than skewing one side of it.
    loops = max(24, scale)

    def writes(make_obs: Callable[[], "Observability"]) -> Callable[[], int]:
        def run() -> int:
            n = 0
            for i in range(loops * 2):
                manager = LockManager(protocol, lock_depth=8, obs=make_obs())
                txn = _BenchTxn(f"obs{i}")
                for node in targets:
                    _drive(manager.acquire(
                        txn, MetaRequest(MetaOp.WRITE_CONTENT, node)))
                    n += 1
                manager.release_transaction(txn)
            return n
        return run

    plain, disabled_ring, ratio = interleaved_ops(
        writes(Observability.disabled),
        writes(lambda: Observability(RingTracer(4096, enabled=False))),
    )
    tracing = ops_per_sec(writes(lambda: Observability.enabled(capacity=4096)))
    return {
        "write_plain": plain,
        "write_tracing_disabled": disabled_ring,
        "write_tracing_ring": tracing,
        "tracing_overhead_ratio": ratio,
        "tracing_enabled_ratio": round(
            plain["ops_per_sec"] / tracing["ops_per_sec"], 3
        ) if tracing["ops_per_sec"] else None,
    }


def bench_storage(scale: int) -> Dict[str, Dict[str, float]]:
    """Buffer-manager fix throughput: the page-access hot path.

    ``fix`` is statically rebound when tracing or chaos is wired
    (``BufferManager._rebind_fix``), so with neither installed this
    measures the bare LRU walk -- the regression tripwire for the
    zero-cost-when-disabled contract of :mod:`repro.chaos`.
    """
    from repro.storage.buffer import make_buffered_store

    loops = scale * 40

    def run_hits() -> int:
        buffer = make_buffered_store(pool_size=256)
        pages = [buffer.allocate().page_id for _ in range(128)]
        n = 0
        for _ in range(loops):
            for page_id in pages:
                buffer.fix(page_id)
                n += 1
        return n

    def run_miss_evict() -> int:
        buffer = make_buffered_store(pool_size=64)
        pages = [buffer.allocate().page_id for _ in range(256)]
        n = 0
        for _ in range(max(1, loops // 4)):
            for page_id in pages:
                buffer.fix(page_id)
                n += 1
        return n

    return {
        "fix_hit": ops_per_sec(run_hits),
        "fix_miss_evict": ops_per_sec(run_miss_evict),
    }


def bench_chaos(scale: int) -> Dict[str, object]:
    """Chaos-hook overhead on the buffer fix path.

    Reports fix throughput with no engine installed (``chaos is None``,
    the default everywhere) vs. an installed engine whose schedule is
    empty, plus the resulting machine-independent ratio.  Installing an
    engine with no ``page.read`` rules leaves the plain ``fix``
    implementation bound (``ChaosEngine.wants``), so the ratio's target
    is 1.0.  The absolute no-hook number is enforced by ``--compare``
    through the ``storage`` layer.
    """
    from repro.chaos import ChaosEngine, FaultSchedule
    from repro.storage.buffer import make_buffered_store

    # Same floor rationale as bench_obs: the fix path runs at millions
    # of ops/sec, so small scales would time windows too short for the
    # per-round ratio to be meaningful.
    loops = max(1_600, scale * 40)

    # One shared buffer for both sides: rebinding ``chaos`` per round is
    # the thing under test, and reusing the same page table keeps the
    # two sides' memory layout identical (separate buffers measurably
    # skew the ratio for the lifetime of the process).
    buffer = make_buffered_store(pool_size=256)
    pages = [buffer.allocate().page_id for _ in range(128)]

    def fixes(engine) -> Callable[[], int]:
        def run() -> int:
            buffer.chaos = engine
            n = 0
            for _ in range(loops):
                for page_id in pages:
                    buffer.fix(page_id)
                    n += 1
            return n
        return run

    no_hook, empty, ratio = interleaved_ops(
        fixes(None), fixes(ChaosEngine(FaultSchedule(), seed=1)),
    )
    return {
        "fix_no_hook": no_hook,
        "fix_empty_engine": empty,
        "hook_overhead_ratio": ratio,
    }


def bench_shard_chaos(scale: int) -> Dict[str, object]:
    """ChaosTransport overhead on the shard request path.

    Reports PING round-trip throughput against a bare ``SimTransport``
    vs. the same transport wrapped in a ``ChaosTransport`` whose
    schedule has no network or crash rules.  A rule-less decorator is a
    single ``self.enabled and self._active`` check per request before
    delegating, so the ratio's target is 1.0 (the zero-cost-when-
    disabled contract for the shard plane, gated in CI alongside the
    storage-layer chaos hook).
    """
    from repro.chaos import ChaosEngine, FaultSchedule
    from repro.shard import ChaosTransport, SimTransport, messages, shard_config

    loops = max(400, scale * 100)

    # One shard, one shared transport: both sides exercise the same
    # in-process server so the only difference is the decorator hop.
    config = shard_config("taDOM3+", 4, "repeatable", scale=0.02)
    transport = SimTransport([config])
    wrapped = ChaosTransport(transport, ChaosEngine(FaultSchedule(), seed=1))
    frame = messages.encode_ping(0.0)

    def pings(target) -> Callable[[], int]:
        def run() -> int:
            n = 0
            for _ in range(loops):
                target.request(0, frame)
                n += 1
            return n
        return run

    try:
        plain, decorated, ratio = interleaved_ops(
            pings(transport), pings(wrapped),
        )
    finally:
        transport.close()
    return {
        "ping_plain": plain,
        "ping_chaos_transport": decorated,
        "transport_overhead_ratio": ratio,
    }


def bench_telemetry(scale: int) -> Dict[str, object]:
    """Telemetry-plane cost: sampler ticks and the request-path guard.

    ``window_tick`` is the sampler's per-window work (typed snapshot,
    counter/histogram diffs, SLO summary) over a realistically populated
    registry -- it runs once per second on a live server, so thousands
    per second here means the sampler is wall-clock noise.
    ``note_overhead_ratio`` pins the zero-cost-when-disabled contract:
    the server's per-request accounting with telemetry disabled (a
    single ``plane is not None`` check) against the same body without
    the check, target 1.0.
    """
    from repro.net.server import SloTracker
    from repro.obs import MetricsRegistry, WindowedSeries

    loops = max(200, scale * 60)

    def run_ticks() -> int:
        registry = MetricsRegistry()
        counter = registry.counter("server.requests")
        hist = registry.histogram("server.request_ms")
        gauges = [registry.gauge(f"server.g{i}") for i in range(6)]
        pending: Dict[str, list] = {"samples": []}

        def drain() -> list:
            out = pending["samples"]
            pending["samples"] = []
            return out

        series = WindowedSeries(registry, window_ms=1.0, capacity=120)
        series.add_sampler("request_ms", drain)
        n = 0
        for i in range(loops):
            counter.inc(16)
            for gauge in gauges:
                gauge.set(i)
            for value in (0.3, 1.2, 7.5, 40.0, 260.0):
                hist.observe(value)
                pending["samples"].append(value)
            series.tick()
            n += 1
        return n

    reps = max(20_000, scale * 6_000)

    def request_accounting(with_guard: bool) -> Callable[[], int]:
        def run() -> int:
            plane = None
            requests = 0
            by_opcode: Dict[str, int] = {}
            tracker = SloTracker()
            n = 0
            for i in range(reps):
                requests += 1
                by_opcode["CALL"] = by_opcode.get("CALL", 0) + 1
                tracker.record_commit("TAchapter", 1.0 + (i & 7))
                if with_guard and plane is not None:
                    plane.note_request("CALL", 1.0)  # pragma: no cover
                n += 1
            return n
        return run

    plain, guarded, ratio = interleaved_ops(
        request_accounting(False), request_accounting(True),
    )
    return {
        "window_tick": ops_per_sec(run_ticks),
        "request_accounting_plain": plain,
        "request_accounting_guarded": guarded,
        "note_overhead_ratio": ratio,
    }


# -- layer 3: end-to-end ------------------------------------------------------


def bench_cluster1(quick: bool) -> Dict[str, float]:
    scale = 0.05 if quick else 0.1
    duration = 5_000.0 if quick else 20_000.0
    start = time.perf_counter()
    result = run_cluster1(
        "taDOM3+", lock_depth=4, isolation="repeatable",
        scale=scale, run_duration_ms=duration, seed=42,
    )
    elapsed = time.perf_counter() - start
    return {
        "wall_seconds": round(elapsed, 3),
        "committed": float(result.committed),
        "scale": scale,
        "run_duration_ms": duration,
    }


def bench_sweep(quick: bool, workers: int) -> Dict[str, object]:
    spec = SweepSpec(
        protocols=("taDOM3+",),
        lock_depths=(0, 2, 4, 6) if not quick else (0, 4),
        isolations=("repeatable",),
        runs_per_cell=1,
        scale=0.05,
        run_duration_ms=4_000.0 if quick else 10_000.0,
    )
    start = time.perf_counter()
    serial_rows = [r.as_row() for r in SweepRunner(spec).run()]
    serial = time.perf_counter() - start

    out: Dict[str, object] = {
        "cells": len(serial_rows),
        "serial_wall_seconds": round(serial, 3),
    }
    try:
        runner = SweepRunner(spec, workers=workers)
    except TypeError:
        out["parallel_wall_seconds"] = None  # pre-parallel SweepRunner
        return out
    start = time.perf_counter()
    parallel_rows = [r.as_row() for r in runner.run()]
    out["parallel_wall_seconds"] = round(time.perf_counter() - start, 3)
    out["workers"] = workers
    out["deterministic"] = parallel_rows == serial_rows
    return out


# -- entry point --------------------------------------------------------------


def run_all(*, quick: bool = False, workers: int = 2) -> Dict[str, object]:
    scale = 1 if quick else 10
    report: Dict[str, object] = {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick": quick,
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "splid": bench_splid(scale),
        "locks": bench_locks(scale),
        "storage": bench_storage(scale),
        "obs": bench_obs(scale),
        "chaos": bench_chaos(scale),
        "shard_chaos": bench_shard_chaos(scale),
        "telemetry": bench_telemetry(scale),
        "cluster1_cell": bench_cluster1(quick),
        "sweep": bench_sweep(quick, workers),
    }
    return report


def compare_reports(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float,
) -> List[str]:
    """Ops/sec regressions beyond ``tolerance`` (fractional drop allowed).

    Compares every ``ops_per_sec`` entry in the micro-benchmark layers;
    metrics absent from the baseline (new benchmarks) are skipped.
    """
    failures: List[str] = []
    for layer in ("splid", "locks", "storage"):
        base_layer = baseline.get(layer) or {}
        layer_stats = current.get(layer) or {}
        for name, stats in layer_stats.items():  # type: ignore[union-attr]
            if not isinstance(stats, dict):
                continue
            base = (base_layer.get(name) or {}).get("ops_per_sec")
            if not base:
                continue
            now = stats["ops_per_sec"]
            floor = base * (1.0 - tolerance)
            if now < floor:
                failures.append(
                    f"{layer}.{name}: {now:,.0f} ops/s is below "
                    f"{100 * (1 - tolerance):.0f}% of baseline {base:,.0f}"
                )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small iteration counts (CI smoke mode)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the sweep benchmark")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_perf.json"),
                        help="where to write the JSON report")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="baseline report to check for regressions")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed fractional ops/sec drop vs. the "
                             "baseline before failing (default 0.5)")
    parser.add_argument("--max-overhead-ratio", type=float, default=None,
                        metavar="RATIO",
                        help="fail if any zero-cost-when-disabled ratio "
                             "(obs.tracing, chaos.hook, shard chaos "
                             "transport, telemetry.note) exceeds RATIO")
    args = parser.parse_args(argv)

    report = run_all(quick=args.quick, workers=args.workers)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")

    print(f"wrote {output}")
    for layer in ("splid", "locks", "storage"):
        for name, stats in report[layer].items():  # type: ignore[union-attr]
            print(f"  {layer}.{name:<22} {stats['ops_per_sec']:>14,.0f} ops/s")
    cell = report["cluster1_cell"]
    print(f"  cluster1 cell wall        {cell['wall_seconds']:>10.3f} s "
          f"(committed={cell['committed']:.0f})")
    sweep = report["sweep"]
    par = sweep.get("parallel_wall_seconds")
    print(f"  sweep serial              {sweep['serial_wall_seconds']:>10.3f} s")
    if par is not None:
        print(f"  sweep x{sweep.get('workers', '?')} workers          "
              f"{par:>10.3f} s (deterministic={sweep.get('deterministic')})")
    ratio = report["obs"]["tracing_overhead_ratio"]  # type: ignore[index]
    print(f"  tracing overhead ratio    {ratio:>10} x (plain / disabled ring)")
    enabled_ratio = report["obs"]["tracing_enabled_ratio"]  # type: ignore[index]
    print(f"  tracing enabled ratio     {enabled_ratio:>10} x (plain / ring)")
    chaos_ratio = report["chaos"]["hook_overhead_ratio"]  # type: ignore[index]
    print(f"  chaos hook overhead       {chaos_ratio:>10} x (no hook / idle engine)")
    shard_ratio = report["shard_chaos"]["transport_overhead_ratio"]  # type: ignore[index]
    print(f"  chaos transport overhead  {shard_ratio:>10} x (plain / idle decorator)")
    tick = report["telemetry"]["window_tick"]  # type: ignore[index]
    print(f"  telemetry.window_tick     {tick['ops_per_sec']:>14,.0f} ops/s")
    note_ratio = report["telemetry"]["note_overhead_ratio"]  # type: ignore[index]
    print(f"  telemetry note overhead   {note_ratio:>10} x (plain / disabled guard)")

    if args.compare:
        baseline = json.loads(Path(args.compare).read_text())
        failures = compare_reports(report, baseline, args.tolerance)
        if failures:
            print(f"\nPERF REGRESSION vs {args.compare} "
                  f"(tolerance {args.tolerance:.0%}):")
            for line in failures:
                print(f"  {line}")
            return 1
        print(f"\nno regression vs {args.compare} "
              f"(tolerance {args.tolerance:.0%})")
    if args.max_overhead_ratio is not None:
        over = [
            (name, value)
            for name, value in (
                ("obs.tracing_overhead_ratio", ratio),
                ("chaos.hook_overhead_ratio", chaos_ratio),
                ("shard_chaos.transport_overhead_ratio", shard_ratio),
                ("telemetry.note_overhead_ratio", note_ratio),
            )
            if value is None or value > args.max_overhead_ratio
        ]
        if over:
            print(f"\nDISABLED-INSTRUMENTATION OVERHEAD above "
                  f"{args.max_overhead_ratio}:")
            for name, value in over:
                print(f"  {name} = {value}")
            return 1
        print(f"\ndisabled-instrumentation overhead within "
              f"{args.max_overhead_ratio}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
