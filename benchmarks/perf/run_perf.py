"""Micro-benchmark harness for the repro hot paths.

Measures the three layers the lock protocols live on:

1. **SPLID kernel** -- label construction/parse, ancestor derivation,
   ``ancestor_at_level`` (the operation Section 3.2 calls
   performance-critical for intention locking);
2. **lock pipeline** -- meta-request acquire/release throughput through
   :class:`~repro.locking.lock_manager.LockManager`, both the cold path
   (fresh lock-table requests) and the warm path (coverage-cache hits
   under a subtree lock);
3. **end-to-end** -- one small CLUSTER1 cell, plus a serial vs. parallel
   sweep over the same cells.

Usage (from the repository root)::

    python benchmarks/perf/run_perf.py            # full run
    python benchmarks/perf/run_perf.py --quick    # CI smoke mode
    python benchmarks/perf/run_perf.py --output /tmp/before.json
    python benchmarks/perf/run_perf.py --compare BENCH_perf.json

Writes ``BENCH_perf.json`` at the repository root by default.  Numbers
are ops/sec (higher is better) for the micro-benchmarks and wall-clock
seconds (lower is better) for the end-to-end cells.

``--compare BASELINE.json`` checks the fresh ops/sec numbers against a
previous report and exits non-zero when any drops by more than
``--tolerance`` (a fraction; the generous default absorbs machine noise
-- the check is a regression tripwire, not a precision gate).  The
``obs`` section measures the observability layer directly: lock
throughput with tracing disabled vs. ring-buffer tracing, as a
machine-independent ratio.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core.protocol import MetaOp, MetaRequest  # noqa: E402
from repro.core.registry import get_protocol  # noqa: E402
from repro.locking.lock_manager import IsolationLevel, LockManager  # noqa: E402
from repro.splid import Splid  # noqa: E402
from repro.splid.codec import decode, encode  # noqa: E402
from repro.tamix.cluster import run_cluster1  # noqa: E402
from repro.tamix.sweep import SweepRunner, SweepSpec  # noqa: E402


# -- corpus -------------------------------------------------------------------


def label_corpus(count: int = 2_000) -> List[str]:
    """A deterministic corpus of dotted labels shaped like a bib document:
    shallow fan-out near the root, deeper chains with occasional overflow
    (even) divisions further down."""
    import random

    rng = random.Random(20061)
    labels: List[str] = []
    while len(labels) < count:
        depth = rng.randint(1, 7)
        divisions = [1]
        for _ in range(depth):
            if rng.random() < 0.15:
                divisions.append(2 * rng.randint(1, 8))  # overflow hop
            divisions.append(2 * rng.randint(1, 40) + 1)
        labels.append(".".join(str(d) for d in divisions))
    return labels


# -- timing helpers -----------------------------------------------------------


def ops_per_sec(fn: Callable[[], int], *, repeat: int = 3) -> Dict[str, float]:
    """Best-of-``repeat`` ops/sec; ``fn`` returns the op count it did."""
    best = 0.0
    ops = 0
    for _ in range(repeat):
        start = time.perf_counter()
        ops = fn()
        elapsed = time.perf_counter() - start
        rate = ops / elapsed if elapsed > 0 else float("inf")
        best = max(best, rate)
    return {"ops": float(ops), "ops_per_sec": round(best, 1)}


# -- layer 1: SPLID kernel ----------------------------------------------------


def bench_splid(scale: int) -> Dict[str, Dict[str, float]]:
    texts = label_corpus(2_000)
    tuples = [tuple(int(p) for p in t.split(".")) for t in texts]
    parsed = [Splid.parse(t) for t in texts]
    encoded = [encode(s) for s in parsed]
    loops = scale

    def run_parse() -> int:
        for _ in range(loops):
            for text in texts:
                Splid.parse(text)
        return loops * len(texts)

    def run_construct() -> int:
        for _ in range(loops):
            for divs in tuples:
                Splid(divs)
        return loops * len(tuples)

    def run_ancestors() -> int:
        n = 0
        for _ in range(loops):
            for label in parsed:
                n += len(label.ancestors_bottom_up())
        return n

    def run_ancestor_at_level() -> int:
        n = 0
        for _ in range(loops):
            for label in parsed:
                own = label.level
                for level in range(own + 1):
                    label.ancestor_at_level(level)
                n += own + 1
        return n

    def run_decode() -> int:
        for _ in range(loops):
            for data in encoded:
                decode(data)
        return loops * len(encoded)

    return {
        "parse": ops_per_sec(run_parse),
        "construct": ops_per_sec(run_construct),
        "ancestors": ops_per_sec(run_ancestors),
        "ancestor_at_level": ops_per_sec(run_ancestor_at_level),
        "codec_decode": ops_per_sec(run_decode),
    }


# -- layer 2: lock pipeline ---------------------------------------------------


class _BenchTxn:
    __slots__ = ("name", "isolation")

    def __init__(self, name: str):
        self.name = name
        self.isolation = IsolationLevel.REPEATABLE

    def __repr__(self) -> str:
        return self.name


def _drive(generator) -> object:
    """Run a LockManager.acquire generator to completion (single user:
    nothing ever blocks, so no tickets are yielded)."""
    try:
        while True:
            next(generator)
    except StopIteration as stop:
        return stop.value


def _lock_targets() -> List[Splid]:
    """Leaf-ish nodes under a handful of document subtrees."""
    targets: List[Splid] = []
    for top in (3, 5, 7, 9):
        for mid in (3, 5, 7, 9, 11):
            for leaf in (3, 5, 7, 9, 11, 13, 15, 17, 19, 21):
                targets.append(Splid((1, top, mid, leaf)))
    return targets


def bench_locks(scale: int) -> Dict[str, Dict[str, float]]:
    protocol = get_protocol("taDOM3+")
    targets = _lock_targets()
    loops = scale

    def run_cold() -> int:
        """Fresh transactions taking node-read locks: every request walks
        the ancestor path through the lock table."""
        n = 0
        for i in range(loops * 4):
            manager = LockManager(protocol, lock_depth=8)
            txn = _BenchTxn(f"cold{i}")
            for node in targets:
                _drive(manager.acquire(
                    txn, MetaRequest(MetaOp.READ_NODE, node)))
                n += 1
            manager.release_transaction(txn)
        return n

    def run_warm() -> int:
        """One subtree read lock, then node reads under it: every request
        after the first should be a coverage-cache hit."""
        n = 0
        for i in range(loops * 4):
            manager = LockManager(protocol, lock_depth=8)
            txn = _BenchTxn(f"warm{i}")
            _drive(manager.acquire(
                txn, MetaRequest(MetaOp.READ_SUBTREE, Splid.root())))
            for node in targets:
                _drive(manager.acquire(
                    txn, MetaRequest(MetaOp.READ_NODE, node)))
                n += 1
            manager.release_transaction(txn)
        return n

    def run_write() -> int:
        n = 0
        for i in range(loops * 2):
            manager = LockManager(protocol, lock_depth=8)
            txn = _BenchTxn(f"write{i}")
            for node in targets:
                _drive(manager.acquire(
                    txn, MetaRequest(MetaOp.WRITE_CONTENT, node)))
                n += 1
            manager.release_transaction(txn)
        return n

    return {
        "acquire_cold_read": ops_per_sec(run_cold),
        "acquire_covered_read": ops_per_sec(run_warm),
        "acquire_write": ops_per_sec(run_write),
    }


def bench_obs(scale: int) -> Dict[str, object]:
    """Tracing overhead on the write path.

    The observability contract is "one attribute check per site when
    disabled"; this reports the write-path throughput disabled vs. with
    ring-buffer tracing, plus the resulting overhead ratio, so the cost
    of both states is pinned as a machine-independent number.
    """
    from repro.obs import Observability

    protocol = get_protocol("taDOM3+")
    targets = _lock_targets()
    loops = max(1, scale // 2)

    def writes(make_obs: Callable[[], "Observability"]) -> Callable[[], int]:
        def run() -> int:
            n = 0
            for i in range(loops * 2):
                manager = LockManager(protocol, lock_depth=8, obs=make_obs())
                txn = _BenchTxn(f"obs{i}")
                for node in targets:
                    _drive(manager.acquire(
                        txn, MetaRequest(MetaOp.WRITE_CONTENT, node)))
                    n += 1
                manager.release_transaction(txn)
            return n
        return run

    disabled = ops_per_sec(writes(Observability.disabled))
    tracing = ops_per_sec(writes(lambda: Observability.enabled(capacity=4096)))
    return {
        "write_tracing_disabled": disabled,
        "write_tracing_ring": tracing,
        "tracing_overhead_ratio": round(
            disabled["ops_per_sec"] / tracing["ops_per_sec"], 3
        ) if tracing["ops_per_sec"] else None,
    }


def bench_storage(scale: int) -> Dict[str, Dict[str, float]]:
    """Buffer-manager fix throughput: the page-access hot path.

    ``fix`` carries the chaos-engine hook (one ``is not None`` check when
    no engine is installed), so this layer is the regression tripwire for
    the zero-cost-when-disabled contract of :mod:`repro.chaos`.
    """
    from repro.storage.buffer import make_buffered_store

    loops = scale * 40

    def run_hits() -> int:
        buffer = make_buffered_store(pool_size=256)
        pages = [buffer.allocate().page_id for _ in range(128)]
        n = 0
        for _ in range(loops):
            for page_id in pages:
                buffer.fix(page_id)
                n += 1
        return n

    def run_miss_evict() -> int:
        buffer = make_buffered_store(pool_size=64)
        pages = [buffer.allocate().page_id for _ in range(256)]
        n = 0
        for _ in range(max(1, loops // 4)):
            for page_id in pages:
                buffer.fix(page_id)
                n += 1
        return n

    return {
        "fix_hit": ops_per_sec(run_hits),
        "fix_miss_evict": ops_per_sec(run_miss_evict),
    }


def bench_chaos(scale: int) -> Dict[str, object]:
    """Chaos-hook overhead on the buffer fix path.

    Reports fix throughput with no engine installed (``chaos is None``,
    the default everywhere) vs. an installed engine whose schedule is
    empty, plus the resulting machine-independent ratio.  The absolute
    no-hook number is enforced by ``--compare`` through the ``storage``
    layer; the ratio pins what installing an idle engine costs.
    """
    from repro.chaos import ChaosEngine, FaultSchedule
    from repro.storage.buffer import make_buffered_store

    loops = scale * 40

    def fixes(engine) -> Callable[[], int]:
        buffer = make_buffered_store(pool_size=256)
        pages = [buffer.allocate().page_id for _ in range(128)]
        buffer.chaos = engine

        def run() -> int:
            n = 0
            for _ in range(loops):
                for page_id in pages:
                    buffer.fix(page_id)
                    n += 1
            return n
        return run

    no_hook = ops_per_sec(fixes(None))
    empty = ops_per_sec(fixes(ChaosEngine(FaultSchedule(), seed=1)))
    return {
        "fix_no_hook": no_hook,
        "fix_empty_engine": empty,
        "hook_overhead_ratio": round(
            no_hook["ops_per_sec"] / empty["ops_per_sec"], 3
        ) if empty["ops_per_sec"] else None,
    }


# -- layer 3: end-to-end ------------------------------------------------------


def bench_cluster1(quick: bool) -> Dict[str, float]:
    scale = 0.05 if quick else 0.1
    duration = 5_000.0 if quick else 20_000.0
    start = time.perf_counter()
    result = run_cluster1(
        "taDOM3+", lock_depth=4, isolation="repeatable",
        scale=scale, run_duration_ms=duration, seed=42,
    )
    elapsed = time.perf_counter() - start
    return {
        "wall_seconds": round(elapsed, 3),
        "committed": float(result.committed),
        "scale": scale,
        "run_duration_ms": duration,
    }


def bench_sweep(quick: bool, workers: int) -> Dict[str, object]:
    spec = SweepSpec(
        protocols=("taDOM3+",),
        lock_depths=(0, 2, 4, 6) if not quick else (0, 4),
        isolations=("repeatable",),
        runs_per_cell=1,
        scale=0.05,
        run_duration_ms=4_000.0 if quick else 10_000.0,
    )
    start = time.perf_counter()
    serial_rows = [r.as_row() for r in SweepRunner(spec).run()]
    serial = time.perf_counter() - start

    out: Dict[str, object] = {
        "cells": len(serial_rows),
        "serial_wall_seconds": round(serial, 3),
    }
    try:
        runner = SweepRunner(spec, workers=workers)
    except TypeError:
        out["parallel_wall_seconds"] = None  # pre-parallel SweepRunner
        return out
    start = time.perf_counter()
    parallel_rows = [r.as_row() for r in runner.run()]
    out["parallel_wall_seconds"] = round(time.perf_counter() - start, 3)
    out["workers"] = workers
    out["deterministic"] = parallel_rows == serial_rows
    return out


# -- entry point --------------------------------------------------------------


def run_all(*, quick: bool = False, workers: int = 2) -> Dict[str, object]:
    scale = 1 if quick else 10
    report: Dict[str, object] = {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick": quick,
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "splid": bench_splid(scale),
        "locks": bench_locks(scale),
        "storage": bench_storage(scale),
        "obs": bench_obs(scale),
        "chaos": bench_chaos(scale),
        "cluster1_cell": bench_cluster1(quick),
        "sweep": bench_sweep(quick, workers),
    }
    return report


def compare_reports(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float,
) -> List[str]:
    """Ops/sec regressions beyond ``tolerance`` (fractional drop allowed).

    Compares every ``ops_per_sec`` entry in the micro-benchmark layers;
    metrics absent from the baseline (new benchmarks) are skipped.
    """
    failures: List[str] = []
    for layer in ("splid", "locks", "storage"):
        base_layer = baseline.get(layer) or {}
        layer_stats = current.get(layer) or {}
        for name, stats in layer_stats.items():  # type: ignore[union-attr]
            if not isinstance(stats, dict):
                continue
            base = (base_layer.get(name) or {}).get("ops_per_sec")
            if not base:
                continue
            now = stats["ops_per_sec"]
            floor = base * (1.0 - tolerance)
            if now < floor:
                failures.append(
                    f"{layer}.{name}: {now:,.0f} ops/s is below "
                    f"{100 * (1 - tolerance):.0f}% of baseline {base:,.0f}"
                )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small iteration counts (CI smoke mode)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the sweep benchmark")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_perf.json"),
                        help="where to write the JSON report")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="baseline report to check for regressions")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed fractional ops/sec drop vs. the "
                             "baseline before failing (default 0.5)")
    args = parser.parse_args(argv)

    report = run_all(quick=args.quick, workers=args.workers)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")

    print(f"wrote {output}")
    for layer in ("splid", "locks", "storage"):
        for name, stats in report[layer].items():  # type: ignore[union-attr]
            print(f"  {layer}.{name:<22} {stats['ops_per_sec']:>14,.0f} ops/s")
    cell = report["cluster1_cell"]
    print(f"  cluster1 cell wall        {cell['wall_seconds']:>10.3f} s "
          f"(committed={cell['committed']:.0f})")
    sweep = report["sweep"]
    par = sweep.get("parallel_wall_seconds")
    print(f"  sweep serial              {sweep['serial_wall_seconds']:>10.3f} s")
    if par is not None:
        print(f"  sweep x{sweep.get('workers', '?')} workers          "
              f"{par:>10.3f} s (deterministic={sweep.get('deterministic')})")
    ratio = report["obs"]["tracing_overhead_ratio"]  # type: ignore[index]
    print(f"  tracing overhead ratio    {ratio:>10} x (disabled / ring)")
    chaos_ratio = report["chaos"]["hook_overhead_ratio"]  # type: ignore[index]
    print(f"  chaos hook overhead       {chaos_ratio:>10} x (no hook / idle engine)")

    if args.compare:
        baseline = json.loads(Path(args.compare).read_text())
        failures = compare_reports(report, baseline, args.tolerance)
        if failures:
            print(f"\nPERF REGRESSION vs {args.compare} "
                  f"(tolerance {args.tolerance:.0%}):")
            for line in failures:
                print(f"  {line}")
            return 1
        print(f"\nno regression vs {args.compare} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
