"""Performance-regression micro-benchmark harness.

Run ``python benchmarks/perf/run_perf.py`` (optionally ``--quick``) from
the repository root; it writes ``BENCH_perf.json`` next to ``ROADMAP.md``
so successive PRs accumulate a perf trajectory.
"""
