"""The session-oriented public API.

A :class:`Session` is one transaction with its lifecycle managed by a
context manager::

    from repro import Database

    db = Database(protocol="taDOM3+", lock_depth=4, root_element="bib")
    with db.session("reader") as session:
        book = session.run(session.nodes.get_element_by_id("b42"))
        subtree = session.run(session.nodes.read_subtree(book))
    # clean exit -> committed; an exception -> rolled back and re-raised

``session.nodes`` is a transaction-bound view of the node manager: the
same operations as :class:`~repro.dom.node_manager.NodeManager`, minus
the explicit transaction argument.  ``session.run`` drives one operation
generator to completion (single-user mode); concurrent workloads still
hand the raw generators to a simulator or the threaded runtime.

``Database.begin/commit/abort`` remain available as thin delegates for
drivers that need explicit lifecycle control (the TaMix coordinator, the
concurrency examples).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Union

from repro.errors import (
    DeadlockAbort,
    LockTimeout,
    TransactionAborted,
    TransactionError,
)
from repro.locking.lock_manager import IsolationLevel
from repro.sched.simulator import run_sync
from repro.txn.transaction import Transaction, TxnState

#: Abort-reason tokens -> the typed exception the session raises when a
#: finished transaction is used again (same tokens the tracer records).
_ABORT_EXCEPTIONS = {
    "deadlock": DeadlockAbort,
    "timeout": LockTimeout,
}


class SessionNodes:
    """Transaction-bound view of the node manager.

    Attribute access returns the node-manager operation with the
    session's transaction pre-bound as the first argument, so callers
    write ``session.nodes.read_subtree(node)`` instead of threading the
    transaction handle through every call.  Bound methods are cached per
    session (repeated access returns the identical callable), and
    ``__dir__`` lists the operations for introspection/tab-completion.
    """

    __slots__ = ("_session", "_cache")

    def __init__(self, session: "Session"):
        self._session = session
        self._cache: Dict[str, object] = {}

    def __getattr__(self, name: str):
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        target = getattr(self._session.database.nodes, name)
        if not callable(target):
            return target
        txn = self._session.txn

        def bound(*args, **kwargs):
            return target(txn, *args, **kwargs)

        bound.__name__ = name
        self._cache[name] = bound
        return bound

    def __dir__(self):
        operations = [
            name for name in dir(self._session.database.nodes)
            if not name.startswith("_")
            and callable(getattr(self._session.database.nodes, name))
        ]
        return sorted(set(object.__dir__(self)) | set(operations))


class Session:
    """One transaction under context-manager lifecycle."""

    def __init__(
        self,
        database,
        name: str = "session",
        isolation: Optional[Union[IsolationLevel, str]] = None,
    ):
        self.database = database
        self.txn: Transaction = database.begin(name, isolation)
        self.nodes = SessionNodes(self)
        #: Simulated milliseconds consumed by ``run`` calls.
        self.elapsed_ms = 0.0

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if self.txn.state is TxnState.ACTIVE:
            if exc_type is None:
                self.database.commit(self.txn)
            else:
                reason = getattr(exc, "reason", "rollback")
                self.database.abort(self.txn, reason=reason)
        return False  # never swallow the exception

    def commit(self) -> None:
        """Commit early; the context-manager exit becomes a no-op."""
        self.database.commit(self.txn)

    def abort(self) -> None:
        """Roll back early; the context-manager exit becomes a no-op."""
        self.database.abort(self.txn)

    # -- driving ------------------------------------------------------------

    def run(self, operation: Generator, *, with_cost: bool = False) -> Any:
        """Drive one node-manager operation to completion (single-user).

        Run-call contract: ``Database.run`` always returns ``(value,
        cost_ms)``; ``Session.run`` returns the value alone and
        accumulates the simulated cost in :attr:`elapsed_ms` -- pass
        ``with_cost=True`` for the ``(value, cost_ms)`` pair without
        changing sessions' default ergonomics.  (``RemoteSession.run``
        honours the same keyword, with the server-measured service time
        as the cost.)

        Using a finished session raises *typed*: the transaction's
        abort-reason token maps back to
        :class:`~repro.errors.DeadlockAbort` /
        :class:`~repro.errors.LockTimeout` (generic aborts raise
        :class:`~repro.errors.TransactionAborted`), so callers and retry
        policies can branch on the cause without string matching.
        """
        self._require_active()
        result, elapsed = run_sync(operation)
        self.elapsed_ms += elapsed
        if with_cost:
            return result, elapsed
        return result

    def _require_active(self) -> None:
        state = self.txn.state
        if state is TxnState.ACTIVE:
            return
        if state is TxnState.ABORTED:
            reason = self.txn.abort_reason or "rollback"
            exc_class = _ABORT_EXCEPTIONS.get(reason, TransactionAborted)
            error = exc_class(
                f"session transaction {self.txn} was aborted "
                f"(reason: {reason})"
            )
            error.reason = reason
            raise error
        raise TransactionError(
            f"session transaction {self.txn} is {state.value}"
        )

    def query(self, path: str) -> Generator:
        """An XPath evaluation for :meth:`run` (lock-guarded).

        ``session.run(session.query("/bib/topics"))`` works identically
        on embedded and remote sessions.
        """
        from repro.query import QueryProcessor

        return QueryProcessor(self.database.nodes).evaluate(self.txn, path)

    # -- introspection -------------------------------------------------------

    @property
    def metrics(self) -> Dict[str, object]:
        """Per-session counters (lock traffic, I/O, simulated time)."""
        stats = self.txn.stats
        return {
            "state": self.txn.state.value,
            "isolation": self.txn.isolation.value,
            "operations": stats.operations,
            "lock_requests": stats.lock_requests,
            "covered_skips": stats.covered_skips,
            "blocked_waits": stats.blocked_waits,
            "fanout_locks": stats.fanout_locks,
            "logical_reads": stats.logical_reads,
            "physical_reads": stats.physical_reads,
            "nodes_visited": stats.nodes_visited,
            "elapsed_ms": self.elapsed_ms,
        }

    def __repr__(self) -> str:
        return (
            f"<Session {self.txn.name} txn={self.txn.txn_id} "
            f"{self.txn.state.value}>"
        )
