"""The session-oriented public API.

A :class:`Session` is one transaction with its lifecycle managed by a
context manager::

    from repro import Database

    db = Database(protocol="taDOM3+", lock_depth=4, root_element="bib")
    with db.session("reader") as session:
        book = session.run(session.nodes.get_element_by_id("b42"))
        subtree = session.run(session.nodes.read_subtree(book))
    # clean exit -> committed; an exception -> rolled back and re-raised

``session.nodes`` is a transaction-bound view of the node manager: the
same operations as :class:`~repro.dom.node_manager.NodeManager`, minus
the explicit transaction argument.  ``session.run`` drives one operation
generator to completion (single-user mode); concurrent workloads still
hand the raw generators to a simulator or the threaded runtime.

``Database.begin/commit/abort`` remain available as thin delegates for
drivers that need explicit lifecycle control (the TaMix coordinator, the
concurrency examples).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Union

from repro.errors import TransactionError
from repro.locking.lock_manager import IsolationLevel
from repro.sched.simulator import run_sync
from repro.txn.transaction import Transaction, TxnState


class SessionNodes:
    """Transaction-bound view of the node manager.

    Attribute access returns the node-manager operation with the
    session's transaction pre-bound as the first argument, so callers
    write ``session.nodes.read_subtree(node)`` instead of threading the
    transaction handle through every call.
    """

    __slots__ = ("_session",)

    def __init__(self, session: "Session"):
        self._session = session

    def __getattr__(self, name: str):
        target = getattr(self._session.database.nodes, name)
        if not callable(target):
            return target
        txn = self._session.txn

        def bound(*args, **kwargs):
            return target(txn, *args, **kwargs)

        bound.__name__ = name
        return bound


class Session:
    """One transaction under context-manager lifecycle."""

    def __init__(
        self,
        database,
        name: str = "session",
        isolation: Optional[Union[IsolationLevel, str]] = None,
    ):
        self.database = database
        self.txn: Transaction = database.begin(name, isolation)
        self.nodes = SessionNodes(self)
        #: Simulated milliseconds consumed by ``run`` calls.
        self.elapsed_ms = 0.0

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if self.txn.state is TxnState.ACTIVE:
            if exc_type is None:
                self.database.commit(self.txn)
            else:
                reason = getattr(exc, "reason", "rollback")
                self.database.abort(self.txn, reason=reason)
        return False  # never swallow the exception

    def commit(self) -> None:
        """Commit early; the context-manager exit becomes a no-op."""
        self.database.commit(self.txn)

    def abort(self) -> None:
        """Roll back early; the context-manager exit becomes a no-op."""
        self.database.abort(self.txn)

    # -- driving ------------------------------------------------------------

    def run(self, operation: Generator) -> Any:
        """Drive one node-manager operation to completion (single-user).

        Returns the operation's result; the simulated time it consumed
        accumulates in :attr:`elapsed_ms`.
        """
        if self.txn.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"session transaction {self.txn} is {self.txn.state.value}"
            )
        result, elapsed = run_sync(operation)
        self.elapsed_ms += elapsed
        return result

    # -- introspection -------------------------------------------------------

    @property
    def metrics(self) -> Dict[str, object]:
        """Per-session counters (lock traffic, I/O, simulated time)."""
        stats = self.txn.stats
        return {
            "state": self.txn.state.value,
            "isolation": self.txn.isolation.value,
            "operations": stats.operations,
            "lock_requests": stats.lock_requests,
            "covered_skips": stats.covered_skips,
            "blocked_waits": stats.blocked_waits,
            "fanout_locks": stats.fanout_locks,
            "logical_reads": stats.logical_reads,
            "physical_reads": stats.physical_reads,
            "nodes_visited": stats.nodes_visited,
            "elapsed_ms": self.elapsed_ms,
        }

    def __repr__(self) -> str:
        return (
            f"<Session {self.txn.name} txn={self.txn.txn_id} "
            f"{self.txn.state.value}>"
        )
