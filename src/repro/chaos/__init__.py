"""repro.chaos -- deterministic fault injection and retry policies.

Three cooperating pieces:

* **schedules** (:mod:`repro.chaos.schedule`): declarative
  :class:`FaultSchedule`\\ s -- per-operation probabilities or scripted
  exact operation indices, per injection site (page reads, page writes,
  lock acquires), plus built-in named schedules (``ci-small``, ...);
* the **engine** (:mod:`repro.chaos.engine`): :class:`ChaosEngine`
  hooks into ``BufferManager``/``LockManager`` (``None`` hooks cost one
  attribute check when chaos is off) and fires faults deterministically
  from a seed;
* **policies** (:mod:`repro.chaos.retry`): :class:`RetryPolicy`
  (bounded exponential backoff + deterministic jitter, restart budgets)
  and :class:`AdmissionPolicy`/:class:`AdmissionController` (queue/shed
  new work under restart pressure).

:func:`run_chaos` ties it together: a seeded TaMix workload under a
fault schedule, verified with the history oracle and bit-identical WAL
recovery.  See ``docs/robustness.md``.
"""

from repro.chaos.engine import ChaosEngine
from repro.chaos.retry import (
    ADMIT,
    QUEUE,
    SHED,
    AdmissionController,
    AdmissionPolicy,
    RetryPolicy,
)
from repro.chaos.schedule import (
    BUILTIN_SCHEDULES,
    FaultRule,
    FaultSchedule,
    load_schedule,
    schedule_names,
)

__all__ = [
    "FaultRule",
    "FaultSchedule",
    "BUILTIN_SCHEDULES",
    "load_schedule",
    "schedule_names",
    "ChaosEngine",
    "RetryPolicy",
    "AdmissionPolicy",
    "AdmissionController",
    "ADMIT",
    "QUEUE",
    "SHED",
    "ChaosRunReport",
    "run_chaos",
]


def __getattr__(name):
    # run_chaos lives in repro.chaos.runner, which imports repro.tamix --
    # and repro.tamix.coordinator imports repro.chaos.retry.  Loading the
    # runner lazily (PEP 562) keeps this package importable from inside
    # the coordinator without a cycle.
    if name in ("run_chaos", "ChaosRunReport"):
        from repro.chaos import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
