"""Seeded chaos runs: a TaMix workload under fault injection, verified.

:func:`run_chaos` builds a WAL-backed bib database, takes a base
checkpoint, installs a :class:`~repro.chaos.engine.ChaosEngine`, and
runs a CLUSTER1-style workload with the retry/admission layer enabled.
After the run it detaches the engine (verification must be fault-free),
rolls back every in-flight transaction, and checks the invariants the
PR-4 oracle defines:

* **serializability** -- the committed schedule recorded in the run's
  event trace passes :func:`repro.verify.verify_trace` (conflict
  serializability + lock-protocol conformance + two-phase discipline);
* **recovery** -- replaying the WAL over the base checkpoint yields a
  document bit-identical (:func:`repro.verify.canonical_image`) to the
  live post-rollback document;
* **durability accounting** -- the WAL carries exactly one COMMIT record
  per committed transaction (no lost commits).

The report's :meth:`~ChaosRunReport.fingerprint` digests the fault log,
retry counters, and final image, so two invocations with the same seed
can be compared for exact determinism (``repro chaos
--check-determinism``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import List, Optional, Union

from ..obs import Observability
from ..tamix.cluster import CLUSTER1_MIX, make_database
from ..tamix.coordinator import TaMixConfig, TaMixCoordinator
from ..tamix.metrics import RunResult
from ..txn.wal import LogKind, recover, take_checkpoint
from ..verify import canonical_image, verify_trace
from .engine import ChaosEngine
from .retry import AdmissionPolicy, RetryPolicy
from .schedule import FaultSchedule


@dataclass
class ChaosRunReport:
    """The outcome and verification verdicts of one chaos run."""

    seed: int
    schedule_name: str
    result: RunResult
    #: Per-site observed injection rate (fired faults / operations).
    injection_rates: dict = field(default_factory=dict)
    #: Per-(site, kind) fault counters.
    faults: dict = field(default_factory=dict)
    restarts: int = 0
    sheds: int = 0
    #: SHA-256 digest over fault log + final image + counters.
    fingerprint: str = ""
    oracle_ok: bool = False
    oracle_violations: List[str] = field(default_factory=list)
    accesses_checked: int = 0
    recovery_ok: bool = False
    commits_in_wal: int = 0
    committed: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "schedule": self.schedule_name,
            "ok": self.ok,
            "committed": self.committed,
            "aborted": self.result.aborted,
            "aborted_by_kind": self.result.aborted_by_kind,
            "restarts": self.restarts,
            "sheds": self.sheds,
            "faults": dict(sorted(self.faults.items())),
            "injection_rates": {
                site: round(rate, 6)
                for site, rate in sorted(self.injection_rates.items())
            },
            "oracle_ok": self.oracle_ok,
            "accesses_checked": self.accesses_checked,
            "recovery_ok": self.recovery_ok,
            "commits_in_wal": self.commits_in_wal,
            "violations": list(self.violations),
            "fingerprint": self.fingerprint,
        }

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        faults = sum(self.faults.values())
        return (
            f"chaos[{self.schedule_name} seed={self.seed}] {status}: "
            f"committed={self.committed} aborted={self.result.aborted} "
            f"restarts={self.restarts} sheds={self.sheds} "
            f"faults={faults} oracle={'ok' if self.oracle_ok else 'FAIL'} "
            f"recovery={'ok' if self.recovery_ok else 'FAIL'} "
            f"fingerprint={self.fingerprint[:16]}"
        )


def run_chaos(
    schedule: FaultSchedule,
    seed: int = 7,
    *,
    protocol: str = "taDOM3+",
    lock_depth: int = 4,
    isolation: str = "repeatable",
    scale: float = 0.05,
    run_duration_ms: float = 8_000.0,
    trace_path: Union[str, Path, None] = None,
    retry: Optional[RetryPolicy] = None,
    admission: Optional[AdmissionPolicy] = None,
) -> ChaosRunReport:
    """One seeded, verified chaos run.  See the module docstring."""
    retry = retry if retry is not None else RetryPolicy()
    admission = admission if admission is not None else AdmissionPolicy()
    with TemporaryDirectory(prefix="repro-chaos-") as tmp:
        trace = Path(trace_path) if trace_path is not None else (
            Path(tmp) / "chaos_trace.jsonl"
        )
        obs = Observability.enabled(capacity=1, sink=trace, access_events=True)
        database, info = make_database(
            protocol, lock_depth, isolation, scale=scale,
            observability=obs, enable_wal=True,
        )
        # Base checkpoint before any faults: recovery replays the WAL of
        # the *whole* chaotic run over this clean image.
        base = take_checkpoint(database.document, database.wal)

        engine = ChaosEngine(schedule, seed, retry=retry, obs=obs)
        engine.install(database)
        config = TaMixConfig(
            protocol=protocol,
            lock_depth=lock_depth,
            isolation=isolation,
            run_duration_ms=run_duration_ms,
            mix=dict(CLUSTER1_MIX),
            seed=seed,
            retry=retry,
            admission=admission,
        )
        result = TaMixCoordinator(database, info, config).run()

        # Verification is fault-free: detach the engine, then roll back
        # every in-flight transaction so the live document holds exactly
        # the committed effects (in-flight txns are recovery losers).
        engine.uninstall()
        for txn in list(database.transactions.active_transactions()):
            database.abort(txn, reason="rollback")
        obs.close()

        report = ChaosRunReport(
            seed=seed,
            schedule_name=schedule.name or "<inline>",
            result=result,
            injection_rates=engine.injection_rates(),
            faults=dict(engine.faults),
            restarts=result.restarts,
            sheds=result.sheds,
            committed=database.transactions.committed,
        )

        oracle = verify_trace(trace)
        report.oracle_ok = oracle.ok
        report.accesses_checked = oracle.accesses_checked
        if not oracle.ok:
            report.oracle_violations = [str(v) for v in oracle.violations]
            report.violations.append(
                f"history oracle found {len(oracle.violations)} violation(s)"
            )

        live_image = canonical_image(database.document)
        recovered_image = canonical_image(recover(base, database.wal))
        report.recovery_ok = recovered_image == live_image
        if not report.recovery_ok:
            report.violations.append(
                "recovered document differs from live committed state"
            )

        report.commits_in_wal = sum(
            1 for record in database.wal.records()
            if record.kind is LogKind.COMMIT
        )
        if report.commits_in_wal != report.committed:
            report.violations.append(
                f"WAL holds {report.commits_in_wal} COMMIT records but "
                f"{report.committed} transactions committed"
            )

        digest = hashlib.sha256()
        digest.update(engine.fingerprint().encode())
        digest.update(live_image)
        digest.update(str(report.committed).encode())
        digest.update(str(result.aborted).encode())
        digest.update(str(result.restarts).encode())
        digest.update(str(result.sheds).encode())
        report.fingerprint = digest.hexdigest()
        return report
