"""Declarative fault schedules for the deterministic chaos engine.

A :class:`FaultSchedule` is a list of :class:`FaultRule`\\ s.  Each rule
targets one injection *site* and describes one fault *kind*, fired either
probabilistically (``probability`` per operation at that site) or scripted
at exact operation counts (``at_ops``, 1-based per-site indices).  Given
the same schedule and engine seed, the chaos engine fires exactly the
same faults at exactly the same operations on every run.

Sites
-----
``page.read``
    A buffer fix (logical page read).  Kinds: ``transient`` (access
    fails, retryable), ``permanent`` (hard fault), ``latency`` (the read
    costs ``latency_ms`` extra simulated milliseconds).
``page.write``
    A physical page write (dirty eviction or flush).  Kinds:
    ``transient``, ``permanent``, ``latency``, and ``torn`` (the write
    is interrupted mid-page; the engine treats it as a transient failure
    whose retry rewrites the full page -- the page image is never left
    half-written because retries go through the same code path).
``lock.acquire``
    A lock-manager acquire step.  Kinds: ``timeout`` (inject a
    :class:`~repro.errors.LockTimeout`) and ``deadlock`` (the requesting
    transaction is declared a spurious deadlock victim via
    :class:`~repro.errors.DeadlockAbort`).
``net.request`` / ``net.reply``
    One shard-bound request frame / one shard reply frame on the shard
    transport (see :class:`repro.shard.chaos.ChaosTransport`).  Kinds:
    ``drop`` (the frame is lost; the transport retries with backoff-as-
    latency, deduplicated shard-side so retried ops stay at-most-once),
    ``torn`` (the frame is truncated and rejected by the receiver's
    codec; treated like a drop), ``duplicate`` (the frame is delivered
    twice; the duplicate's effect is absorbed by request-id dedup), and
    ``delay`` (``latency_ms`` extra simulated milliseconds on the
    round trip).
``shard.crash``
    A shard process boundary, consulted once per delivered ``EXEC``
    frame.  Kind: ``kill`` -- the target shard dies mid-transaction
    (real ``SIGKILL`` under the process transport, instance discard
    under the simulated one), losing all in-memory state; the
    supervisor restarts it from its persisted WAL.

Schedules serialize to/from plain dicts (and JSON) so they can live in
files next to sweep configs; a few named schedules ship built in
(``ci-small``, ``storage-heavy``, ``lock-storm``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..errors import ChaosError

#: Valid injection sites.
SITES = (
    "page.read", "page.write", "lock.acquire",
    "net.request", "net.reply", "shard.crash",
)

#: Valid fault kinds per site.
KINDS_BY_SITE = {
    "page.read": ("transient", "permanent", "latency"),
    "page.write": ("transient", "permanent", "latency", "torn"),
    "lock.acquire": ("timeout", "deadlock"),
    "net.request": ("drop", "delay", "duplicate", "torn"),
    "net.reply": ("drop", "delay", "duplicate", "torn"),
    "shard.crash": ("kill",),
}

#: Kinds whose rules must carry ``latency_ms > 0``.
_LATENCY_KINDS = ("latency", "delay")


@dataclass(frozen=True)
class FaultRule:
    """One fault source: a (site, kind) pair with a firing discipline.

    Exactly one of ``probability`` (per-op chance in [0, 1]) or
    ``at_ops`` (exact 1-based per-site op indices) should be non-trivial;
    both may be combined, in which case scripted ops fire regardless of
    the dice and the probability applies to every op.
    """

    site: str
    kind: str
    probability: float = 0.0
    at_ops: tuple = ()
    latency_ms: float = 0.0

    def __post_init__(self):
        if self.site not in SITES:
            raise ChaosError(f"unknown fault site {self.site!r}; expected one of {SITES}")
        if self.kind not in KINDS_BY_SITE[self.site]:
            raise ChaosError(
                f"fault kind {self.kind!r} invalid for site {self.site!r}; "
                f"expected one of {KINDS_BY_SITE[self.site]}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ChaosError(f"probability must be in [0, 1], got {self.probability}")
        if self.probability == 0.0 and not self.at_ops:
            raise ChaosError(f"rule {self.site}/{self.kind} fires never: "
                             "give it a probability or at_ops")
        if any((not isinstance(op, int)) or op < 1 for op in self.at_ops):
            raise ChaosError("at_ops must be 1-based operation indices")
        if self.kind in _LATENCY_KINDS and self.latency_ms <= 0.0:
            raise ChaosError(f"{self.kind} faults need latency_ms > 0")
        object.__setattr__(self, "at_ops", tuple(sorted(self.at_ops)))

    def to_dict(self) -> dict:
        data = {"site": self.site, "kind": self.kind}
        if self.probability:
            data["probability"] = self.probability
        if self.at_ops:
            data["at_ops"] = list(self.at_ops)
        if self.latency_ms:
            data["latency_ms"] = self.latency_ms
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultRule":
        unknown = set(data) - {"site", "kind", "probability", "at_ops", "latency_ms"}
        if unknown:
            raise ChaosError(f"unknown FaultRule fields: {sorted(unknown)}")
        try:
            return cls(
                site=data["site"],
                kind=data["kind"],
                probability=float(data.get("probability", 0.0)),
                at_ops=tuple(data.get("at_ops", ())),
                latency_ms=float(data.get("latency_ms", 0.0)),
            )
        except KeyError as exc:
            raise ChaosError(f"FaultRule missing required field {exc}") from exc


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered collection of fault rules, applied together.

    Rule order matters for determinism: for each operation the engine
    evaluates rules in schedule order and fires the first that matches
    (scripted ``at_ops`` hits take precedence over dice rolls).
    """

    rules: tuple = ()
    name: str = ""

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise ChaosError(f"expected FaultRule, got {type(rule).__name__}")

    def __bool__(self) -> bool:
        return bool(self.rules)

    def rules_for(self, site: str) -> tuple:
        return tuple(rule for rule in self.rules if rule.site == site)

    def to_dict(self) -> dict:
        data: dict = {"rules": [rule.to_dict() for rule in self.rules]}
        if self.name:
            data["name"] = self.name
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultSchedule":
        if not isinstance(data, Mapping) or "rules" not in data:
            raise ChaosError("fault schedule must be an object with a 'rules' list")
        rules = tuple(FaultRule.from_dict(rule) for rule in data["rules"])
        return cls(rules=rules, name=str(data.get("name", "")))

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        try:
            return cls.from_dict(json.loads(text))
        except json.JSONDecodeError as exc:
            raise ChaosError(f"fault schedule is not valid JSON: {exc}") from exc


def _builtin(name: str, rules: Iterable[FaultRule]) -> FaultSchedule:
    return FaultSchedule(rules=tuple(rules), name=name)


#: Named schedules available to the CLI (``repro chaos --schedule NAME``).
#: ``ci-small`` keeps every site at >= 1% injection so the CI smoke
#: exercises retries, torn-write recovery, and spurious victims while
#: still finishing quickly.
BUILTIN_SCHEDULES = {
    "ci-small": _builtin("ci-small", (
        FaultRule("page.read", "transient", probability=0.015),
        FaultRule("page.read", "latency", probability=0.01, latency_ms=4.0),
        FaultRule("page.write", "torn", probability=0.01),
        FaultRule("lock.acquire", "timeout", probability=0.01),
        FaultRule("lock.acquire", "deadlock", probability=0.005),
    )),
    "storage-heavy": _builtin("storage-heavy", (
        FaultRule("page.read", "transient", probability=0.05),
        FaultRule("page.read", "latency", probability=0.05, latency_ms=10.0),
        FaultRule("page.write", "transient", probability=0.03),
        FaultRule("page.write", "torn", probability=0.02),
    )),
    "lock-storm": _builtin("lock-storm", (
        FaultRule("lock.acquire", "timeout", probability=0.04),
        FaultRule("lock.acquire", "deadlock", probability=0.02),
    )),
    # The shard-plane acceptance schedule: one scripted mid-run shard
    # kill (supervised WAL restart) on a lightly lossy network.
    "shard-kill": _builtin("shard-kill", (
        FaultRule("shard.crash", "kill", at_ops=(40,)),
        FaultRule("net.request", "drop", probability=0.01),
        FaultRule("net.reply", "delay", probability=0.01, latency_ms=2.0),
    )),
    # Network-only shard schedule (no kills): drops, duplicates, torn
    # frames, and delays on both legs of every shard round trip.
    "shard-lossy-net": _builtin("shard-lossy-net", (
        FaultRule("net.request", "drop", probability=0.02),
        FaultRule("net.request", "duplicate", probability=0.01),
        FaultRule("net.request", "torn", probability=0.01),
        FaultRule("net.reply", "drop", probability=0.02),
        FaultRule("net.reply", "delay", probability=0.02, latency_ms=3.0),
    )),
}


def load_schedule(name_or_path: str) -> FaultSchedule:
    """Resolve a schedule by built-in name or JSON file path."""
    if name_or_path in BUILTIN_SCHEDULES:
        return BUILTIN_SCHEDULES[name_or_path]
    try:
        with open(name_or_path, "r", encoding="utf-8") as handle:
            return FaultSchedule.from_json(handle.read())
    except OSError as exc:
        raise ChaosError(
            f"unknown schedule {name_or_path!r}: not a built-in "
            f"({', '.join(sorted(BUILTIN_SCHEDULES))}) and not a readable file"
        ) from exc


def schedule_names() -> Sequence[str]:
    return tuple(sorted(BUILTIN_SCHEDULES))
