"""The deterministic fault-injection engine.

:class:`ChaosEngine` sits behind the hooks the storage and locking
layers expose (``BufferManager.chaos`` / ``LockManager.chaos``; ``None``
by default, so an uninstalled engine costs one attribute check per
operation).  For every operation at an injection site it advances a
per-site operation counter, consults the :class:`FaultSchedule` (scripted
``at_ops`` first, then the per-site dice), and either lets the operation
through, delays it, or fails it.

Determinism
-----------
Each site owns a private ``random.Random`` seeded from ``(seed, site)``,
advanced exactly once per operation at that site.  Fault decisions are
therefore a pure function of the engine seed and each site's operation
sequence -- independent of wall clock, interleaving of *other* sites, and
tracing.  Two runs of the same seeded workload fire identical faults at
identical operations; :attr:`fault_log` and :meth:`fingerprint` make
that checkable.

Failure semantics
-----------------
* ``transient`` (and ``torn`` writes, whose retry rewrites the whole
  page): the access is retried up to ``retry.max_attempts`` times; each
  retry is a fresh operation at the site (it may fault again) and
  accrues the policy's backoff as simulated latency.  Exhausted retries
  raise :class:`~repro.errors.TransientStorageError` -- the *access*
  failed, but the enclosing transaction is still restartable.
* ``permanent``: raises :class:`~repro.errors.PermanentStorageError`
  immediately.
* ``latency``: the access succeeds after ``latency_ms`` extra simulated
  milliseconds (returned to the buffer manager, which charges it through
  the cost model into simulated time).
* ``timeout``/``deadlock`` (lock site): raises
  :class:`~repro.errors.LockTimeout` /
  :class:`~repro.errors.DeadlockAbort`, which flow through the exact
  abort paths real conflicts use.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional

from ..errors import (
    DeadlockAbort,
    LockTimeout,
    PermanentStorageError,
    TransientStorageError,
)
from ..obs import CHAOS_FAULT, Observability, txn_label
from .retry import RetryPolicy
from .schedule import SITES, FaultSchedule


class ChaosEngine:
    """Seeded fault injector for the storage and lock layers."""

    def __init__(
        self,
        schedule: FaultSchedule,
        seed: int = 0,
        *,
        retry: Optional[RetryPolicy] = None,
        obs: Optional[Observability] = None,
    ):
        self.schedule = schedule
        self.seed = seed
        self.retry = retry if retry is not None else RetryPolicy()
        self.obs = obs if obs is not None else Observability.disabled()
        self.tracer = self.obs.tracer
        #: Per-site 1-based operation counters.
        self.ops = {site: 0 for site in SITES}
        #: Per-site fault counters, keyed ``f"{site}:{kind}"``.
        self.faults: dict = {}
        #: Chronological record of every fired fault:
        #: ``(site, op_index, kind, detail)`` tuples.
        self.fault_log: list = []
        self._rules = {site: schedule.rules_for(site) for site in SITES}
        self._rngs = {
            site: random.Random(f"{seed}:{site}") for site in SITES
        }
        self._installed_on: list = []

    # -- wiring ---------------------------------------------------------------

    def install(self, database) -> None:
        """Hook the engine into a database's buffer pool and lock manager."""
        database.document.buffer.chaos = self
        database.locks.chaos = self
        self._installed_on.append(database)

    def uninstall(self) -> None:
        """Detach from every database this engine was installed on.

        Final verification (canonical images, checkpointing, recovery)
        must run fault-free, so runners detach the engine first.
        """
        for database in self._installed_on:
            database.document.buffer.chaos = None
            database.locks.chaos = None
        self._installed_on.clear()

    def bind_observability(self, obs: Observability) -> None:
        self.obs = obs
        self.tracer = obs.tracer

    def wants(self, site: str) -> bool:
        """Does the schedule target ``site`` at all?

        Hook installers (``BufferManager.chaos`` / ``LockManager.chaos``)
        consult this so rule-less sites keep their plain fast path: an
        engine scheduled only against storage leaves the lock grant path
        untouched, and vice versa.  A skipped site never reaches
        ``_decide``, so its op counter stays at zero -- fault decisions
        are unaffected because each site owns a private RNG.
        """
        return bool(self._rules.get(site))

    # -- decision core --------------------------------------------------------

    def _decide(self, site: str):
        """Advance the site one operation; return the rule that fires.

        The site RNG is advanced exactly once per operation regardless of
        how many probabilistic rules exist (one uniform draw compared
        against cumulative rule probabilities), so adding a rule never
        perturbs the firing pattern of an unrelated site.
        """
        self.ops[site] += 1
        op = self.ops[site]
        rules = self._rules[site]
        if not rules:
            return None, op
        scripted = None
        cumulative = 0.0
        draw = self._rngs[site].random()
        chosen = None
        for rule in rules:
            if scripted is None and op in rule.at_ops:
                scripted = rule
            if chosen is None and rule.probability:
                cumulative += rule.probability
                if draw < cumulative:
                    chosen = rule
        fired = scripted if scripted is not None else chosen
        return fired, op

    def _record(self, site: str, op: int, kind: str, **detail) -> None:
        key = f"{site}:{kind}"
        self.faults[key] = self.faults.get(key, 0) + 1
        self.fault_log.append((site, op, kind, tuple(sorted(detail.items()))))
        if self.tracer.enabled:
            self.tracer.emit(CHAOS_FAULT, site=site, fault=kind, op=op, **detail)

    # -- storage hooks --------------------------------------------------------

    def page_read(self, page_id: int) -> float:
        """Called by ``BufferManager.fix``; returns extra latency in ms."""
        return self._page_access("page.read", page_id)

    def page_write(self, page_id: int) -> float:
        """Called on dirty eviction and flush; returns extra latency in ms."""
        return self._page_access("page.write", page_id)

    def _page_access(self, site: str, page_id: int) -> float:
        delay = 0.0
        for attempt in range(1, self.retry.max_attempts + 1):
            rule, op = self._decide(site)
            if rule is None:
                return delay
            self._record(site, op, rule.kind, page=page_id)
            if rule.kind == "latency":
                return delay + rule.latency_ms
            if rule.kind == "permanent":
                raise PermanentStorageError(
                    f"injected permanent fault on {site} page {page_id} (op {op})"
                )
            # transient / torn: back off and retry the access.
            if attempt < self.retry.max_attempts:
                delay += self.retry.backoff_ms(attempt, self._rngs[site])
        raise TransientStorageError(
            f"injected transient fault on {site} page {page_id} persisted "
            f"past {self.retry.max_attempts} attempts"
        )

    # -- network/process hooks ------------------------------------------------

    def net_request(self, shard_id: int):
        """One shard-bound request frame; returns the fired rule (or None).

        Called by :class:`repro.shard.chaos.ChaosTransport` once per
        delivery attempt.  The *transport* applies the fault semantics
        (drop/torn retry with dedup, duplicate delivery, delay-as-cost);
        the engine only decides and records, so sim and process
        transports make byte-identical decisions.
        """
        return self._net("net.request", shard_id)

    def net_reply(self, shard_id: int):
        """One shard reply frame; returns the fired rule (or None)."""
        return self._net("net.reply", shard_id)

    def _net(self, site: str, shard_id: int):
        rule, op = self._decide(site)
        if rule is None:
            return None
        self._record(site, op, rule.kind, shard=int(shard_id))
        return rule

    def net_backoff_ms(self, site: str, attempt: int) -> float:
        """Backoff (as simulated latency) for a retried dropped frame.

        Drawn from the site's own RNG so retry jitter never perturbs
        another site's fault stream.
        """
        return self.retry.backoff_ms(attempt, self._rngs[site])

    def shard_kill(self, shard_id: int) -> bool:
        """One ``shard.crash`` decision point (per delivered EXEC frame).

        Returns True when the schedule kills the target shard; the
        transport's supervisor performs the actual kill + WAL restart.
        """
        rule, op = self._decide("shard.crash")
        if rule is None:
            return False
        self._record("shard.crash", op, rule.kind, shard=int(shard_id))
        return True

    # -- lock hook ------------------------------------------------------------

    def lock_request(self, txn: object, step) -> None:
        """Called by ``LockManager._acquire_step`` before the table request."""
        rule, op = self._decide("lock.acquire")
        if rule is None:
            return
        resource = (step.space, str(step.key))
        self._record("lock.acquire", op, rule.kind,
                     txn=txn_label(txn), resource=f"{step.space}:{step.key}")
        if rule.kind == "timeout":
            raise LockTimeout(
                f"injected lock timeout on {step.space}:{step.key}",
                resource=resource,
            )
        raise DeadlockAbort(
            f"injected deadlock victim at {step.space}:{step.key}"
        )

    # -- reporting ------------------------------------------------------------

    def injection_rates(self) -> dict:
        """Observed fault fraction per site (fired faults / operations)."""
        rates = {}
        for site in SITES:
            ops = self.ops[site]
            fired = sum(count for key, count in self.faults.items()
                        if key.startswith(site + ":"))
            rates[site] = fired / ops if ops else 0.0
        return rates

    def fingerprint(self) -> str:
        """SHA-256 over the chronological fault log (determinism check)."""
        digest = hashlib.sha256()
        for entry in self.fault_log:
            digest.update(repr(entry).encode("utf-8"))
        return digest.hexdigest()
