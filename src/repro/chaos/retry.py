"""Retry and admission policies for fault-tolerant execution.

:class:`RetryPolicy` decides *whether* and *how long* to back off before
retrying a transiently failed unit of work (a transaction restart after
:class:`~repro.errors.DeadlockAbort`/:class:`~repro.errors.LockTimeout`,
or a single page access inside the chaos engine).  Backoff is bounded
exponential with deterministic jitter: the caller supplies the seeded
``random.Random`` so the whole run stays reproducible.

:class:`AdmissionController` implements coordinator-level graceful
degradation: when the number of work items currently in restart state
crosses ``max_pressure``, new arrivals are queued (up to
``max_queue_waits`` backoffs) and then shed.  Decisions are purely a
function of observed pressure, so seeded runs reproduce them exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``backoff_ms(attempt, rng)`` returns the delay before retry number
    ``attempt`` (1-based): ``min(max_backoff_ms, base_backoff_ms *
    multiplier ** (attempt - 1))``, scaled by a jitter factor drawn
    uniformly from [1 - jitter, 1].  ``max_restarts`` caps transaction
    restarts per work item; ``max_attempts`` caps low-level access
    retries inside the chaos engine.
    """

    max_restarts: int = 8
    max_attempts: int = 3
    base_backoff_ms: float = 2.0
    multiplier: float = 2.0
    max_backoff_ms: float = 64.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.max_restarts < 0 or self.max_attempts < 1:
            raise ValueError("max_restarts must be >= 0 and max_attempts >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.base_backoff_ms < 0 or self.max_backoff_ms < 0 or self.multiplier < 1.0:
            raise ValueError("backoff parameters must be non-negative, multiplier >= 1")

    def backoff_ms(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry ``attempt`` (1-based), with jitter."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.max_backoff_ms, self.base_backoff_ms * self.multiplier ** (attempt - 1))
        if self.jitter == 0.0:
            return raw
        return raw * (1.0 - self.jitter * rng.random())

    def allows_restart(self, restarts_done: int) -> bool:
        return restarts_done < self.max_restarts


#: Admission decisions, in the order they are tried.
ADMIT = "admit"
QUEUE = "queue"
SHED = "shed"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Configuration of coordinator-level admission control.

    Immutable so it can sit in a :class:`~repro.tamix.TaMixConfig` and be
    shared across runs; the per-run state lives in the
    :class:`AdmissionController` built from it.
    """

    max_pressure: int = 4
    max_queue_waits: int = 3
    queue_backoff_ms: float = 10.0

    def __post_init__(self):
        if self.max_pressure < 1:
            raise ValueError("max_pressure must be >= 1")
        if self.max_queue_waits < 0 or self.queue_backoff_ms < 0:
            raise ValueError("max_queue_waits and queue_backoff_ms must be >= 0")

    def controller(self) -> "AdmissionController":
        return AdmissionController(self)


class AdmissionController:
    """Shed or queue new work when restart pressure is high.

    *Pressure* counts work items currently in restart state (first abort
    seen, not yet committed or given up on).  ``admit()`` returns
    ``"admit"`` below ``policy.max_pressure``; at or above it, a work
    item may wait out up to ``policy.max_queue_waits`` backoffs
    (``"queue"``) before being shed (``"shed"``).  Queue waits are
    tracked per work item via the count the caller passes back in, so
    one hot item cannot starve the rest of the arrival stream.
    """

    def __init__(self, policy: AdmissionPolicy = AdmissionPolicy()):
        self.policy = policy
        self.pressure = 0
        self.sheds = 0
        self.queue_waits = 0

    def admit(self, waits_so_far: int = 0) -> str:
        """Decide for one arrival; callers track ``waits_so_far`` per item."""
        if self.pressure < self.policy.max_pressure:
            return ADMIT
        if waits_so_far < self.policy.max_queue_waits:
            self.queue_waits += 1
            return QUEUE
        self.sheds += 1
        return SHED

    def enter_restart(self):
        """A work item saw its first abort and is now restarting."""
        self.pressure += 1

    def leave_restart(self):
        """A restarting work item committed or was given up on."""
        if self.pressure > 0:
            self.pressure -= 1
