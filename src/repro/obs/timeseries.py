"""Windowed metric time-series: the live-telemetry data model.

A :class:`WindowedSeries` turns the cumulative instruments of a
:class:`~repro.obs.metrics.MetricsRegistry` into a fixed-capacity ring
of per-window snapshots:

* **counters** export the per-window *delta* (requests served in this
  second, not since boot);
* **gauges** export their *last value* at the window edge (pool sizes,
  hit ratios);
* **histograms** export the per-window delta of count/total and each
  bucket -- the merge of every observation that landed in the window;
* **samplers** drain raw latency samples accumulated during the window
  into a nearest-rank SLO summary (p50/p99/p999), so percentile series
  are exact over the window, not estimated from buckets.

The series never touches the instruments' hot paths: a sampler task (the
server's loop-lag probe, the simulator's tick process) calls
:meth:`WindowedSeries.tick` once per window, which takes one typed
snapshot and diffs it against the previous one.

Determinism: the clock is injected.  On a live server it is the server's
monotonic millisecond clock; under the discrete-event simulator it is
``lambda: sim.now``, so a seeded sim run renders byte-identical series
(the acceptance bar for ``repro telemetry --json``).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry

#: Payload schema version for TELEMETRY frames and ``to_dict`` images.
SERIES_VERSION = 1


def _wall_clock_ms() -> float:
    return time.monotonic() * 1000.0


class WindowSnapshot:
    """One closed window: deltas, last-values, and drained SLO samples."""

    __slots__ = (
        "index", "t_start_ms", "t_end_ms",
        "counters", "gauges", "histograms", "slo",
    )

    def __init__(self, index: int, t_start_ms: float, t_end_ms: float,
                 counters: Dict[str, int], gauges: Dict[str, Any],
                 histograms: Dict[str, Dict[str, Any]],
                 slo: Dict[str, Dict[str, float]]):
        self.index = index
        self.t_start_ms = t_start_ms
        self.t_end_ms = t_end_ms
        self.counters = counters
        self.gauges = gauges
        self.histograms = histograms
        self.slo = slo

    @property
    def duration_ms(self) -> float:
        return self.t_end_ms - self.t_start_ms

    def as_dict(self) -> Dict[str, Any]:
        """A JSON/wire-safe image (plain dicts, rounded floats)."""
        return {
            "index": self.index,
            "t_start_ms": round(self.t_start_ms, 6),
            "t_end_ms": round(self.t_end_ms, 6),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: dict(hist) for name, hist in self.histograms.items()
            },
            "slo": {name: dict(summary) for name, summary in self.slo.items()},
        }

    def __repr__(self) -> str:
        return (
            f"<WindowSnapshot #{self.index} "
            f"[{self.t_start_ms:.0f}..{self.t_end_ms:.0f}ms] "
            f"{len(self.counters)}c/{len(self.gauges)}g/"
            f"{len(self.histograms)}h>"
        )


def _round_value(value: Any) -> Any:
    return round(value, 6) if isinstance(value, float) else value


def _histogram_delta(current: Dict[str, Any],
                     previous: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Per-window histogram merge: count/total/bucket deltas.

    ``max`` is cumulative-only (a non-monotonic statistic cannot be
    diffed), so windows carry count/total/mean/buckets.
    """
    prev_count = previous["count"] if previous else 0
    prev_total = previous["total"] if previous else 0.0
    prev_buckets = previous["buckets"] if previous else {}
    count = current["count"] - prev_count
    total = current["total"] - prev_total
    buckets = {
        key: value - prev_buckets.get(key, 0)
        for key, value in current["buckets"].items()
    }
    return {
        "count": count,
        "total": round(total, 6),
        "mean": round(total / count, 6) if count else 0.0,
        "buckets": buckets,
    }


class WindowedSeries:
    """A fixed-capacity ring of :class:`WindowSnapshot`.

    ``source`` is a :class:`~repro.obs.metrics.MetricsRegistry` or a
    zero-argument callable returning a typed snapshot (the server merges
    its own registry with the database's through such a callable).
    ``clock`` returns milliseconds; inject the simulator's clock for
    deterministic series.  The caller owns the cadence: call
    :meth:`tick` once per window.
    """

    def __init__(
        self,
        source: Union[MetricsRegistry,
                      Callable[[], Dict[str, Dict[str, Any]]]],
        *,
        window_ms: float = 1_000.0,
        capacity: int = 120,
        clock: Optional[Callable[[], float]] = None,
    ):
        if window_ms <= 0.0:
            raise ValueError("window_ms must be positive")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if isinstance(source, MetricsRegistry):
            self._snapshot = source.typed_snapshot
        else:
            self._snapshot = source
        self.window_ms = float(window_ms)
        self.capacity = int(capacity)
        self._clock = clock if clock is not None else _wall_clock_ms
        self._windows: deque = deque(maxlen=self.capacity)
        self._samplers: List[Tuple[str, Callable[[], List[float]]]] = []
        self._previous: Optional[Dict[str, Dict[str, Any]]] = None
        self._window_t0 = self._clock()
        #: Windows ever ticked (>= len(windows()) once the ring wraps).
        self.total_windows = 0

    def add_sampler(self, name: str,
                    drain: Callable[[], List[float]]) -> None:
        """Register a per-window sample stream.

        ``drain()`` must return (and forget) the samples accumulated
        since the last tick; each window summarizes them with
        :func:`~repro.tamix.metrics.latency_slo` under ``slo[name]``.
        """
        self._samplers.append((str(name), drain))

    def tick(self) -> WindowSnapshot:
        """Close the current window: snapshot, diff, append, return."""
        now = self._clock()
        snapshot = self._snapshot()
        previous = self._previous or {}
        prev_counters = previous.get("counters", {})
        prev_histograms = previous.get("histograms", {})
        counters = {
            name: value - prev_counters.get(name, 0)
            for name, value in snapshot["counters"].items()
        }
        gauges = {
            name: _round_value(value)
            for name, value in snapshot["gauges"].items()
        }
        histograms = {
            name: _histogram_delta(hist, prev_histograms.get(name))
            for name, hist in snapshot["histograms"].items()
        }
        # Imported lazily: repro.tamix pulls in the storage layer, which
        # imports repro.obs -- a module-level import would be circular.
        from repro.tamix.metrics import latency_slo

        slo = {
            name: latency_slo([round(s, 6) for s in drain()])
            for name, drain in self._samplers
        }
        window = WindowSnapshot(
            self.total_windows, self._window_t0, now,
            counters, gauges, histograms, slo,
        )
        self._windows.append(window)
        self._previous = snapshot
        self._window_t0 = now
        self.total_windows += 1
        return window

    def windows(self) -> List[WindowSnapshot]:
        """Retained windows, oldest first (at most ``capacity``)."""
        return list(self._windows)

    def latest(self) -> Optional[WindowSnapshot]:
        return self._windows[-1] if self._windows else None

    def snapshot_at_last_tick(self) -> Optional[Dict[str, Dict[str, Any]]]:
        """The cumulative typed snapshot taken by the most recent tick.

        Deterministic under a simulated clock (unlike a fresh snapshot,
        which would observe whatever happened since); ``None`` before
        the first tick.
        """
        return self._previous

    def to_dict(self) -> Dict[str, Any]:
        """The TELEMETRY payload: ring + cumulative snapshot."""
        return {
            "version": SERIES_VERSION,
            "window_ms": self.window_ms,
            "capacity": self.capacity,
            "total_windows": self.total_windows,
            "windows": [window.as_dict() for window in self._windows],
            "snapshot": self.snapshot_at_last_tick(),
        }

    def __len__(self) -> int:
        return len(self._windows)

    def __repr__(self) -> str:
        return (
            f"<WindowedSeries window={self.window_ms:g}ms "
            f"{len(self._windows)}/{self.capacity} windows "
            f"(total {self.total_windows})>"
        )
