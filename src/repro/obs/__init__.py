"""repro.obs -- the cross-cutting observability layer.

Two cooperating pieces:

* the **event tracer** (:mod:`repro.obs.tracer`): typed events for the
  lock pipeline, deadlock detector, transaction lifecycle, and buffer
  manager, kept in a ring buffer and optionally mirrored to a JSONL sink;
* the **metrics registry** (:mod:`repro.obs.metrics`): counters, gauges,
  and fixed-bucket histograms that every runtime component publishes
  into.

:class:`Observability` bundles one tracer and one registry; a
:class:`~repro.database.Database` owns one bundle and hands it to the
lock manager, deadlock detector, transaction manager, and buffer pool.
``Observability.disabled()`` (the default) uses the no-op tracer, whose
cost at every instrumentation site is a single attribute check.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional, Union

from repro.obs.events import (  # noqa: F401  (re-exported taxonomy)
    ADMISSION_DECISION,
    BUFFER_EVICT,
    BUFFER_FIX,
    BUFFER_MISS,
    CHAOS_FAULT,
    DEADLOCK_DETECTED,
    EVENT_KINDS,
    LOCK_BLOCK,
    LOCK_CONVERT,
    LOCK_ESCALATE,
    LOCK_GRANT,
    LOCK_RELEASE,
    LOCK_REQUEST,
    LOCK_TIMEOUT,
    OP_ACCESS,
    RUN_INFO,
    SPAN_BEGIN,
    SPAN_END,
    TXN_ABORT,
    TXN_BEGIN,
    TXN_COMMIT,
    TXN_RETRY,
    TraceEvent,
    txn_label,
)
from repro.obs.analysis import (
    Hotspots,
    TraceAnalysis,
    WaitRecord,
    splid_prefix,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    WAIT_TIME_BUCKETS_MS,
)
from repro.obs.prom import (
    render_prometheus,
    render_registry,
    sanitize_metric_name,
)
from repro.obs.spans import Span, TxnTimeline, build_timelines
from repro.obs.timeseries import (
    SERIES_VERSION,
    WindowSnapshot,
    WindowedSeries,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    RingTracer,
    aggregate,
    load_jsonl,
)

__all__ = [
    "EVENT_KINDS",
    "OP_ACCESS",
    "RUN_INFO",
    "CHAOS_FAULT",
    "TXN_RETRY",
    "ADMISSION_DECISION",
    "SPAN_BEGIN",
    "SPAN_END",
    "TraceEvent",
    "txn_label",
    "NullTracer",
    "NULL_TRACER",
    "RingTracer",
    "load_jsonl",
    "aggregate",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "WAIT_TIME_BUCKETS_MS",
    "SERIES_VERSION",
    "WindowSnapshot",
    "WindowedSeries",
    "render_prometheus",
    "render_registry",
    "sanitize_metric_name",
    "Observability",
    "Span",
    "TxnTimeline",
    "build_timelines",
    "TraceAnalysis",
    "WaitRecord",
    "Hotspots",
    "splid_prefix",
]


class Observability:
    """One tracer + one metrics registry, wired through a database."""

    def __init__(
        self,
        tracer: Optional["NullTracer | RingTracer"] = None,
        metrics: Optional[MetricsRegistry] = None,
        *,
        access_events: bool = False,
    ):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: When set, the node manager also traces one ``op.access`` event
        #: per logical data access (and the TaMix coordinator a
        #: ``run.info`` manifest) -- the inputs of the history oracle in
        #: :mod:`repro.verify`.  Off by default so existing traces stay
        #: byte-identical.
        self.access_events = access_events

    @classmethod
    def disabled(cls) -> "Observability":
        """No-op tracing; metrics registry still collectable on demand."""
        return cls(NULL_TRACER)

    @classmethod
    def enabled(
        cls,
        capacity: Optional[int] = 65_536,
        *,
        sink: Union[str, Path, None] = None,
        access_events: bool = False,
    ) -> "Observability":
        """Ring-buffer tracing (``capacity=None`` keeps every event)."""
        return cls(RingTracer(capacity, sink=sink), access_events=access_events)

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    def bind_clock(self, clock: Callable[[], float]) -> None:
        if self.tracer.enabled:
            self.tracer.bind_clock(clock)

    def close(self) -> None:
        self.tracer.close()
