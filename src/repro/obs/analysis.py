"""Trace analysis: blocking chains, hotspots, critical-path breakdowns.

This is the layer that turns a raw event trace into answers to "why is
protocol X slow":

* **wait records** -- every blocking lock wait, with the holders that
  blocked it and the wait-for *chain* at block time (A waits for B, B
  itself waits for C, ...);
* **hotspot attribution** -- wait time grouped by SPLID subtree prefix,
  by requested lock mode, and by conversion edge (``held -> requested``);
* **critical path** -- per transaction, where the time went: lock wait
  vs. simulated I/O vs. compute vs. think time between operations.

The analysis is a pure replay: it works identically on an in-memory
:class:`~repro.obs.tracer.RingTracer` and on events loaded back from a
JSONL sink (:func:`~repro.obs.tracer.load_jsonl`), which the test suite
holds to account (round-trip fidelity).

Holder bookkeeping note: ``lock.release`` events with operation scope
(short read locks under isolation level *committed*) carry only a count,
not the keys, so holder sets may over-approximate between an operation
release and the transaction's end.  Blocking chains are derived from the
holders *at block time*, which the lock table reported precisely, so the
approximation only widens attribution, never invents a wait.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.events import (
    LOCK_BLOCK,
    LOCK_GRANT,
    LOCK_RELEASE,
    LOCK_TIMEOUT,
    SPAN_BEGIN,
    SPAN_END,
    TXN_ABORT,
    TXN_COMMIT,
    TraceEvent,
)
from repro.obs.spans import TxnTimeline, build_timelines
from repro.obs.tracer import RingTracer, load_jsonl

_SPLID_RE = re.compile(r"\d+(?:\.\d+)*")


def splid_prefix(key: str, depth: int = 2) -> Optional[str]:
    """The leading ``depth`` divisions of the first SPLID in ``key``.

    Works for plain node keys (``1.3.5``) and for edge/level keys whose
    string form embeds a SPLID (``(Splid(1.3.5), <EdgeRole...>)``).
    Returns ``None`` when the key carries no SPLID (ID-index keys).
    """
    match = _SPLID_RE.search(key)
    if match is None:
        return None
    return ".".join(match.group(0).split(".")[:depth])


@dataclass
class WaitRecord:
    """One blocking lock wait, reconstructed from the trace."""

    txn: str
    space: str
    key: str
    mode: str
    begin_ts: float
    begin_seq: int
    #: Mode already held when the wait began (conversion edge), if any.
    from_mode: Optional[str] = None
    conversion: bool = False
    #: Holders of the contested resource at block time, sorted.
    blockers: Tuple[str, ...] = ()
    #: Wait-for chain at block time: this txn, then the holder it waits
    #: for, then (if that holder was itself waiting) the next hop, ...
    chain: Tuple[str, ...] = ()
    end_ts: Optional[float] = None
    end_seq: Optional[int] = None
    timed_out: bool = False

    @property
    def closed(self) -> bool:
        return self.end_ts is not None

    @property
    def waited_ms(self) -> float:
        if self.end_ts is None:
            return 0.0
        return self.end_ts - self.begin_ts

    @property
    def conversion_edge(self) -> Optional[str]:
        if self.from_mode is None:
            return None
        return f"{self.from_mode}->{self.mode}"


@dataclass
class Hotspots:
    """Wait time attributed three ways (all closed waits, in ms)."""

    by_prefix: Dict[str, float] = field(default_factory=dict)
    by_mode: Dict[str, float] = field(default_factory=dict)
    by_conversion: Dict[str, float] = field(default_factory=dict)

    def top_prefixes(self, limit: int = 10) -> List[Tuple[str, float]]:
        return sorted(
            self.by_prefix.items(), key=lambda item: (-item[1], item[0])
        )[:limit]


class TraceAnalysis:
    """Replay a trace into timelines, wait records, and attributions."""

    def __init__(self, events: Sequence[TraceEvent], *, prefix_depth: int = 2):
        self.events: Tuple[TraceEvent, ...] = tuple(events)
        self.prefix_depth = prefix_depth
        self.timelines: Dict[str, TxnTimeline] = build_timelines(self.events)
        #: Closed waits in close (grant/timeout) order -- the same order
        #: the lock manager observed granted waits into its histogram.
        self.waits: List[WaitRecord] = []
        #: Waits still open when the trace ended (parked at the horizon).
        self.open_waits: List[WaitRecord] = []
        self._replay()

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_tracer(cls, tracer: RingTracer, **kwargs) -> "TraceAnalysis":
        return cls(tracer.events(), **kwargs)

    @classmethod
    def from_jsonl(cls, path: Union[str, Path], **kwargs) -> "TraceAnalysis":
        return cls(load_jsonl(path), **kwargs)

    # -- replay --------------------------------------------------------------

    def _replay(self) -> None:
        holders: Dict[Tuple[str, str], Dict[str, str]] = {}
        held_by_txn: Dict[str, set] = {}
        pending_block: Dict[str, dict] = {}
        open_by_txn: Dict[str, WaitRecord] = {}
        last_timeout_seq: Dict[str, int] = {}

        for event in self.events:
            kind = event.kind
            label = event.txn
            if kind == LOCK_GRANT:
                resource = (str(event.data["space"]), str(event.data["key"]))
                holders.setdefault(resource, {})[label] = str(event.data["mode"])
                held_by_txn.setdefault(label, set()).add(resource)
            elif kind in (TXN_COMMIT, TXN_ABORT):
                for resource in held_by_txn.pop(label, ()):
                    owners = holders.get(resource)
                    if owners is not None:
                        owners.pop(label, None)
                        if not owners:
                            del holders[resource]
            elif kind == LOCK_BLOCK:
                resource = (str(event.data["space"]), str(event.data["key"]))
                owners = holders.get(resource, {})
                pending_block[label] = {
                    "blockers": tuple(sorted(
                        owner for owner in owners if owner != label
                    )),
                    "from_mode": event.data.get("from_mode"),
                    "conversion": bool(event.data.get("conversion", False)),
                }
            elif kind == LOCK_TIMEOUT:
                last_timeout_seq[label] = event.seq
            elif kind == SPAN_BEGIN and event.data.get("cat") == "wait":
                block = pending_block.pop(label, {})
                record = WaitRecord(
                    txn=label,
                    space=str(event.data.get("space", "")),
                    key=str(event.data.get("key", "")),
                    mode=str(event.data.get("mode", "")),
                    begin_ts=event.ts,
                    begin_seq=event.seq,
                    from_mode=block.get("from_mode"),
                    conversion=block.get("conversion", False),
                    blockers=block.get("blockers", ()),
                )
                record.chain = self._chain_at_block(record, open_by_txn)
                open_by_txn[label] = record
            elif kind == SPAN_END and event.data.get("cat") == "wait":
                record = open_by_txn.pop(label, None)
                if record is None:
                    continue  # begin lost to ring overflow
                record.end_ts = event.ts
                record.end_seq = event.seq
                record.timed_out = (
                    last_timeout_seq.get(label, -1) > record.begin_seq
                )
                self.waits.append(record)
            elif kind == LOCK_RELEASE:
                # Operation-scope releases carry no keys (see module
                # docstring); transaction scope is handled at txn end.
                pass
        self.open_waits = list(open_by_txn.values())

    @staticmethod
    def _chain_at_block(
        record: WaitRecord, open_by_txn: Dict[str, WaitRecord]
    ) -> Tuple[str, ...]:
        """Follow first-blocker links through currently-waiting holders."""
        chain = [record.txn]
        seen = {record.txn}
        current = record
        while current.blockers:
            nxt = current.blockers[0]
            if nxt in seen:
                break  # deadlock cycle; the detector reports it separately
            chain.append(nxt)
            seen.add(nxt)
            following = open_by_txn.get(nxt)
            if following is None:
                break  # the holder is running, chain ends here
            current = following
        return tuple(chain)

    # -- derived views -------------------------------------------------------

    @property
    def granted_waits(self) -> List[WaitRecord]:
        return [record for record in self.waits if not record.timed_out]

    @property
    def total_wait_ms(self) -> float:
        """Sum of granted wait times, in grant order.

        Bit-exact against the lock manager's ``lock.wait_ms`` histogram
        total for the same run: both sum the identical clock differences
        in the identical (grant) order.
        """
        total = 0.0
        for record in self.waits:
            if not record.timed_out:
                total += record.waited_ms
        return total

    def matches_histogram(self, histogram: Dict[str, object]) -> bool:
        """Check this analysis against a ``lock.wait_ms`` histogram dict
        (the :meth:`~repro.obs.metrics.Histogram.as_dict` shape)."""
        return (
            len(self.granted_waits) == int(histogram["count"])
            and round(self.total_wait_ms, 6) == float(histogram["total"])
        )

    def hotspots(self) -> Hotspots:
        spots = Hotspots()
        for record in self.waits:
            waited = record.waited_ms
            prefix = splid_prefix(record.key, self.prefix_depth)
            group = prefix if prefix is not None else record.space
            spots.by_prefix[group] = spots.by_prefix.get(group, 0.0) + waited
            spots.by_mode[record.mode] = (
                spots.by_mode.get(record.mode, 0.0) + waited
            )
            edge = record.conversion_edge
            if edge is not None:
                spots.by_conversion[edge] = (
                    spots.by_conversion.get(edge, 0.0) + waited
                )
        return spots

    def blocking_chains(self, min_length: int = 3) -> List[WaitRecord]:
        """Waits whose block-time wait-for chain had >= ``min_length``
        members (the convoys worth staring at), longest first."""
        chains = [
            record for record in self.waits + self.open_waits
            if len(record.chain) >= min_length
        ]
        chains.sort(key=lambda r: (-len(r.chain), r.begin_seq))
        return chains

    # -- critical path -------------------------------------------------------

    def critical_path(self, label: str) -> Dict[str, float]:
        """Where one transaction's wall time went (all values in ms).

        ``total = lock_wait + io + compute + think``: lock wait from the
        wait spans, I/O from the op spans' buffer attribution, compute as
        the in-operation remainder, think as the gap between operations
        (workload pacing, and rollback work for aborted transactions).
        """
        line = self.timelines[label]
        ops_ms = sum(span.duration_ms for span in line.ops())
        lock_wait = line.lock_wait_ms
        io = line.io_ms
        compute = max(0.0, ops_ms - lock_wait - io)
        think = max(0.0, line.duration_ms - ops_ms)
        return {
            "total_ms": line.duration_ms,
            "lock_wait_ms": lock_wait,
            "io_ms": io,
            "compute_ms": compute,
            "think_ms": think,
        }

    def critical_path_summary(
        self, outcomes: Iterable[str] = ("committed",)
    ) -> Dict[str, float]:
        """Aggregate critical path over transactions with the given
        outcomes (default: committed only, the throughput-relevant set)."""
        wanted = set(outcomes)
        summary = {
            "txn_count": 0,
            "total_ms": 0.0,
            "lock_wait_ms": 0.0,
            "io_ms": 0.0,
            "compute_ms": 0.0,
            "think_ms": 0.0,
        }
        for label, line in self.timelines.items():
            if line.outcome not in wanted:
                continue
            breakdown = self.critical_path(label)
            summary["txn_count"] += 1
            for key, value in breakdown.items():
                summary[key] += value
        return summary

    # -- rendering -----------------------------------------------------------

    def render_text(self, *, top: int = 8) -> str:
        """Human-readable single-run analysis (the ``repro analyze``
        output)."""
        lines: List[str] = []
        outcomes = {"committed": 0, "aborted": 0, "running": 0}
        for line in self.timelines.values():
            outcomes[line.outcome] = outcomes.get(line.outcome, 0) + 1
        lines.append(
            f"trace: {len(self.events)} events, "
            f"{len(self.timelines)} transactions "
            f"({outcomes['committed']} committed, {outcomes['aborted']} "
            f"aborted, {outcomes['running']} running)"
        )
        timeouts = len(self.waits) - len(self.granted_waits)
        lines.append(
            f"lock waits: {len(self.granted_waits)} granted "
            f"({self.total_wait_ms:.3f} ms), {timeouts} timed out, "
            f"{len(self.open_waits)} still waiting at trace end"
        )
        spots = self.hotspots()
        if spots.by_prefix:
            lines.append(f"hot subtrees (wait ms by SPLID prefix, top {top}):")
            for prefix, waited in spots.top_prefixes(top):
                lines.append(f"  {prefix:<16} {waited:10.3f}")
        if spots.by_mode:
            lines.append("wait ms by requested mode:")
            for mode in sorted(
                spots.by_mode, key=lambda m: (-spots.by_mode[m], m)
            ):
                lines.append(f"  {mode:<16} {spots.by_mode[mode]:10.3f}")
        if spots.by_conversion:
            lines.append("wait ms by conversion edge:")
            for edge in sorted(
                spots.by_conversion,
                key=lambda e: (-spots.by_conversion[e], e),
            ):
                lines.append(f"  {edge:<16} {spots.by_conversion[edge]:10.3f}")
        chains = self.blocking_chains()
        if chains:
            lines.append(f"longest blocking chains (top {top}):")
            for record in chains[:top]:
                arrow = " -> ".join(record.chain)
                lines.append(
                    f"  [{record.space}:{record.key} {record.mode}] {arrow}"
                )
        summary = self.critical_path_summary()
        if summary["txn_count"]:
            lines.append(
                f"critical path over {summary['txn_count']} committed txns: "
                f"total {summary['total_ms']:.3f} ms = "
                f"lock-wait {summary['lock_wait_ms']:.3f} "
                f"+ io {summary['io_ms']:.3f} "
                f"+ compute {summary['compute_ms']:.3f} "
                f"+ think {summary['think_ms']:.3f}"
            )
        return "\n".join(lines)
