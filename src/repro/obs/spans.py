"""Per-transaction span timelines reconstructed from a trace.

A *span* is a begin/end pair of :class:`~repro.obs.events.TraceEvent`
records (kinds ``span.begin``/``span.end``) with the same ``name`` and
category ``cat`` on the same transaction.  Spans of one transaction are
strictly nested (stack discipline) -- the lock manager opens its
``lock.wait`` spans strictly inside the node manager's ``op`` spans, the
transaction manager's ``rollback`` span runs after the failing operation
has unwound -- so the tree can be rebuilt with a plain stack and no span
ids.

The transaction's *root* span carries no span events: it is delimited by
``txn.begin`` and ``txn.commit``/``txn.abort``.  Transactions still
parked at the simulation horizon have neither; their timeline stays
``running`` with an open end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.obs.events import (
    SPAN_BEGIN,
    SPAN_END,
    TXN_ABORT,
    TXN_BEGIN,
    TXN_COMMIT,
    TraceEvent,
)


@dataclass
class Span:
    """One reconstructed begin/end interval inside a transaction."""

    txn: str
    cat: str
    name: str
    begin_ts: float
    begin_seq: int
    end_ts: Optional[float] = None
    end_seq: Optional[int] = None
    depth: int = 0
    #: Payload of the *end* event (I/O attribution, ``waited_ms``, ...).
    data: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def closed(self) -> bool:
        return self.end_ts is not None

    @property
    def duration_ms(self) -> float:
        """Span length from the raw timestamps (0.0 while still open)."""
        if self.end_ts is None:
            return 0.0
        return self.end_ts - self.begin_ts

    def walk(self) -> Iterable["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class TxnTimeline:
    """Everything one transaction did, as a span tree."""

    label: str
    name: str = ""
    isolation: str = ""
    begin_ts: Optional[float] = None
    end_ts: Optional[float] = None
    #: ``committed`` / ``aborted`` / ``running`` (no end event observed,
    #: e.g. parked at the simulation horizon or lost to ring overflow).
    outcome: str = "running"
    abort_reason: Optional[str] = None
    #: Top-level spans, in begin order.
    spans: List[Span] = field(default_factory=list)

    @property
    def duration_ms(self) -> float:
        if self.begin_ts is None or self.end_ts is None:
            return 0.0
        return self.end_ts - self.begin_ts

    def all_spans(self) -> List[Span]:
        out: List[Span] = []
        for span in self.spans:
            out.extend(span.walk())
        return out

    def ops(self) -> List[Span]:
        """Top-level operation spans (nested helper ops excluded)."""
        return [span for span in self.spans if span.cat == "op"]

    def wait_spans(self) -> List[Span]:
        """All closed lock-wait spans, any nesting depth."""
        return [
            span for span in self.all_spans()
            if span.cat == "wait" and span.closed
        ]

    @property
    def lock_wait_ms(self) -> float:
        return sum(span.duration_ms for span in self.wait_spans())

    @property
    def io_ms(self) -> float:
        """Simulated I/O cost, from the top-level op spans' attribution.

        Each op end event carries the transaction's buffer-read delta over
        the whole (possibly nested) operation, so only top-level spans are
        summed -- a nested op's reads are already inside its parent's
        delta.
        """
        return sum(float(span.data.get("io_ms", 0.0)) for span in self.ops())


def build_timelines(events: Iterable[TraceEvent]) -> Dict[str, TxnTimeline]:
    """Reconstruct per-transaction timelines from a trace.

    Returns timelines keyed by transaction label, in order of first
    appearance.  Events must be in emission order (as ``RingTracer`` and
    ``load_jsonl`` both provide).
    """
    timelines: Dict[str, TxnTimeline] = {}
    stacks: Dict[str, List[Span]] = {}

    def timeline(label: str, ts: float) -> TxnTimeline:
        line = timelines.get(label)
        if line is None:
            # First sighting without txn.begin (ring overflow dropped it):
            # anchor the timeline at the first event we did see.
            line = timelines[label] = TxnTimeline(label=label, begin_ts=ts)
        return line

    for event in events:
        if event.txn is None:
            continue
        label = event.txn
        if event.kind == TXN_BEGIN:
            line = timelines.get(label)
            if line is None:
                line = timelines[label] = TxnTimeline(label=label)
            line.begin_ts = event.ts
            line.name = str(event.data.get("name", ""))
            line.isolation = str(event.data.get("isolation", ""))
        elif event.kind in (TXN_COMMIT, TXN_ABORT):
            line = timeline(label, event.ts)
            line.end_ts = event.ts
            line.outcome = "committed" if event.kind == TXN_COMMIT else "aborted"
            if event.kind == TXN_ABORT:
                line.abort_reason = str(event.data.get("reason", "rollback"))
            # Anything still open was cut off by the abort path; close it
            # at the transaction's end so durations stay well-defined.
            for span in stacks.pop(label, []):
                span.end_ts = event.ts
                span.end_seq = event.seq
        elif event.kind == SPAN_BEGIN:
            line = timeline(label, event.ts)
            stack = stacks.setdefault(label, [])
            span = Span(
                txn=label,
                cat=str(event.data.get("cat", "")),
                name=str(event.data.get("name", "")),
                begin_ts=event.ts,
                begin_seq=event.seq,
                depth=len(stack),
            )
            if stack:
                stack[-1].children.append(span)
            else:
                line.spans.append(span)
            stack.append(span)
        elif event.kind == SPAN_END:
            stack = stacks.get(label)
            if not stack:
                continue  # begin lost to ring overflow
            span = stack.pop()
            span.end_ts = event.ts
            span.end_seq = event.seq
            span.data = dict(event.data)
    return timelines
