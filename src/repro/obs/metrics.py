"""The metrics registry: counters, gauges, histograms with fixed buckets.

Components publish in two ways:

* **direct instruments** on cold-ish paths -- e.g. the lock manager
  observes every blocking wait into a :class:`Histogram`, the transaction
  manager counts aborts by reason;
* **collectors** for counters that already exist as cheap attributes on
  hot paths (lock-table request counts, buffer I/O statistics) -- a
  collector callback copies them into the registry when a snapshot is
  taken, so the hot path itself pays nothing new.

Snapshots (:meth:`MetricsRegistry.as_dict`) are plain nested dicts; CSV
and JSON exports feed the CLI's ``repro metrics`` subcommand and the
TaMix sweep reports.
"""

from __future__ import annotations

import bisect
import csv
import io
import json
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Default wait-time bucket boundaries (simulated ms) -- chosen to bracket
#: the paper's lock-wait regimes, from instant grants to timeout-scale
#: stalls.  The implicit final bucket is +Inf.
WAIT_TIME_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A value that can go up and down (set to the latest observation)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value: float) -> None:
        # Preserve int-ness so mirrored counters export as integers.
        self.value = value


class Histogram:
    """Fixed-boundary histogram (cumulative-style bucket counts).

    ``boundaries`` are upper bounds of the finite buckets; one overflow
    bucket (+Inf) is implicit.  Boundaries are fixed at construction so
    histograms from different runs/protocols are directly comparable.
    """

    __slots__ = ("name", "boundaries", "bucket_counts", "count", "total", "max")

    def __init__(self, name: str, boundaries: Sequence[float] = WAIT_TIME_BUCKETS_MS):
        if list(boundaries) != sorted(boundaries) or len(set(boundaries)) != len(
            tuple(boundaries)
        ):
            raise ValueError("histogram boundaries must be sorted and unique")
        self.name = name
        self.boundaries: Tuple[float, ...] = tuple(float(b) for b in boundaries)
        self.bucket_counts: List[int] = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        buckets: Dict[str, int] = {}
        for boundary, bucket_count in zip(self.boundaries, self.bucket_counts):
            buckets[f"le_{boundary:g}"] = bucket_count
        buckets["le_inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "mean": round(self.mean, 6),
            "max": round(self.max, 6),
            "buckets": buckets,
        }


class MetricsRegistry:
    """Named instruments plus snapshot-time collectors."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- instrument access --------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_fresh(name)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_fresh(name)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, boundaries: Optional[Sequence[float]] = None
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_fresh(name)
            instrument = self._histograms[name] = Histogram(
                name, boundaries if boundaries is not None else WAIT_TIME_BUCKETS_MS
            )
        elif boundaries is not None and tuple(
            float(b) for b in boundaries
        ) != instrument.boundaries:
            raise ValueError(
                f"histogram {name} already registered with different buckets"
            )
        return instrument

    def register_collector(
        self, collect: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Register a callback run at every snapshot.

        Collectors copy cheap native counters (lock-table statistics,
        buffer I/O counts) into registry instruments without putting the
        registry on the component's hot path.
        """
        self._collectors.append(collect)

    # -- snapshots ----------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        for collect in self._collectors:
            collect(self)
        snapshot: Dict[str, object] = {}
        for name in sorted(self._counters):
            snapshot[name] = self._counters[name].value
        for name in sorted(self._gauges):
            snapshot[name] = self._gauges[name].value
        for name in sorted(self._histograms):
            snapshot[name] = self._histograms[name].as_dict()
        return snapshot

    def typed_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Snapshot keeping the instrument kinds apart.

        ``{"counters": {...}, "gauges": {...}, "histograms": {...}}`` --
        the shape the windowed time-series and the Prometheus renderer
        consume, where counter/gauge/histogram semantics diverge
        (deltas vs. last-value vs. bucket merges).  Runs collectors,
        like :meth:`as_dict`.
        """
        for collect in self._collectors:
            collect(self)
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].as_dict()
                for name in sorted(self._histograms)
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def to_csv(self) -> str:
        """Flat ``metric,value`` rows (histograms flattened per bucket)."""
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(["metric", "value"])
        for name, value in self.as_dict().items():
            if isinstance(value, dict):  # histogram
                for stat in ("count", "total", "mean", "max"):
                    writer.writerow([f"{name}.{stat}", value[stat]])
                for bucket, bucket_count in value["buckets"].items():
                    writer.writerow([f"{name}.bucket.{bucket}", bucket_count])
            else:
                writer.writerow([name, value])
        return out.getvalue()

    # -- internals -----------------------------------------------------------

    def _check_fresh(self, name: str) -> None:
        if name in self._counters or name in self._gauges or name in self._histograms:
            raise ValueError(f"metric {name} already registered as another type")
