"""Event tracers: a no-op null tracer and a ring-buffer tracer.

Zero-cost-when-disabled contract: every instrumentation site guards its
``emit`` call with a single attribute check::

    if tracer.enabled:
        tracer.emit(LOCK_GRANT, txn=..., node=..., mode=...)

so a disabled system pays exactly one ``bool`` load per site and never
builds the event payload.  The perf harness (``benchmarks/perf``) holds
this to account.

The :class:`RingTracer` keeps the last ``capacity`` events in memory
(``capacity=None`` keeps everything) and can mirror every event into a
JSONL sink as it happens, so long runs survive ring overflow.  Timestamps
come from a bound clock -- the simulator clock during benchmark runs --
which makes traces deterministic, replayable, and diffable across
protocols.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.obs.events import EVENT_KINDS, TraceEvent


class NullTracer:
    """The disabled tracer: never records, never allocates."""

    enabled = False

    def emit(self, kind: str, txn: Optional[str] = None, **data: object) -> None:
        """No-op.  Instrumentation sites must not even reach this call
        when tracing is disabled (guard on ``tracer.enabled``)."""

    def events(self) -> List[TraceEvent]:
        return []

    def close(self) -> None:
        pass


#: The shared disabled tracer (stateless, safe to share everywhere).
NULL_TRACER = NullTracer()


class RingTracer:
    """Bounded in-memory event trace with an optional JSONL sink."""

    enabled = True

    def __init__(
        self,
        capacity: Optional[int] = 65_536,
        *,
        clock: Optional[Callable[[], float]] = None,
        sink: Union[str, Path, None] = None,
        enabled: bool = True,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError(f"tracer capacity must be >= 1, got {capacity}")
        # Instance attribute shadows the class default, so a ring tracer
        # can be constructed dormant (``enabled=False``): sites see the
        # same False their guard would see from the null tracer, and the
        # perf harness uses this to price the guard itself.
        self.enabled = enabled
        self.capacity = capacity
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self._ring: "deque[TraceEvent]" = deque(maxlen=capacity)
        self._seq = 0
        self.dropped = 0
        self._sink_path: Optional[Path] = None
        self._sink_handle = None
        if sink is not None:
            self._sink_path = Path(sink)
            self._sink_handle = self._sink_path.open("w", encoding="utf-8")

    # -- recording ---------------------------------------------------------

    def emit(self, kind: str, txn: Optional[str] = None, **data: object) -> None:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        self._seq += 1
        event = TraceEvent(self._seq, self.clock(), kind, txn, data)
        if self.capacity is not None and len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)
        if self._sink_handle is not None:
            self._sink_handle.write(
                json.dumps(event.as_dict(), sort_keys=True) + "\n"
            )

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self.clock = clock

    def close(self) -> None:
        """Flush and close the JSONL sink (idempotent)."""
        if self._sink_handle is not None:
            self._sink_handle.close()
            self._sink_handle = None

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    def events(
        self,
        kind: Optional[str] = None,
        txn: Optional[str] = None,
    ) -> List[TraceEvent]:
        """Events currently in the ring, optionally filtered."""
        out = []
        for event in self._ring:
            if kind is not None and event.kind != kind:
                continue
            if txn is not None and event.txn != txn:
                continue
            out.append(event)
        return out

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._ring:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # -- JSONL persistence ---------------------------------------------------

    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(event.as_dict(), sort_keys=True) + "\n"
            for event in self._ring
        )

    def dump_jsonl(self, path: Union[str, Path]) -> int:
        """Write the ring contents as JSONL; returns the event count."""
        Path(path).write_text(self.to_jsonl(), encoding="utf-8")
        return len(self._ring)


def load_jsonl(path: Union[str, Path]) -> List[TraceEvent]:
    """Read a JSONL trace back into :class:`TraceEvent` objects."""
    events: List[TraceEvent] = []
    with Path(path).open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events


def aggregate(events: Iterable[TraceEvent]) -> Dict[str, int]:
    """Counter aggregation of a trace (replay-side accounting).

    Returns per-kind totals plus the derived transaction counters the
    TaMix metrics report, so a trace can be checked against the metrics
    of the run that produced it::

        committed            == RunResult.committed
        aborted.deadlock     == sum of per-type deadlock aborts
        aborted.timeout      == sum of per-type timeout aborts
        lock.block           == lock_stats["waits"]
    """
    totals: Dict[str, int] = {}
    for event in events:
        totals[event.kind] = totals.get(event.kind, 0) + 1
        if event.kind == "txn.abort":
            reason = str(event.data.get("reason", "rollback"))
            key = f"aborted.{reason}"
            totals[key] = totals.get(key, 0) + 1
        elif event.kind == "txn.commit":
            totals["committed"] = totals.get("committed", 0) + 1
    return totals
