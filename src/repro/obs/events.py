"""The event taxonomy of the observability layer.

Every traced occurrence is a :class:`TraceEvent` with a *kind* drawn from
a fixed vocabulary, a timestamp from the bound clock (the simulator clock
during benchmark runs, so traces are deterministic and diffable), a
monotonically increasing sequence number, and a flat JSON-safe payload.

Kinds mirror the paper's measurement interests (Section 4.1): the lock
pipeline (request/grant/block/convert/escalate/release/timeout), the
deadlock detector (detection + victim choice), the transaction lifecycle
(begin/commit/abort with the abort reason), and the buffer manager
(fix/miss/evict).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

# -- lock pipeline ------------------------------------------------------------
LOCK_REQUEST = "lock.request"
LOCK_GRANT = "lock.grant"
LOCK_BLOCK = "lock.block"
LOCK_CONVERT = "lock.convert"
#: A granted conversion demanded a child fan-out (the CX_NR-style
#: "escalation" of one subtree lock into per-child locks).
LOCK_ESCALATE = "lock.escalate"
LOCK_RELEASE = "lock.release"
LOCK_TIMEOUT = "lock.timeout"

# -- deadlock detector --------------------------------------------------------
DEADLOCK_DETECTED = "deadlock.detected"

# -- data accesses (verification) ---------------------------------------------
#: One logical data access by a DOM operation, emitted *after* the
#: operation's locks were granted (so the order of conflicting accesses
#: in the trace is the order the lock protocol serialized them in).
#: Payload: ``op``, ``target`` (SPLID), ``access`` (read/write), ``role``
#: (node/subtree/edge/...), plus optional ``children``/``affected``
#: SPLID lists for structure operations.  Only emitted when the
#: observability bundle enables ``access_events`` -- the history oracle
#: (:mod:`repro.verify`) needs them, ordinary traces stay lean.
OP_ACCESS = "op.access"

#: Run manifest emitted once at the start of a coordinated benchmark run:
#: protocol, lock depth, isolation, seed.  Lets ``repro verify`` check a
#: trace without being told the configuration it was recorded under.
RUN_INFO = "run.info"

# -- transaction lifecycle ----------------------------------------------------
TXN_BEGIN = "txn.begin"
TXN_COMMIT = "txn.commit"
TXN_ABORT = "txn.abort"

# -- buffer manager -----------------------------------------------------------
BUFFER_FIX = "buffer.fix"
BUFFER_MISS = "buffer.miss"
BUFFER_EVICT = "buffer.evict"

# -- robustness (chaos engine, retry layer, admission control) ----------------
#: One injected fault fired by the chaos engine (:mod:`repro.chaos`).
#: Payload: ``site`` (page.read/page.write/lock.acquire), ``fault``
#: (transient/permanent/torn/latency/timeout/deadlock), ``op`` (1-based
#: per-site operation index), plus site detail (``page`` or ``resource``).
CHAOS_FAULT = "chaos.fault"
#: The TaMix coordinator restarting a work item after a transient abort.
#: Payload: ``reason`` (deadlock/timeout/storage), ``restart`` (1-based
#: restart count for this work item), ``backoff_ms``.
TXN_RETRY = "txn.retry"
#: An admission-control decision under restart pressure.  Payload:
#: ``decision`` (admit/queue/shed), ``pressure``, ``waits``.
ADMISSION_DECISION = "admission.decision"

# -- spans --------------------------------------------------------------------
#: Hierarchical timing spans.  A span is a begin/end pair of events with
#: the same ``name`` and category ``cat`` on the same transaction; spans
#: of one transaction are strictly nested (stack discipline), so the
#: analyzer (:mod:`repro.obs.spans`) can rebuild the tree without ids.
#: Categories in use:
#:
#: * ``op``   -- one node-manager DOM operation (``insert_tree``, ...);
#:   the end event carries the operation's buffer I/O attribution
#:   (``logical_reads``/``physical_reads``/``io_ms``);
#: * ``wait`` -- one blocking lock wait (between ``lock.block`` and the
#:   grant or timeout); the end event carries ``waited_ms``;
#: * ``txn``  -- transaction-manager work such as ``rollback``.
#:
#: The transaction's *root* span needs no span events: it is delimited by
#: ``txn.begin`` and ``txn.commit``/``txn.abort``.
SPAN_BEGIN = "span.begin"
SPAN_END = "span.end"

#: The complete event vocabulary; tracers reject kinds outside it so that
#: downstream consumers can rely on a closed taxonomy.
EVENT_KINDS = frozenset({
    LOCK_REQUEST,
    LOCK_GRANT,
    LOCK_BLOCK,
    LOCK_CONVERT,
    LOCK_ESCALATE,
    LOCK_RELEASE,
    LOCK_TIMEOUT,
    DEADLOCK_DETECTED,
    OP_ACCESS,
    RUN_INFO,
    TXN_BEGIN,
    TXN_COMMIT,
    TXN_ABORT,
    BUFFER_FIX,
    BUFFER_MISS,
    BUFFER_EVICT,
    CHAOS_FAULT,
    TXN_RETRY,
    ADMISSION_DECISION,
    SPAN_BEGIN,
    SPAN_END,
})


def txn_label(txn: object) -> str:
    """Stable trace identity for a transaction-like object.

    Transactions carry a state-independent ``label`` (``repr`` would
    change between the block and abort events of the same transaction);
    bare tokens (test strings) fall back to ``str``.
    """
    label = getattr(txn, "label", None)
    return label if isinstance(label, str) else str(txn)


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record.

    ``data`` values are JSON-safe scalars (str/int/float/bool/None) so a
    trace round-trips through JSONL without loss.
    """

    seq: int
    ts: float
    kind: str
    txn: Optional[str] = None
    data: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
        }
        if self.txn is not None:
            record["txn"] = self.txn
        if self.data:
            record["data"] = self.data
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "TraceEvent":
        return cls(
            seq=int(record["seq"]),
            ts=float(record["ts"]),
            kind=str(record["kind"]),
            txn=record.get("txn"),  # type: ignore[arg-type]
            data=dict(record.get("data", {})),  # type: ignore[arg-type]
        )
