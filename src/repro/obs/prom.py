"""Prometheus text-format exposition for the metrics layer.

Renders a typed snapshot (:meth:`~repro.obs.metrics.MetricsRegistry
.typed_snapshot`, or the ``snapshot`` field of a TELEMETRY payload)
in the Prometheus text exposition format, version 0.0.4:

* counters become ``<prefix>_<name>_total``;
* gauges become ``<prefix>_<name>``;
* histograms become cumulative ``_bucket{le="..."}`` series plus
  ``_sum`` and ``_count`` (the registry stores per-bucket counts, so
  the renderer accumulates them into Prometheus' cumulative form).

Metric names are sanitized to ``[a-zA-Z_][a-zA-Z0-9_]*`` (dots become
underscores: ``lock.requests`` -> ``repro_lock_requests_total``).
Output is sorted and fully deterministic for a given snapshot -- the CI
smoke job byte-compares nothing here, but ``repro telemetry --prom``
over a seeded sim must stay reproducible like every other exposition.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str, prefix: str = "repro") -> str:
    """A Prometheus-legal metric name: prefixed, non-alnum -> ``_``."""
    cleaned = _NAME_OK.sub("_", name.strip())
    if prefix:
        cleaned = f"{prefix}_{cleaned}"
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = f"_{cleaned}"
    return cleaned


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _bucket_bound(key: str) -> str:
    """``le_5`` -> ``5``; ``le_inf`` -> ``+Inf`` (registry bucket keys)."""
    bound = key[3:] if key.startswith("le_") else key
    return "+Inf" if bound == "inf" else bound


def render_prometheus(snapshot: Dict[str, Dict[str, Any]], *,
                      prefix: str = "repro",
                      help_text: Optional[Dict[str, str]] = None) -> str:
    """Render a typed snapshot as Prometheus exposition text.

    ``snapshot`` must carry ``counters`` / ``gauges`` / ``histograms``
    maps (missing keys are treated as empty).  ``help_text`` optionally
    maps *raw* metric names to ``# HELP`` strings.
    """
    help_text = help_text or {}
    lines: List[str] = []

    def emit_header(raw: str, exposed: str, kind: str) -> None:
        doc = help_text.get(raw)
        if doc:
            lines.append(f"# HELP {exposed} {doc}")
        lines.append(f"# TYPE {exposed} {kind}")

    for raw in sorted(snapshot.get("counters") or {}):
        value = snapshot["counters"][raw]
        exposed = sanitize_metric_name(raw, prefix) + "_total"
        emit_header(raw, exposed, "counter")
        lines.append(f"{exposed} {_format_value(value)}")
    for raw in sorted(snapshot.get("gauges") or {}):
        value = snapshot["gauges"][raw]
        exposed = sanitize_metric_name(raw, prefix)
        emit_header(raw, exposed, "gauge")
        lines.append(f"{exposed} {_format_value(value)}")
    for raw in sorted(snapshot.get("histograms") or {}):
        hist = snapshot["histograms"][raw]
        exposed = sanitize_metric_name(raw, prefix)
        emit_header(raw, exposed, "histogram")
        cumulative = 0
        for key, count in hist.get("buckets", {}).items():
            cumulative += count
            bound = _bucket_bound(key)
            lines.append(f'{exposed}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f"{exposed}_sum {_format_value(hist.get('total', 0.0))}")
        lines.append(f"{exposed}_count {_format_value(hist.get('count', 0))}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_registry(registry, *, prefix: str = "repro",
                    help_text: Optional[Dict[str, str]] = None) -> str:
    """Convenience wrapper: snapshot a registry and render it."""
    return render_prometheus(
        registry.typed_snapshot(), prefix=prefix, help_text=help_text
    )
