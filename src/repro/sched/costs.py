"""The simulated cost model (milliseconds of simulated time).

These constants virtualize the paper's testbed hardware (Section 4.3).
Absolute values are not meant to match the 2006 Xeon server; what matters
for the reproduction is the *structure*: lock-manager work is cheap but
proportional to the number of requests, buffer misses are orders of
magnitude dearer than hits, and node visits cost CPU -- so protocols that
acquire fewer locks, avoid conversion fan-outs, and skip document scans
win exactly where the paper says they do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.buffer import IoStatistics


@dataclass(frozen=True)
class CostModel:
    """Simulated durations, in milliseconds."""

    #: One lock-table request (grant, conversion, or enqueue).
    lock_request_ms: float = 0.01
    #: A request answered from the coverage cache (no table access).
    lock_covered_ms: float = 0.001
    #: CPU for visiting one node (navigate, decode record).
    node_cpu_ms: float = 0.01
    #: CPU for one structural or content update.
    update_cpu_ms: float = 0.05
    #: Buffer-pool hit.
    buffer_hit_ms: float = 0.002
    #: Buffer-pool miss: a disk access.
    buffer_miss_ms: float = 4.0

    def io_cost(self, delta: IoStatistics) -> float:
        hits = delta.logical_reads - delta.physical_reads
        return (hits * self.buffer_hit_ms
                + delta.physical_reads * self.buffer_miss_ms
                + delta.fault_delay_ms)

    def lock_cost(self, requests: int, covered: int = 0) -> float:
        return requests * self.lock_request_ms + covered * self.lock_covered_ms


DEFAULT_COSTS = CostModel()
