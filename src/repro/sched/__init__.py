"""Concurrency substrates: discrete-event simulator and threaded runtime."""

from repro.sched.costs import DEFAULT_COSTS, CostModel
from repro.sched.simulator import Delay, SimulationError, Simulator, run_sync
from repro.sched.threaded import ThreadedRuntime, run_threaded

__all__ = [
    "CostModel",
    "DEFAULT_COSTS",
    "Delay",
    "SimulationError",
    "Simulator",
    "ThreadedRuntime",
    "run_sync",
    "run_threaded",
]
