"""Threaded runtime: drive transaction generators with real threads.

The discrete-event simulator is the primary substrate (deterministic,
GIL-independent -- see DESIGN.md), but the lock table is a pure state
machine, so the very same transaction generators can also run under real
`threading` interleavings.  This runtime exists to validate that the
locking logic is not an artifact of simulated atomicity: the validation
tests run mixed workloads under both substrates and compare invariants.

Semantics:

* a global mutex serializes lock-table transitions (the "latch");
* :class:`~repro.sched.simulator.Delay` effects sleep scaled wall-clock
  time (``time_scale`` compresses simulated ms into real seconds);
* lock waits block on a per-ticket event, honouring the ticket's timeout
  by raising :class:`~repro.errors.LockTimeout` into the generator.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Generator, List, Optional

from repro.errors import LockTimeout
from repro.locking.lock_table import WaitTicket
from repro.sched.simulator import Delay, SimulationError


class ThreadedRuntime:
    """Runs transaction generators on real threads against one database."""

    def __init__(self, *, time_scale: float = 0.001):
        #: Real seconds per simulated millisecond (default: 1000x faster).
        self.time_scale = time_scale
        #: The lock-manager latch: serializes everything between yields.
        self.latch = threading.RLock()
        self._threads: List[threading.Thread] = []
        self._errors: List[BaseException] = []

    # -- public API ----------------------------------------------------------

    def spawn(self, generator: Generator, *, name: str = "txn-thread") -> None:
        thread = threading.Thread(
            target=self._drive, args=(generator,), name=name, daemon=True
        )
        self._threads.append(thread)
        thread.start()

    def join(self, timeout: Optional[float] = 60.0) -> None:
        """Wait for all spawned generators; re-raise the first failure."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            thread.join(remaining)
        alive = [t.name for t in self._threads if t.is_alive()]
        if alive:
            raise SimulationError(f"threads did not finish: {alive}")
        if self._errors:
            raise self._errors[0]

    def run(self, generators) -> None:
        """Spawn all generators and join them."""
        for i, generator in enumerate(generators):
            self.spawn(generator, name=f"txn-thread-{i}")
        self.join()

    # -- internals -----------------------------------------------------------

    def _drive(self, generator: Generator) -> None:
        try:
            self._loop(generator)
        except StopIteration:
            pass
        except BaseException as exc:  # surface in join()
            self._errors.append(exc)

    def _loop(self, generator: Generator) -> None:
        send_value: Any = None
        throw_value: Optional[BaseException] = None
        while True:
            try:
                with self.latch:
                    if throw_value is not None:
                        error, throw_value = throw_value, None
                        effect = generator.throw(error)
                    else:
                        effect = generator.send(send_value)
            except StopIteration:
                return
            send_value = None
            if isinstance(effect, Delay):
                time.sleep(effect.ms * self.time_scale)
            elif isinstance(effect, WaitTicket):
                throw_value = self._await_ticket(effect)
            else:
                raise SimulationError(f"unexpected effect {effect!r}")

    def _await_ticket(self, ticket: WaitTicket) -> Optional[BaseException]:
        """Block until the ticket is granted; handle the wait timeout."""
        event = threading.Event()
        with self.latch:
            if ticket.granted:
                return None
            ticket.on_grant = lambda _t: event.set()
        timeout_s = None
        if ticket.timeout_ms is not None:
            timeout_s = max(ticket.timeout_ms * self.time_scale, 0.001)
        granted = event.wait(timeout_s)
        if granted:
            return None
        with self.latch:
            if ticket.granted:
                return None
            if ticket.cancel is not None:
                ticket.cancel()
        return LockTimeout(
            f"lock wait timed out on {ticket.resource} (threaded runtime)",
            resource=ticket.resource,
            timeout_ms=ticket.timeout_ms,
        )


def run_threaded(generators, *, time_scale: float = 0.0005) -> None:
    """Convenience: run generators under real threads and join."""
    runtime = ThreadedRuntime(time_scale=time_scale)
    runtime.run(list(generators))
