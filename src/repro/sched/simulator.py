"""Deterministic discrete-event simulator for concurrent transactions.

This is the concurrency substitution documented in DESIGN.md: transactions
run as generator coroutines; simulated time advances only through the
effects they yield, so every run is exactly reproducible.

A process may yield two kinds of effects:

* :class:`Delay` -- simulated milliseconds pass (CPU work, disk I/O,
  client think time);
* a :class:`~repro.locking.lock_table.WaitTicket` -- the transaction is
  blocked in the lock table; the simulator parks it and resumes it at the
  simulated instant another process's release grants the request.

Everything a process does between two yields is atomic in simulated time,
which mirrors a latch-protected lock manager and makes the lock table safe
to share without real synchronization.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import LockTimeout, ReproError
from repro.locking.lock_table import WaitTicket


@dataclass(frozen=True)
class Delay:
    """Let ``ms`` simulated milliseconds pass."""

    ms: float


class SimulationError(ReproError):
    """A process yielded something the simulator does not understand."""


class _Process:
    __slots__ = ("generator", "name", "done")

    def __init__(self, generator: Generator, name: str):
        self.generator = generator
        self.name = name
        self.done = False


class _Timeout:
    """A scheduled lock-wait timeout check."""

    __slots__ = ("fire",)

    def __init__(self, fire: Callable[[], None]):
        self.fire = fire


class Simulator:
    """Event loop over (time, sequence, process) tuples."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, _Process]] = []
        self._seq = 0
        self._processes: List[_Process] = []
        self._waiting = 0

    # -- public API ----------------------------------------------------------

    def spawn(
        self, generator: Generator, *, name: str = "process", at: float = 0.0
    ) -> None:
        """Register a process; it first runs at simulated time ``at``."""
        process = _Process(generator, name)
        self._processes.append(process)
        self._schedule(max(at, self.now), process)

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the heap drains or ``until`` is passed.

        Returns the final simulated time.  Processes still alive when the
        horizon is reached are simply not resumed further (TaMix closes
        its run this way after the configured duration).
        """
        while self._heap:
            time, _seq, process = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = time
            if isinstance(process, _Timeout):
                process.fire()
            else:
                self._step(process)
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    @property
    def blocked_processes(self) -> int:
        return self._waiting

    # -- internals -----------------------------------------------------------------

    def _schedule(self, time: float, process: _Process) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, process))

    def _step(self, process: _Process) -> None:
        if process.done:
            return
        try:
            effect = next(process.generator)
        except StopIteration:
            process.done = True
            return
        self._handle_effect(process, effect)

    def _handle_effect(self, process: _Process, effect: Any) -> None:
        while True:
            if isinstance(effect, Delay):
                if effect.ms < 0:
                    raise SimulationError(f"negative delay {effect.ms}")
                self._schedule(self.now + effect.ms, process)
                return
            if isinstance(effect, WaitTicket):
                if effect.granted:
                    # Granted between request and yield: continue at once.
                    try:
                        effect = next(process.generator)
                    except StopIteration:
                        process.done = True
                        return
                    continue
                self._park(process, effect)
                return
            raise SimulationError(
                f"process {process.name} yielded {effect!r}; expected "
                "Delay or WaitTicket"
            )

    def _park(self, process: _Process, ticket: WaitTicket) -> None:
        self._waiting += 1
        settled = {"done": False}

        def on_grant(_ticket: WaitTicket) -> None:
            if settled["done"]:
                return
            settled["done"] = True
            self._waiting -= 1
            self._schedule(self.now, process)

        ticket.on_grant = on_grant
        if ticket.timeout_ms is not None:
            self._schedule_timeout(process, ticket, settled)

    def _schedule_timeout(self, process: _Process, ticket: WaitTicket,
                          settled: dict) -> None:
        deadline = self.now + (ticket.timeout_ms or 0.0)

        def fire() -> None:
            if settled["done"] or ticket.granted or ticket.cancelled:
                return
            settled["done"] = True
            self._waiting -= 1
            if ticket.cancel is not None:
                ticket.cancel()
            self._throw(process, LockTimeout(
                f"lock wait timed out after {ticket.timeout_ms} ms "
                f"on {ticket.resource}",
                resource=ticket.resource,
                timeout_ms=ticket.timeout_ms,
            ))

        self._seq += 1
        heapq.heappush(self._heap, (deadline, self._seq, _Timeout(fire)))

    def _throw(self, process: _Process, error: BaseException) -> None:
        if process.done:
            return
        try:
            effect = process.generator.throw(error)
        except StopIteration:
            process.done = True
            return
        self._handle_effect(process, effect)


def run_sync(generator: Generator, *, clock_start: float = 0.0) -> Tuple[Any, float]:
    """Drive a transaction generator without concurrency.

    Delays advance a local clock; a blocking lock wait is an error (there
    is no one to release the lock).  Returns ``(result, elapsed_ms)`` --
    used by single-user examples and by CLUSTER2-style measurements.
    """
    elapsed = clock_start
    try:
        effect = next(generator)
        while True:
            if isinstance(effect, Delay):
                elapsed += effect.ms
                effect = generator.send(None)
            elif isinstance(effect, WaitTicket):
                if not effect.granted:
                    raise SimulationError(
                        "transaction would block in single-user mode "
                        f"(waiting for {effect.resource})"
                    )
                effect = generator.send(None)
            else:
                raise SimulationError(f"unexpected effect {effect!r}")
    except StopIteration as stop:
        return stop.value, elapsed
