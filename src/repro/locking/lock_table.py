"""The lock table: granted modes, wait queues, conversions.

A pure state machine, deliberately free of threads and clocks so that the
same table runs under the discrete-event simulator and under the real
threaded runtime.  The drivers observe blocking through
:class:`WaitTicket` objects and are notified of grants via callbacks.

Semantics (Section 2.3 / [9]):

* one lock per transaction and resource -- a second request by the same
  holder is resolved through the protocol's conversion matrix, possibly
  yielding a *child action* (the CX_NR-style fan-out);
* conversions wait at the head of the queue (before fresh requests);
* fresh requests are granted FIFO: a request waits if it is incompatible
  with any current holder *or* any earlier waiter (no starvation);
* releasing locks drains the queue in order, stopping at the first
  request that still cannot be granted.

Hot-path representation
-----------------------
Granted modes are stored as dense integer indices into the space's
:class:`~repro.core.modes.ModeTable` (see ``ModeTable.mode_index`` and the
flat ``compat_mask``/``conv_result``/``conv_child`` tables), so a grant
decision is a couple of index-and-mask operations.  Entries come from a
bounded free list (:data:`_POOL_CAPACITY`): once warmed up, the steady
state allocates no per-resource objects at all.  Strings appear only at
the API boundary -- :class:`GrantResult`, :class:`WaitTicket`,
:meth:`LockTable.mode_held` and :meth:`LockTable.holders` speak mode
names exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.modes import ModeTable
from repro.errors import LockError

ResourceKey = Tuple[str, object]  # (lock space, key)

#: Upper bound on the entry free list.  Large enough that a TaMix run
#: recycles entries instead of allocating, small enough that a burst of
#: unique resources cannot pin unbounded memory afterwards.
_POOL_CAPACITY = 4_096

# Sentinel distinguishing "caller did not look the entry up" from a
# known-absent resource (``None``) in :meth:`LockTable.grant_fast`.
_MISSING = object()


def _release_order(resource: ResourceKey):
    """Deterministic release order without stringifying every key.

    Releases drain wait queues, so the order must be stable for
    reproducible runs; sorting by ``repr`` was a measurable cost at
    commit time.  Keys are ordered structurally instead: SPLIDs by
    division tuple, edge keys by (divisions, role), anything else by its
    string form.  The integer tag keeps mixed key shapes comparable.
    """
    space, key = resource
    divisions = getattr(key, "divisions", None)
    if divisions is not None:
        return (space, 0, divisions, "")
    if isinstance(key, tuple) and len(key) == 2:
        node_divisions = getattr(key[0], "divisions", None)
        if node_divisions is not None:
            role = key[1]
            return (space, 1, node_divisions, getattr(role, "value", str(role)))
    return (space, 2, (), str(key))


@dataclass
class WaitTicket:
    """Handle for a blocked lock request.

    The driver parks the transaction on this ticket; ``on_grant`` fires
    when the table grants the request (the lock is then already held).
    """

    txn: object
    resource: ResourceKey
    mode: str
    is_conversion: bool
    child_mode: Optional[str] = None
    granted: bool = False
    cancelled: bool = False
    on_grant: Optional[Callable[["WaitTicket"], None]] = None
    #: Lock-wait timeout (simulated ms); None waits forever.
    timeout_ms: Optional[float] = None
    #: Withdraws the request from the lock table (set by the lock manager,
    #: called by the driver when the timeout fires).
    cancel: Optional[Callable[[], None]] = None
    #: Dense index of :attr:`mode` in the space's mode table (internal).
    mode_idx: int = -1

    def _fire(self) -> None:
        self.granted = True
        if self.on_grant is not None:
            self.on_grant(self)


@dataclass(slots=True)
class GrantResult:
    """Outcome of a lock request."""

    granted: bool
    #: Mode now held (after conversion) when granted immediately.
    mode: Optional[str] = None
    #: Child fan-out demanded by the conversion (e.g. CX_NR).
    child_mode: Optional[str] = None
    #: Ticket to wait on when not granted.
    ticket: Optional[WaitTicket] = None
    #: True when the request was a no-op (mode already covered).
    noop: bool = False


class _Entry:
    """Per-resource lock state: holder -> mode index, plus the queue.

    Plain ``__slots__`` class (not a dataclass) so the free list can
    recycle instances without re-running generated ``__init__`` field
    machinery.
    """

    __slots__ = ("granted", "queue")

    def __init__(self):
        self.granted: Dict[object, int] = {}
        self.queue: List[WaitTicket] = []


class LockTable:
    """All lock spaces of one database instance."""

    def __init__(self, tables: Dict[str, ModeTable]):
        self._tables = dict(tables)
        self._entries: Dict[ResourceKey, _Entry] = {}
        self._held: Dict[object, Set[ResourceKey]] = {}
        self._waiting: Dict[object, WaitTicket] = {}
        #: Free list of recycled entries (slab allocator, bounded).
        self._pool: List[_Entry] = []
        # statistics
        self.requests = 0
        self.instant_grants = 0
        self.waits = 0
        self.conversions = 0

    # -- introspection ---------------------------------------------------------

    def has_space(self, space: str) -> bool:
        return space in self._tables

    def table_for(self, space: str) -> ModeTable:
        try:
            return self._tables[space]
        except KeyError:
            raise LockError(f"no mode table for lock space {space!r}") from None

    def mode_held(self, txn: object, resource: ResourceKey) -> Optional[str]:
        entry = self._entries.get(resource)
        if entry is None:
            return None
        idx = entry.granted.get(txn)
        if idx is None:
            return None
        return self._tables[resource[0]].modes[idx]

    def held_index(self, txn: object, resource: ResourceKey) -> int:
        """Mode index held by ``txn`` on ``resource``; -1 when none."""
        entry = self._entries.get(resource)
        if entry is None:
            return -1
        idx = entry.granted.get(txn)
        return -1 if idx is None else idx

    def holders(self, resource: ResourceKey) -> Dict[object, str]:
        entry = self._entries.get(resource)
        if entry is None:
            return {}
        modes = self._tables[resource[0]].modes
        return {txn: modes[idx] for txn, idx in entry.granted.items()}

    def held_resources(self, txn: object) -> Set[ResourceKey]:
        return set(self._held.get(txn, ()))

    def waiting_ticket(self, txn: object) -> Optional[WaitTicket]:
        return self._waiting.get(txn)

    def lock_count(self) -> int:
        return sum(len(e.granted) for e in self._entries.values())

    def entry_count(self) -> int:
        """Live (granted or queued) resource entries in the table."""
        return len(self._entries)

    def free_entries(self) -> int:
        """Recycled entries currently parked on the free list."""
        return len(self._pool)

    # -- wait-for graph (for the deadlock detector) ------------------------------

    def blockers_of(self, ticket: WaitTicket) -> Set[object]:
        """Transactions this ticket is waiting on."""
        entry = self._entries.get(ticket.resource)
        if entry is None:
            return set()
        table = self.table_for(ticket.resource[0])
        mask = table.compat_mask[ticket.mode_idx]
        blockers: Set[object] = set()
        for holder, held_idx in entry.granted.items():
            if holder == ticket.txn:
                continue
            if not (mask >> held_idx) & 1:
                blockers.add(holder)
        if not ticket.is_conversion:
            for ahead in entry.queue:
                if ahead is ticket:
                    break
                if ahead.txn != ticket.txn:
                    blockers.add(ahead.txn)
        return blockers

    def wait_edges(self) -> Dict[object, Set[object]]:
        """Current wait-for graph: waiter -> blocking transactions."""
        return {
            txn: self.blockers_of(ticket)
            for txn, ticket in self._waiting.items()
        }

    # -- requests ---------------------------------------------------------------

    def request(self, txn: object, space: str, key: object, mode: str) -> GrantResult:
        """Request ``mode`` on ``(space, key)`` for ``txn``."""
        if txn in self._waiting:
            raise LockError(f"{txn} already waiting; cannot issue new request")
        table = self._tables.get(space)
        if table is None:
            raise LockError(f"no mode table for lock space {space!r}")
        midx = table.mode_index.get(mode)
        if midx is None:
            raise LockError(f"mode {mode} not in table {table.name}")
        resource: ResourceKey = (space, key)
        self.requests += 1

        entry = self._entries.get(resource)
        if entry is None:
            # Uncontended fresh resource: grant without any matrix probe.
            pool = self._pool
            entry = pool.pop() if pool else _Entry()
            self._entries[resource] = entry
            entry.granted[txn] = midx
            self._note_held(txn, resource)
            self.instant_grants += 1
            return GrantResult(granted=True, mode=mode)

        granted = entry.granted
        modes = table.modes
        held_idx = granted.get(txn)
        if held_idx is not None:
            flat = held_idx * table.mode_count + midx
            result_idx = table.conv_result[flat]
            child_idx = table.conv_child[flat]
            child = modes[child_idx] if child_idx >= 0 else None
            if result_idx == held_idx:
                # Mode unchanged: no compatibility check needed.  A child
                # action may still apply (e.g. held CX + requested LR
                # demands NR on every child even though CX stays).
                self.instant_grants += 1
                return GrantResult(
                    granted=True, mode=modes[held_idx],
                    child_mode=child, noop=child is None,
                )
            self.conversions += 1
            mask = table.compat_mask[result_idx]
            blocked = False
            for holder, holder_idx in granted.items():
                if holder != txn and not (mask >> holder_idx) & 1:
                    blocked = True
                    break
            if not blocked:
                granted[txn] = result_idx
                self.instant_grants += 1
                return GrantResult(
                    granted=True, mode=modes[result_idx], child_mode=child,
                )
            ticket = WaitTicket(
                txn, resource, modes[result_idx],
                is_conversion=True, child_mode=child, mode_idx=result_idx,
            )
            self._enqueue_conversion(entry, ticket)
            self._waiting[txn] = ticket
            self.waits += 1
            return GrantResult(granted=False, ticket=ticket)

        if not entry.queue:
            mask = table.compat_mask[midx]
            blocked = False
            for holder_idx in granted.values():
                if not (mask >> holder_idx) & 1:
                    blocked = True
                    break
            if not blocked:
                granted[txn] = midx
                self._note_held(txn, resource)
                self.instant_grants += 1
                return GrantResult(granted=True, mode=mode)

        ticket = WaitTicket(txn, resource, mode, is_conversion=False,
                            mode_idx=midx)
        entry.queue.append(ticket)
        self._waiting[txn] = ticket
        self.waits += 1
        return GrantResult(granted=False, ticket=ticket)

    def grant_fast(self, txn: object, resource: ResourceKey, midx: int,
                   table: ModeTable, reject_fanout: bool = False,
                   entry: object = _MISSING) -> int:
        """Batched-path primitive: grant instantly or refuse.

        Returns -1 when the request cannot be granted on the spot (the
        caller falls back to :meth:`request`, which queues a ticket) or
        when ``reject_fanout`` is set and the conversion would demand a
        child fan-out.  On success returns the grant encoded as
        ``result_idx | (child_idx + 1) << 8``.  Statistics are counted
        exactly as :meth:`request` would -- refused calls count nothing,
        so the fallback's own accounting keeps the totals identical.

        ``entry`` lets a caller that already looked the resource up (the
        batched coverage check) skip the second dict probe; pass the
        entry or ``None`` for a known-absent resource.
        """
        if txn in self._waiting:
            raise LockError(f"{txn} already waiting; cannot issue new request")
        if entry is _MISSING:
            entry = self._entries.get(resource)
        if entry is None:
            pool = self._pool
            entry = pool.pop() if pool else _Entry()
            self._entries[resource] = entry
            entry.granted[txn] = midx
            held = self._held.get(txn)
            if held is None:
                held = self._held[txn] = set()
            held.add(resource)
            self.requests += 1
            self.instant_grants += 1
            return midx
        granted = entry.granted
        held_idx = granted.get(txn)
        if held_idx is not None:
            flat = held_idx * table.mode_count + midx
            result_idx = table.conv_result[flat]
            child_idx = table.conv_child[flat]
            if reject_fanout and child_idx >= 0:
                return -1
            if result_idx == held_idx:
                self.requests += 1
                self.instant_grants += 1
                return held_idx | (child_idx + 1) << 8
            mask = table.compat_mask[result_idx]
            for holder, holder_idx in granted.items():
                if holder != txn and not (mask >> holder_idx) & 1:
                    return -1
            granted[txn] = result_idx
            self.requests += 1
            self.conversions += 1
            self.instant_grants += 1
            return result_idx | (child_idx + 1) << 8
        if entry.queue:
            return -1
        mask = table.compat_mask[midx]
        for holder_idx in granted.values():
            if not (mask >> holder_idx) & 1:
                return -1
        granted[txn] = midx
        held = self._held.get(txn)
        if held is None:
            held = self._held[txn] = set()
        held.add(resource)
        self.requests += 1
        self.instant_grants += 1
        return midx

    def cancel_wait(self, txn: object) -> None:
        """Withdraw a waiting request (deadlock victim about to abort)."""
        ticket = self._waiting.pop(txn, None)
        if ticket is None:
            return
        ticket.cancelled = True
        entry = self._entries.get(ticket.resource)
        if entry is not None and ticket in entry.queue:
            entry.queue.remove(ticket)
            self._drain(ticket.resource)

    # -- releases ----------------------------------------------------------------

    def release(self, txn: object, resource: ResourceKey) -> None:
        entry = self._entries.get(resource)
        if entry is None or txn not in entry.granted:
            return
        del entry.granted[txn]
        held = self._held.get(txn)
        if held is not None:
            held.discard(resource)
        self._drain(resource)

    def release_all(self, txn: object) -> None:
        self.cancel_wait(txn)
        entries = self._entries
        pool = self._pool
        held = self._held.pop(txn, ())
        if self._waiting:
            # Waiters exist somewhere: release in deterministic order so
            # the cascade of drains (and thus grant order) is seeded-run
            # stable.  With no waiters every drain is a no-op and the
            # release order is unobservable, so the sort is skipped.
            held = sorted(held, key=_release_order)
        for resource in held:
            entry = entries.get(resource)
            if entry is None or txn not in entry.granted:
                continue
            del entry.granted[txn]
            if not entry.granted and not entry.queue:
                # Nothing left to drain: recycle the entry directly.
                del entries[resource]
                if len(pool) < _POOL_CAPACITY:
                    pool.append(entry)
            else:
                self._drain(resource)

    # -- internals -----------------------------------------------------------------

    def _note_held(self, txn: object, resource: ResourceKey) -> None:
        held = self._held.get(txn)
        if held is None:
            held = self._held[txn] = set()
        held.add(resource)

    @staticmethod
    def _enqueue_conversion(entry: _Entry, ticket: WaitTicket) -> None:
        position = 0
        while position < len(entry.queue) and entry.queue[position].is_conversion:
            position += 1
        entry.queue.insert(position, ticket)

    def _drain(self, resource: ResourceKey) -> None:
        """Grant queued requests that have become compatible (FIFO)."""
        entry = self._entries.get(resource)
        if entry is None:
            return
        table = self._tables[resource[0]]
        granted = entry.granted
        queue = entry.queue
        while queue:
            ticket = queue[0]
            mask = table.compat_mask[ticket.mode_idx]
            blocked = False
            for holder, holder_idx in granted.items():
                if holder != ticket.txn and not (mask >> holder_idx) & 1:
                    blocked = True
                    break
            if blocked:
                break
            queue.pop(0)
            granted[ticket.txn] = ticket.mode_idx
            if not ticket.is_conversion:
                self._note_held(ticket.txn, resource)
            self._waiting.pop(ticket.txn, None)
            ticket._fire()
        if not granted and not queue:
            # Empty entry: back onto the free list instead of the GC.
            del self._entries[resource]
            if len(self._pool) < _POOL_CAPACITY:
                self._pool.append(entry)
