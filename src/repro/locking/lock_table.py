"""The lock table: granted modes, wait queues, conversions.

A pure state machine, deliberately free of threads and clocks so that the
same table runs under the discrete-event simulator and under the real
threaded runtime.  The drivers observe blocking through
:class:`WaitTicket` objects and are notified of grants via callbacks.

Semantics (Section 2.3 / [9]):

* one lock per transaction and resource -- a second request by the same
  holder is resolved through the protocol's conversion matrix, possibly
  yielding a *child action* (the CX_NR-style fan-out);
* conversions wait at the head of the queue (before fresh requests);
* fresh requests are granted FIFO: a request waits if it is incompatible
  with any current holder *or* any earlier waiter (no starvation);
* releasing locks drains the queue in order, stopping at the first
  request that still cannot be granted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.modes import ModeTable
from repro.errors import LockError

ResourceKey = Tuple[str, object]  # (lock space, key)


def _release_order(resource: ResourceKey):
    """Deterministic release order without stringifying every key.

    Releases drain wait queues, so the order must be stable for
    reproducible runs; sorting by ``repr`` was a measurable cost at
    commit time.  Keys are ordered structurally instead: SPLIDs by
    division tuple, edge keys by (divisions, role), anything else by its
    string form.  The integer tag keeps mixed key shapes comparable.
    """
    space, key = resource
    divisions = getattr(key, "divisions", None)
    if divisions is not None:
        return (space, 0, divisions, "")
    if isinstance(key, tuple) and len(key) == 2:
        node_divisions = getattr(key[0], "divisions", None)
        if node_divisions is not None:
            role = key[1]
            return (space, 1, node_divisions, getattr(role, "value", str(role)))
    return (space, 2, (), str(key))


@dataclass
class WaitTicket:
    """Handle for a blocked lock request.

    The driver parks the transaction on this ticket; ``on_grant`` fires
    when the table grants the request (the lock is then already held).
    """

    txn: object
    resource: ResourceKey
    mode: str
    is_conversion: bool
    child_mode: Optional[str] = None
    granted: bool = False
    cancelled: bool = False
    on_grant: Optional[Callable[["WaitTicket"], None]] = None
    #: Lock-wait timeout (simulated ms); None waits forever.
    timeout_ms: Optional[float] = None
    #: Withdraws the request from the lock table (set by the lock manager,
    #: called by the driver when the timeout fires).
    cancel: Optional[Callable[[], None]] = None

    def _fire(self) -> None:
        self.granted = True
        if self.on_grant is not None:
            self.on_grant(self)


@dataclass
class GrantResult:
    """Outcome of a lock request."""

    granted: bool
    #: Mode now held (after conversion) when granted immediately.
    mode: Optional[str] = None
    #: Child fan-out demanded by the conversion (e.g. CX_NR).
    child_mode: Optional[str] = None
    #: Ticket to wait on when not granted.
    ticket: Optional[WaitTicket] = None
    #: True when the request was a no-op (mode already covered).
    noop: bool = False


@dataclass
class _Entry:
    granted: Dict[object, str] = field(default_factory=dict)
    queue: List[WaitTicket] = field(default_factory=list)


class LockTable:
    """All lock spaces of one database instance."""

    def __init__(self, tables: Dict[str, ModeTable]):
        self._tables = dict(tables)
        self._entries: Dict[ResourceKey, _Entry] = {}
        self._held: Dict[object, Set[ResourceKey]] = {}
        self._waiting: Dict[object, WaitTicket] = {}
        # statistics
        self.requests = 0
        self.instant_grants = 0
        self.waits = 0
        self.conversions = 0

    # -- introspection ---------------------------------------------------------

    def has_space(self, space: str) -> bool:
        return space in self._tables

    def table_for(self, space: str) -> ModeTable:
        try:
            return self._tables[space]
        except KeyError:
            raise LockError(f"no mode table for lock space {space!r}") from None

    def mode_held(self, txn: object, resource: ResourceKey) -> Optional[str]:
        entry = self._entries.get(resource)
        return None if entry is None else entry.granted.get(txn)

    def holders(self, resource: ResourceKey) -> Dict[object, str]:
        entry = self._entries.get(resource)
        return {} if entry is None else dict(entry.granted)

    def held_resources(self, txn: object) -> Set[ResourceKey]:
        return set(self._held.get(txn, ()))

    def waiting_ticket(self, txn: object) -> Optional[WaitTicket]:
        return self._waiting.get(txn)

    def lock_count(self) -> int:
        return sum(len(e.granted) for e in self._entries.values())

    # -- wait-for graph (for the deadlock detector) ------------------------------

    def blockers_of(self, ticket: WaitTicket) -> Set[object]:
        """Transactions this ticket is waiting on."""
        entry = self._entries.get(ticket.resource)
        if entry is None:
            return set()
        table = self.table_for(ticket.resource[0])
        blockers: Set[object] = set()
        for holder, held_mode in entry.granted.items():
            if holder == ticket.txn:
                continue
            if not table.compatible(held_mode, ticket.mode):
                blockers.add(holder)
        if not ticket.is_conversion:
            for ahead in entry.queue:
                if ahead is ticket:
                    break
                if ahead.txn != ticket.txn:
                    blockers.add(ahead.txn)
        return blockers

    def wait_edges(self) -> Dict[object, Set[object]]:
        """Current wait-for graph: waiter -> blocking transactions."""
        return {
            txn: self.blockers_of(ticket)
            for txn, ticket in self._waiting.items()
        }

    # -- requests ---------------------------------------------------------------

    def request(self, txn: object, space: str, key: object, mode: str) -> GrantResult:
        """Request ``mode`` on ``(space, key)`` for ``txn``."""
        if txn in self._waiting:
            raise LockError(f"{txn} already waiting; cannot issue new request")
        table = self.table_for(space)
        if mode not in table:
            raise LockError(f"mode {mode} not in table {table.name}")
        resource: ResourceKey = (space, key)
        entry = self._entries.setdefault(resource, _Entry())
        self.requests += 1

        held = entry.granted.get(txn)
        if held is not None:
            conversion = table.convert(held, mode)
            if conversion.result == held:
                # Mode unchanged: no compatibility check needed.  A child
                # action may still apply (e.g. held CX + requested LR
                # demands NR on every child even though CX stays).
                self.instant_grants += 1
                return GrantResult(
                    granted=True, mode=held,
                    child_mode=conversion.child_mode,
                    noop=conversion.child_mode is None,
                )
            self.conversions += 1
            if self._compatible_with_others(entry, table, txn, conversion.result):
                entry.granted[txn] = conversion.result
                self.instant_grants += 1
                return GrantResult(
                    granted=True, mode=conversion.result,
                    child_mode=conversion.child_mode,
                )
            ticket = WaitTicket(
                txn, resource, conversion.result,
                is_conversion=True, child_mode=conversion.child_mode,
            )
            self._enqueue_conversion(entry, ticket)
            self._waiting[txn] = ticket
            self.waits += 1
            return GrantResult(granted=False, ticket=ticket)

        if not entry.queue and self._compatible_with_others(entry, table, txn, mode):
            entry.granted[txn] = mode
            self._held.setdefault(txn, set()).add(resource)
            self.instant_grants += 1
            return GrantResult(granted=True, mode=mode)

        ticket = WaitTicket(txn, resource, mode, is_conversion=False)
        entry.queue.append(ticket)
        self._waiting[txn] = ticket
        self.waits += 1
        return GrantResult(granted=False, ticket=ticket)

    def cancel_wait(self, txn: object) -> None:
        """Withdraw a waiting request (deadlock victim about to abort)."""
        ticket = self._waiting.pop(txn, None)
        if ticket is None:
            return
        ticket.cancelled = True
        entry = self._entries.get(ticket.resource)
        if entry is not None and ticket in entry.queue:
            entry.queue.remove(ticket)
            self._drain(ticket.resource)

    # -- releases ----------------------------------------------------------------

    def release(self, txn: object, resource: ResourceKey) -> None:
        entry = self._entries.get(resource)
        if entry is None or txn not in entry.granted:
            return
        del entry.granted[txn]
        held = self._held.get(txn)
        if held is not None:
            held.discard(resource)
        self._drain(resource)

    def release_all(self, txn: object) -> None:
        self.cancel_wait(txn)
        for resource in sorted(self._held.pop(txn, ()), key=_release_order):
            entry = self._entries.get(resource)
            if entry is not None and txn in entry.granted:
                del entry.granted[txn]
                self._drain(resource)

    # -- internals -----------------------------------------------------------------

    @staticmethod
    def _compatible_with_others(
        entry: _Entry, table: ModeTable, txn: object, mode: str
    ) -> bool:
        return all(
            table.compatible(held_mode, mode)
            for holder, held_mode in entry.granted.items()
            if holder != txn
        )

    @staticmethod
    def _enqueue_conversion(entry: _Entry, ticket: WaitTicket) -> None:
        position = 0
        while position < len(entry.queue) and entry.queue[position].is_conversion:
            position += 1
        entry.queue.insert(position, ticket)

    def _drain(self, resource: ResourceKey) -> None:
        """Grant queued requests that have become compatible (FIFO)."""
        entry = self._entries.get(resource)
        if entry is None:
            return
        table = self.table_for(resource[0])
        while entry.queue:
            ticket = entry.queue[0]
            if not self._compatible_with_others(entry, table, ticket.txn, ticket.mode):
                break
            entry.queue.pop(0)
            entry.granted[ticket.txn] = ticket.mode
            if not ticket.is_conversion:
                self._held.setdefault(ticket.txn, set()).add(resource)
            self._waiting.pop(ticket.txn, None)
            ticket._fire()
        if not entry.granted and not entry.queue:
            del self._entries[resource]
