"""Locking substrate: lock table, deadlock detector, meta-sync manager."""

from repro.locking.deadlock import DeadlockDetector, DeadlockEvent
from repro.locking.lock_manager import (
    AcquireReport,
    IsolationLevel,
    LockManager,
    WRITE_PRIVILEGES,
)
from repro.locking.lock_table import GrantResult, LockTable, WaitTicket

__all__ = [
    "AcquireReport",
    "DeadlockDetector",
    "DeadlockEvent",
    "GrantResult",
    "IsolationLevel",
    "LockManager",
    "LockTable",
    "WRITE_PRIVILEGES",
    "WaitTicket",
]
