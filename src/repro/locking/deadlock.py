"""Deadlock detection: wait-for graph cycles, victim choice, classification.

XTC's deadlock detector collects, per event, "the number of active
transactions, the locks held, the state of the wait-for graph, etc.", so
that TaMix can tell *conversion* deadlocks (the frequent case) from
deadlocks between lock requests in separate subtrees (rare).  We do the
same: detection runs whenever a request blocks, the requester is chosen as
the victim (it always lies on the detected cycle, so aborting it resolves
the deadlock deterministically), and every event is recorded with its
classification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.locking.lock_table import LockTable, WaitTicket
from repro.obs import DEADLOCK_DETECTED, NULL_TRACER, txn_label


def _txn_order(txn: object) -> str:
    """Stable ordering key for transactions.

    Sorting by ``id`` (CPython object addresses) made cycle discovery
    order, victim cycles, and ``wait_edges`` snapshots vary across
    processes, breaking the byte-identical seeded-run guarantee.  The
    trace label (``T<n>:<name>``, or ``str`` for bare tokens) is stable
    within a run and identical across repeated seeded runs.
    """
    return txn_label(txn)


@dataclass(frozen=True)
class DeadlockEvent:
    """One detected deadlock, as recorded by the detector.

    Mirrors the data the paper's XTCdeadlockDetector collects: "the number
    of active transactions, the locks held, the state of the wait-for
    graph, etc.", enabling precise post-mortem analysis of each event.
    """

    victim: object
    cycle: Tuple[object, ...]
    #: True when at least one request on the cycle was a lock conversion.
    conversion: bool
    #: Resource the victim was waiting for.
    resource: Tuple[str, object]
    active_transactions: int
    #: Total locks held system-wide at detection time.
    locks_held: int = 0
    #: Snapshot of the wait-for graph: (waiter, blocker) edges.
    wait_edges: Tuple[Tuple[object, object], ...] = ()
    #: The modes the cycle members were waiting to acquire.
    waiting_modes: Tuple[str, ...] = ()

    @property
    def kind(self) -> str:
        return "conversion" if self.conversion else "distinct-subtree"

    def describe(self) -> str:
        """One-line analysis string (for TaMix deadlock reports)."""
        chain = " -> ".join(str(t) for t in self.cycle)
        return (
            f"{self.kind} deadlock, victim={self.victim}, cycle=[{chain}], "
            f"waiting for {self.resource[1]} "
            f"({self.active_transactions} active txns, "
            f"{self.locks_held} locks held)"
        )


@dataclass
class DeadlockDetector:
    """Cycle search over the lock table's wait-for graph."""

    table: LockTable
    events: List[DeadlockEvent] = field(default_factory=list)
    #: Observability tracer (no-op by default; set by the lock manager).
    tracer: object = NULL_TRACER

    def check(self, ticket: WaitTicket, active_transactions: int = 0) -> Optional[DeadlockEvent]:
        """Run detection for a freshly blocked request.

        Returns the deadlock event (victim = the requester) if the request
        closed a cycle, else ``None``.
        """
        cycle = self._find_cycle(ticket.txn)
        if cycle is None:
            return None
        conversion = self._cycle_has_conversion(cycle)
        wait_edges = tuple(
            (waiter, blocker)
            for waiter, blockers in sorted(
                self.table.wait_edges().items(),
                key=lambda item: _txn_order(item[0]),
            )
            for blocker in sorted(blockers, key=_txn_order)
        )
        waiting_modes = []
        for txn in cycle:  # cycle[0] is the requester; its ticket is live
            waiting = self.table.waiting_ticket(txn)
            if waiting is not None:
                waiting_modes.append(waiting.mode)
        event = DeadlockEvent(
            victim=ticket.txn,
            cycle=tuple(cycle),
            conversion=conversion,
            resource=ticket.resource,
            active_transactions=active_transactions,
            locks_held=self.table.lock_count(),
            wait_edges=wait_edges,
            waiting_modes=tuple(waiting_modes),
        )
        self.events.append(event)
        if self.tracer.enabled:
            self.tracer.emit(
                DEADLOCK_DETECTED,
                txn=txn_label(ticket.txn),
                deadlock_kind=event.kind,
                cycle=[txn_label(member) for member in event.cycle],
                resource=str(event.resource[1]),
                space=event.resource[0],
                active_transactions=event.active_transactions,
                locks_held=event.locks_held,
            )
        return event

    # -- statistics -------------------------------------------------------------

    def count(self) -> int:
        return len(self.events)

    def counts_by_kind(self) -> Dict[str, int]:
        counts = {"conversion": 0, "distinct-subtree": 0}
        for event in self.events:
            counts[event.kind] += 1
        return counts

    # -- internals -----------------------------------------------------------------

    def _find_cycle(self, start: object) -> Optional[Sequence[object]]:
        """DFS from ``start`` through the wait-for graph, looking for a
        path back to ``start``.

        Iterative: long wait chains at high MPL would blow Python's
        recursion limit mid-detection, aborting the wrong transaction
        with a ``RecursionError`` instead of choosing a deadlock victim.
        """
        path: List[object] = [start]
        on_path: Set[object] = {start}
        visited: Set[object] = set()
        stack: List = [self._blockers_of(start)]

        while stack:
            frame = stack[-1]
            if not frame:
                visited.add(path[-1])
                stack.pop()
                on_path.discard(path.pop())
                continue
            blocker = frame.pop(0)
            if blocker == start:
                return list(path)
            if blocker in on_path or blocker in visited:
                continue
            path.append(blocker)
            on_path.add(blocker)
            stack.append(self._blockers_of(blocker))
        return None

    def _blockers_of(self, txn: object) -> List[object]:
        """The transactions ``txn`` waits on, in stable label order."""
        ticket = self.table.waiting_ticket(txn)
        if ticket is None:
            return []
        return sorted(self.table.blockers_of(ticket), key=_txn_order)

    def _cycle_has_conversion(self, cycle: Sequence[object]) -> bool:
        for txn in cycle:
            ticket = self.table.waiting_ticket(txn)
            if ticket is not None and ticket.is_conversion:
                return True
        return False
