"""The lock manager: meta-synchronization front end (Section 3.3).

The node manager hands abstract :class:`~repro.core.protocol.MetaRequest`
objects to :meth:`LockManager.acquire`; the configured protocol maps them
to concrete lock steps, which are executed against the lock table.
``acquire`` is a generator: it *yields* :class:`WaitTicket` objects
whenever a step blocks (the driver -- simulator or threaded runtime --
parks the transaction until the grant fires) and finally *returns* an
:class:`AcquireReport`.

Isolation levels (footnote 5 of the paper) are enforced here:

* ``NONE`` acquires no locks at all;
* ``UNCOMMITTED`` skips read locks, write locks are long;
* ``COMMITTED`` takes short read locks (released at end of operation via
  :meth:`LockManager.end_operation`) and long write locks;
* ``REPEATABLE`` takes long read and write locks.

The manager also keeps a per-transaction *coverage cache*: once a
transaction holds a subtree or level lock, requests already covered by it
are answered without touching the lock table -- this is the SPLID-powered
cheapness of subtree locks that the protocols with lock depth exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.modes import WRITE_PRIVILEGES
from repro.core.protocol import (
    EDGE_SPACE,
    LockPlan,
    LockProtocol,
    LockStep,
    MetaRequest,
    NODE_SPACE,
)
from repro.errors import DeadlockAbort, LockError, LockTimeout
from repro.locking.deadlock import DeadlockDetector
from repro.locking.lock_table import LockTable, _Entry
from repro.obs import (
    LOCK_BLOCK,
    LOCK_CONVERT,
    LOCK_ESCALATE,
    LOCK_GRANT,
    LOCK_RELEASE,
    LOCK_REQUEST,
    LOCK_TIMEOUT,
    Observability,
    SPAN_BEGIN,
    SPAN_END,
    txn_label,
)
from repro.splid import Splid

__all__ = [
    "AcquireReport",
    "IsolationLevel",
    "LockManager",
    "WRITE_PRIVILEGES",
]


class IsolationLevel(Enum):
    """The paper's four experimental isolation levels plus SERIALIZABLE.

    Footnote 1 of the paper: serializable "is offered by the taDOM*
    group" (and only there); it behaves like repeatable read plus
    key-range locks on the ID index to prevent phantoms from direct
    jumps (``getElementById``).
    """

    NONE = "none"
    UNCOMMITTED = "uncommitted"
    COMMITTED = "committed"
    REPEATABLE = "repeatable"
    SERIALIZABLE = "serializable"

    @classmethod
    def parse(cls, value: "IsolationLevel | str") -> "IsolationLevel":
        if isinstance(value, cls):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            raise LockError(f"unknown isolation level {value!r}") from None


@dataclass(slots=True)
class AcquireReport:
    """What one meta request cost and demanded."""

    lock_requests: int = 0
    skipped_covered: int = 0
    blocked: int = 0
    #: Pending conversion fan-outs: (node, child mode) pairs for which the
    #: caller must enumerate the children and lock each one.
    fanouts: List[Tuple[Splid, str]] = field(default_factory=list)
    #: From the plan: subtree must be visited node-by-node (*-2PL).
    traverse_individually: bool = False
    #: From the plan: subtree ID scan required before delete (*-2PL).
    scan_ids: Optional[Splid] = None


@dataclass
class _TxnLockState:
    subtree_read_anchors: Set[Splid] = field(default_factory=set)
    subtree_write_anchors: Set[Splid] = field(default_factory=set)
    level_read_anchors: Set[Splid] = field(default_factory=set)
    #: parent -> granted node requests below it (escalation trigger).
    child_grants: Dict[Splid, int] = field(default_factory=dict)
    #: Parents that saw at least one write-mode child grant.
    child_write_parents: Set[Splid] = field(default_factory=set)
    #: Ancestor-chain prefixes verified held-and-covering this
    #: generation (cleared whenever the transaction releases anything);
    #: see LockManager._batch_fast.
    prefix_done: Set[tuple] = field(default_factory=set)
    #: (resource, mode index) pairs proven anchor-covered.  Valid while
    #: anchors only grow; any anchor *discard* (mode conversion losing
    #: coverage, selective release) clears the memo wholesale.
    covered_memo: Set[tuple] = field(default_factory=set)


class _PreparedPlan:
    """A lock plan resolved for the batched fast path.

    ``steps`` holds per-step (step, mode table, mode index, resource
    key) tuples.  ``prefix_key``/``prefix_len`` describe the plan's
    leading root-down ancestor chain when it is eligible for the
    per-transaction prefix memo (all NODE_SPACE, strict parent-child
    chain, every requested mode monotone under the table's conversion
    lattice -- :attr:`ModeTable.chain_mono_mask`).  Sibling requests
    share the same ancestor chain, so the key is derived from the
    deepest chain resource plus the chain's mode indices.
    """

    __slots__ = ("steps", "prefix_len", "prefix_key")

    def __init__(self, steps: list, prefix_len: int, prefix_key):
        self.steps = steps
        self.prefix_len = prefix_len
        self.prefix_key = prefix_key


#: Bound on the per-manager plan cache (complete lock plans keyed by
#: meta request; FIFO-evicted in insertion order).
PLAN_CACHE_CAPACITY = 8_192
_PLAN_EVICT_BATCH = 512


class LockManager:
    """Meta-lock requests -> protocol plan -> lock table execution."""

    def __init__(
        self,
        protocol: LockProtocol,
        *,
        lock_depth: int = 4,
        wait_timeout_ms: Optional[float] = 10_000.0,
        active_transactions: Optional[Callable[[], int]] = None,
        obs: Optional[Observability] = None,
        escalation_threshold: Optional[int] = None,
    ):
        self.protocol = protocol
        self.lock_depth = lock_depth
        self.wait_timeout_ms = wait_timeout_ms
        self.timeouts = 0
        self.obs = obs if obs is not None else Observability.disabled()
        self.tracer = self.obs.tracer
        #: Tracer state never changes after construction, so the hot path
        #: reads this cached flag instead of chasing tracer.enabled.
        self._tracing = self.tracer.enabled
        self.table = LockTable(protocol.tables())
        #: space -> ModeTable, resolved once for the batched grant loop.
        self._space_tables = dict(protocol.tables())
        #: Node -> subtree escalation after this many granted child
        #: requests under one parent; None disables the policy (the
        #: default, keeping seeded runs byte-identical with PR 5).
        self.escalation_threshold = escalation_threshold
        #: Subtree locks taken by the escalation policy.
        self.escalations = 0
        #: Fault-injection hook (repro.chaos): bound per-call method, or
        #: None -- the zero-cost-when-disabled dispatch (see the chaos
        #: property below).
        self._chaos = None
        self._chaos_lock = None
        self.detector = DeadlockDetector(self.table, tracer=self.tracer)
        #: Blocking-wait durations (simulated ms) in fixed buckets -- the
        #: per-cell wait histogram of the sweep reports.  Observing is a
        #: bisect + increment and happens only for *completed* waits
        #: (blocked, then granted); victims and still-parked waiters at
        #: the run horizon never resume, so they are not observed.
        self.wait_histogram = self.obs.metrics.histogram("lock.wait_ms")
        self.obs.metrics.register_collector(self._collect_metrics)
        self._states: Dict[object, _TxnLockState] = {}
        #: Plans are pure functions of (request, lock_depth) for a fixed
        #: protocol, and MetaRequest is frozen/hashable -- so identical
        #: requests (re-reads of the same node, repeated traversal steps)
        #: reuse the derived plan instead of re-running protocol.plan().
        #: The cache lives on the *protocol instance*, one dict per
        #: lock_depth so requests key it directly: fresh managers over
        #: the same protocol (sweep cells, benchmark rounds) start warm.
        caches = getattr(protocol, "_plan_caches", None)
        if caches is None:
            caches = {}
            try:
                protocol._plan_caches = caches
            except AttributeError:
                pass  # unwritable protocol object: fall back to per-manager
        cache = caches.get(lock_depth)
        if cache is None:
            cache = caches[lock_depth] = {}
        self._plan_cache: Dict[MetaRequest, tuple] = cache
        self._active_transactions = active_transactions or (lambda: 0)
        #: Clock for wait-time accounting (bound by Database.set_clock).
        self.clock: Callable[[], float] = lambda: 0.0
        #: Grants per (space, mode) -- the protocol's lock-mode profile.
        self.mode_usage: Dict[Tuple[str, str], int] = {}
        #: Aggregate lock-wait time statistics (simulated ms).
        self.wait_count = 0
        self.wait_time_total = 0.0
        self.wait_time_max = 0.0
        #: Stable hot-path bindings for _batch_fast, bound once: these
        #: objects are created here and never reassigned afterwards.
        self._hot = (
            self.table._entries,
            self.table._entries.get,
            self.table._pool,
            self.table._held,
            self.table.grant_fast,
            self._states.get,
            self._anchor_covered,
            self._note_grant,
            self.mode_usage,
        )

    # -- chaos hook dispatch ----------------------------------------------------

    @property
    def chaos(self):
        """Fault-injection engine (repro.chaos), or None.

        Assigning an engine binds its ``lock_request`` hook only when the
        engine actually has rules for the ``lock.acquire`` site
        (:meth:`~repro.chaos.engine.ChaosEngine.wants`), so an installed
        but idle engine costs the grant path nothing.
        """
        return self._chaos

    @chaos.setter
    def chaos(self, engine) -> None:
        self._chaos = engine
        if engine is None:
            self._chaos_lock = None
            return
        wants = getattr(engine, "wants", None)
        if wants is None or wants("lock.acquire"):
            self._chaos_lock = engine.lock_request
        else:
            self._chaos_lock = None

    # -- the meta-synchronization entry point ----------------------------------

    def acquire(self, txn: object, request: MetaRequest):
        """Generator: acquire all locks for ``request``.

        Yields :class:`WaitTicket` objects for blocking steps; raises
        :class:`DeadlockAbort` when the transaction becomes a deadlock
        victim; returns an :class:`AcquireReport`.
        """
        report = AcquireReport()
        isolation = getattr(txn, "isolation", IsolationLevel.REPEATABLE)
        plan, prepared = self._plan_for(request)
        if plan.traverse_individually:
            report.traverse_individually = True
        if plan.scan_ids is not None:
            report.scan_ids = plan.scan_ids
        if isolation is IsolationLevel.NONE:
            return report
        if isolation is IsolationLevel.UNCOMMITTED and request.is_read:
            return report

        if self._tracing:
            for step in plan.steps:
                yield from self._acquire_step(txn, step, report)
        else:
            pos = self._batch_fast(txn, prepared, report, 0)
            while pos >= 0:
                yield from self._request_and_wait(txn, prepared.steps[pos][0],
                                                 report)
                pos = self._batch_fast(txn, prepared, report, pos + 1)
        return report

    def acquire_children(
        self, txn: object, children: Iterable[Splid], child_mode: str
    ):
        """Generator: execute a conversion fan-out (CX_NR-style)."""
        report = AcquireReport()
        steps = [LockStep(NODE_SPACE, child, child_mode) for child in children]
        if self._tracing:
            for step in steps:
                yield from self._acquire_step(txn, step, report)
        else:
            prepared = self._prepare_steps(steps)
            pos = self._batch_fast(txn, prepared, report, 0)
            while pos >= 0:
                yield from self._request_and_wait(txn, prepared.steps[pos][0],
                                                 report)
                pos = self._batch_fast(txn, prepared, report, pos + 1)
        return report

    def acquire_steps(self, txn: object, steps: Iterable[LockStep]):
        """Generator: execute explicit lock steps (e.g. the *-2PL group's
        IDX locks collected by a pre-delete subtree scan)."""
        report = AcquireReport()
        if self._tracing:
            for step in steps:
                yield from self._acquire_step(txn, step, report)
        else:
            prepared = self._prepare_steps(steps)
            pos = self._batch_fast(txn, prepared, report, 0)
            while pos >= 0:
                yield from self._request_and_wait(txn, prepared.steps[pos][0],
                                                 report)
                pos = self._batch_fast(txn, prepared, report, pos + 1)
        return report

    def _batch_fast(self, txn: object, pp: _PreparedPlan,
                    report: AcquireReport, start: int) -> int:
        """One lock-table pass over a plan's steps (the untraced fast path).

        The per-step generator machinery of :meth:`_acquire_step` is
        replaced by a flat, yield-free loop over the lock table's
        integer-mode primitives: covered steps are skipped, instantly
        grantable steps go through :meth:`LockTable.grant_fast`
        (index-and-mask only, no :class:`GrantResult` allocation).  Only
        a step that would actually block stops the loop: its index is
        returned -- already counted and chaos-hooked -- and the caller
        runs the ticket/wait machinery for it, then resumes the loop at
        the next step.  Returns -1 once every step is processed.
        Decision order per step -- coverage check, chaos hook, table
        request -- is identical to the per-step path, so seeded runs are
        byte-identical either way.

        The *prefix memo*: once this transaction has walked a plan's
        ancestor chain with every step granted or held-subsume-covered,
        the chain's key goes into ``state.prefix_done``.  Sibling plans
        share the chain, and mode monotonicity (the chain eligibility
        condition, :attr:`ModeTable.chain_mono_mask`) guarantees a
        re-check could only find the steps covered again until the
        transaction releases something (which clears the memo) -- so a
        memo hit skips the per-level probes outright with behaviour
        identical to checking.  Anchor-based coverage is *not* monotone
        (conversions can drop anchors), so a chain verified that way is
        not memoized.
        """
        prepared = pp.steps
        lock_table = self.table
        # Hot path: the loop works on the table's internals directly --
        # one entry probe serves the coverage check, the inlined fresh
        # grant, and the grant_fast fallback alike.  The stable locals
        # are unpacked from one prebuilt tuple (see __init__) instead of
        # a dozen attribute loads and bound-method allocations per call.
        (entries, entries_get, pool, held_map, grant_fast,
         states_get, anchor_covered, note_grant, mode_usage) = self._hot
        fanouts = report.fanouts
        hook = self._chaos_lock
        track_children = self.escalation_threshold is not None
        prefix_len = pp.prefix_len
        memo_store = False
        if start == 0 and prefix_len:
            state = states_get(txn)
            if state is not None and pp.prefix_key in state.prefix_done:
                report.skipped_covered += prefix_len
                start = prefix_len
            else:
                memo_store = True
        held_set = None
        fresh = 0
        try:
            for pos in range(start, len(prepared)):
                step, table, midx, resource = prepared[pos]
                # Transaction-local lock cache + coverage-cache anchors.
                entry = entries_get(resource)
                held_idx = -1
                if entry is not None:
                    held_idx = entry.granted.get(txn, -1)
                    if (held_idx >= 0
                            and (table.subsume_mask[held_idx] >> midx) & 1):
                        report.skipped_covered += 1
                        continue
                state = states_get(txn)
                if (state is not None
                        and (state.subtree_read_anchors
                             or state.subtree_write_anchors
                             or state.level_read_anchors)):
                    memo_key = (resource, midx)
                    if memo_key in state.covered_memo:
                        report.skipped_covered += 1
                        if pos < prefix_len:
                            memo_store = False
                        continue
                    if anchor_covered(state, step, table, midx):
                        state.covered_memo.add(memo_key)
                        report.skipped_covered += 1
                        if pos < prefix_len:
                            memo_store = False  # anchor coverage is not monotone
                        continue
                report.lock_requests += 1
                if hook is not None:
                    # May raise LockTimeout/DeadlockAbort; before the table
                    # request so aborted steps leave no dangling lock.
                    hook(txn, step)
                if entry is None:
                    # Inlined grant_fast entry-miss path: an uncontended
                    # fresh grant of exactly the requested mode.  Stats
                    # are accumulated locally and flushed on every exit.
                    entry = pool.pop() if pool else _Entry()
                    entries[resource] = entry
                    entry.granted[txn] = midx
                    if held_set is None:
                        held_set = held_map.get(txn)
                        if held_set is None:
                            held_set = held_map[txn] = set()
                    held_set.add(resource)
                    fresh += 1
                    granted_mode = table.modes[midx]
                    usage_key = (step.space, granted_mode)
                    mode_usage[usage_key] = mode_usage.get(usage_key, 0) + 1
                    # A fresh grant of an anchor-less mode (intention and
                    # plain node locks) has no coverage-cache effect: the
                    # key cannot appear in any anchor set, so the
                    # add/discard bookkeeping is a no-op and is skipped.
                    if track_children or table.anchor_any_idx[midx]:
                        note_grant(txn, step.space, step.key, granted_mode)
                    continue
                code = grant_fast(txn, resource, midx, table, entry=entry)
                if code < 0:
                    # Would block (or queue behind a waiter): hand the step
                    # back for the full ticket/wait path.
                    return pos
                gidx = code & 0xFF
                granted_mode = table.modes[gidx]
                usage_key = (step.space, granted_mode)
                mode_usage[usage_key] = mode_usage.get(usage_key, 0) + 1
                child_idx = (code >> 8) - 1
                if child_idx >= 0:
                    key = step.key
                    fanouts.append((key if isinstance(key, Splid) else key[0],
                                    table.modes[child_idx]))
                # Conversions (held_idx >= 0) may drop anchors of the old
                # mode, so they always refresh the coverage cache.
                if held_idx >= 0 or track_children or table.anchor_any_idx[gidx]:
                    note_grant(txn, step.space, step.key, granted_mode)
        finally:
            if fresh:
                lock_table.requests += fresh
                lock_table.instant_grants += fresh
        if memo_store:
            state = states_get(txn)
            if state is None:
                state = self._states[txn] = _TxnLockState()
            state.prefix_done.add(pp.prefix_key)
        return -1

    # -- lifecycle ----------------------------------------------------------------

    def end_operation(self, txn: object) -> int:
        """Release short read locks (isolation level COMMITTED).

        Returns the number of locks released.
        """
        if self._isolation_of(txn) is not IsolationLevel.COMMITTED:
            return 0
        released = 0
        for resource in list(self.table.held_resources(txn)):
            space, _key = resource
            mode = self.table.mode_held(txn, resource)
            if mode is None:
                continue
            table = self.table.table_for(space)
            if mode not in table.write_modes:
                self.table.release(txn, resource)
                released += 1
        if released:
            state = self._states.get(txn)
            if state is not None:
                self._refresh_state(txn, state)
            if self.tracer.enabled:
                self.tracer.emit(
                    LOCK_RELEASE, txn=txn_label(txn), count=released,
                    scope="operation",
                )
        return released

    def release_transaction(self, txn: object) -> None:
        """Release everything at commit/abort."""
        if self.tracer.enabled:
            held = len(self.table.held_resources(txn))
            if held:
                self.tracer.emit(
                    LOCK_RELEASE, txn=txn_label(txn), count=held,
                    scope="transaction",
                )
        self.table.release_all(txn)
        self._states.pop(txn, None)

    # -- statistics ------------------------------------------------------------------

    def lock_statistics(self) -> Dict[str, int]:
        return {
            "requests": self.table.requests,
            "instant_grants": self.table.instant_grants,
            "waits": self.table.waits,
            "conversions": self.table.conversions,
            "deadlocks": self.detector.count(),
            "timeouts": self.timeouts,
        }

    def wait_statistics(self) -> Dict[str, float]:
        """Aggregate lock-wait durations (simulated ms)."""
        mean = self.wait_time_total / self.wait_count if self.wait_count else 0.0
        return {
            "count": float(self.wait_count),
            "total_ms": self.wait_time_total,
            "mean_ms": mean,
            "max_ms": self.wait_time_max,
        }

    def mode_profile(self, space: Optional[str] = None) -> Dict[str, int]:
        """Grants per mode (the protocol's lock-mode usage profile).

        With ``space`` the keys are bare mode names; without, they are
        ``space:mode`` (mode names may repeat across spaces).
        """
        if space is not None:
            return {
                mode: count
                for (mode_space, mode), count in sorted(self.mode_usage.items())
                if mode_space == space
            }
        return {
            f"{mode_space}:{mode}": count
            for (mode_space, mode), count in sorted(self.mode_usage.items())
        }

    def _make_cancel(self, txn: object) -> Callable[[], None]:
        def cancel() -> None:
            self.timeouts += 1
            if self.tracer.enabled:
                ticket = self.table.waiting_ticket(txn)
                data = {"timeout_ms": self.wait_timeout_ms}
                if ticket is not None:
                    data["space"] = ticket.resource[0]
                    data["key"] = str(ticket.resource[1])
                    data["mode"] = ticket.mode
                self.tracer.emit(LOCK_TIMEOUT, txn=txn_label(txn), **data)
            self.table.cancel_wait(txn)

        return cancel

    def _collect_metrics(self, registry) -> None:
        """Snapshot-time collector: mirror the cheap native counters."""
        registry.gauge("lock.requests").set(self.table.requests)
        registry.gauge("lock.instant_grants").set(self.table.instant_grants)
        registry.gauge("lock.waits").set(self.table.waits)
        registry.gauge("lock.conversions").set(self.table.conversions)
        registry.gauge("lock.timeouts").set(self.timeouts)
        registry.gauge("deadlock.total").set(self.detector.count())
        for kind, count in self.detector.counts_by_kind().items():
            registry.gauge(f"deadlock.{kind}").set(count)

    # -- internals --------------------------------------------------------------------

    def _plan_for(self, request: MetaRequest) -> Tuple[LockPlan, list]:
        """Cached protocol.plan(), prepared for the batched fast path.

        The plan is derived once per distinct (request, lock_depth) pair
        and treated as read-only thereafter.  Alongside it the cache
        stores the *prepared* step list -- per step the resolved mode
        table, dense mode index, and resource key -- so the hot loop
        never touches the string-keyed table/mode registries.
        """
        cached = self._plan_cache.get(request)
        if cached is None:
            plan = self.protocol.plan(request, self.lock_depth)
            cached = (plan, self._prepare_steps(plan.steps))
            if len(self._plan_cache) >= PLAN_CACHE_CAPACITY:
                for stale in list(self._plan_cache)[:_PLAN_EVICT_BATCH]:
                    del self._plan_cache[stale]
            self._plan_cache[request] = cached
        return cached

    def _prepare_steps(self, steps: Iterable[LockStep]) -> _PreparedPlan:
        """Resolve (table, mode index, resource key) once per step."""
        prepared = []
        for step in steps:
            table = self._space_tables.get(step.space)
            if table is None:
                raise LockError(f"no mode table for lock space {step.space!r}")
            midx = table.mode_index.get(step.mode)
            if midx is None:
                raise LockError(f"mode {step.mode} not in table {table.name}")
            prepared.append((step, table, midx, (step.space, step.key)))
        # Maximal memo-eligible prefix: NODE_SPACE steps forming a strict
        # root-down parent chain, every mode monotone under conversions.
        prefix_len = 0
        for i, (step, table, midx, _resource) in enumerate(prepared):
            if (step.space != NODE_SPACE
                    or not isinstance(step.key, Splid)
                    or not (table.chain_mono_mask >> midx) & 1):
                break
            if i > 0 and step.key.parent != prepared[i - 1][0].key:
                break
            prefix_len = i + 1
        # The final step is the request's own target -- unique per plan,
        # so including it would make the memo key unshareable between
        # sibling requests.  The memo covers the ancestor chain only.
        prefix_len = min(prefix_len, len(prepared) - 1)
        if prefix_len >= 2:
            prefix_key = (prepared[prefix_len - 1][3],
                          tuple(item[2] for item in prepared[:prefix_len]))
        else:
            prefix_len = 0
            prefix_key = None
        return _PreparedPlan(prepared, prefix_len, prefix_key)

    @staticmethod
    def _isolation_of(txn: object) -> IsolationLevel:
        return getattr(txn, "isolation", IsolationLevel.REPEATABLE)

    def _acquire_step(self, txn: object, step: LockStep, report: AcquireReport):
        if self._is_covered(txn, step):
            report.skipped_covered += 1
            return
        report.lock_requests += 1
        hook = self._chaos_lock
        if hook is not None:
            # May raise LockTimeout/DeadlockAbort; before the request
            # event so aborted steps leave no dangling lock.request.
            hook(txn, step)
        yield from self._request_and_wait(txn, step, report)

    def _request_and_wait(self, txn: object, step: LockStep,
                          report: AcquireReport):
        """The ticket/wait machinery for one uncovered, uncounted step."""
        trace = self._tracing
        if trace:
            held_before = self.table.mode_held(txn, (step.space, step.key))
            self.tracer.emit(
                LOCK_REQUEST, txn=txn_label(txn), space=step.space,
                key=str(step.key), mode=step.mode,
            )
        result = self.table.request(txn, step.space, step.key, step.mode)
        if not result.granted:
            report.blocked += 1
            ticket = result.ticket
            if trace:
                block_data = {
                    "space": step.space, "key": str(step.key),
                    "mode": ticket.mode, "conversion": ticket.is_conversion,
                }
                if held_before is not None:
                    # The conversion edge (held -> requested) the wait
                    # stalls on; the analyzer groups wait time by it.
                    block_data["from_mode"] = held_before
                self.tracer.emit(LOCK_BLOCK, txn=txn_label(txn), **block_data)
            event = self.detector.check(ticket, self._active_transactions())
            if event is not None:
                self.table.cancel_wait(txn)
                raise DeadlockAbort(
                    f"{txn} is a deadlock victim on {step}", cycle=event.cycle
                )
            ticket.timeout_ms = self.wait_timeout_ms
            ticket.cancel = self._make_cancel(txn)
            waited_from = self.clock()
            if trace:
                self.tracer.emit(
                    SPAN_BEGIN, txn=txn_label(txn), cat="wait",
                    name="lock.wait", space=step.space, key=str(step.key),
                    mode=ticket.mode,
                )
            # The wait span must close on the timeout path too, but NOT on
            # GeneratorExit (a transaction parked at the run horizon is
            # collected whenever the GC runs -- emitting then would make
            # traces nondeterministic), so no bare finally here.
            try:
                yield ticket
            except LockTimeout:
                if trace:
                    self.tracer.emit(
                        SPAN_END, txn=txn_label(txn), cat="wait",
                        name="lock.wait", space=step.space,
                        key=str(step.key), mode=ticket.mode,
                        waited_ms=round(self.clock() - waited_from, 6),
                    )
                raise
            waited = self.clock() - waited_from
            if trace:
                self.tracer.emit(
                    SPAN_END, txn=txn_label(txn), cat="wait",
                    name="lock.wait", space=step.space, key=str(step.key),
                    mode=ticket.mode, waited_ms=round(waited, 6),
                )
            self.wait_count += 1
            self.wait_time_total += waited
            self.wait_time_max = max(self.wait_time_max, waited)
            self.wait_histogram.observe(waited)
            granted_mode = ticket.mode
            child_mode = ticket.child_mode
            if trace:
                self.tracer.emit(
                    LOCK_GRANT, txn=txn_label(txn), space=step.space,
                    key=str(step.key), mode=granted_mode,
                    waited_ms=round(waited, 6),
                )
                if held_before is not None and granted_mode != held_before:
                    self.tracer.emit(
                        LOCK_CONVERT, txn=txn_label(txn), space=step.space,
                        key=str(step.key), from_mode=held_before,
                        to_mode=granted_mode,
                    )
        else:
            granted_mode = result.mode
            child_mode = result.child_mode
            if trace:
                self.tracer.emit(
                    LOCK_GRANT, txn=txn_label(txn), space=step.space,
                    key=str(step.key), mode=granted_mode, waited_ms=0.0,
                )
                if held_before is not None and granted_mode != held_before:
                    self.tracer.emit(
                        LOCK_CONVERT, txn=txn_label(txn), space=step.space,
                        key=str(step.key), from_mode=held_before,
                        to_mode=granted_mode,
                    )
        usage_key = (step.space, granted_mode)
        self.mode_usage[usage_key] = self.mode_usage.get(usage_key, 0) + 1
        if child_mode is not None:
            key = step.key if isinstance(step.key, Splid) else step.key[0]
            report.fanouts.append((key, child_mode))
            if trace:
                self.tracer.emit(
                    LOCK_ESCALATE, txn=txn_label(txn), node=str(key),
                    child_mode=child_mode,
                )
        self._note_grant(txn, step.space, step.key, granted_mode)

    # -- coverage cache ------------------------------------------------------------

    def _note_grant(self, txn: object, space: str, key: object, mode: str) -> None:
        if space not in (NODE_SPACE, EDGE_SPACE) or not isinstance(key, Splid):
            return
        table = self._space_tables[space]
        subtree_write, subtree_read, level_read = table.anchor_flags[mode]
        state = self._states.get(txn)
        if state is None:
            state = self._states[txn] = _TxnLockState()
        # Conversions can *lose* coverage (LR -> CX drops the level read,
        # compensated by the NR child fan-out), so anchors are kept in
        # exact sync with the currently held mode.  Losing an anchor also
        # invalidates everything the covered memo proved against it.
        if subtree_write:
            state.subtree_write_anchors.add(key)
        elif key in state.subtree_write_anchors:
            state.subtree_write_anchors.remove(key)
            state.covered_memo.clear()
        if subtree_read:
            state.subtree_read_anchors.add(key)
        elif key in state.subtree_read_anchors:
            state.subtree_read_anchors.remove(key)
            state.covered_memo.clear()
        if level_read:
            state.level_read_anchors.add(key)
        elif key in state.level_read_anchors:
            state.level_read_anchors.remove(key)
            state.covered_memo.clear()
        if self.escalation_threshold is not None and space == NODE_SPACE:
            parent = key.parent
            if parent is not None:
                count = state.child_grants.get(parent, 0) + 1
                state.child_grants[parent] = count
                if mode in table.write_modes:
                    state.child_write_parents.add(parent)
                if count >= self.escalation_threshold:
                    self._try_escalate(txn, state, parent, table)

    def _try_escalate(self, txn: object, state: _TxnLockState,
                      parent: Splid, table) -> None:
        """Opportunistic node -> subtree escalation on ``parent``.

        Taking the subtree lock goes through the normal conversion
        machinery but is strictly non-blocking (``grant_fast``): if the
        subtree mode is not instantly compatible with the other holders,
        the transaction simply keeps its node-level locks.  Escalation
        only ever *adds* a lock -- child locks are not released, which
        keeps the two-phase discipline trivially intact -- so it is safe
        under every isolation level; what it buys is that every later
        request below ``parent`` becomes a coverage-cache hit.
        """
        write = parent in state.child_write_parents
        mode = table.escalation_write_mode if write else table.escalation_read_mode
        if mode is None:
            return  # protocol has no subtree modes: never escalates
        anchors = (state.subtree_write_anchors if write
                   else state.subtree_read_anchors)
        if self._anchored(anchors, parent, None):
            return  # already covered by an equal-or-higher anchor
        code = self.table.grant_fast(
            txn, (NODE_SPACE, parent), table.mode_index[mode], table,
            reject_fanout=True,
        )
        if code < 0:
            return  # contended (or fan-out conversion): stay node-level
        granted_mode = table.modes[code & 0xFF]
        self.escalations += 1
        usage_key = (NODE_SPACE, granted_mode)
        self.mode_usage[usage_key] = self.mode_usage.get(usage_key, 0) + 1
        if self._tracing:
            # The escalated lock is a real acquisition: trace it as a
            # grant too, so the history oracle's lock replay sees the
            # coverage that lets later child requests be skipped.
            self.tracer.emit(
                LOCK_GRANT, txn=txn_label(txn), space=NODE_SPACE,
                key=str(parent), mode=granted_mode, waited_ms=0.0,
            )
            self.tracer.emit(
                LOCK_ESCALATE, txn=txn_label(txn), node=str(parent),
                to_mode=granted_mode, reason="threshold",
            )
        # Recurses through _note_grant: the parent's own grant counts
        # toward the grandparent, so hot subtrees escalate bottom-up.
        self._note_grant(txn, NODE_SPACE, parent, granted_mode)

    def _refresh_state(self, txn: object, state: _TxnLockState) -> None:
        """Rebuild anchors after selective releases (committed isolation)."""
        state.subtree_read_anchors.clear()
        state.subtree_write_anchors.clear()
        state.level_read_anchors.clear()
        state.child_grants.clear()
        state.child_write_parents.clear()
        state.prefix_done.clear()
        state.covered_memo.clear()
        for resource in self.table.held_resources(txn):
            space, key = resource
            mode = self.table.mode_held(txn, resource)
            if mode is not None and isinstance(key, Splid):
                self._note_grant(txn, space, key, mode)

    def _is_covered(self, txn: object, step: LockStep) -> bool:
        table = self.table.table_for(step.space)
        held_idx = self.table.held_index(txn, (step.space, step.key))
        midx = table.mode_index.get(step.mode)
        if midx is None:
            raise LockError(f"mode {step.mode} not in table {table.name}")
        if held_idx >= 0 and (table.subsume_mask[held_idx] >> midx) & 1:
            # Transaction-local lock cache: the held mode already grants
            # everything the request needs -- no lock-table access.
            return True
        state = self._states.get(txn)
        if state is None:
            return False
        return self._anchor_covered(state, step, table, midx)

    def _anchor_covered(self, state: _TxnLockState, step: LockStep,
                        table, midx: int) -> bool:
        """Is the step covered by a subtree/level anchor in ``state``?"""
        key = step.key
        if step.space == NODE_SPACE:
            if not isinstance(key, Splid):
                return False
            node: Splid = key
            edge_parent = None
        elif step.space == EDGE_SPACE:
            node = key[0]
            edge_parent = node.parent
        else:
            return False
        if (table.write_mask >> midx) & 1:
            return self._anchored(state.subtree_write_anchors, node, edge_parent)
        if self._anchored(state.subtree_read_anchors, node, edge_parent):
            return True
        if (table.pure_read_mask >> midx) & 1:
            parent = node.parent
            if parent is not None and parent in state.level_read_anchors:
                return True
        return False

    @staticmethod
    def _anchored(
        anchors: Set[Splid], node: Splid, edge_parent: Optional[Splid]
    ) -> bool:
        """Does some anchor cover the node (and, for edges, its parent)?

        Edge locks span two siblings, so the anchor must cover the parent
        to guarantee both endpoints lie inside the locked subtree.

        Probed as an O(depth) walk: the node and each label on its cached
        ancestor chain are tested for membership in the anchor set, so the
        cost is the tree depth, not the number of anchors held.
        """
        if not anchors:
            return False
        probe = edge_parent if edge_parent is not None else node
        if probe in anchors:
            return True
        for ancestor in probe.ancestors_bottom_up():
            if ancestor in anchors:
                return True
        return False
