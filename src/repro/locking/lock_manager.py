"""The lock manager: meta-synchronization front end (Section 3.3).

The node manager hands abstract :class:`~repro.core.protocol.MetaRequest`
objects to :meth:`LockManager.acquire`; the configured protocol maps them
to concrete lock steps, which are executed against the lock table.
``acquire`` is a generator: it *yields* :class:`WaitTicket` objects
whenever a step blocks (the driver -- simulator or threaded runtime --
parks the transaction until the grant fires) and finally *returns* an
:class:`AcquireReport`.

Isolation levels (footnote 5 of the paper) are enforced here:

* ``NONE`` acquires no locks at all;
* ``UNCOMMITTED`` skips read locks, write locks are long;
* ``COMMITTED`` takes short read locks (released at end of operation via
  :meth:`LockManager.end_operation`) and long write locks;
* ``REPEATABLE`` takes long read and write locks.

The manager also keeps a per-transaction *coverage cache*: once a
transaction holds a subtree or level lock, requests already covered by it
are answered without touching the lock table -- this is the SPLID-powered
cheapness of subtree locks that the protocols with lock depth exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.modes import WRITE_PRIVILEGES
from repro.core.protocol import (
    EDGE_SPACE,
    LockPlan,
    LockProtocol,
    LockStep,
    MetaRequest,
    NODE_SPACE,
)
from repro.errors import DeadlockAbort, LockError, LockTimeout
from repro.locking.deadlock import DeadlockDetector
from repro.locking.lock_table import LockTable
from repro.obs import (
    LOCK_BLOCK,
    LOCK_CONVERT,
    LOCK_ESCALATE,
    LOCK_GRANT,
    LOCK_RELEASE,
    LOCK_REQUEST,
    LOCK_TIMEOUT,
    Observability,
    SPAN_BEGIN,
    SPAN_END,
    txn_label,
)
from repro.splid import Splid

__all__ = [
    "AcquireReport",
    "IsolationLevel",
    "LockManager",
    "WRITE_PRIVILEGES",
]


class IsolationLevel(Enum):
    """The paper's four experimental isolation levels plus SERIALIZABLE.

    Footnote 1 of the paper: serializable "is offered by the taDOM*
    group" (and only there); it behaves like repeatable read plus
    key-range locks on the ID index to prevent phantoms from direct
    jumps (``getElementById``).
    """

    NONE = "none"
    UNCOMMITTED = "uncommitted"
    COMMITTED = "committed"
    REPEATABLE = "repeatable"
    SERIALIZABLE = "serializable"

    @classmethod
    def parse(cls, value: "IsolationLevel | str") -> "IsolationLevel":
        if isinstance(value, cls):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            raise LockError(f"unknown isolation level {value!r}") from None


@dataclass
class AcquireReport:
    """What one meta request cost and demanded."""

    lock_requests: int = 0
    skipped_covered: int = 0
    blocked: int = 0
    #: Pending conversion fan-outs: (node, child mode) pairs for which the
    #: caller must enumerate the children and lock each one.
    fanouts: List[Tuple[Splid, str]] = field(default_factory=list)
    #: From the plan: subtree must be visited node-by-node (*-2PL).
    traverse_individually: bool = False
    #: From the plan: subtree ID scan required before delete (*-2PL).
    scan_ids: Optional[Splid] = None


@dataclass
class _TxnLockState:
    subtree_read_anchors: Set[Splid] = field(default_factory=set)
    subtree_write_anchors: Set[Splid] = field(default_factory=set)
    level_read_anchors: Set[Splid] = field(default_factory=set)


#: Bound on the per-manager plan cache (complete lock plans keyed by
#: meta request; FIFO-evicted in insertion order).
PLAN_CACHE_CAPACITY = 8_192
_PLAN_EVICT_BATCH = 512


class LockManager:
    """Meta-lock requests -> protocol plan -> lock table execution."""

    def __init__(
        self,
        protocol: LockProtocol,
        *,
        lock_depth: int = 4,
        wait_timeout_ms: Optional[float] = 10_000.0,
        active_transactions: Optional[Callable[[], int]] = None,
        obs: Optional[Observability] = None,
    ):
        self.protocol = protocol
        self.lock_depth = lock_depth
        self.wait_timeout_ms = wait_timeout_ms
        self.timeouts = 0
        #: Fault-injection engine (repro.chaos); None means zero overhead.
        self.chaos = None
        self.obs = obs if obs is not None else Observability.disabled()
        self.tracer = self.obs.tracer
        #: Tracer state never changes after construction, so the hot path
        #: reads this cached flag instead of chasing tracer.enabled.
        self._tracing = self.tracer.enabled
        self.table = LockTable(protocol.tables())
        self.detector = DeadlockDetector(self.table, tracer=self.tracer)
        #: Blocking-wait durations (simulated ms) in fixed buckets -- the
        #: per-cell wait histogram of the sweep reports.  Observing is a
        #: bisect + increment and happens only for *completed* waits
        #: (blocked, then granted); victims and still-parked waiters at
        #: the run horizon never resume, so they are not observed.
        self.wait_histogram = self.obs.metrics.histogram("lock.wait_ms")
        self.obs.metrics.register_collector(self._collect_metrics)
        self._states: Dict[object, _TxnLockState] = {}
        #: Plans are pure functions of (request, lock_depth) for a fixed
        #: protocol, and MetaRequest is frozen/hashable -- so identical
        #: requests (re-reads of the same node, repeated traversal steps)
        #: reuse the derived plan instead of re-running protocol.plan().
        self._plan_cache: Dict[Tuple[MetaRequest, int], LockPlan] = {}
        self._active_transactions = active_transactions or (lambda: 0)
        #: Clock for wait-time accounting (bound by Database.set_clock).
        self.clock: Callable[[], float] = lambda: 0.0
        #: Grants per (space, mode) -- the protocol's lock-mode profile.
        self.mode_usage: Dict[Tuple[str, str], int] = {}
        #: Aggregate lock-wait time statistics (simulated ms).
        self.wait_count = 0
        self.wait_time_total = 0.0
        self.wait_time_max = 0.0

    # -- the meta-synchronization entry point ----------------------------------

    def acquire(self, txn: object, request: MetaRequest):
        """Generator: acquire all locks for ``request``.

        Yields :class:`WaitTicket` objects for blocking steps; raises
        :class:`DeadlockAbort` when the transaction becomes a deadlock
        victim; returns an :class:`AcquireReport`.
        """
        report = AcquireReport()
        isolation = self._isolation_of(txn)
        plan = self._plan_for(request)
        report.traverse_individually = plan.traverse_individually
        report.scan_ids = plan.scan_ids
        if isolation is IsolationLevel.NONE:
            return report
        if isolation is IsolationLevel.UNCOMMITTED and request.is_read:
            return report

        for step in plan.steps:
            yield from self._acquire_step(txn, step, report)
        return report

    def acquire_children(
        self, txn: object, children: Iterable[Splid], child_mode: str
    ):
        """Generator: execute a conversion fan-out (CX_NR-style)."""
        report = AcquireReport()
        for child in children:
            step = LockStep(NODE_SPACE, child, child_mode)
            yield from self._acquire_step(txn, step, report)
        return report

    def acquire_steps(self, txn: object, steps: Iterable[LockStep]):
        """Generator: execute explicit lock steps (e.g. the *-2PL group's
        IDX locks collected by a pre-delete subtree scan)."""
        report = AcquireReport()
        for step in steps:
            yield from self._acquire_step(txn, step, report)
        return report

    # -- lifecycle ----------------------------------------------------------------

    def end_operation(self, txn: object) -> int:
        """Release short read locks (isolation level COMMITTED).

        Returns the number of locks released.
        """
        if self._isolation_of(txn) is not IsolationLevel.COMMITTED:
            return 0
        released = 0
        for resource in list(self.table.held_resources(txn)):
            space, _key = resource
            mode = self.table.mode_held(txn, resource)
            if mode is None:
                continue
            table = self.table.table_for(space)
            if mode not in table.write_modes:
                self.table.release(txn, resource)
                released += 1
        if released:
            state = self._states.get(txn)
            if state is not None:
                self._refresh_state(txn, state)
            if self.tracer.enabled:
                self.tracer.emit(
                    LOCK_RELEASE, txn=txn_label(txn), count=released,
                    scope="operation",
                )
        return released

    def release_transaction(self, txn: object) -> None:
        """Release everything at commit/abort."""
        if self.tracer.enabled:
            held = len(self.table.held_resources(txn))
            if held:
                self.tracer.emit(
                    LOCK_RELEASE, txn=txn_label(txn), count=held,
                    scope="transaction",
                )
        self.table.release_all(txn)
        self._states.pop(txn, None)

    # -- statistics ------------------------------------------------------------------

    def lock_statistics(self) -> Dict[str, int]:
        return {
            "requests": self.table.requests,
            "instant_grants": self.table.instant_grants,
            "waits": self.table.waits,
            "conversions": self.table.conversions,
            "deadlocks": self.detector.count(),
            "timeouts": self.timeouts,
        }

    def wait_statistics(self) -> Dict[str, float]:
        """Aggregate lock-wait durations (simulated ms)."""
        mean = self.wait_time_total / self.wait_count if self.wait_count else 0.0
        return {
            "count": float(self.wait_count),
            "total_ms": self.wait_time_total,
            "mean_ms": mean,
            "max_ms": self.wait_time_max,
        }

    def mode_profile(self, space: Optional[str] = None) -> Dict[str, int]:
        """Grants per mode (the protocol's lock-mode usage profile).

        With ``space`` the keys are bare mode names; without, they are
        ``space:mode`` (mode names may repeat across spaces).
        """
        if space is not None:
            return {
                mode: count
                for (mode_space, mode), count in sorted(self.mode_usage.items())
                if mode_space == space
            }
        return {
            f"{mode_space}:{mode}": count
            for (mode_space, mode), count in sorted(self.mode_usage.items())
        }

    def _make_cancel(self, txn: object) -> Callable[[], None]:
        def cancel() -> None:
            self.timeouts += 1
            if self.tracer.enabled:
                ticket = self.table.waiting_ticket(txn)
                data = {"timeout_ms": self.wait_timeout_ms}
                if ticket is not None:
                    data["space"] = ticket.resource[0]
                    data["key"] = str(ticket.resource[1])
                    data["mode"] = ticket.mode
                self.tracer.emit(LOCK_TIMEOUT, txn=txn_label(txn), **data)
            self.table.cancel_wait(txn)

        return cancel

    def _collect_metrics(self, registry) -> None:
        """Snapshot-time collector: mirror the cheap native counters."""
        registry.gauge("lock.requests").set(self.table.requests)
        registry.gauge("lock.instant_grants").set(self.table.instant_grants)
        registry.gauge("lock.waits").set(self.table.waits)
        registry.gauge("lock.conversions").set(self.table.conversions)
        registry.gauge("lock.timeouts").set(self.timeouts)
        registry.gauge("deadlock.total").set(self.detector.count())
        for kind, count in self.detector.counts_by_kind().items():
            registry.gauge(f"deadlock.{kind}").set(count)

    # -- internals --------------------------------------------------------------------

    def _plan_for(self, request: MetaRequest) -> LockPlan:
        """Cached protocol.plan(): the plan is derived once per distinct
        (request, lock_depth) pair and treated as read-only thereafter."""
        cache_key = (request, self.lock_depth)
        plan = self._plan_cache.get(cache_key)
        if plan is None:
            plan = self.protocol.plan(request, self.lock_depth)
            if len(self._plan_cache) >= PLAN_CACHE_CAPACITY:
                for stale in list(self._plan_cache)[:_PLAN_EVICT_BATCH]:
                    del self._plan_cache[stale]
            self._plan_cache[cache_key] = plan
        return plan

    @staticmethod
    def _isolation_of(txn: object) -> IsolationLevel:
        return getattr(txn, "isolation", IsolationLevel.REPEATABLE)

    def _acquire_step(self, txn: object, step: LockStep, report: AcquireReport):
        if self._is_covered(txn, step):
            report.skipped_covered += 1
            return
        report.lock_requests += 1
        if self.chaos is not None:
            # May raise LockTimeout/DeadlockAbort; before the request
            # event so aborted steps leave no dangling lock.request.
            self.chaos.lock_request(txn, step)
        # Tracing cost when disabled: the instant-grant path below pays
        # two checks of this cached flag and nothing else.
        trace = self._tracing
        if trace:
            held_before = self.table.mode_held(txn, (step.space, step.key))
            self.tracer.emit(
                LOCK_REQUEST, txn=txn_label(txn), space=step.space,
                key=str(step.key), mode=step.mode,
            )
        result = self.table.request(txn, step.space, step.key, step.mode)
        if not result.granted:
            report.blocked += 1
            ticket = result.ticket
            if trace:
                block_data = {
                    "space": step.space, "key": str(step.key),
                    "mode": ticket.mode, "conversion": ticket.is_conversion,
                }
                if held_before is not None:
                    # The conversion edge (held -> requested) the wait
                    # stalls on; the analyzer groups wait time by it.
                    block_data["from_mode"] = held_before
                self.tracer.emit(LOCK_BLOCK, txn=txn_label(txn), **block_data)
            event = self.detector.check(ticket, self._active_transactions())
            if event is not None:
                self.table.cancel_wait(txn)
                raise DeadlockAbort(
                    f"{txn} is a deadlock victim on {step}", cycle=event.cycle
                )
            ticket.timeout_ms = self.wait_timeout_ms
            ticket.cancel = self._make_cancel(txn)
            waited_from = self.clock()
            if trace:
                self.tracer.emit(
                    SPAN_BEGIN, txn=txn_label(txn), cat="wait",
                    name="lock.wait", space=step.space, key=str(step.key),
                    mode=ticket.mode,
                )
            # The wait span must close on the timeout path too, but NOT on
            # GeneratorExit (a transaction parked at the run horizon is
            # collected whenever the GC runs -- emitting then would make
            # traces nondeterministic), so no bare finally here.
            try:
                yield ticket
            except LockTimeout:
                if trace:
                    self.tracer.emit(
                        SPAN_END, txn=txn_label(txn), cat="wait",
                        name="lock.wait", space=step.space,
                        key=str(step.key), mode=ticket.mode,
                        waited_ms=round(self.clock() - waited_from, 6),
                    )
                raise
            waited = self.clock() - waited_from
            if trace:
                self.tracer.emit(
                    SPAN_END, txn=txn_label(txn), cat="wait",
                    name="lock.wait", space=step.space, key=str(step.key),
                    mode=ticket.mode, waited_ms=round(waited, 6),
                )
            self.wait_count += 1
            self.wait_time_total += waited
            self.wait_time_max = max(self.wait_time_max, waited)
            self.wait_histogram.observe(waited)
            granted_mode = ticket.mode
            child_mode = ticket.child_mode
            if trace:
                self.tracer.emit(
                    LOCK_GRANT, txn=txn_label(txn), space=step.space,
                    key=str(step.key), mode=granted_mode,
                    waited_ms=round(waited, 6),
                )
                if held_before is not None and granted_mode != held_before:
                    self.tracer.emit(
                        LOCK_CONVERT, txn=txn_label(txn), space=step.space,
                        key=str(step.key), from_mode=held_before,
                        to_mode=granted_mode,
                    )
        else:
            granted_mode = result.mode
            child_mode = result.child_mode
            if trace:
                self.tracer.emit(
                    LOCK_GRANT, txn=txn_label(txn), space=step.space,
                    key=str(step.key), mode=granted_mode, waited_ms=0.0,
                )
                if held_before is not None and granted_mode != held_before:
                    self.tracer.emit(
                        LOCK_CONVERT, txn=txn_label(txn), space=step.space,
                        key=str(step.key), from_mode=held_before,
                        to_mode=granted_mode,
                    )
        usage_key = (step.space, granted_mode)
        self.mode_usage[usage_key] = self.mode_usage.get(usage_key, 0) + 1
        if child_mode is not None:
            key = step.key if isinstance(step.key, Splid) else step.key[0]
            report.fanouts.append((key, child_mode))
            if trace:
                self.tracer.emit(
                    LOCK_ESCALATE, txn=txn_label(txn), node=str(key),
                    child_mode=child_mode,
                )
        self._note_grant(txn, step.space, step.key, granted_mode)

    # -- coverage cache ------------------------------------------------------------

    def _note_grant(self, txn: object, space: str, key: object, mode: str) -> None:
        if space not in (NODE_SPACE, EDGE_SPACE) or not isinstance(key, Splid):
            return
        subtree_write, subtree_read, level_read = (
            self.table.table_for(space).anchor_flags[mode]
        )
        state = self._states.setdefault(txn, _TxnLockState())
        # Conversions can *lose* coverage (LR -> CX drops the level read,
        # compensated by the NR child fan-out), so anchors are kept in
        # exact sync with the currently held mode.
        if subtree_write:
            state.subtree_write_anchors.add(key)
        else:
            state.subtree_write_anchors.discard(key)
        if subtree_read:
            state.subtree_read_anchors.add(key)
        else:
            state.subtree_read_anchors.discard(key)
        if level_read:
            state.level_read_anchors.add(key)
        else:
            state.level_read_anchors.discard(key)

    def _refresh_state(self, txn: object, state: _TxnLockState) -> None:
        """Rebuild anchors after selective releases (committed isolation)."""
        state.subtree_read_anchors.clear()
        state.subtree_write_anchors.clear()
        state.level_read_anchors.clear()
        for resource in self.table.held_resources(txn):
            space, key = resource
            mode = self.table.mode_held(txn, resource)
            if mode is not None and isinstance(key, Splid):
                self._note_grant(txn, space, key, mode)

    def _is_covered(self, txn: object, step: LockStep) -> bool:
        table = self.table.table_for(step.space)
        held = self.table.mode_held(txn, (step.space, step.key))
        if held is not None and table.subsumes(held, step.mode):
            # Transaction-local lock cache: the held mode already grants
            # everything the request needs -- no lock-table access.
            return True
        state = self._states.get(txn)
        if state is None:
            return False
        if step.space == NODE_SPACE and isinstance(step.key, Splid):
            node: Splid = step.key
            edge_parent = None
        elif step.space == EDGE_SPACE:
            node = step.key[0]
            edge_parent = node.parent
        else:
            return False
        if step.mode in table.write_modes:
            return self._anchored(state.subtree_write_anchors, node, edge_parent)
        if self._anchored(state.subtree_read_anchors, node, edge_parent):
            return True
        if step.mode in table.pure_read_modes:
            parent = node.parent
            if parent is not None and parent in state.level_read_anchors:
                return True
        return False

    @staticmethod
    def _anchored(
        anchors: Set[Splid], node: Splid, edge_parent: Optional[Splid]
    ) -> bool:
        """Does some anchor cover the node (and, for edges, its parent)?

        Edge locks span two siblings, so the anchor must cover the parent
        to guarantee both endpoints lie inside the locked subtree.

        Probed as an O(depth) walk: the node and each label on its cached
        ancestor chain are tested for membership in the anchor set, so the
        cost is the tree depth, not the number of anchors held.
        """
        if not anchors:
            return False
        probe = edge_parent if edge_parent is not None else node
        if probe in anchors:
            return True
        for ancestor in probe.ancestors_bottom_up():
            if ancestor in anchors:
                return True
        return False
