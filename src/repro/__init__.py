"""repro -- full reproduction of *Contest of XML Lock Protocols* (VLDB 2006).

The package rebuilds the paper's complete experimental system:

* an XTC-style native XML DBMS substrate -- SPLID labels, a B*-tree
  document store with element indexes, the taDOM storage model, and a
  lock-guarded DOM node manager (:mod:`repro.splid`, :mod:`repro.storage`,
  :mod:`repro.dom`);
* the 11 XML lock protocols behind a meta-synchronization interface
  (:mod:`repro.core`, :mod:`repro.locking`);
* transactions with the four isolation levels used in the paper
  (:mod:`repro.txn`);
* a deterministic discrete-event concurrency substrate plus a real-thread
  runtime (:mod:`repro.sched`);
* the TaMix benchmark framework with the bib document generator, the five
  transaction types, and the CLUSTER1/CLUSTER2 workloads
  (:mod:`repro.tamix`).

Quickstart (the session API)::

    from repro import Database

    db = Database(protocol="taDOM3+", lock_depth=4, root_element="bib")
    with db.session("reader") as session:
        book = session.run(session.nodes.get_element_by_id("b42"))
    # committed on clean exit, rolled back on exception

See ``examples/quickstart.py`` for a complete runnable tour.

Quickstart (served, over the wire)::

    import repro

    db = repro.connect("tcp://127.0.0.1:7420")   # `repro serve` is running
    with db.session("reader") as session:
        book = session.run(session.nodes.get_element_by_id("b42"))

The names exported here -- :class:`Database` / :class:`RemoteDatabase`
(and :func:`connect`, which picks one from a URL), :class:`Session` /
:class:`RemoteSession` (the same surface embedded and over the wire),
:class:`IsolationLevel`, :func:`list_protocols`, the full exception
taxonomy (including the :class:`TransientError`/:class:`PermanentError`
classification), the observability surface (:class:`Observability`),
and the robustness surface (:class:`ChaosEngine`,
:class:`FaultSchedule`, :class:`RetryPolicy`, :class:`AdmissionPolicy`;
see ``docs/robustness.md``) -- are the stable public API; everything
else (node-manager wiring, transaction-manager internals, lock-table
machinery) is subject to change between releases.  ``docs/api.md`` is
the reference.
"""

__version__ = "1.0.0"

from repro.chaos import (
    AdmissionPolicy,
    ChaosEngine,
    FaultRule,
    FaultSchedule,
    RetryPolicy,
    load_schedule,
)
from repro.core.registry import ALL_PROTOCOLS, get_protocol, protocol_names
from repro.database import Database
from repro.errors import (
    AdmissionRejected,
    DeadlockAbort,
    DocumentError,
    LockError,
    LockTimeout,
    NodeNotFound,
    PermanentError,
    PermanentRemoteError,
    PermanentStorageError,
    ProtocolError,
    RemoteError,
    ReproError,
    RollbackError,
    SplidError,
    StorageError,
    TransactionAborted,
    TransactionError,
    TransientError,
    TransientRemoteError,
    TransientStorageError,
    UnsupportedWireVersion,
    is_permanent,
    is_transient,
)
from repro.locking.lock_manager import IsolationLevel
from repro.net.client import ClientPool, RemoteDatabase, RemoteSession
from repro.net.server import LockServer, ServerConfig, run_server
from repro.obs import Observability
from repro.query import QueryProcessor, evaluate_raw, parse_path
from repro.session import Session
from repro.splid import Splid, SplidAllocator


def list_protocols() -> list:
    """Names of all registered lock protocols (the paper's contestants)."""
    return list(protocol_names())


def connect(url: str = "embedded://", **kwargs):
    """Open a database handle from a URL-ish spec.

    * ``embedded://`` -- an in-process :class:`Database`; an optional
      path names the lock protocol (``embedded://taDOM2``), and keyword
      arguments pass through to the :class:`Database` constructor.
    * ``tcp://host:port`` -- a :class:`RemoteDatabase` speaking the wire
      protocol to a ``repro serve`` instance; keyword arguments pass
      through (``pool_size``, ``retry``, ...).

    Both returns offer ``.session(name, isolation)`` with the same
    session surface, so swapping deployments is a one-line change.
    """
    if url.startswith("embedded://"):
        protocol = url[len("embedded://"):].strip("/")
        if protocol:
            kwargs.setdefault("protocol", protocol)
        return Database(**kwargs)
    if url.startswith("tcp://"):
        rest = url[len("tcp://"):].strip("/")
        host, _sep, port = rest.partition(":")
        if port and not port.isdigit():
            raise ValueError(f"bad port in {url!r}")
        return RemoteDatabase(
            host or "127.0.0.1", int(port) if port else 7420, **kwargs
        )
    raise ValueError(
        f"unsupported database URL {url!r} (want embedded:// or "
        f"tcp://host:port)"
    )


__all__ = [
    # entry points
    "Database",
    "RemoteDatabase",
    "connect",
    "Session",
    "RemoteSession",
    "ClientPool",
    "IsolationLevel",
    # server
    "LockServer",
    "ServerConfig",
    "run_server",
    # protocols
    "ALL_PROTOCOLS",
    "get_protocol",
    "list_protocols",
    "protocol_names",
    # queries
    "QueryProcessor",
    "evaluate_raw",
    "parse_path",
    # identifiers
    "Splid",
    "SplidAllocator",
    # observability
    "Observability",
    # robustness
    "AdmissionPolicy",
    "ChaosEngine",
    "FaultRule",
    "FaultSchedule",
    "RetryPolicy",
    "load_schedule",
    # error taxonomy
    "ReproError",
    "TransientError",
    "PermanentError",
    "is_permanent",
    "is_transient",
    "AdmissionRejected",
    "DeadlockAbort",
    "DocumentError",
    "LockError",
    "LockTimeout",
    "NodeNotFound",
    "PermanentRemoteError",
    "PermanentStorageError",
    "ProtocolError",
    "RemoteError",
    "RollbackError",
    "SplidError",
    "StorageError",
    "TransactionAborted",
    "TransactionError",
    "TransientRemoteError",
    "TransientStorageError",
    "UnsupportedWireVersion",
    "__version__",
]
