"""repro -- full reproduction of *Contest of XML Lock Protocols* (VLDB 2006).

The package rebuilds the paper's complete experimental system:

* an XTC-style native XML DBMS substrate -- SPLID labels, a B*-tree
  document store with element indexes, the taDOM storage model, and a
  lock-guarded DOM node manager (:mod:`repro.splid`, :mod:`repro.storage`,
  :mod:`repro.dom`);
* the 11 XML lock protocols behind a meta-synchronization interface
  (:mod:`repro.core`, :mod:`repro.locking`);
* transactions with the four isolation levels used in the paper
  (:mod:`repro.txn`);
* a deterministic discrete-event concurrency substrate plus a real-thread
  runtime (:mod:`repro.sched`);
* the TaMix benchmark framework with the bib document generator, the five
  transaction types, and the CLUSTER1/CLUSTER2 workloads
  (:mod:`repro.tamix`).

Quickstart (the session API)::

    from repro import Database

    db = Database(protocol="taDOM3+", lock_depth=4, root_element="bib")
    with db.session("reader") as session:
        book = session.run(session.nodes.get_element_by_id("b42"))
    # committed on clean exit, rolled back on exception

See ``examples/quickstart.py`` for a complete runnable tour.

The names exported here -- :class:`Database`, :class:`Session`,
:class:`IsolationLevel`, :func:`list_protocols`, the exception
hierarchy (including the :class:`TransientError`/:class:`PermanentError`
classification), the observability surface (:class:`Observability`),
and the chaos surface (:class:`ChaosEngine`, :class:`FaultSchedule`,
:class:`RetryPolicy`; see ``docs/robustness.md``) -- are the stable
public API; everything else (node-manager wiring, transaction-manager
internals, lock-table machinery) is subject to change between releases.
"""

__version__ = "1.0.0"

from repro.chaos import (
    ChaosEngine,
    FaultRule,
    FaultSchedule,
    RetryPolicy,
    load_schedule,
)
from repro.core.registry import ALL_PROTOCOLS, get_protocol, protocol_names
from repro.database import Database
from repro.errors import (
    DeadlockAbort,
    DocumentError,
    LockError,
    LockTimeout,
    PermanentError,
    ReproError,
    SplidError,
    StorageError,
    TransactionAborted,
    TransactionError,
    TransientError,
    is_permanent,
    is_transient,
)
from repro.locking.lock_manager import IsolationLevel
from repro.obs import Observability
from repro.query import QueryProcessor, evaluate_raw, parse_path
from repro.session import Session
from repro.splid import Splid, SplidAllocator


def list_protocols() -> list:
    """Names of all registered lock protocols (the paper's contestants)."""
    return list(protocol_names())


__all__ = [
    "QueryProcessor",
    "evaluate_raw",
    "parse_path",
    "ALL_PROTOCOLS",
    "ChaosEngine",
    "Database",
    "DeadlockAbort",
    "FaultRule",
    "FaultSchedule",
    "IsolationLevel",
    "LockTimeout",
    "Observability",
    "PermanentError",
    "RetryPolicy",
    "Session",
    "TransientError",
    "get_protocol",
    "is_permanent",
    "is_transient",
    "list_protocols",
    "load_schedule",
    "protocol_names",
    "DocumentError",
    "LockError",
    "ReproError",
    "Splid",
    "SplidAllocator",
    "SplidError",
    "StorageError",
    "TransactionAborted",
    "TransactionError",
    "__version__",
]
