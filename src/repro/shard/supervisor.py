"""Shard supervision: crash a shard, restart it, and count the lives.

:class:`ShardSupervisor` wraps a transport's ``kill``/``restart`` pair
with the bookkeeping the rest of the crash-tolerant plane needs:

* a per-shard **epoch** (incarnation number), bumped on every restart.
  The router stamps the epoch of each shard onto every transaction leg
  it opens there; a leg whose shard has since moved to a newer epoch is
  *stale* -- its in-memory state died with the old incarnation -- and
  must be shed rather than committed.
* a chronological **restart log** (``(shard_id, epoch)`` in kill order),
  hashed into the chaos fingerprint so two runs of the same seed can be
  checked to have crashed the same shards at the same points.

The supervisor performs kill and restart back to back: the replacement
shard rebuilds itself from the persisted WAL (committed state only)
before the call returns, so from the router's point of view a crash is
a transient unavailability plus amnesia about uncommitted legs --
exactly what :class:`~repro.errors.ShardUnavailableError` models.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class ShardSupervisor:
    """Kills and resurrects shards on a transport, tracking epochs."""

    def __init__(self, transport):
        self.transport = transport
        #: Current incarnation per shard; 0 until the first restart.
        self.epochs: Dict[int, int] = {}
        #: Restarts in kill order: ``(shard_id, new_epoch)``.
        self.restart_log: List[Tuple[int, int]] = []

    def epoch(self, shard_id: int) -> int:
        return self.epochs.get(int(shard_id), 0)

    @property
    def restarts(self) -> int:
        return len(self.restart_log)

    def kill_and_restart(self, shard_id: int) -> int:
        """Crash ``shard_id`` and bring up a WAL-recovered replacement.

        Returns the new epoch.  Every transaction leg opened on the old
        epoch is now stale: its locks, parked waits, and uncommitted
        effects died with the old incarnation.
        """
        shard_id = int(shard_id)
        self.transport.kill(shard_id)
        self.transport.restart(shard_id)
        epoch = self.epochs.get(shard_id, 0) + 1
        self.epochs[shard_id] = epoch
        self.restart_log.append((shard_id, epoch))
        return epoch
