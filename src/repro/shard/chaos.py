"""Network-site chaos for the shard plane: a faulty transport decorator.

:class:`ChaosTransport` wraps any shard transport (simulated or process)
and runs every round trip through the chaos engine's network sites:

``net.request``
    Consulted once per delivery attempt.  ``drop`` loses the frame and
    ``torn`` truncates it (the receiver's codec rejects it -- modelled as
    receiver-side loss so a corrupt frame can never wedge a child); both
    accrue the retry policy's backoff as simulated latency and re-send.
    ``duplicate`` delivers the frame twice -- the shard's request-id
    dedup absorbs the second copy.  ``delay`` adds ``latency_ms``.
``net.reply``
    Consulted once per received reply.  ``drop``/``torn`` lose the reply
    after the shard already executed; the re-sent envelope hits the
    shard's reply cache, so the operation still happens at most once.
    ``duplicate`` is absorbed coordinator-side; ``delay`` adds latency.
``shard.crash``
    Consulted once per delivered ``EXEC`` frame (never for commits or
    aborts, so a cross-shard commit is atomic per shard group and the
    committed-history oracle stays sound).  A ``kill`` hands the shard
    to the supervisor -- SIGKILL + WAL restart -- and the in-flight
    request fails with :class:`~repro.errors.ShardUnavailableError`.

Every decision is made coordinator-side by the engine's seeded per-site
RNG streams, so simulated and process transports see byte-identical
fault sequences; all accumulated latency is charged into the reply's
cost field (:func:`repro.shard.messages.add_cost`) and therefore onto
the simulated clock, never the wall clock.  When the schedule has no
network or crash rules the decorator is a single attribute check per
request (the zero-cost-when-disabled contract, gated in CI).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ShardUnavailableError
from repro.shard import messages
from repro.shard.supervisor import ShardSupervisor

#: Fault kinds that lose the frame and force a re-send.
_LOSS_KINDS = ("drop", "torn")


class ChaosTransport:
    """A transport decorator that injects seeded network/process faults."""

    def __init__(self, inner, engine, supervisor: ShardSupervisor = None):
        self.inner = inner
        self.engine = engine
        self.supervisor = (
            supervisor if supervisor is not None else ShardSupervisor(inner)
        )
        self.enabled = True
        self._net_request = engine.wants("net.request")
        self._net_reply = engine.wants("net.reply")
        self._crash = engine.wants("shard.crash")
        self._active = self._net_request or self._net_reply or self._crash
        #: Per-shard request sequence numbers for idempotency envelopes.
        self._seq: Dict[int, int] = {}

    # -- transport interface --------------------------------------------------

    @property
    def shards(self) -> int:
        return self.inner.shards

    def epoch(self, shard_id: int) -> int:
        return self.supervisor.epoch(shard_id)

    def alive(self, shard_id: int) -> bool:
        return self.inner.alive(shard_id)

    def kill(self, shard_id: int) -> None:
        self.inner.kill(shard_id)

    def restart(self, shard_id: int) -> None:
        self.inner.restart(shard_id)

    def close(self) -> None:
        self.inner.close()

    def request(self, shard_id: int, frame: bytes) -> bytes:
        if not (self.enabled and self._active):
            return self.inner.request(shard_id, frame)
        engine = self.engine
        # Crash decisions fire at operation boundaries only: EXEC frames.
        if (
            self._crash
            and messages.opcode_of(frame) == messages.OP_SHARD_EXEC
            and engine.shard_kill(shard_id)
        ):
            epoch = self.supervisor.kill_and_restart(shard_id)
            raise ShardUnavailableError(
                f"shard {shard_id} crashed mid-request "
                f"(restarted as epoch {epoch})",
                shard_id=shard_id,
            )
        if not (self._net_request or self._net_reply):
            return self.inner.request(shard_id, frame)
        return self._faulty_round_trip(shard_id, frame)

    # -- the faulty round trip ------------------------------------------------

    def _faulty_round_trip(self, shard_id: int, frame: bytes) -> bytes:
        """Deliver under the network fault streams, at-most-once.

        The frame travels inside an idempotency envelope with a
        deterministic per-shard request id, so every re-send (dropped
        request, lost reply) and every duplicate is absorbed by the
        shard's reply cache.  Backoff and delay accrue as simulated
        latency charged into the reply's cost field.
        """
        engine = self.engine
        seq = self._seq.get(shard_id, 0) + 1
        self._seq[shard_id] = seq
        envelope = messages.encode_request(f"s{shard_id}:{seq}", frame)
        latency = 0.0
        attempts = engine.retry.max_attempts
        for attempt in range(1, attempts + 1):
            if self._net_request:
                rule = engine.net_request(shard_id)
                if rule is not None:
                    if rule.kind in _LOSS_KINDS:
                        # Lost before the shard saw it: back off, re-send.
                        latency += engine.net_backoff_ms(
                            "net.request", attempt
                        )
                        continue
                    if rule.kind == "delay":
                        latency += rule.latency_ms
                    elif rule.kind == "duplicate":
                        # First copy executes; the reply to it is
                        # superseded by the reply to the second copy,
                        # which the shard serves from its dedup cache.
                        self.inner.request(shard_id, envelope)
            reply = self.inner.request(shard_id, envelope)
            if self._net_reply:
                rule = engine.net_reply(shard_id)
                if rule is not None:
                    if rule.kind in _LOSS_KINDS:
                        # The shard executed but the reply is gone; the
                        # re-sent envelope replays the cached reply.
                        latency += engine.net_backoff_ms(
                            "net.reply", attempt
                        )
                        continue
                    if rule.kind == "delay":
                        latency += rule.latency_ms
                    # A duplicated reply is just discarded on arrival.
            return messages.add_cost(reply, latency)
        raise ShardUnavailableError(
            f"shard {shard_id} unreachable: frame lost "
            f"{attempts} consecutive times",
            shard_id=shard_id,
        )
