"""SPLID-range document partitioning for the sharded contest.

A :class:`PartitionPlan` splits the document into ``N`` contiguous
SPLID ranges.  The partition units are the level-2 subtree roots (the
children of the root's children -- for the bib document: the individual
persons, authors, and topics), taken in document order and weighted by
their subtree node count, so the cut points balance *data* rather than
unit counts.

Because SPLIDs compare in document order (a descendant sorts directly
after its ancestor and before the ancestor's next sibling), a contiguous
range of unit labels is automatically subtree-closed: every descendant
of a unit maps to the unit's shard.  ``shard_of`` is therefore a single
``bisect`` over the cut labels -- O(log N), no document access.

The document root and the level-1 nodes sort before the first cut and
land on shard 0.  Conflict completeness under this partitioning requires
``lock_depth >= 2`` (so no *effective* -- non-intention -- lock sits
above the partition level); :mod:`repro.shard.runner` enforces that.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Sequence, Tuple

from repro.errors import BenchmarkError
from repro.splid import Splid

#: Tree level of the partition units (children of the root's children).
PARTITION_LEVEL = 2


class PartitionPlan:
    """An immutable assignment of SPLID ranges to shards.

    ``boundaries`` holds ``shards - 1`` unit labels in document order;
    ``boundaries[k]`` is the *first* label owned by shard ``k + 1``.
    Everything before the first boundary -- including the document root
    and all level-1 nodes -- belongs to shard 0.
    """

    __slots__ = ("shards", "boundaries", "_cuts")

    def __init__(self, shards: int, boundaries: Sequence[Splid]):
        boundaries = tuple(boundaries)
        if shards < 1:
            raise BenchmarkError(f"shard count must be >= 1, got {shards}")
        if len(boundaries) != shards - 1:
            raise BenchmarkError(
                f"{shards} shards need {shards - 1} boundaries, "
                f"got {len(boundaries)}"
            )
        cuts = tuple(b.divisions for b in boundaries)
        if list(cuts) != sorted(cuts):
            raise BenchmarkError("partition boundaries must be ascending")
        self.shards = shards
        self.boundaries = boundaries
        self._cuts = cuts

    def shard_of(self, splid: Splid) -> int:
        """The shard owning ``splid`` (and, by construction, its whole
        subtree)."""
        return bisect_right(self._cuts, splid.divisions)

    # -- wire/process shipping --------------------------------------------

    def as_config(self) -> Dict[str, object]:
        """A picklable/wire-safe image (for process-mode shard setup)."""
        return {
            "shards": self.shards,
            "boundaries": [list(b.divisions) for b in self.boundaries],
        }

    @classmethod
    def from_config(cls, config: Dict[str, object]) -> "PartitionPlan":
        return cls(
            int(config["shards"]),
            [Splid(tuple(divs)) for divs in config["boundaries"]],
        )

    def __repr__(self) -> str:
        cuts = ", ".join(str(b) for b in self.boundaries)
        return f"PartitionPlan(shards={self.shards}, cuts=[{cuts}])"


def plan_partitions(document, shards: int) -> PartitionPlan:
    """Compute a weight-balanced partition plan for ``document``.

    One :meth:`~repro.dom.document.Document.walk` buckets every node
    under its level-``PARTITION_LEVEL`` ancestor; a greedy scan then
    places the ``shards - 1`` cuts so each range carries roughly
    ``total / shards`` nodes.  Deterministic: same document, same plan.
    """
    if shards < 1:
        raise BenchmarkError(f"shard count must be >= 1, got {shards}")
    if shards == 1:
        return PartitionPlan(1, ())
    weights: Dict[Splid, int] = {}
    for splid, _record in document.walk():
        if splid.level < PARTITION_LEVEL:
            continue
        unit = splid.ancestor_at_level(PARTITION_LEVEL)
        weights[unit] = weights.get(unit, 0) + 1
    units = sorted(weights)
    if len(units) < shards:
        raise BenchmarkError(
            f"document has only {len(units)} level-{PARTITION_LEVEL} "
            f"subtrees, cannot cut into {shards} shards"
        )
    total = sum(weights.values())
    boundaries: List[Splid] = []
    acc = 0
    last_cut = 0  # a cut at index i needs i > last_cut: no empty shard
    for index, unit in enumerate(units):
        cuts_left = (shards - 1) - len(boundaries)
        if cuts_left and index > last_cut:
            must_cut = (len(units) - index) == cuts_left
            target = total * (len(boundaries) + 1) / shards
            if must_cut or acc >= target:
                boundaries.append(unit)
                last_cut = index
        acc += weights[unit]
    return PartitionPlan(shards, boundaries)
