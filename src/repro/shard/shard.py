"""One shard: a full database stack behind a message interface.

A :class:`ShardServer` owns a complete replica stack -- document,
buffer pool, WAL, lock manager, node manager -- and executes the
node-manager operations the router ships to it.  Operations arrive as
``EXEC`` frames, are driven synchronously until they finish, park on a
lock wait, or raise, and answer with ``DONE``/``BLOCKED``/``EXC``.

Determinism contract: a shard has **no clock and no scheduler of its
own**.  Every request carries the coordinator's simulated time, the
shard processes exactly one message at a time, and simulated cost
(:class:`~repro.sched.simulator.Delay` effects yielded by the operation)
is *accumulated and reported* in the reply rather than slept on -- the
router charges it on the coordinator's timeline.  Lock waits likewise
belong to the router: a parked ticket is resolved only by a later
``RESUME`` (after the router observed the grant) or ``CANCEL`` (timeout
or cross-shard deadlock victim).

Each replica is rebuilt from the generator seed, so every shard holds a
structurally identical document; the partition plan makes a shard
authoritative for its own SPLID range, and the router never reads or
writes a range on a non-owning shard.

Transaction lifecycle events (``txn.begin``/``commit``/``abort``) are
coordinator-owned: the shard's transaction manager is muted, shard-local
transactions are lazily begun on first touch, and their labels are
patched to the coordinator's global labels so lock and access events
merge into one coherent history.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional

from repro.database import Database
from repro.errors import (
    DeadlockAbort,
    LockTimeout,
    ProtocolError,
    ReproError,
    ShardUnavailableError,
)
from repro.locking.lock_table import WaitTicket
from repro.net import wire
from repro.net.server import dispatch_call
from repro.obs import Observability
from repro.obs.events import txn_label
from repro.obs.tracer import NULL_TRACER, RingTracer
from repro.sched.simulator import Delay
from repro.shard import messages
from repro.tamix.bibgen import generate_bib


class OutboxTracer(RingTracer):
    """A ring tracer that also queues every event for shipping.

    The shard's instrumentation sites (lock manager, node manager,
    buffer pool) emit into this tracer exactly as they would into a
    local ring; the server drains the outbox into each reply and the
    router re-emits the events into the coordinator's tracer, which
    re-stamps sequence numbers on the merged timeline.
    """

    def __init__(self, capacity: Optional[int] = 4096):
        super().__init__(capacity)
        self.outbox: List[Dict[str, object]] = []

    def emit(self, kind: str, txn: Optional[str] = None, **data: object) -> None:
        super().emit(kind, txn=txn, **data)
        event = self._ring[-1]
        self.outbox.append(
            {"kind": event.kind, "txn": event.txn, "data": dict(event.data)}
        )

    def drain(self) -> List[Dict[str, object]]:
        out, self.outbox = self.outbox, []
        return out


class _TxnState:
    """Shard-local leg of one coordinator transaction."""

    __slots__ = ("txn", "gen", "ticket", "cost")

    def __init__(self, txn):
        self.txn = txn
        self.gen = None        # in-flight operation generator
        self.ticket = None     # parked WaitTicket while blocked
        self.cost = 0.0        # accumulated Delay ms since the last reply


class ShardServer:
    """Executes shard messages against one replica stack.

    ``config`` keys: ``protocol``, ``lock_depth``, ``isolation``,
    ``scale``, ``doc_seed``, ``wait_timeout_ms``, ``escalation_threshold``,
    ``tracing``, ``access_events``.  The dict is primitive-only so
    process transports can pickle or wire-ship it.
    """

    #: Bound on the idempotent-reply cache (see ``handle``).
    REPLY_CACHE_SIZE = 512

    def __init__(self, shard_id: int, config: Dict[str, object]):
        self.shard_id = int(shard_id)
        self.now = 0.0
        self.stopped = False
        self.tracer: Optional[OutboxTracer] = (
            OutboxTracer() if config.get("tracing") else None
        )
        obs = Observability(
            tracer=self.tracer,
            access_events=bool(config.get("access_events")),
        )
        self._scale = float(config.get("scale", 0.1))
        self._doc_seed = int(config.get("doc_seed", 2006))
        info = generate_bib(scale=self._scale, seed=self._doc_seed)
        self.info = info
        self._wal_path = (
            str(config["wal_path"]) if config.get("wal_path") else None
        )
        self.recovered = False
        document, adopted_wal = info.document, None
        if self._wal_path:
            document, adopted_wal = self._recover_document(info.document)
        self.db = Database(
            protocol=str(config["protocol"]),
            lock_depth=int(config["lock_depth"]),
            isolation=str(config.get("isolation", "repeatable")),
            document=document,
            wait_timeout_ms=config.get("wait_timeout_ms", 10_000.0),
            enable_wal=True,
            observability=obs,
            escalation_threshold=config.get("escalation_threshold"),
        )
        if adopted_wal is not None:
            # The recovered log must keep accumulating so a *second*
            # crash replays the full committed history; rebind every
            # reference the database wired to its fresh empty log.
            self.db.wal = adopted_wal
            self.db.transactions.wal = adopted_wal
            self.db.nodes.wal = adopted_wal
        # The coordinator owns the transaction lifecycle events.
        self.db.transactions.tracer = NULL_TRACER
        self.db.set_clock(lambda: self.now)
        self._txns: Dict[str, _TxnState] = {}
        self._woken: List[str] = []
        self._replies: "OrderedDict[str, bytes]" = OrderedDict()

    def _recover_document(self, pristine):
        """Rebuild state from the persisted WAL, if one survived a crash.

        Returns ``(document, wal)``: the redo-recovered document plus the
        log to adopt, or ``(pristine, None)`` on a cold (first) start.
        Only committed transactions are replayed -- records past the last
        commit-time flush are simply absent from the file, which is
        exactly the crash contract.
        """
        from repro.txn.transaction import Transaction
        from repro.txn.wal import WriteAheadLog, recover, take_checkpoint

        try:
            data = Path(self._wal_path).read_bytes()
        except OSError:
            data = b""
        if not data:
            return pristine, None
        log = WriteAheadLog.from_bytes(data)
        base = take_checkpoint(pristine)  # lsn 0: replay from the origin
        document = recover(base, log)
        # The txn-id counter is process-global and resets in a forked
        # replacement process; push it past every recovered id so new
        # transactions never collide with committed winners in the log.
        max_id = max((record.txn_id for record in log.records()), default=0)
        Transaction._counter = max(Transaction._counter, max_id)
        self.recovered = True
        return document, log

    # -- message entry point ------------------------------------------------

    def handle(self, data: bytes) -> bytes:
        opcode, fields = wire.decode_frame(data)
        if opcode == messages.OP_SHARD_REQ:
            request_id = str(fields[0])
            cached = self._replies.get(request_id)
            if cached is not None:
                return cached
            inner_op, inner_fields = wire.decode_frame(bytes(fields[1]))
            reply = self._dispatch(inner_op, inner_fields)
            self._replies[request_id] = reply
            while len(self._replies) > self.REPLY_CACHE_SIZE:
                self._replies.popitem(last=False)
            return reply
        return self._dispatch(opcode, fields)

    def _dispatch(self, opcode: int, fields) -> bytes:
        handler = self._HANDLERS.get(opcode)
        if handler is None:
            return self._error(
                ProtocolError(f"unknown shard opcode 0x{opcode:02x}")
            )
        try:
            return handler(self, fields)
        except ReproError as exc:
            return self._error(exc)

    # -- request handlers ---------------------------------------------------

    def _handle_exec(self, fields) -> bytes:
        now, label, name, isolation, op, args = fields
        self.now = float(now)
        label = str(label)
        state = self._txns.get(label)
        if state is None:
            txn = self.db.begin(str(name), str(isolation))
            txn.label = label  # global label; shard events carry it
            state = _TxnState(txn)
            self._txns[label] = state
        if state.gen is not None:
            return self._error(
                ProtocolError(f"{label} already has an operation in flight")
            )
        state.cost = 0.0
        state.gen = dispatch_call(self.db.nodes, state.txn, str(op), tuple(args))
        return self._advance(state)

    def _handle_resume(self, fields) -> bytes:
        now, label = fields
        self.now = float(now)
        state = self._txns.get(str(label))
        if state is None:
            # A restart between the grant and the RESUME lost the leg.
            return self._error(ShardUnavailableError(
                f"{label} lost in shard {self.shard_id} restart",
                shard_id=self.shard_id,
            ))
        if state.gen is None or state.ticket is None:
            return self._error(ProtocolError(f"{label} has no parked wait"))
        if not state.ticket.granted:
            return self._error(ProtocolError(f"{label} resumed but not granted"))
        state.ticket = None
        return self._advance(state)

    def _handle_cancel(self, fields) -> bytes:
        now, label, reason, message, cycle = fields
        self.now = float(now)
        state = self._txns.get(str(label))
        if state is None:
            # Idempotent: the parked leg died with a restarted shard, so
            # there is nothing left to withdraw.
            return messages.encode_done(
                None, 0.0, self._drain_woken(), self._drain_events()
            )
        if state.gen is None or state.ticket is None:
            return self._error(ProtocolError(f"{label} has no parked wait"))
        ticket = state.ticket
        state.ticket = None
        if str(reason) == "deadlock":
            self.db.locks.table.cancel_wait(state.txn)
            error: ReproError = DeadlockAbort(str(message), cycle=tuple(cycle))
        else:
            if ticket.cancel is not None:
                # Counts the timeout and withdraws the request.
                ticket.cancel()
            else:
                self.db.locks.table.cancel_wait(state.txn)
            error = LockTimeout(
                str(message), resource=ticket.resource,
                timeout_ms=ticket.timeout_ms,
            )
        return self._advance(state, throw=error)

    def _handle_commit(self, fields) -> bytes:
        now, label = fields
        self.now = float(now)
        state = self._txns.pop(str(label), None)
        if state is None:
            # The leg's effects were in memory only and died with the
            # old process: committing would silently lose writes, so the
            # coordinator must treat the transaction as aborted.
            return self._error(ShardUnavailableError(
                f"{label} lost in shard {self.shard_id} restart",
                shard_id=self.shard_id,
            ))
        if state.gen is not None:
            self._txns[str(label)] = state
            return self._error(
                ProtocolError(f"{label} cannot commit mid-operation")
            )
        self.db.commit(state.txn)
        if self._wal_path:
            self._flush_wal()
        return messages.encode_done(
            None, 0.0, self._drain_woken(), self._drain_events()
        )

    def _handle_abort(self, fields) -> bytes:
        now, label, reason = fields
        self.now = float(now)
        state = self._txns.pop(str(label), None)
        if state is None:
            # Idempotent: an unknown leg (lost in a restart, or already
            # rolled back) is exactly the state an abort asks for.
            return messages.encode_done(
                None, 0.0, self._drain_woken(), self._drain_events()
            )
        if state.gen is not None:
            # Aborted while an operation is still parked (run horizon or
            # a hard router-side failure): withdraw the wait and unwind.
            if state.ticket is not None and not state.ticket.granted:
                self.db.locks.table.cancel_wait(state.txn)
            state.ticket = None
            state.gen.close()
            state.gen = None
        self.db.abort(state.txn, reason=str(reason))
        return messages.encode_done(
            None, 0.0, self._drain_woken(), self._drain_events()
        )

    def _handle_blockers(self, fields) -> bytes:
        now, label = fields
        self.now = float(now)
        state = self._txns.get(str(label))
        ticket = (
            self.db.locks.table.waiting_ticket(state.txn)
            if state is not None else None
        )
        if ticket is None:
            return messages.encode_info(
                {"waiting": False, "blockers": [], "is_conversion": False}
            )
        blockers = sorted(
            txn_label(t) for t in self.db.locks.table.blockers_of(ticket)
        )
        return messages.encode_info({
            "waiting": True,
            "blockers": blockers,
            "is_conversion": bool(ticket.is_conversion),
        })

    def _handle_stats(self, fields) -> bytes:
        (now,) = fields
        self.now = float(now)
        locks = self.db.locks
        return messages.encode_info({
            "shard": self.shard_id,
            "lock_statistics": locks.lock_statistics(),
            "wait_statistics": locks.wait_statistics(),
            "wait_histogram": locks.wait_histogram.as_dict(),
            "deadlocks_by_kind": locks.detector.counts_by_kind(),
            "lock_count": locks.table.lock_count(),
        })

    def _handle_shutdown(self, fields) -> bytes:
        self.stopped = True
        return messages.encode_info({"shard": self.shard_id, "stopped": True})

    def _handle_ping(self, fields) -> bytes:
        (now,) = fields
        self.now = float(now)
        return messages.encode_info({
            "shard": self.shard_id, "ok": True, "recovered": self.recovered,
        })

    def _handle_snapshot(self, fields) -> bytes:
        """Recovery-oracle snapshot: digest the live document against a
        fault-free redo of this shard's full WAL over a pristine replica.

        The two digests agree exactly when redo recovery is sound for
        the history this shard executed (the single-node chaos runner
        makes the same check in-process); ``commits_in_wal`` lets the
        coordinator cross-check its committed-transaction count.
        """
        from repro.txn.wal import LogKind, recover, take_checkpoint
        from repro.verify import canonical_image

        (now,) = fields
        self.now = float(now)
        pristine = generate_bib(scale=self._scale, seed=self._doc_seed)
        base = take_checkpoint(pristine.document)
        replayed = recover(base, self.db.wal)
        commits = sum(
            1 for record in self.db.wal.records()
            if record.kind is LogKind.COMMIT
        )
        return messages.encode_info({
            "shard": self.shard_id,
            "live_image": hashlib.sha256(
                canonical_image(self.db.document)).hexdigest(),
            "replayed_image": hashlib.sha256(
                canonical_image(replayed)).hexdigest(),
            "commits_in_wal": commits,
            "wal_records": len(self.db.wal),
            "recovered": self.recovered,
            "open_legs": sorted(self._txns),
        })

    _HANDLERS = {
        messages.OP_SHARD_EXEC: _handle_exec,
        messages.OP_SHARD_RESUME: _handle_resume,
        messages.OP_SHARD_CANCEL: _handle_cancel,
        messages.OP_SHARD_COMMIT: _handle_commit,
        messages.OP_SHARD_ABORT: _handle_abort,
        messages.OP_SHARD_BLOCKERS: _handle_blockers,
        messages.OP_SHARD_STATS: _handle_stats,
        messages.OP_SHARD_SHUTDOWN: _handle_shutdown,
        messages.OP_SHARD_PING: _handle_ping,
        messages.OP_SHARD_SNAPSHOT: _handle_snapshot,
    }

    # -- the operation stepper ----------------------------------------------

    def _advance(self, state: _TxnState, *, throw: Optional[ReproError] = None) -> bytes:
        """Drive the in-flight operation to its next boundary."""
        gen = state.gen
        try:
            effect = gen.throw(throw) if throw is not None else gen.send(None)
            while True:
                if isinstance(effect, Delay):
                    state.cost += float(effect.ms)
                elif isinstance(effect, WaitTicket):
                    if not effect.granted:
                        return self._blocked(state, effect)
                else:
                    raise ProtocolError(
                        f"unexpected effect {effect!r} from shard operation"
                    )
                effect = gen.send(None)
        except StopIteration as stop:
            state.gen = None
            state.ticket = None
            return messages.encode_done(
                stop.value, self._take_cost(state),
                self._drain_woken(), self._drain_events(),
            )
        except ReproError as exc:
            state.gen = None
            state.ticket = None
            return messages.encode_exc(
                exc, self._take_cost(state),
                self._drain_woken(), self._drain_events(),
            )

    def _blocked(self, state: _TxnState, ticket: WaitTicket) -> bytes:
        state.ticket = ticket
        label = state.txn.label
        # Fires during a *later* message (release/cancel of a holder);
        # the wake is reported in that message's reply.
        ticket.on_grant = lambda _t, _label=label, _s=self: (
            _s._woken.append(_label)
        )
        blockers = sorted(
            txn_label(t) for t in self.db.locks.table.blockers_of(ticket)
        )
        space, key = ticket.resource
        return messages.encode_blocked(
            blockers, ticket.is_conversion, str(space), str(key), ticket.mode,
            self._take_cost(state), self._drain_woken(), self._drain_events(),
        )

    # -- durability ---------------------------------------------------------

    def _flush_wal(self) -> None:
        """Persist the full WAL image atomically (commit-time barrier).

        Rewriting the whole log keeps the on-disk format identical to
        :meth:`WriteAheadLog.to_bytes`; at contest scales the log is a
        few kilobytes, and shards without a ``wal_path`` never pay it.
        A crash between commits loses only records since the last flush
        -- all of them belonging to uncommitted transactions.
        """
        import os

        path = Path(self._wal_path)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_bytes(self.db.wal.to_bytes())
        os.replace(tmp, path)

    # -- reply plumbing -----------------------------------------------------

    def _error(self, exc: ReproError) -> bytes:
        return messages.encode_exc(
            exc, 0.0, self._drain_woken(), self._drain_events()
        )

    def _take_cost(self, state: _TxnState) -> float:
        cost, state.cost = state.cost, 0.0
        return cost

    def _drain_woken(self) -> List[str]:
        woken, self._woken = self._woken, []
        return woken

    def _drain_events(self) -> List[Dict[str, object]]:
        return self.tracer.drain() if self.tracer is not None else []
