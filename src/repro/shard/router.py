"""The shard router: one coordinator-side front for N shards.

:class:`ShardedDatabase` duck-types the single-node
:class:`~repro.database.Database` surface the TaMix coordinator drives
(``begin``/``commit``/``abort``, ``nodes``, ``locks``, ``set_clock``,
``obs``), while every node-manager operation is shipped as an ``EXEC``
frame to the shard owning the target's SPLID range and driven through
the reply protocol of :mod:`repro.shard.messages`.

Lock waits cross the network as ``BLOCKED`` replies.  The router parks
the calling slot on a local :class:`~repro.locking.lock_table.WaitTicket`
mirror, which the deterministic scheduler resumes when a later reply's
``woken`` list names the transaction.  Because there is no global
wait-for graph any more, cross-shard deadlocks are found by
**edge-chasing probes**: on every block the router chases the wait
edges shard by shard (``BLOCKERS`` frames), expanding blockers in
sorted label order, and declares the *initiating* transaction the
victim when a chase returns to it -- the same deterministic
requester-is-victim rule as the local detector, so seeded runs pick
identical victims on every repeat.

Two router-side options reproduce the lock-service optimizations of
arXiv 2504.03073:

* **local grant caching** (``grant_cache=True``) -- under the strict
  isolation levels a granted ``get_element_by_id`` stays protected
  until commit, so its result is served from a per-transaction cache
  instead of re-shipping the lookup;
* **contention-adaptive backoff** (:class:`AdaptiveRetryPolicy`) --
  restart backoff is scaled by an exponentially-weighted block-rate
  signal fed by the router, backing off harder while the contest is
  hot and relaxing when grants come back instantly.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.chaos.retry import RetryPolicy
from repro.core.registry import get_protocol
from repro.errors import (
    DeadlockAbort,
    LockError,
    LockTimeout,
    ProtocolError,
    ShardUnavailableError,
)
from repro.locking.lock_table import WaitTicket
from repro.net import wire
from repro.net.client import _wire_args
from repro.net.server import NODE_OPS
from repro.obs import DEADLOCK_DETECTED, Observability, TXN_ABORT, TXN_BEGIN, TXN_COMMIT
from repro.obs.metrics import WAIT_TIME_BUCKETS_MS
from repro.locking.lock_manager import IsolationLevel
from repro.sched.simulator import Delay
from repro.shard import messages
from repro.shard.partition import PartitionPlan

#: Isolation levels whose locks live until commit (grant-cache safe).
_STRICT = (IsolationLevel.REPEATABLE, IsolationLevel.SERIALIZABLE)


class LogicalTxn:
    """Coordinator-side image of one distributed transaction."""

    __slots__ = (
        "label", "name", "isolation", "started", "participants",
        "grant_cache", "epochs",
    )

    def __init__(self, label: str, name: str, isolation: IsolationLevel,
                 started: float):
        self.label = label
        self.name = name
        self.isolation = isolation
        self.started = started
        self.participants: Set[int] = set()
        self.grant_cache: Dict[str, object] = {}
        #: Shard incarnation at enlist time; a participant whose shard
        #: has since restarted holds none of this txn's state any more.
        self.epochs: Dict[int, int] = {}

    def __repr__(self) -> str:
        return f"LogicalTxn({self.label})"


class _WaitEntry:
    """Directory record of one transaction parked on a remote lock."""

    __slots__ = ("label", "shard", "ticket")

    def __init__(self, label: str, shard: int, ticket: WaitTicket):
        self.label = label
        self.shard = shard
        self.ticket = ticket


class _ShardHealth:
    """Router-side failure tracking for one shard (allocated lazily).

    A shard accumulates consecutive request failures; at the router's
    ``failure_threshold`` it is marked DOWN and traffic to it is shed
    locally (no network) until a heartbeat probe -- paced by the retry
    policy's backoff on the simulated clock -- finds it answering again.
    """

    __slots__ = ("failures", "down", "probe_attempts", "next_probe_at")

    def __init__(self):
        self.failures = 0
        self.down = False
        self.probe_attempts = 0
        self.next_probe_at = 0.0


class CrossShardDetector:
    """Probe-protocol bookkeeping, shaped like the local detector.

    ``count``/``counts_by_kind`` aggregate the shard-local detectors
    (fetched over ``STATS``) *plus* the cross-shard cycles the probe
    chase found, so the TaMix collector sees one total either way.
    """

    def __init__(self, router: "ShardRouter"):
        self._router = router
        #: (cycle, kind) per cross-shard deadlock, in detection order.
        self.cross_events: List[Tuple[Tuple[str, ...], str]] = []
        #: Total BLOCKERS probe frames sent.
        self.probes_sent = 0

    def record(self, cycle: Tuple[str, ...], kind: str) -> None:
        self.cross_events.append((tuple(cycle), kind))

    def cross_count(self) -> int:
        return len(self.cross_events)

    def count(self) -> int:
        local = sum(
            stats["lock_statistics"]["deadlocks"]
            for stats in self._router.shard_stats()
        )
        return local + len(self.cross_events)

    def counts_by_kind(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for stats in self._router.shard_stats():
            for kind, count in stats["deadlocks_by_kind"].items():
                merged[kind] = merged.get(kind, 0) + int(count)
        for _cycle, kind in self.cross_events:
            merged[kind] = merged.get(kind, 0) + 1
        return merged


class AdaptiveRetryPolicy:
    """Contention-adaptive restart backoff (arXiv 2504.03073, Section 4).

    Wraps a base :class:`~repro.chaos.retry.RetryPolicy`; the budget is
    the base's, the backoff is the base's scaled by ``1 + (scale_max -
    1) * contention`` where ``contention`` is the router's EWMA
    block-rate in ``[0, 1]``.  Uncontended runs keep the base backoff;
    a fully contended contest backs off ``scale_max`` times harder.
    """

    def __init__(
        self,
        base: Optional[RetryPolicy] = None,
        *,
        contention: Optional[Callable[[], float]] = None,
        scale_max: float = 4.0,
    ):
        self.base = base if base is not None else RetryPolicy()
        self._contention = contention if contention is not None else lambda: 0.0
        self.scale_max = float(scale_max)

    def bind(self, contention: Callable[[], float]) -> "AdaptiveRetryPolicy":
        self._contention = contention
        return self

    def allows_restart(self, restarts_done: int) -> bool:
        return self.base.allows_restart(restarts_done)

    def backoff_ms(self, attempt: int, rng: random.Random) -> float:
        raw = self.base.backoff_ms(attempt, rng)
        level = min(1.0, max(0.0, self._contention()))
        return raw * (1.0 + (self.scale_max - 1.0) * level)


class ShardRouter:
    """Routes operations, mirrors waits, and chases deadlock probes."""

    def __init__(
        self,
        plan: PartitionPlan,
        transport,
        document,
        tracer,
        *,
        rtt_ms: float = 0.1,
        wait_timeout_ms: Optional[float] = 10_000.0,
        grant_cache: bool = False,
        failure_threshold: int = 3,
        probe_retry: Optional[RetryPolicy] = None,
    ):
        self.plan = plan
        self.transport = transport
        self.document = document
        self.tracer = tracer
        self.rtt_ms = float(rtt_ms)
        self.wait_timeout_ms = wait_timeout_ms
        self.grant_cache_enabled = bool(grant_cache)
        self.grant_cache_hits = 0
        self.clock: Callable[[], float] = lambda: 0.0
        self.detector = CrossShardDetector(self)
        self.messages_sent = 0
        #: Partition awareness.  ``_health`` stays empty on fault-free
        #: runs, so the healthy hot path pays one empty-dict check.
        self.failure_threshold = int(failure_threshold)
        self.probe_retry = probe_retry if probe_retry is not None else RetryPolicy()
        self._probe_rng = random.Random("shard-probe")
        self._health: Dict[int, _ShardHealth] = {}
        self._epoch_of = getattr(transport, "epoch", lambda _sid: 0)
        self.down_sheds = 0
        self.stale_sheds = 0
        self.partial_commits = 0
        #: Shard legs committed by failed (partially committed) txns.
        self.partial_commit_legs = 0
        #: EWMA block-rate over recent operations (adaptive backoff input).
        self.contention = 0.0
        self.contention_alpha = 0.1
        self._waiting: Dict[str, _WaitEntry] = {}
        self._active: Dict[str, LogicalTxn] = {}
        #: Element id -> owning shard, from the coordinator replica's id
        #: index.  Unknown (runtime-created) ids route to shard 0, which
        #: is then authoritative for their (absent) index entry.
        self._id_home: Dict[str, int] = {
            id_value: plan.shard_of(document.element_by_id(id_value))
            for id_value in document.id_index.ids()
        }

    # -- transaction registry ----------------------------------------------

    def register(self, txn: LogicalTxn) -> None:
        self._active[txn.label] = txn

    def forget(self, label: str) -> None:
        self._active.pop(label, None)
        self._waiting.pop(label, None)

    @property
    def active_count(self) -> int:
        return len(self._active)

    # -- shipping ----------------------------------------------------------

    def route(self, op: str, args: Tuple) -> int:
        if op == "get_element_by_id":
            return self._id_home.get(args[0], 0)
        return self.plan.shard_of(args[0])

    def ship(self, txn: LogicalTxn, op: str, args: Tuple):
        """Generator: run one node-manager operation on its owning shard.

        Yields :class:`Delay`/:class:`WaitTicket` effects exactly like a
        local node-manager operation, so TaMix programs are oblivious to
        the shard boundary.
        """
        cacheable = (
            op == "get_element_by_id"
            and self.grant_cache_enabled
            and txn.isolation in _STRICT
        )
        if cacheable and args[0] in txn.grant_cache:
            self.grant_cache_hits += 1
            return txn.grant_cache[args[0]]
        shard_id = self.route(op, args)
        self._check_available(shard_id)
        epoch = self._epoch_of(shard_id)
        known = txn.epochs.get(shard_id)
        if known is not None and known != epoch:
            # The shard restarted under this transaction: every effect
            # of its earlier leg died with the old incarnation, so the
            # only sound move is to shed the whole transaction.
            self.stale_sheds += 1
            raise ShardUnavailableError(
                f"{txn.label} leg on shard {shard_id} lost to restart "
                f"(epoch {known} -> {epoch})",
                shard_id=shard_id,
            )
        txn.participants.add(shard_id)
        txn.epochs[shard_id] = epoch
        reply = self._request(shard_id, messages.encode_exec(
            self.clock(), txn.label, txn.name, txn.isolation.value,
            op, _wire_args(op, args),
        ))
        while True:
            opcode, fields = wire.decode_frame(reply)
            if opcode == messages.OP_SHARD_DONE:
                value, cost, woken, events = fields
                self._absorb(shard_id, woken, events)
                self._note_contention(blocked=False)
                yield Delay(float(cost) + self.rtt_ms)
                if cacheable:
                    txn.grant_cache[args[0]] = value
                return value
            if opcode == messages.OP_SHARD_EXC:
                code, message, cycle, cost, woken, events = fields
                self._absorb(shard_id, woken, events)
                self._note_contention(blocked=code == "DeadlockAbort")
                yield Delay(float(cost) + self.rtt_ms)
                raise messages.rebuild_exception(code, message, cycle)
            if opcode != messages.OP_SHARD_BLOCKED:
                raise ProtocolError(
                    f"unexpected shard reply opcode 0x{opcode:02x}"
                )
            blockers, is_conv, space, key, mode, cost, woken, events = fields
            self._absorb(shard_id, woken, events)
            self._note_contention(blocked=True)
            ticket = WaitTicket(
                txn=txn, resource=(str(space), str(key)), mode=str(mode),
                is_conversion=bool(is_conv),
            )
            entry = _WaitEntry(txn.label, shard_id, ticket)
            self._waiting[txn.label] = entry
            try:
                # The blocked operation's cost and the reply leg.
                yield Delay(float(cost) + self.rtt_ms)
                if not ticket.granted:
                    cycle, probes, conv = self._probe(txn.label)
                    if probes:
                        yield Delay(probes * self.rtt_ms)
                    if cycle is not None and not ticket.granted:
                        self._abort_victim(
                            txn, shard_id, cycle, conv, str(space), str(key)
                        )
                if not ticket.granted:
                    ticket.timeout_ms = self.wait_timeout_ms
                    try:
                        yield ticket
                    except LockTimeout:
                        self._cancel(
                            txn, shard_id, "timeout",
                            f"{txn.label} lock wait timed out",
                        )
                        raise
            finally:
                self._waiting.pop(txn.label, None)
            reply = self._request(
                shard_id, messages.encode_resume(self.clock(), txn.label)
            )
            yield Delay(self.rtt_ms)

    # -- probe-based deadlock detection ------------------------------------

    def _probe(self, origin: str):
        """Chase wait edges from ``origin``; returns (cycle, probes, conv).

        ``cycle`` is the label tuple of the cycle through ``origin`` (or
        ``None``), discovered by DFS expanding blockers in sorted label
        order -- deterministic, and identical to the local detector's
        search order.  One ``BLOCKERS`` probe per distinct waiting
        transaction reached.
        """
        cache: Dict[str, Tuple[Tuple[str, ...], bool]] = {}
        probes = 0

        def live_blockers(label: str) -> Tuple[Tuple[str, ...], bool]:
            nonlocal probes
            cached = cache.get(label)
            if cached is not None:
                return cached
            entry = self._waiting.get(label)
            if entry is None or entry.ticket.granted:
                result: Tuple[Tuple[str, ...], bool] = ((), False)
            else:
                probes += 1
                self.detector.probes_sent += 1
                try:
                    opcode, fields = wire.decode_frame(self._request(
                        entry.shard,
                        messages.encode_blockers(self.clock(), label),
                    ))
                except ShardUnavailableError:
                    # A dead shard holds no locks: its waiters will be
                    # cancelled by timeout, so the chase treats the edge
                    # as gone rather than wedging the probe.
                    opcode, fields = None, ()
                payload = fields[0] if opcode == messages.OP_SHARD_INFO else {}
                if payload.get("waiting"):
                    result = (
                        tuple(payload["blockers"]),
                        bool(payload["is_conversion"]),
                    )
                else:
                    result = ((), False)
            cache[label] = result
            return result

        first, origin_conv = live_blockers(origin)
        stack = [iter(first)]
        path = [origin]
        conv = [origin_conv]
        visited = {origin}
        while stack:
            nxt = next(stack[-1], None)
            if nxt is None:
                stack.pop()
                path.pop()
                conv.pop()
                continue
            if nxt == origin:
                return tuple(path), probes, any(conv)
            if nxt in visited:
                continue
            visited.add(nxt)
            blockers, is_conv = live_blockers(nxt)
            path.append(nxt)
            conv.append(is_conv)
            stack.append(iter(blockers))
        return None, probes, False

    def _abort_victim(
        self, txn: LogicalTxn, shard_id: int, cycle: Tuple[str, ...],
        conversion: bool, space: str, key: str,
    ) -> None:
        kind = "conversion" if conversion else "distinct-subtree"
        self.detector.record(cycle, kind)
        if self.tracer.enabled:
            self.tracer.emit(
                DEADLOCK_DETECTED, txn=txn.label, deadlock_kind=kind,
                cycle=list(cycle), resource=key, space=space,
                active_transactions=self.active_count,
                scope="cross-shard", probes=self.detector.probes_sent,
            )
        self._cancel(txn, shard_id, "deadlock", f"{txn.label} is a deadlock victim")
        raise DeadlockAbort(
            f"{txn.label} is a cross-shard deadlock victim", cycle=cycle
        )

    def _cancel(
        self, txn: LogicalTxn, shard_id: int, reason: str, message: str
    ) -> None:
        """Withdraw a parked wait shard-side; unwinds the remote operation."""
        entry = self._waiting.get(txn.label)
        cycle = ()
        try:
            opcode, fields = wire.decode_frame(self._request(
                shard_id,
                messages.encode_cancel(
                    self.clock(), txn.label, reason, message, cycle
                ),
            ))
        except ShardUnavailableError:
            # The wait (and the whole leg) died with the shard; the
            # local mirror is all that is left to mark.
            opcode, fields = None, ()
        if opcode in (messages.OP_SHARD_EXC, messages.OP_SHARD_DONE):
            # EXC: the unwound operation (expected); absorb its trail.
            *_, woken, events = fields
            self._absorb(shard_id, woken, events)
        if entry is not None:
            entry.ticket.cancelled = True

    # -- transaction resolution --------------------------------------------

    def finish(self, txn: LogicalTxn, *, commit: bool, reason: str = "") -> None:
        """Commit or roll back every shard-local leg, in shard order.

        A commit is gated on every participant being up *and* still on
        the epoch the leg enlisted under; otherwise the survivors are
        rolled back and the transaction fails with the transient
        :class:`~repro.errors.ShardUnavailableError` (the restart loop
        re-runs it from scratch).  Aborts are best-effort: a dead or
        restarted participant has already lost the leg.
        """
        if commit and txn.participants:
            self._precommit_check(txn)
        if not commit:
            self._abort_legs(txn, reason)
            self.forget(txn.label)
            return
        committed = 0
        for shard_id in sorted(txn.participants):
            try:
                opcode, fields = wire.decode_frame(self._request(
                    shard_id, messages.encode_commit(self.clock(), txn.label)
                ))
            except ShardUnavailableError:
                opcode, fields = None, ()
            error = None
            if opcode == messages.OP_SHARD_DONE:
                _value, _cost, woken, events = fields
                self._absorb(shard_id, woken, events)
                committed += 1
                continue
            if opcode == messages.OP_SHARD_EXC:
                code, message, cycle, _cost, woken, events = fields
                self._absorb(shard_id, woken, events)
                error = messages.rebuild_exception(code, message, cycle)
            if error is None:
                error = ShardUnavailableError(
                    f"shard {shard_id} unreachable committing {txn.label}",
                    shard_id=shard_id,
                )
            # Roll back the legs not yet committed.  Legs already
            # committed stay committed (crashes never fire on COMMIT
            # frames, so this needs an exhausted retry storm; it is
            # counted so the acceptance oracle can account for it).
            if committed:
                self.partial_commits += 1
                self.partial_commit_legs += committed
            self._abort_legs(
                txn, "shard-unavailable",
                skip={s for s in sorted(txn.participants)[:committed]},
            )
            self.forget(txn.label)
            raise error
        self.forget(txn.label)

    def _precommit_check(self, txn: LogicalTxn) -> None:
        """All participants up and on their enlisted epochs, or shed."""
        stale = None
        for shard_id in sorted(txn.participants):
            try:
                self._check_available(shard_id)
            except ShardUnavailableError as exc:
                stale = exc
                break
            epoch = self._epoch_of(shard_id)
            if txn.epochs.get(shard_id, epoch) != epoch:
                self.stale_sheds += 1
                stale = ShardUnavailableError(
                    f"{txn.label} leg on shard {shard_id} lost to restart",
                    shard_id=shard_id,
                )
                break
        if stale is None:
            return
        self._abort_legs(txn, "shard-unavailable")
        self.forget(txn.label)
        raise stale

    def _abort_legs(
        self, txn: LogicalTxn, reason: str, skip: Optional[Set[int]] = None
    ) -> None:
        """Best-effort ABORT to every (surviving, current-epoch) leg."""
        for shard_id in sorted(txn.participants):
            if skip and shard_id in skip:
                continue
            if txn.epochs.get(shard_id) != self._epoch_of(shard_id):
                continue  # the leg died with the old incarnation
            try:
                opcode, fields = wire.decode_frame(self._request(
                    shard_id,
                    messages.encode_abort(self.clock(), txn.label, reason),
                ))
            except ShardUnavailableError:
                continue
            if opcode == messages.OP_SHARD_DONE:
                _value, _cost, woken, events = fields
                self._absorb(shard_id, woken, events)

    # -- shard statistics ---------------------------------------------------

    def shard_stats(self) -> List[Dict[str, object]]:
        stats = []
        for shard_id in range(self.plan.shards):
            opcode, fields = wire.decode_frame(self._request(
                shard_id, messages.encode_stats(self.clock())
            ))
            if opcode != messages.OP_SHARD_INFO:
                raise ProtocolError("STATS reply must be INFO")
            stats.append(fields[0])
        return stats

    # -- partition awareness -------------------------------------------------

    def _check_available(self, shard_id: int) -> None:
        """Shed traffic to a DOWN shard locally; heartbeat it on schedule.

        Raises :class:`~repro.errors.ShardUnavailableError` while the
        shard is marked DOWN.  Probes are paced by the retry policy's
        backoff on the *simulated* clock, so probing is deterministic
        and a down shard costs nothing between probe points.
        """
        if not self._health:
            return
        health = self._health.get(shard_id)
        if health is None or not health.down:
            return
        now = self.clock()
        if now >= health.next_probe_at and self._heartbeat(shard_id):
            health.down = False
            health.failures = 0
            health.probe_attempts = 0
            return
        self.down_sheds += 1
        raise ShardUnavailableError(
            f"shard {shard_id} is marked down", shard_id=shard_id
        )

    def _heartbeat(self, shard_id: int) -> bool:
        """One PING probe; reschedules the next probe on failure."""
        health = self._health[shard_id]
        self.messages_sent += 1
        try:
            opcode, _fields = wire.decode_frame(
                self.transport.request(
                    shard_id, messages.encode_ping(self.clock())
                )
            )
            return opcode == messages.OP_SHARD_INFO
        except ShardUnavailableError:
            health.probe_attempts += 1
            health.next_probe_at = self.clock() + self.probe_retry.backoff_ms(
                health.probe_attempts, self._probe_rng
            )
            return False

    def _note_shard_failure(self, shard_id: int) -> None:
        health = self._health.get(shard_id)
        if health is None:
            health = self._health[shard_id] = _ShardHealth()
        health.failures += 1
        if not health.down and health.failures >= self.failure_threshold:
            health.down = True
            health.probe_attempts = 1
            health.next_probe_at = self.clock() + self.probe_retry.backoff_ms(
                1, self._probe_rng
            )

    # -- internals ----------------------------------------------------------

    def _request(self, shard_id: int, frame: bytes) -> bytes:
        self.messages_sent += 1
        try:
            reply = self.transport.request(shard_id, frame)
        except ShardUnavailableError:
            self._note_shard_failure(shard_id)
            raise
        if self._health:
            health = self._health.get(shard_id)
            if health is not None and not health.down:
                health.failures = 0
        return reply

    def _absorb(
        self, shard_id: int, woken: Sequence[str], events: Sequence[Dict]
    ) -> None:
        """Re-emit shipped trace events; fire local mirrors of grants."""
        if self.tracer.enabled:
            for event in events:
                self.tracer.emit(
                    event["kind"], txn=event["txn"], **event["data"]
                )
        for label in woken:
            entry = self._waiting.get(label)
            if (
                entry is not None
                and entry.shard == shard_id
                and not entry.ticket.granted
            ):
                entry.ticket._fire()

    def _note_contention(self, *, blocked: bool) -> None:
        alpha = self.contention_alpha
        self.contention += alpha * ((1.0 if blocked else 0.0) - self.contention)


class ShardedNodeManager:
    """Node-manager facade whose operations run on their owning shard."""

    def __init__(self, router: ShardRouter, document):
        self._router = router
        self.document = document


def _make_op(name: str):
    def op(self, txn, *args):
        return self._router.ship(txn, name, args)

    op.__name__ = name
    op.__qualname__ = f"ShardedNodeManager.{name}"
    op.__doc__ = f"Ship ``{name}`` to the shard owning its target."
    return op


for _name in sorted(NODE_OPS):
    setattr(ShardedNodeManager, _name, _make_op(_name))


class _MergedHistogram:
    """Read-only merge of the shards' wait-time histograms."""

    def __init__(self, router: ShardRouter):
        self._router = router

    def as_dict(self) -> Dict[str, object]:
        merged_buckets: Dict[str, int] = {
            f"le_{b:g}": 0 for b in WAIT_TIME_BUCKETS_MS
        }
        merged_buckets["le_inf"] = 0
        count = 0
        total = 0.0
        peak = 0.0
        for stats in self._router.shard_stats():
            histogram = stats["wait_histogram"]
            count += int(histogram["count"])
            total += float(histogram["total"])
            peak = max(peak, float(histogram["max"]))
            for bucket, value in histogram["buckets"].items():
                merged_buckets[bucket] = (
                    merged_buckets.get(bucket, 0) + int(value)
                )
        return {
            "count": count,
            "total": round(total, 6),
            "mean": round(total / count, 6) if count else 0.0,
            "max": round(peak, 6),
            "buckets": merged_buckets,
        }


class _ShardedLockFacade:
    """The ``database.locks`` surface the TaMix collector reads."""

    def __init__(self, router: ShardRouter):
        self._router = router
        self.detector = router.detector
        self.wait_histogram = _MergedHistogram(router)

    def lock_statistics(self) -> Dict[str, int]:
        merged = {
            "requests": 0, "instant_grants": 0, "waits": 0,
            "conversions": 0, "deadlocks": 0, "timeouts": 0,
        }
        for stats in self._router.shard_stats():
            for field, value in stats["lock_statistics"].items():
                merged[field] = merged.get(field, 0) + int(value)
        merged["deadlocks"] += self.detector.cross_count()
        return merged

    def wait_statistics(self) -> Dict[str, float]:
        count = 0.0
        total = 0.0
        peak = 0.0
        for stats in self._router.shard_stats():
            shard_waits = stats["wait_statistics"]
            count += float(shard_waits["count"])
            total += float(shard_waits["total_ms"])
            peak = max(peak, float(shard_waits["max_ms"]))
        return {
            "count": count,
            "total_ms": total,
            "mean_ms": total / count if count else 0.0,
            "max_ms": peak,
        }


class ShardedDatabase:
    """N shards behind the single-node ``Database`` driving surface."""

    def __init__(
        self,
        plan: PartitionPlan,
        transport,
        info,
        *,
        protocol: str,
        isolation="repeatable",
        observability=None,
        rtt_ms: float = 0.1,
        wait_timeout_ms: Optional[float] = 10_000.0,
        grant_cache: bool = False,
    ):
        self.plan = plan
        self.protocol = get_protocol(protocol)
        self.default_isolation = IsolationLevel.parse(isolation)
        if observability is None or observability is False:
            self.obs = Observability.disabled()
        elif observability is True:
            self.obs = Observability.enabled()
        else:
            self.obs = observability
        self.document = info.document
        self.router = ShardRouter(
            plan, transport, info.document, self.obs.tracer,
            rtt_ms=rtt_ms, wait_timeout_ms=wait_timeout_ms,
            grant_cache=grant_cache,
        )
        self.nodes = ShardedNodeManager(self.router, info.document)
        self.locks = _ShardedLockFacade(self.router)
        self._clock: Callable[[], float] = lambda: 0.0
        self._begun = 0
        self.committed = 0
        #: Shard legs committed by successful transactions (durability
        #: accounting: one WAL COMMIT record per leg).
        self.leg_commits = 0
        self.aborted = 0
        self.aborted_by_reason: Dict[str, int] = {}

    @property
    def tracer(self):
        return self.obs.tracer

    @property
    def shards(self) -> int:
        return self.plan.shards

    @property
    def active_count(self) -> int:
        return self.router.active_count

    def set_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self.router.clock = clock
        self.obs.bind_clock(clock)

    # -- transaction lifecycle (coordinator-owned) --------------------------

    def begin(self, name: str = "txn", isolation=None) -> LogicalTxn:
        level = (
            self.default_isolation if isolation is None
            else IsolationLevel.parse(isolation)
        )
        if level is IsolationLevel.SERIALIZABLE and not (
            self.protocol.supports_serializable
        ):
            raise LockError(
                f"isolation level serializable is only offered by the "
                f"taDOM protocols, not {self.protocol.name}"
            )
        self._begun += 1
        txn = LogicalTxn(
            f"T{self._begun}:{name}", name, level, self._clock()
        )
        self.router.register(txn)
        if self.tracer.enabled:
            self.tracer.emit(
                TXN_BEGIN, txn=txn.label, name=name, isolation=level.value,
            )
        return txn

    def commit(self, txn: LogicalTxn) -> None:
        try:
            self.router.finish(txn, commit=True)
        except ShardUnavailableError:
            # The router already rolled back the surviving legs; record
            # the abort here so accounting matches the trace, then let
            # the transient error reach the restart loop.
            self.aborted += 1
            reason = "shard-unavailable"
            self.aborted_by_reason[reason] = (
                self.aborted_by_reason.get(reason, 0) + 1
            )
            self.obs.metrics.counter("txn.aborted").inc()
            self.obs.metrics.counter(f"txn.aborted.{reason}").inc()
            if self.tracer.enabled:
                self.tracer.emit(
                    TXN_ABORT, txn=txn.label, name=txn.name, reason=reason,
                    duration_ms=round(self._clock() - txn.started, 6),
                )
            raise
        self.committed += 1
        self.leg_commits += len(txn.participants)
        self.obs.metrics.counter("txn.committed").inc()
        if self.tracer.enabled:
            self.tracer.emit(
                TXN_COMMIT, txn=txn.label, name=txn.name,
                duration_ms=round(self._clock() - txn.started, 6),
            )

    def abort(self, txn: LogicalTxn, *, reason: str = "rollback") -> None:
        self.router.finish(txn, commit=False, reason=reason)
        self.aborted += 1
        self.aborted_by_reason[reason] = (
            self.aborted_by_reason.get(reason, 0) + 1
        )
        self.obs.metrics.counter("txn.aborted").inc()
        self.obs.metrics.counter(f"txn.aborted.{reason}").inc()
        if self.tracer.enabled:
            self.tracer.emit(
                TXN_ABORT, txn=txn.label, name=txn.name, reason=reason,
                duration_ms=round(self._clock() - txn.started, 6),
            )

    def abort_in_flight(self, *, reason: str = "rollback") -> int:
        """Roll back every still-active transaction (run-horizon sweep).

        Returns the number of transactions aborted.  Used by the chaos
        acceptance runner so the recovery oracle compares *committed*
        state only.
        """
        labels = list(self.router._active)
        for label in labels:
            txn = self.router._active.get(label)
            if txn is not None:
                self.abort(txn, reason=reason)
        return len(labels)
