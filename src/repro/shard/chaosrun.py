"""Seeded crash/partition runs against the shard plane, verified.

:func:`run_shard_chaos` is the sharded sibling of
:func:`repro.chaos.runner.run_chaos`: it builds an N-shard cluster under
a network/crash fault schedule (:class:`repro.shard.chaos.ChaosTransport`),
drives a CLUSTER1-style workload with the retry/admission layer enabled,
and then holds the survivors to the Jepsen-style acceptance bar:

* **history oracle** -- the committed schedule in the merged event trace
  passes :func:`repro.verify.verify_trace` (conflict serializability,
  lock-protocol conformance, two-phase discipline) even though shards
  crashed and frames were lost mid-run;
* **recovery oracle** -- every shard's live document is bit-identical to
  a fault-free redo of its own WAL over a pristine replica
  (``SNAPSHOT`` frames; the digests are computed shard-side so the
  check crosses the same process boundary the crash did);
* **durability accounting** -- the shards' WALs hold exactly one COMMIT
  record per committed transaction leg (no lost, phantom, or doubled
  commits despite retries and restarts);
* **no leaked processes** -- after teardown no shard child is still
  alive (the process transport reaps crashed shards immediately).

The report :meth:`~ShardChaosReport.fingerprint` digests the fault log,
the supervisor's restart log, the per-shard images, and the headline
counters, so two runs of the same seed -- or the same seed on the *sim*
and *process* transports -- can be compared for exact determinism.
"""

from __future__ import annotations

import hashlib
import multiprocessing
from dataclasses import dataclass, field
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Dict, List, Optional, Union

from repro.chaos.retry import AdmissionPolicy, RetryPolicy
from repro.chaos.schedule import FaultSchedule
from repro.net import wire
from repro.obs import Observability
from repro.shard import messages
from repro.shard.runner import build_sharded_cluster
from repro.tamix.cluster import CLUSTER1_MIX
from repro.tamix.coordinator import TaMixConfig, TaMixCoordinator
from repro.tamix.metrics import RunResult
from repro.verify import verify_trace


@dataclass
class ShardChaosReport:
    """Outcome and verification verdicts of one sharded chaos run."""

    seed: int
    chaos_seed: int
    schedule_name: str
    shards: int
    transport: str
    result: RunResult
    injection_rates: dict = field(default_factory=dict)
    faults: dict = field(default_factory=dict)
    restarts: int = 0
    sheds: int = 0
    #: Supervisor restarts, in kill order: ``[shard_id, epoch]`` pairs.
    shard_restarts: List[List[int]] = field(default_factory=list)
    #: Traffic shed locally to DOWN shards / stale-epoch transactions.
    down_sheds: int = 0
    stale_sheds: int = 0
    partial_commits: int = 0
    oracle_ok: bool = False
    oracle_violations: List[str] = field(default_factory=list)
    accesses_checked: int = 0
    recovery_ok: bool = False
    #: Per-shard SNAPSHOT payloads (digests + WAL accounting).
    shard_snapshots: List[Dict[str, object]] = field(default_factory=list)
    commits_in_wal: int = 0
    leg_commits: int = 0
    committed: int = 0
    leaked_processes: int = 0
    fingerprint: str = ""
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "chaos_seed": self.chaos_seed,
            "schedule": self.schedule_name,
            "shards": self.shards,
            "transport": self.transport,
            "ok": self.ok,
            "committed": self.committed,
            "aborted": self.result.aborted,
            "aborted_by_kind": self.result.aborted_by_kind,
            "restarts": self.restarts,
            "sheds": self.sheds,
            "shard_restarts": [list(pair) for pair in self.shard_restarts],
            "down_sheds": self.down_sheds,
            "stale_sheds": self.stale_sheds,
            "partial_commits": self.partial_commits,
            "faults": dict(sorted(self.faults.items())),
            "injection_rates": {
                site: round(rate, 6)
                for site, rate in sorted(self.injection_rates.items())
            },
            "oracle_ok": self.oracle_ok,
            "accesses_checked": self.accesses_checked,
            "recovery_ok": self.recovery_ok,
            "shard_snapshots": [dict(s) for s in self.shard_snapshots],
            "commits_in_wal": self.commits_in_wal,
            "leg_commits": self.leg_commits,
            "leaked_processes": self.leaked_processes,
            "violations": list(self.violations),
            "fingerprint": self.fingerprint,
        }

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        faults = sum(self.faults.values())
        return (
            f"shard-chaos[{self.schedule_name} seed={self.seed} "
            f"shards={self.shards} transport={self.transport}] {status}: "
            f"committed={self.committed} aborted={self.result.aborted} "
            f"restarts={self.restarts} shard_restarts={len(self.shard_restarts)} "
            f"faults={faults} oracle={'ok' if self.oracle_ok else 'FAIL'} "
            f"recovery={'ok' if self.recovery_ok else 'FAIL'} "
            f"leaked={self.leaked_processes} "
            f"fingerprint={self.fingerprint[:16]}"
        )


def run_shard_chaos(
    schedule: FaultSchedule,
    seed: int = 7,
    *,
    protocol: str = "taDOM3+",
    lock_depth: int = 4,
    isolation: str = "repeatable",
    shards: int = 2,
    scale: float = 0.05,
    run_duration_ms: float = 8_000.0,
    transport: str = "sim",
    trace_path: Union[str, Path, None] = None,
    retry: Optional[RetryPolicy] = None,
    admission: Optional[AdmissionPolicy] = None,
    chaos_seed: Optional[int] = None,
    request_timeout_s: Optional[float] = 30.0,
) -> ShardChaosReport:
    """One seeded, verified crash/partition run.  See the module docstring."""
    retry = retry if retry is not None else RetryPolicy()
    admission = admission if admission is not None else AdmissionPolicy()
    chaos_seed = seed if chaos_seed is None else chaos_seed
    with TemporaryDirectory(prefix="repro-shard-chaos-") as tmp:
        trace = Path(trace_path) if trace_path is not None else (
            Path(tmp) / "shard_chaos_trace.jsonl"
        )
        obs = Observability.enabled(capacity=1, sink=trace, access_events=True)
        cluster = build_sharded_cluster(
            protocol, shards=shards, lock_depth=lock_depth,
            isolation=isolation, scale=scale, observability=obs,
            transport=transport, fault_schedule=schedule,
            chaos_seed=chaos_seed, chaos_retry=retry,
            request_timeout_s=request_timeout_s,
        )
        try:
            database = cluster.database
            config = TaMixConfig(
                protocol=protocol,
                lock_depth=lock_depth,
                isolation=isolation,
                run_duration_ms=run_duration_ms,
                mix=dict(CLUSTER1_MIX),
                seed=seed,
                retry=retry,
                admission=admission,
            )
            result = TaMixCoordinator(database, cluster.info, config).run()

            # Verification is fault-free: quiesce the chaos decorator,
            # then roll back every in-flight transaction so shard state
            # holds exactly the committed effects.
            cluster.transport.enabled = False
            database.abort_in_flight(reason="rollback")
            obs.close()

            engine = cluster.engine
            supervisor = cluster.supervisor
            router = database.router
            report = ShardChaosReport(
                seed=seed,
                chaos_seed=chaos_seed,
                schedule_name=schedule.name or "<inline>",
                shards=shards,
                transport=transport,
                result=result,
                injection_rates=engine.injection_rates(),
                faults=dict(engine.faults),
                restarts=result.restarts,
                sheds=result.sheds,
                shard_restarts=[
                    [shard_id, epoch]
                    for shard_id, epoch in supervisor.restart_log
                ],
                down_sheds=router.down_sheds,
                stale_sheds=router.stale_sheds,
                partial_commits=router.partial_commits,
                committed=database.committed,
                leg_commits=database.leg_commits,
            )

            oracle = verify_trace(trace)
            report.oracle_ok = oracle.ok
            report.accesses_checked = oracle.accesses_checked
            if not oracle.ok:
                report.oracle_violations = [str(v) for v in oracle.violations]
                report.violations.append(
                    f"history oracle found {len(oracle.violations)} "
                    f"violation(s)"
                )

            # Per-shard recovery oracle: the SNAPSHOT reply digests the
            # live document and a fault-free replay of the shard's WAL
            # over a pristine replica, shard-side.
            report.recovery_ok = True
            for shard_id in range(shards):
                opcode, fields = wire.decode_frame(cluster.transport.request(
                    shard_id, messages.encode_snapshot(router.clock())
                ))
                snapshot = (
                    dict(fields[0])
                    if opcode == messages.OP_SHARD_INFO else {}
                )
                report.shard_snapshots.append(snapshot)
                if snapshot.get("live_image") != snapshot.get(
                    "replayed_image"
                ):
                    report.recovery_ok = False
                    report.violations.append(
                        f"shard {shard_id}: recovered document differs "
                        f"from live committed state"
                    )
                if snapshot.get("open_legs"):
                    report.violations.append(
                        f"shard {shard_id}: legs still open after the "
                        f"run-horizon sweep: {snapshot['open_legs']}"
                    )
                report.commits_in_wal += int(
                    snapshot.get("commits_in_wal", 0)
                )
            expected_legs = report.leg_commits + router.partial_commit_legs
            if report.commits_in_wal != expected_legs:
                report.violations.append(
                    f"shard WALs hold {report.commits_in_wal} COMMIT "
                    f"records but the coordinator committed "
                    f"{expected_legs} legs"
                )
        finally:
            cluster.close()

        report.leaked_processes = len(multiprocessing.active_children())
        if report.leaked_processes:
            report.violations.append(
                f"{report.leaked_processes} shard process(es) leaked "
                f"past teardown"
            )

        digest = hashlib.sha256()
        digest.update(engine.fingerprint().encode())
        digest.update(repr(supervisor.restart_log).encode())
        for snapshot in report.shard_snapshots:
            digest.update(str(snapshot.get("live_image")).encode())
            digest.update(str(snapshot.get("commits_in_wal")).encode())
        digest.update(str(report.committed).encode())
        digest.update(str(result.aborted).encode())
        digest.update(str(result.restarts).encode())
        digest.update(str(result.sheds).encode())
        digest.update(str(report.down_sheds).encode())
        digest.update(str(report.stale_sheds).encode())
        report.fingerprint = digest.hexdigest()
        return report
