"""Sharded CLUSTER1: run the TaMix contest against N shards.

``run_sharded_cluster1`` mirrors :func:`repro.tamix.cluster.run_cluster1`
with a ``shards`` axis: the document is partitioned by SPLID range
(:mod:`repro.shard.partition`), each shard hosts a full replica stack
(:mod:`repro.shard.shard`) behind either the simulated network or real
processes (:mod:`repro.shard.transport`), and the shard router
(:mod:`repro.shard.router`) presents the whole federation to the
unchanged TaMix coordinator.

Validity gate: partitioning is conflict-complete only when every
effective (non-intention) lock sits at or below the partition level, so
sharded runs require ``lock_depth >= 2`` and a protocol that does not
navigate from the document root (the taDOM family; the Node2PL group
reads cross-boundary sibling chains from the root down and is
rejected).  ``shards=1`` simply delegates to the single-node path, so
sweep grids can carry the shard axis uniformly.
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, List, Optional

from repro.chaos.retry import RetryPolicy
from repro.core.registry import get_protocol
from repro.errors import BenchmarkError, ChaosError
from repro.shard.partition import PARTITION_LEVEL, plan_partitions
from repro.shard.router import AdaptiveRetryPolicy, ShardedDatabase
from repro.shard.transport import ProcessTransport, SimTransport
from repro.tamix.bibgen import generate_bib
from repro.tamix.cluster import CLUSTER1_MIX, run_cluster1
from repro.tamix.coordinator import TaMixConfig, TaMixCoordinator
from repro.tamix.metrics import RunResult

#: Transport registry (CLI/test entry points pass the name).
TRANSPORTS = {"sim": SimTransport, "process": ProcessTransport}

#: The injection sites a shard-plane schedule may target (the storage
#: and lock sites hook *inside* a database and cannot reach across the
#: process boundary to N shard stacks).
SHARD_CHAOS_SITES = ("net.request", "net.reply", "shard.crash")


def validate_sharding(protocol: str, lock_depth: int, shards: int) -> None:
    """Reject configurations whose lock conflicts could cross shards."""
    if shards < 1:
        raise BenchmarkError(f"shard count must be >= 1, got {shards}")
    if shards == 1:
        return
    proto = get_protocol(protocol)
    if proto.requires_root_navigation:
        raise BenchmarkError(
            f"protocol {proto.name} navigates from the document root and "
            f"cannot be sharded by SPLID range"
        )
    if lock_depth < PARTITION_LEVEL:
        raise BenchmarkError(
            f"sharded runs need lock_depth >= {PARTITION_LEVEL} so no "
            f"effective lock sits above the partition level "
            f"(got {lock_depth})"
        )


def shard_config(
    protocol: str,
    lock_depth: int,
    isolation: str,
    *,
    scale: float = 0.1,
    doc_seed: int = 2006,
    wait_timeout_ms: Optional[float] = 10_000.0,
    escalation_threshold: Optional[int] = None,
    tracing: bool = False,
    access_events: bool = False,
) -> Dict[str, object]:
    """The primitive-only per-shard stack config (pickles, wire-ships)."""
    return {
        "protocol": protocol,
        "lock_depth": int(lock_depth),
        "isolation": isolation,
        "scale": float(scale),
        "doc_seed": int(doc_seed),
        "wait_timeout_ms": wait_timeout_ms,
        "escalation_threshold": escalation_threshold,
        "tracing": bool(tracing),
        "access_events": bool(access_events),
    }


def _make_transport(
    name: str,
    configs: List[Dict[str, object]],
    request_timeout_s: Optional[float],
):
    if name == "process":
        return ProcessTransport(configs, request_timeout_s=request_timeout_s)
    return SimTransport(configs)


class ShardedCluster:
    """A built (but not yet driven) sharded stack, with teardown.

    Bundles everything :func:`run_sharded_cluster1` and the chaos
    acceptance runner need: the database facade, the (possibly
    chaos-wrapped) transport, the chaos engine and supervisor when a
    fault schedule is active, and the owned temp directory for shard
    WALs.  ``close()`` is idempotent.
    """

    def __init__(self, database, transport, info, plan, engine, tmp):
        self.database = database
        self.transport = transport
        self.info = info
        self.plan = plan
        self.engine = engine
        self.supervisor = getattr(transport, "supervisor", None)
        self._tmp = tmp
        self._closed = False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.transport.close()
        finally:
            if self._tmp is not None:
                self._tmp.cleanup()


def build_sharded_cluster(
    protocol: str,
    *,
    shards: int = 2,
    lock_depth: int = 4,
    isolation: str = "repeatable",
    scale: float = 0.1,
    observability=None,
    transport: str = "sim",
    rtt_ms: float = 0.1,
    grant_cache: bool = False,
    wait_timeout_ms: Optional[float] = 10_000.0,
    escalation_threshold: Optional[int] = None,
    fault_schedule=None,
    chaos_seed: int = 0,
    chaos_retry: Optional[RetryPolicy] = None,
    wal_dir: Optional[str] = None,
    request_timeout_s: Optional[float] = None,
) -> ShardedCluster:
    """Build the sharded stack, optionally under a fault schedule.

    A schedule targeting ``net.request``/``net.reply``/``shard.crash``
    wraps the transport in :class:`repro.shard.chaos.ChaosTransport`
    (storage and lock sites are rejected here -- they hook inside a
    single database).  Schedules with ``shard.crash`` rules give every
    shard a WAL file (under ``wal_dir``, or an owned temp directory) so
    a killed shard restarts from its committed state.
    """
    validate_sharding(protocol, lock_depth, shards)
    if transport not in TRANSPORTS:
        raise BenchmarkError(
            f"unknown shard transport {transport!r} "
            f"(expected one of {sorted(TRANSPORTS)})"
        )
    engine = None
    if fault_schedule is not None and fault_schedule:
        bad = sorted(
            {rule.site for rule in fault_schedule.rules}
            - set(SHARD_CHAOS_SITES)
        )
        if bad:
            raise ChaosError(
                f"sharded chaos only supports sites {SHARD_CHAOS_SITES}; "
                f"schedule also targets {bad}"
            )
    info = generate_bib(scale=scale, seed=2006)
    plan = plan_partitions(info.document, shards)

    from repro.obs import Observability

    if observability is None or observability is False:
        obs = Observability.disabled()
    elif observability is True:
        obs = Observability.enabled()
    else:
        obs = observability
    config = shard_config(
        protocol, lock_depth, isolation, scale=scale,
        wait_timeout_ms=wait_timeout_ms,
        escalation_threshold=escalation_threshold,
        tracing=obs.tracer.enabled,
        access_events=obs.access_events,
    )
    configs = [dict(config) for _ in range(shards)]
    tmp = None
    wants_crash = fault_schedule is not None and any(
        rule.site == "shard.crash" for rule in fault_schedule.rules
    )
    if wants_crash:
        if wal_dir is None:
            tmp = tempfile.TemporaryDirectory(prefix="repro-shard-wal-")
            wal_dir = tmp.name
        for shard_id, shard_cfg in enumerate(configs):
            shard_cfg["wal_path"] = os.path.join(
                wal_dir, f"shard-{shard_id}.wal"
            )
    try:
        transport_obj = _make_transport(transport, configs, request_timeout_s)
    except BaseException:
        if tmp is not None:
            tmp.cleanup()
        raise
    if fault_schedule is not None and fault_schedule:
        from repro.chaos.engine import ChaosEngine
        from repro.shard.chaos import ChaosTransport

        engine = ChaosEngine(
            fault_schedule, chaos_seed, retry=chaos_retry, obs=obs
        )
        transport_obj = ChaosTransport(transport_obj, engine)
    database = ShardedDatabase(
        plan, transport_obj, info,
        protocol=protocol, isolation=isolation, observability=obs,
        rtt_ms=rtt_ms, wait_timeout_ms=wait_timeout_ms,
        grant_cache=grant_cache,
    )
    return ShardedCluster(database, transport_obj, info, plan, engine, tmp)


def run_sharded_cluster1(
    protocol: str,
    *,
    shards: int = 2,
    lock_depth: int = 4,
    isolation: str = "repeatable",
    scale: float = 0.1,
    run_duration_ms: float = 60_000.0,
    seed: int = 42,
    observability=None,
    transport: str = "sim",
    rtt_ms: float = 0.1,
    grant_cache: bool = False,
    adaptive_backoff: bool = False,
    retry: Optional[RetryPolicy] = None,
    wait_timeout_ms: Optional[float] = 10_000.0,
    escalation_threshold: Optional[int] = None,
    fault_schedule=None,
    chaos_seed: int = 0,
    request_timeout_s: Optional[float] = None,
) -> RunResult:
    """One sharded CLUSTER1 run; returns the paper's metrics.

    ``transport="sim"`` keeps shards in-process behind the wire codec,
    fully driven by the deterministic scheduler (seeded runs are
    byte-identical); ``transport="process"`` runs each shard as a real
    OS process.  Both speak the identical message protocol, and because
    shards take all timing from message-carried clocks, both produce
    the same results for the same seed.

    ``grant_cache`` and ``adaptive_backoff`` enable the router-side
    optimizations of arXiv 2504.03073 (off by default so the baseline
    stays byte-identical).  ``fault_schedule``/``chaos_seed`` put the
    shard transport under seeded network/crash chaos (see
    :func:`build_sharded_cluster`).
    """
    validate_sharding(protocol, lock_depth, shards)
    if shards == 1:
        return run_cluster1(
            protocol, lock_depth=lock_depth, isolation=isolation,
            scale=scale, run_duration_ms=run_duration_ms, seed=seed,
            observability=observability,
            escalation_threshold=escalation_threshold,
        )
    cluster = build_sharded_cluster(
        protocol, shards=shards, lock_depth=lock_depth,
        isolation=isolation, scale=scale, observability=observability,
        transport=transport, rtt_ms=rtt_ms, grant_cache=grant_cache,
        wait_timeout_ms=wait_timeout_ms,
        escalation_threshold=escalation_threshold,
        fault_schedule=fault_schedule, chaos_seed=chaos_seed,
        request_timeout_s=request_timeout_s,
    )
    try:
        database = cluster.database
        retry_policy = retry
        if adaptive_backoff:
            base = retry if retry is not None else RetryPolicy()
            retry_policy = AdaptiveRetryPolicy(base).bind(
                lambda: database.router.contention
            )
        tamix = TaMixConfig(
            protocol=protocol,
            lock_depth=lock_depth,
            isolation=isolation,
            run_duration_ms=run_duration_ms,
            mix=dict(CLUSTER1_MIX),
            seed=seed,
            retry=retry_policy,
        )
        return TaMixCoordinator(database, cluster.info, tamix).run()
    finally:
        cluster.close()
