"""Sharded CLUSTER1: run the TaMix contest against N shards.

``run_sharded_cluster1`` mirrors :func:`repro.tamix.cluster.run_cluster1`
with a ``shards`` axis: the document is partitioned by SPLID range
(:mod:`repro.shard.partition`), each shard hosts a full replica stack
(:mod:`repro.shard.shard`) behind either the simulated network or real
processes (:mod:`repro.shard.transport`), and the shard router
(:mod:`repro.shard.router`) presents the whole federation to the
unchanged TaMix coordinator.

Validity gate: partitioning is conflict-complete only when every
effective (non-intention) lock sits at or below the partition level, so
sharded runs require ``lock_depth >= 2`` and a protocol that does not
navigate from the document root (the taDOM family; the Node2PL group
reads cross-boundary sibling chains from the root down and is
rejected).  ``shards=1`` simply delegates to the single-node path, so
sweep grids can carry the shard axis uniformly.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.chaos.retry import RetryPolicy
from repro.core.registry import get_protocol
from repro.errors import BenchmarkError
from repro.shard.partition import PARTITION_LEVEL, plan_partitions
from repro.shard.router import AdaptiveRetryPolicy, ShardedDatabase
from repro.shard.transport import ProcessTransport, SimTransport
from repro.tamix.bibgen import generate_bib
from repro.tamix.cluster import CLUSTER1_MIX, run_cluster1
from repro.tamix.coordinator import TaMixConfig, TaMixCoordinator
from repro.tamix.metrics import RunResult

#: Transport registry (CLI/test entry points pass the name).
TRANSPORTS = {"sim": SimTransport, "process": ProcessTransport}


def validate_sharding(protocol: str, lock_depth: int, shards: int) -> None:
    """Reject configurations whose lock conflicts could cross shards."""
    if shards < 1:
        raise BenchmarkError(f"shard count must be >= 1, got {shards}")
    if shards == 1:
        return
    proto = get_protocol(protocol)
    if proto.requires_root_navigation:
        raise BenchmarkError(
            f"protocol {proto.name} navigates from the document root and "
            f"cannot be sharded by SPLID range"
        )
    if lock_depth < PARTITION_LEVEL:
        raise BenchmarkError(
            f"sharded runs need lock_depth >= {PARTITION_LEVEL} so no "
            f"effective lock sits above the partition level "
            f"(got {lock_depth})"
        )


def shard_config(
    protocol: str,
    lock_depth: int,
    isolation: str,
    *,
    scale: float = 0.1,
    doc_seed: int = 2006,
    wait_timeout_ms: Optional[float] = 10_000.0,
    escalation_threshold: Optional[int] = None,
    tracing: bool = False,
    access_events: bool = False,
) -> Dict[str, object]:
    """The primitive-only per-shard stack config (pickles, wire-ships)."""
    return {
        "protocol": protocol,
        "lock_depth": int(lock_depth),
        "isolation": isolation,
        "scale": float(scale),
        "doc_seed": int(doc_seed),
        "wait_timeout_ms": wait_timeout_ms,
        "escalation_threshold": escalation_threshold,
        "tracing": bool(tracing),
        "access_events": bool(access_events),
    }


def run_sharded_cluster1(
    protocol: str,
    *,
    shards: int = 2,
    lock_depth: int = 4,
    isolation: str = "repeatable",
    scale: float = 0.1,
    run_duration_ms: float = 60_000.0,
    seed: int = 42,
    observability=None,
    transport: str = "sim",
    rtt_ms: float = 0.1,
    grant_cache: bool = False,
    adaptive_backoff: bool = False,
    retry: Optional[RetryPolicy] = None,
    wait_timeout_ms: Optional[float] = 10_000.0,
    escalation_threshold: Optional[int] = None,
) -> RunResult:
    """One sharded CLUSTER1 run; returns the paper's metrics.

    ``transport="sim"`` keeps shards in-process behind the wire codec,
    fully driven by the deterministic scheduler (seeded runs are
    byte-identical); ``transport="process"`` runs each shard as a real
    OS process.  Both speak the identical message protocol, and because
    shards take all timing from message-carried clocks, both produce
    the same results for the same seed.

    ``grant_cache`` and ``adaptive_backoff`` enable the router-side
    optimizations of arXiv 2504.03073 (off by default so the baseline
    stays byte-identical).
    """
    validate_sharding(protocol, lock_depth, shards)
    if shards == 1:
        return run_cluster1(
            protocol, lock_depth=lock_depth, isolation=isolation,
            scale=scale, run_duration_ms=run_duration_ms, seed=seed,
            observability=observability,
            escalation_threshold=escalation_threshold,
        )
    if transport not in TRANSPORTS:
        raise BenchmarkError(
            f"unknown shard transport {transport!r} "
            f"(expected one of {sorted(TRANSPORTS)})"
        )
    info = generate_bib(scale=scale, seed=2006)
    plan = plan_partitions(info.document, shards)

    # Resolve observability up front so the shard stacks know whether to
    # trace (their events ship home inside every reply).
    from repro.obs import Observability

    if observability is None or observability is False:
        obs = Observability.disabled()
    elif observability is True:
        obs = Observability.enabled()
    else:
        obs = observability
    config = shard_config(
        protocol, lock_depth, isolation, scale=scale,
        wait_timeout_ms=wait_timeout_ms,
        escalation_threshold=escalation_threshold,
        tracing=obs.tracer.enabled,
        access_events=obs.access_events,
    )
    transport_obj = TRANSPORTS[transport]([config] * shards)
    try:
        database = ShardedDatabase(
            plan, transport_obj, info,
            protocol=protocol, isolation=isolation, observability=obs,
            rtt_ms=rtt_ms, wait_timeout_ms=wait_timeout_ms,
            grant_cache=grant_cache,
        )
        retry_policy = retry
        if adaptive_backoff:
            base = retry if retry is not None else RetryPolicy()
            retry_policy = AdaptiveRetryPolicy(base).bind(
                lambda: database.router.contention
            )
        tamix = TaMixConfig(
            protocol=protocol,
            lock_depth=lock_depth,
            isolation=isolation,
            run_duration_ms=run_duration_ms,
            mix=dict(CLUSTER1_MIX),
            seed=seed,
            retry=retry_policy,
        )
        return TaMixCoordinator(database, info, tamix).run()
    finally:
        transport_obj.close()
