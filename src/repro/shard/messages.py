"""The shard message protocol: opcodes and framing helpers.

The router and its shards speak request/response pairs framed by the
binary wire codec (:mod:`repro.net.wire`) -- the same tagged-tuple
encoding the lock server uses, in a reserved opcode block (``0x40``).
Every request carries the coordinator's simulated clock so the shard can
stamp its trace events and lock-wait durations on the shared timeline;
every reply carries the operation's accumulated cost, the labels of
transactions the message woke up, and the shard's drained trace events.

Requests
    ``EXEC``      run one node-manager operation (lazily begins the txn)
    ``RESUME``    continue an operation whose lock wait was granted
    ``CANCEL``    withdraw a parked lock wait (timeout or deadlock victim)
    ``COMMIT``    commit the shard-local leg of a transaction
    ``ABORT``     roll back the shard-local leg of a transaction
    ``BLOCKERS``  deadlock probe: who currently blocks this transaction?
    ``STATS``     lock/wait statistics snapshot
    ``SHUTDOWN``  drain and stop

Replies
    ``DONE``      operation finished (or commit/abort applied)
    ``BLOCKED``   operation parked on a lock wait
    ``EXC``       operation raised (exception shipped by class name)
    ``INFO``      payload dictionary (``BLOCKERS``/``STATS``/``SHUTDOWN``)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import DeadlockAbort, LockTimeout, ProtocolError
from repro.net import wire

# -- opcodes (reserved block, disjoint from repro.net.wire) ----------------

OP_SHARD_EXEC = 0x40
OP_SHARD_RESUME = 0x41
OP_SHARD_CANCEL = 0x42
OP_SHARD_COMMIT = 0x43
OP_SHARD_ABORT = 0x44
OP_SHARD_BLOCKERS = 0x45
OP_SHARD_STATS = 0x46
OP_SHARD_SHUTDOWN = 0x47

OP_SHARD_DONE = 0x48
OP_SHARD_BLOCKED = 0x49
OP_SHARD_EXC = 0x4A
OP_SHARD_INFO = 0x4B

# Crash-tolerance extensions: an idempotent-request envelope (the shard
# caches the reply per request id, so a retried frame is at-most-once),
# a heartbeat probe, and a recovery snapshot for the acceptance oracle.
OP_SHARD_REQ = 0x4C
OP_SHARD_PING = 0x4D
OP_SHARD_SNAPSHOT = 0x4E

SHARD_OPCODE_NAMES = {
    OP_SHARD_EXEC: "EXEC",
    OP_SHARD_RESUME: "RESUME",
    OP_SHARD_CANCEL: "CANCEL",
    OP_SHARD_COMMIT: "COMMIT",
    OP_SHARD_ABORT: "ABORT",
    OP_SHARD_BLOCKERS: "BLOCKERS",
    OP_SHARD_STATS: "STATS",
    OP_SHARD_SHUTDOWN: "SHUTDOWN",
    OP_SHARD_DONE: "DONE",
    OP_SHARD_BLOCKED: "BLOCKED",
    OP_SHARD_EXC: "EXC",
    OP_SHARD_INFO: "INFO",
    OP_SHARD_REQ: "REQ",
    OP_SHARD_PING: "PING",
    OP_SHARD_SNAPSHOT: "SNAPSHOT",
}


def opcode_of(frame: bytes) -> int:
    """The opcode byte of an encoded frame (no body decode)."""
    return frame[4]

# -- requests ---------------------------------------------------------------


def encode_exec(
    now: float, label: str, name: str, isolation: str,
    op: str, args: Tuple,
) -> bytes:
    return wire.encode_frame(
        OP_SHARD_EXEC, float(now), label, name, isolation, op, tuple(args)
    )


def encode_resume(now: float, label: str) -> bytes:
    return wire.encode_frame(OP_SHARD_RESUME, float(now), label)


def encode_cancel(
    now: float, label: str, reason: str, message: str,
    cycle: Sequence[str] = (),
) -> bytes:
    return wire.encode_frame(
        OP_SHARD_CANCEL, float(now), label, reason, message, list(cycle)
    )


def encode_commit(now: float, label: str) -> bytes:
    return wire.encode_frame(OP_SHARD_COMMIT, float(now), label)


def encode_abort(now: float, label: str, reason: str) -> bytes:
    return wire.encode_frame(OP_SHARD_ABORT, float(now), label, reason)


def encode_blockers(now: float, label: str) -> bytes:
    return wire.encode_frame(OP_SHARD_BLOCKERS, float(now), label)


def encode_stats(now: float) -> bytes:
    return wire.encode_frame(OP_SHARD_STATS, float(now))


def encode_shutdown() -> bytes:
    return wire.encode_frame(OP_SHARD_SHUTDOWN)


def encode_request(request_id: str, inner: bytes) -> bytes:
    """Wrap a request frame in an idempotency envelope.

    The shard dedups on ``request_id``: a re-delivered envelope returns
    the cached reply bytes instead of re-executing, making transport
    retries (dropped replies, duplicated frames) at-most-once.
    """
    return wire.encode_frame(OP_SHARD_REQ, request_id, bytes(inner))


def encode_ping(now: float) -> bytes:
    """Heartbeat probe; the reply is ``INFO {shard, ok}``."""
    return wire.encode_frame(OP_SHARD_PING, float(now))


def encode_snapshot(now: float) -> bytes:
    """Recovery-oracle snapshot request; the reply is ``INFO`` carrying
    digests of the live document and of a fault-free WAL replay."""
    return wire.encode_frame(OP_SHARD_SNAPSHOT, float(now))


# -- replies ----------------------------------------------------------------


def encode_done(
    value, cost_ms: float, woken: Sequence[str], events: Sequence[Dict],
) -> bytes:
    return wire.encode_frame(
        OP_SHARD_DONE, value, float(cost_ms), list(woken), list(events)
    )


def encode_blocked(
    blockers: Sequence[str], is_conversion: bool, space: str, key: str,
    mode: str, cost_ms: float, woken: Sequence[str], events: Sequence[Dict],
) -> bytes:
    return wire.encode_frame(
        OP_SHARD_BLOCKED, list(blockers), bool(is_conversion), space, key,
        mode, float(cost_ms), list(woken), list(events)
    )


def encode_exc(
    error: BaseException, cost_ms: float, woken: Sequence[str],
    events: Sequence[Dict],
) -> bytes:
    cycle: List[str] = [str(t) for t in getattr(error, "cycle", ())]
    return wire.encode_frame(
        OP_SHARD_EXC, type(error).__name__, str(error), cycle,
        float(cost_ms), list(woken), list(events)
    )


def encode_info(payload: Dict[str, object]) -> bytes:
    return wire.encode_frame(OP_SHARD_INFO, dict(payload))


def add_cost(frame: bytes, extra_ms: float) -> bytes:
    """Inflate a reply frame's cost field by ``extra_ms`` (chaos delays).

    The cost sits at a fixed position per reply opcode; ``INFO`` replies
    carry no cost and pass through unchanged.
    """
    if extra_ms <= 0.0:
        return frame
    opcode, fields = wire.decode_frame(frame)
    fields = list(fields)
    if opcode == OP_SHARD_DONE:
        fields[1] = float(fields[1]) + float(extra_ms)
    elif opcode == OP_SHARD_BLOCKED:
        fields[5] = float(fields[5]) + float(extra_ms)
    elif opcode == OP_SHARD_EXC:
        fields[3] = float(fields[3]) + float(extra_ms)
    else:
        return frame
    return wire.encode_frame(opcode, *fields)


def rebuild_exception(
    code: str, message: str, cycle: Sequence[str]
) -> BaseException:
    """Rebuild a shard-side exception from its shipped image.

    The two transient aborts the router must re-raise *typed* (the TaMix
    retry loop dispatches on class and ``reason``) get their real
    constructors; everything else goes through the wire error registry
    and degrades to :class:`ProtocolError` for unknown classes.
    """
    if code == "DeadlockAbort":
        return DeadlockAbort(message, cycle=tuple(cycle))
    if code == "LockTimeout":
        return LockTimeout(message)
    factory = wire.ERROR_REGISTRY.get(code)
    if factory is not None:
        return factory(message)
    return ProtocolError(f"{code}: {message}")
