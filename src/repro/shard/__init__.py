"""repro.shard: SPLID-range sharding for the lock-protocol contest.

The document is partitioned into contiguous SPLID subtree ranges; each
shard owns a full stack (buffer pool, WAL, lock manager) and executes
shipped node-manager operations; a router maps every operation to its
owning shard and chases cross-shard deadlocks with edge-chasing probes.
See ``docs/architecture.md`` ("Sharding") for the protocol and the
determinism contract.
"""

from repro.shard.chaos import ChaosTransport
from repro.shard.chaosrun import ShardChaosReport, run_shard_chaos
from repro.shard.partition import PARTITION_LEVEL, PartitionPlan, plan_partitions
from repro.shard.router import (
    AdaptiveRetryPolicy,
    CrossShardDetector,
    LogicalTxn,
    ShardedDatabase,
    ShardedNodeManager,
    ShardRouter,
)
from repro.shard.runner import (
    SHARD_CHAOS_SITES,
    TRANSPORTS,
    build_sharded_cluster,
    run_sharded_cluster1,
    shard_config,
    validate_sharding,
)
from repro.shard.shard import OutboxTracer, ShardServer
from repro.shard.supervisor import ShardSupervisor
from repro.shard.transport import ProcessTransport, SimTransport

__all__ = [
    "PARTITION_LEVEL",
    "PartitionPlan",
    "plan_partitions",
    "AdaptiveRetryPolicy",
    "ChaosTransport",
    "CrossShardDetector",
    "LogicalTxn",
    "ShardChaosReport",
    "ShardedDatabase",
    "ShardedNodeManager",
    "ShardRouter",
    "ShardSupervisor",
    "SHARD_CHAOS_SITES",
    "TRANSPORTS",
    "build_sharded_cluster",
    "run_shard_chaos",
    "run_sharded_cluster1",
    "shard_config",
    "validate_sharding",
    "OutboxTracer",
    "ShardServer",
    "ProcessTransport",
    "SimTransport",
]
