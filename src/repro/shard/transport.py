"""Shard transports: simulated-network and real multiprocessing.

Both transports move *encoded wire frames* (the exact bytes of
:mod:`repro.shard.messages`) and expose the same blocking
``request(shard_id, frame) -> frame`` call, so the router is transport-
agnostic and the message protocol is exercised end-to-end either way.

:class:`SimTransport` keeps the shard servers in-process.  Every request
still round-trips through the codec -- encode, "deliver", decode,
handle, encode, "deliver", decode -- so a seeded simulated run covers
the same protocol surface as a process run, byte-identically across
repeats.

:class:`ProcessTransport` runs each shard as a real
:mod:`multiprocessing` process connected by a duplex pipe.  The child
rebuilds its replica stack from the primitive-only config, then serves
a strict one-request/one-reply loop until ``SHUTDOWN``.  Because the
router is synchronous and shards derive all timing from message-carried
clocks, process-mode results are deterministic too -- identical to the
simulated-network mode for the same seed.

Crash tolerance
---------------
Both transports expose ``kill(shard_id)`` / ``restart(shard_id)`` so a
supervisor (:class:`repro.shard.supervisor.ShardSupervisor`) can crash a
shard and bring it back.  A kill is a real ``SIGKILL`` under the process
transport and an instance discard under the simulated one -- either way
all in-memory shard state is lost, and the replacement rebuilds itself
from the config (replaying its persisted WAL when ``wal_path`` is set),
so the two transports converge on the same recovered state.  A request
to a dead (or freshly crashed) shard raises the *transient*
:class:`~repro.errors.ShardUnavailableError`, and the process transport
reaps the corpse immediately rather than leaving a zombie until
``close()``.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Sequence

from repro.errors import ShardUnavailableError
from repro.shard import messages
from repro.shard.shard import ShardServer


class SimTransport:
    """In-process shards behind the wire codec (deterministic default)."""

    def __init__(self, configs: Sequence[Dict[str, object]]):
        self.configs = [dict(config) for config in configs]
        self.servers: List[Optional[ShardServer]] = [
            ShardServer(shard_id, config)
            for shard_id, config in enumerate(self.configs)
        ]

    @property
    def shards(self) -> int:
        return len(self.servers)

    def request(self, shard_id: int, frame: bytes) -> bytes:
        server = self.servers[shard_id]
        if server is None:
            raise ShardUnavailableError(
                f"shard {shard_id} is down", shard_id=shard_id
            )
        return server.handle(bytes(frame))

    def kill(self, shard_id: int) -> None:
        """Crash the shard: discard the instance and all in-memory state."""
        self.servers[shard_id] = None

    def restart(self, shard_id: int) -> None:
        """Replace a crashed shard; it recovers itself from ``wal_path``."""
        self.servers[shard_id] = ShardServer(
            shard_id, self.configs[shard_id]
        )

    def alive(self, shard_id: int) -> bool:
        return self.servers[shard_id] is not None

    def close(self) -> None:
        for server in self.servers:
            if server is not None and not server.stopped:
                server.handle(messages.encode_shutdown())


def shard_main(conn, shard_id: int, config: Dict[str, object]) -> None:
    """Child-process entry point: serve one shard over a pipe."""
    server = ShardServer(shard_id, config)
    try:
        while not server.stopped:
            try:
                data = conn.recv_bytes()
            except EOFError:
                break
            conn.send_bytes(server.handle(data))
    finally:
        conn.close()


class ProcessTransport:
    """One real OS process per shard, speaking frames over pipes.

    ``request_timeout_s`` bounds each request round trip: a shard that
    does not answer in time is declared dead (killed, reaped) and the
    request raises :class:`~repro.errors.ShardUnavailableError`.  The
    default of ``None`` blocks forever, matching the pre-crash-tolerance
    behaviour.  ``close_timeout_s`` bounds the shutdown handshake per
    shard so one wedged child cannot hang the whole teardown.
    """

    def __init__(
        self,
        configs: Sequence[Dict[str, object]],
        *,
        request_timeout_s: Optional[float] = None,
        close_timeout_s: float = 10.0,
    ):
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self.configs = [dict(config) for config in configs]
        self.request_timeout_s = request_timeout_s
        self.close_timeout_s = float(close_timeout_s)
        self._pipes: List[Optional[object]] = []
        self._procs: List[Optional[object]] = []
        try:
            for shard_id, config in enumerate(self.configs):
                self._pipes.append(None)
                self._procs.append(None)
                self._spawn(shard_id)
        except BaseException:
            self.close()
            raise

    def _spawn(self, shard_id: int) -> None:
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=shard_main,
            args=(child, shard_id, dict(self.configs[shard_id])),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        proc.start()
        child.close()
        self._pipes[shard_id] = parent
        self._procs[shard_id] = proc

    @property
    def shards(self) -> int:
        return len(self._procs)

    def request(self, shard_id: int, frame: bytes) -> bytes:
        pipe = self._pipes[shard_id]
        if pipe is None:
            raise ShardUnavailableError(
                f"shard {shard_id} is down", shard_id=shard_id
            )
        try:
            pipe.send_bytes(frame)
            if self.request_timeout_s is not None:
                if not pipe.poll(self.request_timeout_s):
                    # The child is wedged or dying: a healthy shard
                    # answers synchronously. Put it out of its misery so
                    # the reply can never arrive late and desequence the
                    # one-request/one-reply pipe discipline.
                    self._reap(shard_id, kill=True)
                    raise ShardUnavailableError(
                        f"shard {shard_id} timed out after "
                        f"{self.request_timeout_s}s",
                        shard_id=shard_id,
                    )
            return pipe.recv_bytes()
        except (EOFError, OSError) as exc:
            # Reap the corpse now -- waiting for close() would leak the
            # dead process (and its pipe fds) for the rest of the run.
            self._reap(shard_id, kill=True)
            raise ShardUnavailableError(
                f"shard {shard_id} process died mid-request: {exc}",
                shard_id=shard_id,
            ) from exc

    def kill(self, shard_id: int) -> None:
        """SIGKILL the shard process and reap it immediately."""
        self._reap(shard_id, kill=True)

    def restart(self, shard_id: int) -> None:
        """Start a replacement process; it recovers from ``wal_path``."""
        self._reap(shard_id, kill=True)
        self._spawn(shard_id)

    def alive(self, shard_id: int) -> bool:
        proc = self._procs[shard_id]
        return proc is not None and proc.is_alive()

    def _reap(self, shard_id: int, *, kill: bool) -> None:
        proc = self._procs[shard_id]
        pipe = self._pipes[shard_id]
        if pipe is not None:
            pipe.close()
        if proc is not None:
            if kill and proc.is_alive():
                proc.kill()
            proc.join(timeout=self.close_timeout_s)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        self._pipes[shard_id] = None
        self._procs[shard_id] = None

    def close(self) -> None:
        for shard_id, pipe in enumerate(self._pipes):
            if pipe is None:
                continue
            try:
                pipe.send_bytes(messages.encode_shutdown())
                # Bounded handshake: a dead or wedged child must not
                # hang teardown on a blocking recv.
                if pipe.poll(self.close_timeout_s):
                    pipe.recv_bytes()
            except (EOFError, OSError):
                pass
        for shard_id in range(len(self._procs)):
            self._reap(shard_id, kill=False)
