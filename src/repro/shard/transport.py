"""Shard transports: simulated-network and real multiprocessing.

Both transports move *encoded wire frames* (the exact bytes of
:mod:`repro.shard.messages`) and expose the same blocking
``request(shard_id, frame) -> frame`` call, so the router is transport-
agnostic and the message protocol is exercised end-to-end either way.

:class:`SimTransport` keeps the shard servers in-process.  Every request
still round-trips through the codec -- encode, "deliver", decode,
handle, encode, "deliver", decode -- so a seeded simulated run covers
the same protocol surface as a process run, byte-identically across
repeats.

:class:`ProcessTransport` runs each shard as a real
:mod:`multiprocessing` process connected by a duplex pipe.  The child
rebuilds its replica stack from the primitive-only config, then serves
a strict one-request/one-reply loop until ``SHUTDOWN``.  Because the
router is synchronous and shards derive all timing from message-carried
clocks, process-mode results are deterministic too -- identical to the
simulated-network mode for the same seed.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Sequence

from repro.errors import ProtocolError
from repro.shard import messages
from repro.shard.shard import ShardServer


class SimTransport:
    """In-process shards behind the wire codec (deterministic default)."""

    def __init__(self, configs: Sequence[Dict[str, object]]):
        self.servers = [
            ShardServer(shard_id, config)
            for shard_id, config in enumerate(configs)
        ]

    @property
    def shards(self) -> int:
        return len(self.servers)

    def request(self, shard_id: int, frame: bytes) -> bytes:
        return self.servers[shard_id].handle(bytes(frame))

    def close(self) -> None:
        for server in self.servers:
            if not server.stopped:
                server.handle(messages.encode_shutdown())


def shard_main(conn, shard_id: int, config: Dict[str, object]) -> None:
    """Child-process entry point: serve one shard over a pipe."""
    server = ShardServer(shard_id, config)
    try:
        while not server.stopped:
            try:
                data = conn.recv_bytes()
            except EOFError:
                break
            conn.send_bytes(server.handle(data))
    finally:
        conn.close()


class ProcessTransport:
    """One real OS process per shard, speaking frames over pipes."""

    def __init__(self, configs: Sequence[Dict[str, object]]):
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._pipes = []
        self._procs = []
        try:
            for shard_id, config in enumerate(configs):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=shard_main,
                    args=(child, shard_id, dict(config)),
                    name=f"repro-shard-{shard_id}",
                    daemon=True,
                )
                proc.start()
                child.close()
                self._pipes.append(parent)
                self._procs.append(proc)
        except BaseException:
            self.close()
            raise

    @property
    def shards(self) -> int:
        return len(self._procs)

    def request(self, shard_id: int, frame: bytes) -> bytes:
        pipe = self._pipes[shard_id]
        try:
            pipe.send_bytes(frame)
            return pipe.recv_bytes()
        except (EOFError, OSError) as exc:
            raise ProtocolError(
                f"shard {shard_id} process died mid-request: {exc}"
            ) from exc

    def close(self) -> None:
        for shard_id, pipe in enumerate(self._pipes):
            try:
                pipe.send_bytes(messages.encode_shutdown())
                pipe.recv_bytes()
            except (EOFError, OSError):
                pass
            finally:
                pipe.close()
        for proc in self._procs:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
