"""Exception hierarchy for the repro XDBMS.

Every error raised by the library derives from :class:`ReproError` so that
applications can catch library failures with a single ``except`` clause.
Transaction-visible failures (deadlock aborts, explicit rollbacks) derive
from :class:`TransactionAborted` because they terminate the issuing
transaction rather than the whole system.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class SplidError(ReproError):
    """Malformed SPLID label or impossible label operation."""


class StorageError(ReproError):
    """Low-level storage failure (page, B-tree, or container invariant)."""


class PageOverflowError(StorageError):
    """A record does not fit a page even after a split."""


class DocumentError(ReproError):
    """Structural error in a taDOM document (unknown node, bad kind, ...)."""


class NodeNotFound(DocumentError):
    """The addressed node does not exist (anymore) in the document."""


class VocabularyError(StorageError):
    """Unknown vocabulary surrogate or exhausted surrogate space."""


class LockError(ReproError):
    """Lock-manager protocol violation (not a lock conflict)."""


class UnknownProtocolError(LockError):
    """The requested lock protocol name is not registered."""


class TransactionError(ReproError):
    """Misuse of the transaction API (e.g. operating on a finished txn)."""


class TransactionAborted(TransactionError):
    """The transaction has been aborted and must not issue further work.

    Subclasses carry the abort *reason* so callers can branch on the
    cause without string matching: :class:`DeadlockAbort` (victim
    choice) and :class:`LockTimeout` (lock-wait timeout).  ``reason`` is
    the same token the tracer records on the ``txn.abort`` event and the
    metrics registry counts under ``txn.aborted.<reason>``.
    """

    #: Abort-reason token ("rollback" for plain application aborts).
    reason = "rollback"


class DeadlockAbort(TransactionAborted):
    """The transaction was chosen as a deadlock victim.

    The deadlock detector attaches the cycle it found so that TaMix can
    classify the deadlock (conversion deadlock vs. distinct-subtree
    deadlock), mirroring the paper's XTCdeadlockDetector analysis.
    """

    reason = "deadlock"

    def __init__(self, message: str = "deadlock victim", cycle: tuple = ()):
        super().__init__(message)
        self.cycle = tuple(cycle)


class LockTimeout(TransactionAborted):
    """The transaction waited longer than the lock-wait timeout.

    Long waits behind coarse locks (e.g. Node2PL's parent-level M locks)
    are aborted rather than stalling the system indefinitely; TaMix counts
    these among the aborted transactions.  Both runtimes (the simulator
    and the threaded driver) raise it with the contested resource
    attached.
    """

    reason = "timeout"

    def __init__(
        self,
        message: str = "lock wait timed out",
        resource: "tuple | None" = None,
        timeout_ms: "float | None" = None,
    ):
        super().__init__(message)
        self.resource = resource
        self.timeout_ms = timeout_ms


class BenchmarkError(ReproError):
    """A TaMix benchmark was configured inconsistently."""
