"""Exception hierarchy for the repro XDBMS.

Every error raised by the library derives from :class:`ReproError` so that
applications can catch library failures with a single ``except`` clause.
Transaction-visible failures (deadlock aborts, explicit rollbacks) derive
from :class:`TransactionAborted` because they terminate the issuing
transaction rather than the whole system.

Orthogonally to the subsystem hierarchy, errors are classified by
**retryability** through two mixins:

* :class:`TransientError` -- the condition may clear on its own; retrying
  the same work (after a backoff) is a reasonable reaction.  Deadlock
  victims, lock-wait timeouts, and injected transient storage faults are
  transient: the paper's TaMix coordinator restarts such transactions.
* :class:`PermanentError` -- retrying the identical call cannot succeed
  (configuration mistakes, API misuse, exhausted retry budgets, hard
  storage failures).  Callers should surface these, not loop on them.

Errors carrying neither mixin (notably the :class:`StorageError` base
used by the WAL codec for torn log images) make no retryability promise;
:func:`is_transient`/:func:`is_permanent` both answer ``False`` for them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class TransientError(Exception):
    """Mixin: the failure may clear; retrying after a backoff is sane.

    Not a :class:`ReproError` itself -- concrete classes mix it into
    their subsystem branch (``class LockTimeout(TransactionAborted,
    TransientError)``), so ``except ReproError`` still catches
    everything while ``except TransientError`` selects the retryable
    subset.
    """


class PermanentError(Exception):
    """Mixin: retrying the identical call cannot succeed."""


def is_transient(error: BaseException) -> bool:
    """Is ``error`` classified as retryable?"""
    return isinstance(error, TransientError)


def is_permanent(error: BaseException) -> bool:
    """Is ``error`` classified as not-retryable?"""
    return isinstance(error, PermanentError)


class SplidError(ReproError, PermanentError):
    """Malformed SPLID label or impossible label operation."""


class StorageError(ReproError):
    """Low-level storage failure (page, B-tree, or container invariant).

    The base class makes no retryability promise -- the WAL/checkpoint
    codecs raise it for torn images (see :mod:`repro.verify.faults`),
    where "retry" is not a meaningful reaction.  The chaos engine's
    injected faults use the classified subtypes below.
    """


class TransientStorageError(StorageError, TransientError):
    """A storage access failed but may succeed when retried.

    Raised by the chaos engine (:mod:`repro.chaos`) for injected
    transient page-I/O faults, including a transient fault that
    persisted past the storage retry budget -- the *transaction* can
    still be restarted even when the single access could not be.
    """


class PermanentStorageError(StorageError, PermanentError):
    """A storage access failed and retrying cannot help (hard fault)."""


class PageOverflowError(StorageError):
    """A record does not fit a page even after a split."""


class DocumentError(ReproError, PermanentError):
    """Structural error in a taDOM document (unknown node, bad kind, ...)."""


class NodeNotFound(DocumentError):
    """The addressed node does not exist (anymore) in the document."""


class VocabularyError(StorageError, PermanentError):
    """Unknown vocabulary surrogate or exhausted surrogate space."""


class LockError(ReproError, PermanentError):
    """Lock-manager protocol violation (not a lock conflict)."""


class UnknownProtocolError(LockError):
    """The requested lock protocol name is not registered."""


class TransactionError(ReproError):
    """Misuse of the transaction API (e.g. operating on a finished txn)."""


class RollbackError(TransactionError, PermanentError):
    """Rollback could not be completed (undo hit a non-retryable fault).

    :meth:`repro.txn.manager.TransactionManager.abort` retries undo
    entries that fail transiently; when an entry fails permanently (or
    exhausts the retry budget) it raises this instead of returning with
    a half-rolled-back document.  The transaction stays ACTIVE and keeps
    its locks, so the damaged subtree remains isolated until recovery.
    """


class TransactionAborted(TransactionError):
    """The transaction has been aborted and must not issue further work.

    Subclasses carry the abort *reason* so callers can branch on the
    cause without string matching: :class:`DeadlockAbort` (victim
    choice) and :class:`LockTimeout` (lock-wait timeout).  ``reason`` is
    the same token the tracer records on the ``txn.abort`` event and the
    metrics registry counts under ``txn.aborted.<reason>``.
    """

    #: Abort-reason token ("rollback" for plain application aborts).
    reason = "rollback"


class DeadlockAbort(TransactionAborted, TransientError):
    """The transaction was chosen as a deadlock victim.

    The deadlock detector attaches the cycle it found so that TaMix can
    classify the deadlock (conversion deadlock vs. distinct-subtree
    deadlock), mirroring the paper's XTCdeadlockDetector analysis.
    Transient: restarting the victim is the standard reaction.
    """

    reason = "deadlock"

    def __init__(self, message: str = "deadlock victim", cycle: tuple = ()):
        super().__init__(message)
        self.cycle = tuple(cycle)


class LockTimeout(TransactionAborted, TransientError):
    """The transaction waited longer than the lock-wait timeout.

    Long waits behind coarse locks (e.g. Node2PL's parent-level M locks)
    are aborted rather than stalling the system indefinitely; TaMix counts
    these among the aborted transactions.  Both runtimes (the simulator
    and the threaded driver) raise it with the contested resource
    attached.  Transient: the lock holder will eventually finish.
    """

    reason = "timeout"

    def __init__(
        self,
        message: str = "lock wait timed out",
        resource: "tuple | None" = None,
        timeout_ms: "float | None" = None,
    ):
        super().__init__(message)
        self.resource = resource
        self.timeout_ms = timeout_ms


class AdmissionRejected(TransactionError, TransientError):
    """Admission control shed the transaction under restart pressure.

    Transient by definition: the system is degrading gracefully and the
    same work can be resubmitted once pressure falls.
    """


class ShardUnavailableError(ReproError, TransientError):
    """A shard did not answer: dead process, dropped frame, or DOWN mark.

    Transient by definition: the shard plane's supervisor restarts dead
    shards from their persisted WAL and the router re-admits them after
    a heartbeat probe succeeds, so the same work can be resubmitted.
    Transactions that had in-flight state on the lost shard are shed --
    their locks and uncommitted effects died with the process -- and the
    TaMix retry loop restarts them like any other transient abort.
    ``reason`` is the abort token the metrics/report layers count under.
    """

    reason = "shard-unavailable"

    def __init__(self, message: str = "shard unavailable",
                 shard_id: "int | None" = None):
        super().__init__(message)
        self.shard_id = shard_id


class ConnectionLostError(ReproError, TransientError):
    """The peer hung up mid-call (connection reset or broken pipe).

    Transient: the request may simply be retried on a *fresh*
    connection -- the broken one is closed and evicted from its pool.
    Distinct from :class:`ProtocolError` (torn frames make no
    retryability promise) because a reset says nothing about the bytes
    that were exchanged, only that the transport died.
    """


class ProtocolError(ReproError):
    """Corrupt, truncated, or out-of-contract wire-protocol traffic.

    Mirrors the WAL torn-tail contract: the base class makes no
    retryability promise, because a torn frame says nothing about
    whether the *connection* is still usable.  Servers drop the
    connection on it; clients must not blindly retry on the same socket.
    """


class UnsupportedWireVersion(ProtocolError, PermanentError):
    """The peer speaks a wire-protocol version this side does not."""


class RemoteError(ReproError):
    """An error the server reported without a locally known class.

    Carries the remote exception class name (``code``) and the
    taxonomy the server attached; the transient/permanent subclasses
    below keep :func:`is_transient`/:func:`is_permanent` faithful even
    for codes this client version has never heard of.
    """

    def __init__(self, message: str, *, code: str = "RemoteError",
                 reason: str = ""):
        super().__init__(message)
        self.code = code
        self.reason = reason


class TransientRemoteError(RemoteError, TransientError):
    """A remote error the server classified as retryable."""


class PermanentRemoteError(RemoteError, PermanentError):
    """A remote error the server classified as not-retryable."""


class ChaosError(ReproError, PermanentError):
    """A fault schedule or chaos-engine configuration is invalid."""


class BenchmarkError(ReproError, PermanentError):
    """A TaMix benchmark was configured inconsistently."""
