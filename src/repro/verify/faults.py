"""Crash-point fault injection for the write-ahead log.

The harness runs a scripted single-user workload against a WAL-enabled
database, snapshotting the committed document state at every commit
point.  It then simulates a crash at every log-prefix boundary -- which
covers the catalog of interesting injection points:

* **after BEGIN** -- the victim logged nothing but its BEGIN record;
* **mid-operation batch** -- some but not all of a transaction's
  operation records reached the log;
* **after the COMMIT append, before lock release** -- the write-ahead
  barrier: the transaction must be durable from this prefix on;
* **mid-checkpoint** -- a fuzzy checkpoint taken with a loser in flight
  (recovered via :func:`repro.txn.wal.recover_with_undo`), plus torn
  checkpoint images that must fail loudly.

Additionally every *byte*-level truncation of the log image (a torn
tail) must surface as :class:`~repro.errors.StorageError`, never as a
codec exception, and recovery from the longest clean prefix must be
bit-identical to the committed-prefix reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.database import Database
from repro.errors import StorageError
from repro.txn.wal import (
    LogKind,
    WriteAheadLog,
    recover,
    recover_with_undo,
    take_checkpoint,
)

#: The scripted library document the workload mutates.
_LIBRARY = (
    "topics",
    [("topic", {"id": "t0"}, [
        ("book", {"id": "b0"}, [
            ("title", ["TP Concepts"]),
            ("history", [("lend", {"person": "p1"}, [])]),
        ]),
        ("book", {"id": "b1"}, [("title", ["Handbook"])]),
    ])],
)


def canonical_image(document) -> bytes:
    """Deterministic byte image of a document's logical state.

    Vocabulary surrogates may be numbered differently in a recovered
    instance (the log stores names, not surrogates), so the image
    resolves names to strings; everything else -- SPLIDs, node kinds,
    contents, in document order -- is exact, making two images
    bit-comparable."""
    from repro.storage.record import NO_NAME

    lines = []
    for splid, record in document.walk():
        name = ""
        if record.name_surrogate != NO_NAME:
            name = document.vocabulary.name_of(record.name_surrogate)
        content = record.text_content
        lines.append(
            f"{splid}|{int(record.kind)}|{name}|"
            f"{'' if content is None else content}"
        )
    return "\n".join(lines).encode("utf-8")


@dataclass(frozen=True)
class CrashPoint:
    """One simulated crash location."""

    lsn: int
    kind: str          # "begin" | "operation" | "commit" | "abort" | "baseline"
    description: str


@dataclass
class CrashReport:
    """Outcome of one fault-injection suite."""

    protocol: str
    points: List[CrashPoint] = field(default_factory=list)
    #: Scenario name -> "ok" / "failed".
    checks: Dict[str, str] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)
    torn_tails_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "PASS" if self.ok else f"FAIL ({len(self.failures)} failures)"
        checks = ", ".join(
            f"{name}={state}" for name, state in sorted(self.checks.items())
        )
        return (
            f"{status} protocol={self.protocol} "
            f"crash_points={len(self.points)} "
            f"torn_tails={self.torn_tails_checked} [{checks}]"
        )


def _make_db(protocol: str, lock_depth: int) -> Database:
    db = Database(
        protocol=protocol, lock_depth=lock_depth, root_element="bib",
        enable_wal=True,
    )
    db.load(_LIBRARY)
    return db


def _point_kind(record_kind: LogKind) -> str:
    if record_kind is LogKind.BEGIN:
        return "begin"
    if record_kind is LogKind.COMMIT:
        return "commit"
    if record_kind is LogKind.ABORT:
        return "abort"
    return "operation"


def _run_workload(db: Database) -> Dict[int, bytes]:
    """Committed inserts/updates/renames, an abort, an in-flight loser.

    Returns the committed reference image at each commit LSN."""
    references: Dict[int, bytes] = {}

    t1 = db.begin("committer-1")
    history = db.document.elements_by_name("history")[0]
    db.run(db.nodes.insert_tree(t1, history, ("lend", {"person": "p2"}, [])))
    title = db.document.elements_by_name("title")[0]
    text = db.document.store.first_child(title)
    db.run(db.nodes.update_content(t1, text, "TP Concepts 2e"))
    db.commit(t1)
    references[db.wal.last_lsn] = canonical_image(db.document)

    # Two interleaved transactions on disjoint subtrees (shared ancestors
    # only carry compatible intention locks): one commits, one aborts, so
    # the log carries loser records *between* winner records.
    t2 = db.begin("committer-2")
    t3 = db.begin("aborter")
    db.run(db.nodes.insert_tree(
        t2, history, ("lend", {"person": "p3"}, [])
    ))
    book = db.document.element_by_id("b1")
    db.run(db.nodes.delete_subtree(t3, book))
    db.abort(t3)
    db.commit(t2)
    references[db.wal.last_lsn] = canonical_image(db.document)

    t4 = db.begin("committer-3")
    topic = db.document.element_by_id("t0")
    db.run(db.nodes.rename_element(t4, topic, "subject"))
    db.commit(t4)
    references[db.wal.last_lsn] = canonical_image(db.document)

    # In-flight at the crash: must never appear in any recovered state.
    t5 = db.begin("in-flight")
    db.run(db.nodes.insert_tree(
        t5, db.document.element_by_id("t0"),
        ("book", {"id": "b9"}, [("title", ["Phantom"])]),
    ))
    return references


def run_crash_suite(
    protocol: str = "taDOM3+", lock_depth: int = 4
) -> CrashReport:
    """Crash at every log boundary (and inside every record) and check
    that recovery reproduces exactly the committed prefix."""
    report = CrashReport(protocol=protocol)
    _check_prefix_points(report, protocol, lock_depth)
    _check_torn_tails(report, protocol, lock_depth)
    _check_fuzzy_checkpoint(report, protocol, lock_depth)
    _check_torn_checkpoint(report, protocol, lock_depth)
    return report


def _prepare(protocol: str, lock_depth: int):
    db = _make_db(protocol, lock_depth)
    base = take_checkpoint(db.document, db.wal)
    baseline = canonical_image(db.document)
    references = _run_workload(db)
    return db, base, baseline, references


def _reference_at(
    lsn: int, baseline: bytes, references: Dict[int, bytes]
) -> bytes:
    committed = [commit for commit in references if commit <= lsn]
    return references[max(committed)] if committed else baseline


def _check_prefix_points(report, protocol, lock_depth) -> None:
    db, base, baseline, references = _prepare(protocol, lock_depth)
    ok = True
    records = db.wal.records()
    for lsn in range(db.wal.last_lsn + 1):
        if lsn == 0:
            point = CrashPoint(0, "baseline", "crash before any append")
        else:
            record = records[lsn - 1]
            point = CrashPoint(
                lsn, _point_kind(record.kind),
                f"crash after {record.kind.name} of txn {record.txn_id}",
            )
        report.points.append(point)
        crashed_log = WriteAheadLog.from_bytes(db.wal.prefix(lsn))
        recovered = recover(base, crashed_log)
        expected = _reference_at(lsn, baseline, references)
        if canonical_image(recovered) != expected:
            ok = False
            report.failures.append(
                f"prefix-crash at lsn {lsn} ({point.kind}): recovered "
                f"document differs from the committed-prefix reference"
            )
    report.checks["prefix-crashes"] = "ok" if ok else "failed"


def _check_torn_tails(report, protocol, lock_depth) -> None:
    """Every byte-level truncation either decodes as a clean shorter log
    or raises StorageError; the clean part must still recover exactly."""
    db, base, baseline, references = _prepare(protocol, lock_depth)
    data = db.wal.to_bytes()
    boundaries = {
        len(db.wal.prefix(lsn)): lsn for lsn in range(db.wal.last_lsn + 1)
    }
    ok = True
    for cut in range(len(data) + 1):
        report.torn_tails_checked += 1
        try:
            crashed_log = WriteAheadLog.from_bytes(data[:cut])
        except StorageError:
            if cut in boundaries:
                ok = False
                report.failures.append(
                    f"torn tail at byte {cut}: clean record boundary "
                    f"rejected as truncated"
                )
            continue
        except Exception as exc:  # noqa: BLE001 - the regression we guard
            ok = False
            report.failures.append(
                f"torn tail at byte {cut}: codec leaked {type(exc).__name__}"
            )
            continue
        if cut not in boundaries:
            ok = False
            report.failures.append(
                f"torn tail at byte {cut}: mid-record truncation decoded "
                f"without error"
            )
            continue
        recovered = recover(base, crashed_log)
        expected = _reference_at(boundaries[cut], baseline, references)
        if canonical_image(recovered) != expected:
            ok = False
            report.failures.append(
                f"torn tail at byte {cut}: clean prefix recovered to a "
                f"state differing from the reference"
            )
    report.checks["torn-tails"] = "ok" if ok else "failed"


def _check_fuzzy_checkpoint(report, protocol, lock_depth) -> None:
    """Crash mid-run with a checkpoint taken while a loser was in
    flight: recover_with_undo must roll its captured effects back."""
    db = _make_db(protocol, lock_depth)

    t1 = db.begin("winner-pre")
    history = db.document.elements_by_name("history")[0]
    db.run(db.nodes.insert_tree(t1, history, ("lend", {"person": "p4"}, [])))
    db.commit(t1)

    loser = db.begin("loser")
    title = db.document.elements_by_name("title")[0]
    text = db.document.store.first_child(title)
    db.run(db.nodes.update_content(loser, text, "LOSER VALUE"))

    # The fuzzy checkpoint: the loser's update is inside the image.
    checkpoint = take_checkpoint(db.document, db.wal)

    winner = db.begin("winner-post")
    db.run(db.nodes.insert_tree(
        winner, history, ("lend", {"person": "p5"}, [])
    ))
    db.commit(winner)

    recovered = recover_with_undo(checkpoint, db.wal)
    ok = True
    recovered_title = recovered.elements_by_name("title")[0]
    if recovered.text_of_element(recovered_title) != "TP Concepts":
        ok = False
        report.failures.append(
            "fuzzy checkpoint: loser effect survived recovery"
        )
    people = {
        recovered.attribute_value(lend, "person")
        for lend in recovered.elements_by_name("lend")
    }
    if not {"p4", "p5"} <= people:
        ok = False
        report.failures.append(
            "fuzzy checkpoint: committed winner effects missing after "
            "recovery"
        )
    # Aborting the loser in the live database converges both states.
    db.abort(loser)
    if canonical_image(recovered) != canonical_image(db.document):
        ok = False
        report.failures.append(
            "fuzzy checkpoint: recovered state differs from the live "
            "committed state"
        )
    report.checks["fuzzy-checkpoint"] = "ok" if ok else "failed"


def _check_torn_checkpoint(report, protocol, lock_depth) -> None:
    """A crash *during* the checkpoint write leaves a torn image; loading
    it must fail loudly (so recovery falls back to the previous one)."""
    from repro.txn.wal import checkpoint_from_bytes, checkpoint_to_bytes

    db, base, _baseline, _references = _prepare(protocol, lock_depth)
    image = checkpoint_to_bytes(take_checkpoint(db.document, db.wal))
    ok = True
    # Probe a spread of torn offsets (every byte would be slow: the
    # checkpoint image carries the whole document).
    probes = sorted({1, 2, 5, len(image) // 3, len(image) // 2,
                     len(image) - 2, len(image) - 1})
    for cut in probes:
        try:
            checkpoint_from_bytes(image[:cut])
        except StorageError:
            continue
        except Exception as exc:  # noqa: BLE001 - the regression we guard
            ok = False
            report.failures.append(
                f"torn checkpoint at byte {cut}: codec leaked "
                f"{type(exc).__name__}"
            )
        else:
            ok = False
            report.failures.append(
                f"torn checkpoint at byte {cut}: truncated image decoded "
                f"without error"
            )
    # The intact image still round-trips.
    restored = checkpoint_from_bytes(image)
    if restored.entries != base.entries and restored.lsn < base.lsn:
        ok = False  # pragma: no cover - codec round-trip invariant
        report.failures.append("torn checkpoint: intact image mismatch")
    report.checks["torn-checkpoint"] = "ok" if ok else "failed"
