"""Rebuild a run's operation/lock history from its event trace.

The observability layer already records the lock pipeline and the
transaction lifecycle; with ``access_events`` enabled it also records one
``op.access`` event per settled meta request (emitted *after* the
request's locks were granted, so conflicting accesses appear in the
trace in the order the lock protocol serialized them) and a ``run.info``
manifest carrying the configuration.  This module parses that stream
back into typed records the oracle can check.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.core.protocol import Access as AccessKind
from repro.core.protocol import EdgeRole, MetaOp, MetaRequest
from repro.errors import BenchmarkError
from repro.obs import (
    OP_ACCESS,
    RUN_INFO,
    TXN_ABORT,
    TXN_BEGIN,
    TXN_COMMIT,
    TraceEvent,
    load_jsonl,
)
from repro.splid import Splid


@dataclass(frozen=True)
class Access:
    """One logical data access, as the node manager performed it."""

    seq: int
    txn: str
    request: MetaRequest


@dataclass
class TxnRecord:
    """One transaction's lifecycle as seen in the trace."""

    label: str
    name: str = ""
    isolation: str = "repeatable"
    #: ``committed`` / ``aborted`` / ``in-flight`` (parked at the run
    #: horizon when the trace ended).
    outcome: str = "in-flight"
    begin_seq: int = 0
    end_seq: Optional[int] = None

    @property
    def committed(self) -> bool:
        return self.outcome == "committed"


def _request_from(data: Dict[str, object]) -> MetaRequest:
    """Invert :meth:`NodeManager._emit_access`'s payload."""
    role = data.get("role")
    return MetaRequest(
        op=MetaOp(str(data["op"])),
        target=Splid.parse(str(data["target"])),
        access=AccessKind(str(data["access"])),
        role=None if role is None else EdgeRole(str(role)),
        children=tuple(
            Splid.parse(str(child)) for child in data.get("children", ())
        ),
        affected=tuple(
            Splid.parse(str(node)) for node in data.get("affected", ())
        ),
        id_value=data.get("id_value"),  # type: ignore[arg-type]
    )


@dataclass
class RunHistory:
    """The checkable history of one traced run."""

    events: List[TraceEvent]
    run_info: Optional[Dict[str, object]] = None
    transactions: Dict[str, TxnRecord] = None  # type: ignore[assignment]
    accesses: List[Access] = None  # type: ignore[assignment]

    @classmethod
    def from_events(cls, events: Sequence[TraceEvent]) -> "RunHistory":
        history = cls(events=list(events))
        history.transactions = {}
        history.accesses = []
        for event in history.events:
            if event.kind == RUN_INFO:
                history.run_info = dict(event.data)
            elif event.kind == TXN_BEGIN:
                history.transactions[event.txn] = TxnRecord(
                    label=event.txn,
                    name=str(event.data.get("name", "")),
                    isolation=str(event.data.get("isolation", "repeatable")),
                    begin_seq=event.seq,
                )
            elif event.kind in (TXN_COMMIT, TXN_ABORT):
                record = history.transactions.get(event.txn)
                if record is None:
                    record = TxnRecord(label=event.txn, begin_seq=event.seq)
                    history.transactions[event.txn] = record
                record.outcome = (
                    "committed" if event.kind == TXN_COMMIT else "aborted"
                )
                record.end_seq = event.seq
            elif event.kind == OP_ACCESS:
                history.accesses.append(
                    Access(event.seq, event.txn, _request_from(event.data))
                )
        return history

    @classmethod
    def from_jsonl(cls, path: Union[str, Path]) -> "RunHistory":
        return cls.from_events(load_jsonl(path))

    # -- derived views -------------------------------------------------------

    def committed_transactions(self) -> List[TxnRecord]:
        return [t for t in self.transactions.values() if t.committed]

    def accesses_of(self, label: str) -> List[Access]:
        return [access for access in self.accesses if access.txn == label]

    def configuration(
        self,
        *,
        protocol: Optional[str] = None,
        lock_depth: Optional[int] = None,
        isolation: Optional[str] = None,
    ) -> Dict[str, object]:
        """Run configuration: explicit overrides beat the ``run.info``
        manifest; missing either is an error (the oracle cannot re-plan
        accesses without knowing protocol and depth)."""
        info = self.run_info or {}
        resolved = {
            "protocol": protocol if protocol is not None else info.get("protocol"),
            "lock_depth": (
                lock_depth if lock_depth is not None else info.get("lock_depth")
            ),
            "isolation": (
                isolation if isolation is not None else info.get("isolation")
            ),
        }
        missing = [key for key in ("protocol", "lock_depth")
                   if resolved[key] is None]
        if missing:
            raise BenchmarkError(
                "trace carries no run.info manifest; pass "
                + " and ".join(missing)
                + " explicitly (record with access_events=True to embed it)"
            )
        resolved["lock_depth"] = int(resolved["lock_depth"])  # type: ignore[arg-type]
        return resolved
