"""repro.verify -- the correctness-verification subsystem.

The paper's contest measures *throughput*; this package checks that the
histories behind those numbers are actually correct.  Two halves:

* the **history oracle** (:mod:`repro.verify.history` +
  :mod:`repro.verify.oracle`): rebuild the operation/lock history of a
  run from its event trace (``op.access`` events, enabled via
  ``Observability(access_events=True)``) and assert
  conflict-serializability of the committed schedule, lock-protocol
  conformance of every data access, and two-phase discipline;
* the **crash-point fault-injection harness**
  (:mod:`repro.verify.faults`): simulate a crash at every log-prefix
  boundary (after BEGIN, mid-operation batch, after the COMMIT append
  but before lock release, mid-checkpoint) plus torn-tail byte
  truncations, run recovery, and assert the recovered document is
  bit-identical to the committed-prefix reference.

Both are wired into the ``repro`` CLI (``repro verify``) and the TaMix
sweep (``repro sweep --verify``); see ``docs/correctness.md``.
"""

from repro.verify.faults import (
    CrashPoint,
    CrashReport,
    canonical_image,
    run_crash_suite,
)
from repro.verify.history import Access, RunHistory, TxnRecord
from repro.verify.oracle import (
    OracleReport,
    Violation,
    verify_history,
    verify_trace,
)

__all__ = [
    "Access",
    "RunHistory",
    "TxnRecord",
    "OracleReport",
    "Violation",
    "verify_history",
    "verify_trace",
    "CrashPoint",
    "CrashReport",
    "canonical_image",
    "run_crash_suite",
]
